// Table I + Fig. 4 reproduction: the battery chemistry catalogue with the
// paper's star ratings, the big/LITTLE classification result, and the
// normalized five-axis radar values (discharge rate, energy density, cost,
// lifetime, safety) behind Fig. 4.
#include "bench_common.h"

#include "battery/chemistry.h"

using namespace capman;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  util::print_section(std::cout, "Table I - battery model (star ratings)");
  util::TextTable table({"battery", "formula", "cost eff.", "lifetime",
                         "discharge rate", "energy density", "result"});
  for (auto chem : battery::all_chemistries()) {
    const auto& p = battery::chemistry_profile(chem);
    auto stars = [](int n) { return std::string(static_cast<size_t>(n), '*'); };
    table.add_row({std::string{p.name}, std::string{p.formula},
                   stars(p.stars.cost_efficiency), stars(p.stars.lifetime),
                   stars(p.stars.discharge_rate), stars(p.stars.energy_density),
                   std::string{battery::to_string(battery::classify(p))}});
  }
  table.print(std::cout);
  bench::paper_note(std::cout,
                    "LCO/NCA classify as big; LMO/NMC/LFP/LTO as LITTLE.");

  util::print_section(std::cout,
                      "Fig. 4 - normalized radar axes per chemistry");
  util::TextTable radar({"battery", "discharge rate", "energy density",
                         "cost", "lifetime", "safety"});
  for (auto chem : battery::all_chemistries()) {
    const auto& p = battery::chemistry_profile(chem);
    radar.add_row(std::string{p.name},
                  {p.stars.discharge_rate / 5.0, p.stars.energy_density / 5.0,
                   p.stars.cost_efficiency / 5.0, p.stars.lifetime / 5.0,
                   p.stars.safety / 5.0});
  }
  radar.print(std::cout);
  bench::paper_note(std::cout,
                    "no single chemistry covers all five axes; combining "
                    "orthogonal ones (NCA + LMO) does.");

  util::print_section(std::cout, "Derived physical parameters (calibrated)");
  util::TextTable phys({"battery", "V_nom [V]", "usable cap. factor",
                        "R0 [ohm Ah]", "R1 surge [ohm Ah]", "tau [s]",
                        "KiBaM c", "KiBaM k [1/s]", "self-dis [%/day]"});
  for (auto chem : battery::all_chemistries()) {
    const auto& p = battery::chemistry_profile(chem);
    phys.add_row(std::string{p.name},
                 {p.nominal_voltage_v, p.usable_capacity_factor,
                  p.series_resistance_ohm_at_1ah,
                  p.surge_resistance_ohm_at_1ah, p.surge_tau_s, p.kibam_c,
                  p.kibam_k_per_s, p.self_discharge_per_day * 100.0},
                 4);
  }
  phys.print(std::cout);
  return 0;
}
