// Fig. 6 reproduction (bottom): the relationship between TEC heat
// dissipation / achievable temperature difference and its operating
// current. The curve is unimodal: it rises from 0, peaks at the rated
// operating current (~1.0 A) and then decays as Joule heating overwhelms
// the Peltier effect - "for the best cooling efficiency, we propose to
// maintain the TEC at its rated operating current."
#include "bench_common.h"

#include "thermal/tec.h"

using namespace capman;

int main(int argc, char** argv) {
  const bool csv = bench::csv_requested(argc, argv);
  thermal::Tec tec;
  const util::Celsius cold{45.0};  // hot-spot at the threshold

  util::print_section(std::cout,
                      "Fig. 6 - TEC delta-T and pumped heat vs operating "
                      "current");
  util::TextTable table({"I [A]", "max dT [K]", "Q_c @ dT=8K [W]",
                         "P_elec @ dT=8K [W]", "COP"});
  double best_i = 0.0;
  double best_dt = -1e9;
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>("fig06_tec_curve.csv");
    out->header({"current_a", "max_delta_t_k", "qc_w", "p_w"});
  }
  for (double i = 0.0; i <= 2.2001; i += 0.1) {
    const util::Amperes current{i};
    const double dt = tec.max_delta_t(cold, current).value();
    const util::Celsius hot{cold.value() + 8.0};
    const double qc = tec.heat_pumped(cold, hot, current).value();
    const double p = tec.electric_power(cold, hot, current).value();
    if (dt > best_dt) {
      best_dt = dt;
      best_i = i;
    }
    table.add_row(util::TextTable::format(i, 1), {dt, qc, p, p > 0 ? qc / p : 0.0});
    if (out) out->row({i, dt, qc, p});
  }
  table.print(std::cout);

  bench::paper_note(std::cout,
                    "dT rises, peaks near 1.0 A (the rated current), then "
                    "decays; CAPMAN always drives the TEC at the rated "
                    "current.");
  bench::measured_note(std::cout,
                       "peak at I = " + util::TextTable::format(best_i, 2) +
                           " A (analytic optimum " +
                           util::TextTable::format(
                               tec.optimal_current(cold).value(), 2) +
                           " A), max dT = " +
                           util::TextTable::format(best_dt, 1) + " K");
  return 0;
}
