// Fig. 3 reproduction: V-edge voltage curves and the D1/D2/D3 power-saving
// decomposition for (a) a video-streaming load step and (b) a screen-wake
// step, on both the big (NCA) and LITTLE (LMO) chemistries.
//
// The paper's reading: the LITTLE battery minimizes D1 (the transient dip
// loss); the big battery maximizes D3 (recovery); D3 - D1 is the saving
// potential scheduling can harvest.
#include "bench_common.h"

#include "battery/cell.h"
#include "battery/vedge.h"
#include "util/stats.h"

using namespace capman;

namespace {

util::TimeSeries record_pulse(battery::Cell& cell, double load_w,
                              double pre_s, double load_s, double post_s) {
  util::TimeSeries v;
  const double dt = 0.1;
  double t = 0.0;
  for (; t < pre_s; t += dt) {
    cell.rest(util::Seconds{dt});
    v.add(t, cell.open_circuit_voltage().value());
  }
  for (; t < pre_s + load_s; t += dt) {
    v.add(t, cell.draw(util::Watts{load_w}, util::Seconds{dt})
                 .terminal_voltage.value());
  }
  for (; t < pre_s + load_s + post_s; t += dt) {
    cell.rest(util::Seconds{dt});
    v.add(t, cell.open_circuit_voltage().value());
  }
  return v;
}

void run_case(const std::string& name, double load_w, double load_s,
              bool dump_csv) {
  util::print_section(std::cout, "Fig. 3 - V-edge: " + name);
  util::TextTable table({"chemistry", "V0 [V]", "Vmin [V]", "Vrec [V]",
                         "D1 [V s]", "D2 [V s]", "D3 [V s]", "D3-D1 [V s]"});
  for (auto chem : {battery::Chemistry::kNCA, battery::Chemistry::kLMO}) {
    battery::Cell cell{chem, 2500.0};
    // Pre-condition: drain a little so the cell sits on its plateau.
    for (int i = 0; i < 600; ++i) cell.draw(util::Watts{1.5}, util::Seconds{1.0});
    cell.rest(util::Seconds{120.0});
    const auto v = record_pulse(cell, load_w, 10.0, load_s, 90.0);
    const auto areas = battery::analyze_vedge(v, 10.0, 10.0 + load_s);
    table.add_row({std::string{battery::to_string(chem)},
                   util::TextTable::format(areas.v0, 3),
                   util::TextTable::format(areas.v_min, 3),
                   util::TextTable::format(areas.v_recovered, 3),
                   util::TextTable::format(areas.d1_vs, 3),
                   util::TextTable::format(areas.d2_vs, 3),
                   util::TextTable::format(areas.d3_vs, 3),
                   util::TextTable::format(areas.saving_potential_vs(), 3)});
    if (dump_csv) {
      util::CsvWriter csv{"fig03_vedge_" + name + "_" +
                          std::string{battery::to_string(chem)} + ".csv"};
      csv.header({"t_s", "volts"});
      for (std::size_t i = 0; i < v.size(); ++i) {
        csv.cell(v.time_at(i)).cell(v.value_at(i));
        csv.end_row();
      }
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_requested(argc, argv);
  run_case("video_step", 2.4, 20.0, csv);   // Fig. 3(a): streaming video
  run_case("screen_wake", 3.2, 2.0, csv);   // Fig. 3(b): screen on/off
  bench::paper_note(std::cout,
                    "LITTLE minimizes D1; big recovers more (D3). The area "
                    "D3 - D1 is the potential saving battery scheduling "
                    "captures.");
  return 0;
}
