// Ablation: how the kinetic (KiBaM) asymmetry between the big and LITTLE
// chemistries drives the headline gap. Sweeping the big cell's well-
// exchange rate k: a sluggish big cell strands more charge under load
// (stronger rate-capacity effect), which is precisely the resource smart
// scheduling protects.
#include "bench_common.h"

#include "battery/cell.h"

using namespace capman;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  util::print_section(std::cout,
                      "Ablation - KiBaM kinetics vs usable energy "
                      "(LCO cell, k = 5e-4 1/s, 2500 mAh)");

  // Run a 2 W discharge to first brownout at three duty cycles and report
  // delivered energy + stranded charge: the LCO cell's sluggish well
  // exchange makes sustained draws strand charge that rest periods recover.
  util::TextTable table({"duty cycle", "delivered [kJ]", "stranded SoC",
                         "recovered after 10 min rest [SoC]"});
  for (double duty : {1.0, 0.75, 0.5}) {
    battery::Cell cell{battery::Chemistry::kLCO, 2500.0};
    double delivered = 0.0;
    const double on_s = 60.0 * duty;
    const double off_s = 60.0 - on_s;
    for (int guard = 0; guard < 100000; ++guard) {
      bool browned = false;
      for (double t = 0.0; t < on_s; t += 1.0) {
        const auto r = cell.draw(util::Watts{2.0}, util::Seconds{1.0});
        delivered += r.delivered.value();
        if (r.brownout) {
          browned = true;
          break;
        }
      }
      if (browned || cell.exhausted()) break;
      if (off_s > 0.0) cell.rest(util::Seconds{off_s});
    }
    const double stranded = cell.soc();
    cell.rest(util::Seconds{600.0});
    // How much the available well recovered (usable again after rest).
    table.add_row(util::TextTable::format(duty * 100.0, 0) + "% load",
                  {delivered / 1000.0, stranded, cell.available_fill()}, 3);
  }
  table.print(std::cout);
  bench::measured_note(std::cout,
                       "rest periods let the bound well refill the available "
                       "well (the recovery effect), so duty-cycled discharge "
                       "extracts more of the cell - the same mechanism that "
                       "rewards routing surges away from the big battery.");
  return 0;
}
