// Fig. 2 reproduction: single-cell discharge cycles at equal labeled
// capacity (2500 mAh), LMO vs NCA.
//
//  (a) Applications: screen-on-idle (with Android housekeeping bursts) and
//      video streaming. Paper: LMO +14.3% on idle; NCA +24% on video.
//  (b) Phone on/off toggling at decreasing period. Paper: NCA is always
//      ahead, but its advantage shrinks from 46% (per-minute toggles) to
//      35% (per-second) as the burst share grows.
#include "bench_common.h"

#include "policy/baselines.h"
#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

namespace {

double discharge_minutes(const workload::Trace& trace,
                         battery::Chemistry chemistry,
                         const device::PhoneModel& phone) {
  sim::RunnerOptions options;
  options.config.practice_chemistry = chemistry;
  options.config.practice_capacity_mah = 2500.0;
  options.config.dt = util::Seconds{0.1};
  options.config.record_series = false;
  options.config.enable_tec = false;  // the motivation rig has no TEC
  const sim::ExperimentRunner runner{phone, options};
  policy::PracticePolicy single;
  return runner.run(trace, single).service_time_s / 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};

  util::print_section(
      std::cout, "Fig. 2(a) - discharge cycles by application, LMO vs NCA");
  util::TextTable apps({"workload", "LMO [min]", "NCA [min]",
                        "winner", "advantage [%]"});
  struct Row {
    std::string name;
    double lmo;
    double nca;
  };
  std::vector<Row> rows;
  {
    const auto idle =
        workload::make_idle_screen_on()->generate(util::Seconds{600.0}, seed);
    rows.push_back({"ScreenOnIdle",
                    discharge_minutes(idle, battery::Chemistry::kLMO, phone),
                    discharge_minutes(idle, battery::Chemistry::kNCA, phone)});
    const auto video =
        workload::make_local_video()->generate(util::Seconds{600.0}, seed);
    rows.push_back({"Video (local playback)",
                    discharge_minutes(video, battery::Chemistry::kLMO, phone),
                    discharge_minutes(video, battery::Chemistry::kNCA, phone)});
  }
  for (const auto& r : rows) {
    const bool lmo_wins = r.lmo > r.nca;
    const double adv = lmo_wins ? sim::improvement_pct(r.lmo, r.nca)
                                : sim::improvement_pct(r.nca, r.lmo);
    apps.add_row({r.name, util::TextTable::format(r.lmo, 1),
                  util::TextTable::format(r.nca, 1),
                  lmo_wins ? "LMO" : "NCA", util::TextTable::format(adv, 1)});
  }
  apps.print(std::cout);
  bench::paper_note(std::cout,
                    "idle: LMO +14.3%; video: NCA +24% (Nexus 6, 2500 mAh).");

  util::print_section(
      std::cout, "Fig. 2(b) - on/off toggling frequency sweep, LMO vs NCA");
  util::TextTable toggles({"toggle period", "LMO [min]", "NCA [min]",
                           "NCA advantage [%]"});
  std::vector<double> advantages;
  for (double period_s : {60.0, 10.0, 2.0}) {
    const auto trace =
        workload::make_screen_toggle(util::Seconds{period_s})
            ->generate(util::Seconds{std::max(600.0, 10.0 * period_s)}, seed);
    const double lmo = discharge_minutes(trace, battery::Chemistry::kLMO, phone);
    const double nca = discharge_minutes(trace, battery::Chemistry::kNCA, phone);
    const double adv = sim::improvement_pct(nca, lmo);
    advantages.push_back(adv);
    toggles.add_row({workload::make_screen_toggle(util::Seconds{period_s})->name(),
                     util::TextTable::format(lmo, 1),
                     util::TextTable::format(nca, 1),
                     util::TextTable::format(adv, 1)});
  }
  toggles.print(std::cout);
  bench::paper_note(std::cout,
                    "NCA always ahead; advantage decays 46% -> 35% as the "
                    "toggle frequency rises.");
  if (advantages.size() >= 2 && advantages.front() > advantages.back()) {
    bench::measured_note(std::cout, "advantage decays with frequency: yes");
  } else {
    bench::measured_note(std::cout, "advantage decays with frequency: NO");
  }
  return 0;
}
