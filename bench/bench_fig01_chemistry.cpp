// Fig. 1 reproduction: "LMO and NCA batteries behave significantly
// different in releasing electrons, or power supply."
//
// We pull constant power from fresh 2500 mAh LMO and NCA cells at several
// levels and report the sustained current (electron release rate), the
// voltage sag and the loss rate. LMO (the LITTLE chemistry) sustains far
// higher discharge rates before its rail collapses.
#include "bench_common.h"

#include "battery/cell.h"
#include "util/units.h"

using namespace capman;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  util::print_section(std::cout,
                      "Fig. 1 - electron release (discharge rate): LMO vs NCA");

  util::TextTable table({"load [W]", "LMO current [A]", "LMO V_t [V]",
                         "NCA current [A]", "NCA V_t [V]", "notes"});
  for (double watts : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    battery::Cell lmo{battery::Chemistry::kLMO, 2500.0};
    battery::Cell nca{battery::Chemistry::kNCA, 2500.0};
    // Settle for two seconds of draw.
    battery::Cell::DrawResult rl{};
    battery::Cell::DrawResult rn{};
    for (int i = 0; i < 20; ++i) {
      rl = lmo.draw(util::Watts{watts}, util::Seconds{0.1});
      rn = nca.draw(util::Watts{watts}, util::Seconds{0.1});
    }
    std::string note;
    if (rn.brownout && !rl.brownout) note = "NCA cannot sustain";
    if (rn.brownout && rl.brownout) note = "both collapse";
    table.add_row({util::TextTable::format(watts, 1),
                   util::TextTable::format(rl.current.value(), 2),
                   util::TextTable::format(rl.terminal_voltage.value(), 2),
                   util::TextTable::format(rn.current.value(), 2),
                   util::TextTable::format(rn.terminal_voltage.value(), 2),
                   note});
  }
  table.print(std::cout);

  // Maximum sustainable discharge: the C-rate at which each chemistry's
  // rail first collapses (fresh cell).
  util::TextTable limits({"chemistry", "class", "max sustained load [W]",
                          "max C-rate (catalogue)"});
  for (auto chem : {battery::Chemistry::kLMO, battery::Chemistry::kNCA}) {
    double max_w = 0.0;
    for (double w = 0.5; w < 120.0; w += 0.5) {
      battery::Cell cell{chem, 2500.0};
      if (!cell.can_supply(util::Watts{w})) break;
      max_w = w;
    }
    const auto& profile = battery::chemistry_profile(chem);
    limits.add_row({std::string{profile.name},
                    std::string{battery::to_string(battery::classify(profile))},
                    util::TextTable::format(max_w, 1),
                    util::TextTable::format(profile.max_c_rate, 1)});
  }
  limits.print(std::cout);

  bench::paper_note(std::cout,
                    "LMO exchanges far more electrons per unit time than NCA "
                    "(higher discharge rate).");
  bench::measured_note(
      std::cout,
      "LMO sustains multi-C loads where NCA's rail collapses; see rows above.");
  return 0;
}
