// Fleet scaling study (docs/FLEET.md, EXPERIMENTS.md "Fleet scaling"):
// devices/sec throughput of sim::FleetRunner versus worker-thread count,
// plus the bit-identity and memory-flatness checks that back the fleet
// determinism and memory contracts.
//
// Four stages:
//  1. Identity — the same fleet at 1 worker vs N workers must serialise
//     to byte-identical metrics snapshots (hard failure otherwise).
//  2. Thread curve — devices/sec at 10^4 devices for 1/2/4/8 workers.
//  2b. Checkpoint overhead — the same fleet with and without periodic
//     checkpoint writes (sim/checkpoint.h); reports the wall-clock cost
//     of crash-safety as a percentage (report-only budget line).
//  3. Headline — one 10^5-device run at auto threads with peak-RSS
//     growth per device (flat-memory evidence).
//
// The per-device configuration is deliberately scaled down from the paper
// defaults (coarser dt, sub-scale cells, short trace horizon) so one
// device costs ~1.5 ms instead of ~54 ms: the subject here is the fleet
// harness, not the per-device physics.
//
// Modes: --smoke runs the identity check plus a 10^3-device mini curve
// and exits 77 ("skipped") when the machine has fewer than 2 hardware
// threads — the scaling curve is meaningless there, but the identity
// check still runs first. --devices N overrides the headline size;
// --csv dumps bench_fleet_scaling.csv (one row per measured run).
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

#include "sim/fleet.h"

using namespace capman;

namespace {

constexpr int kSkipExitCode = 77;  // CTest SKIP_RETURN_CODE convention

// Sub-scale per-device config: full discharge in ~20 simulated minutes at
// dt = 0.25 s. Devices still die naturally (brownout after depletion), so
// every aggregate path is exercised.
sim::FleetConfig fleet_config(std::size_t devices, std::size_t shards,
                              std::size_t threads, std::uint64_t seed) {
  sim::FleetConfig config;
  config.device_count = devices;
  config.shard_count = shards;
  config.threads = threads;
  config.seed = seed;
  config.policies = {sim::PolicyKind::kDual};
  config.base.dt = util::Seconds{0.25};
  config.base.max_duration = util::hours(2.0);
  config.base.record_series = false;
  config.population.big_capacity_mah_lo = 500.0;
  config.population.big_capacity_mah_hi = 800.0;
  config.population.little_capacity_mah_lo = 200.0;
  config.population.little_capacity_mah_hi = 350.0;
  config.population.trace_horizon = util::Seconds{120.0};
  return config;
}

std::string snapshot_json(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream out;
  snapshot.write_json(out);
  return out.str();
}

struct TimedRun {
  sim::FleetResult result;
  double seconds = 0.0;
  [[nodiscard]] double devices_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(result.device_count) / seconds
                         : 0.0;
  }
};

TimedRun run_timed(const sim::FleetConfig& config) {
  const sim::FleetRunner runner{config};
  const auto start = std::chrono::steady_clock::now();
  TimedRun timed{runner.run(), 0.0};
  const auto end = std::chrono::steady_clock::now();
  timed.seconds = std::chrono::duration<double>(end - start).count();
  return timed;
}

long max_rss_kib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

std::size_t devices_from_args(int argc, char** argv, std::size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--devices" && i + 1 < argc) {
      return static_cast<std::size_t>(std::stoull(argv[i + 1]));
    }
  }
  return fallback;
}

bool flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name) return true;
  }
  return false;
}

/// Stage 1: byte-identical snapshots at 1 worker vs `threads` workers.
/// Returns false (and prints the first divergence) on mismatch.
bool identity_check(std::size_t devices, std::size_t threads,
                    std::uint64_t seed) {
  const auto serial = run_timed(fleet_config(devices, 64, 1, seed));
  const auto parallel = run_timed(fleet_config(devices, 64, threads, seed));
  const std::string a = snapshot_json(serial.result.metrics);
  const std::string b = snapshot_json(parallel.result.metrics);
  if (a == b) {
    bench::measured_note(
        std::cout, "identity: " + std::to_string(devices) + " devices, 1 vs " +
                       std::to_string(threads) +
                       " workers -> byte-identical snapshots");
    return true;
  }
  std::size_t at = 0;
  while (at < a.size() && at < b.size() && a[at] == b[at]) ++at;
  std::cout << "  [FAIL] snapshots diverge at byte " << at << "\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  const bool smoke = flag(argc, argv, "--smoke");
  const bool csv = bench::csv_requested(argc, argv);
  const bool json = bench::json_requested(argc, argv);
  const std::size_t hw = std::max<std::size_t>(
      std::thread::hardware_concurrency(), 1);

  util::print_section(std::cout, "Fleet scaling (sim::FleetRunner)");
  std::cout << "  hardware threads: " << hw << ", seed: " << seed << "\n";

  std::unique_ptr<util::CsvWriter> csv_out;
  if (csv) {
    csv_out = std::make_unique<util::CsvWriter>(
        std::string{"bench_fleet_scaling.csv"});
    csv_out->header(
        {"devices", "shards", "threads", "seconds", "devices_per_sec"});
  }
  const auto record = [&csv_out](const TimedRun& run) {
    if (!csv_out) return;
    csv_out->cell(run.result.device_count)
        .cell(run.result.shard_count)
        .cell(run.result.threads)
        .cell(run.seconds)
        .cell(run.devices_per_sec());
    csv_out->end_row();
  };

  // Stage 1: determinism across worker counts — on every machine,
  // including single-core ones (a 2-worker pool is always legal).
  if (!identity_check(smoke ? 200 : 1000, std::max<std::size_t>(hw, 2),
                      seed)) {
    return 1;
  }

  // Stage 2: devices/sec vs threads.
  const std::size_t curve_devices = smoke ? 1000 : 10000;
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (smoke) thread_counts = {1, 2};
  util::TextTable curve{{"threads", "seconds", "devices/sec", "speedup"}};
  double serial_rate = 0.0;
  double best_rate = 0.0;
  const sim::PolicyAggregate* curve_dual = nullptr;
  sim::FleetResult last_curve_result;
  for (std::size_t threads : thread_counts) {
    auto run = run_timed(fleet_config(curve_devices, 256, threads, seed));
    if (serial_rate <= 0.0) serial_rate = run.devices_per_sec();
    best_rate = std::max(best_rate, run.devices_per_sec());
    curve.add_row(std::to_string(threads),
                  {run.seconds, run.devices_per_sec(),
                   serial_rate > 0.0 ? run.devices_per_sec() / serial_rate
                                     : 0.0});
    record(run);
    last_curve_result = std::move(run.result);
  }
  curve_dual = last_curve_result.find(sim::PolicyKind::kDual);
  util::print_section(std::cout, std::to_string(curve_devices) +
                                     " devices: throughput vs threads");
  curve.print(std::cout);

  // Stage 2b: checkpoint overhead budget. Same fleet with and without
  // durability (sim/checkpoint.h, every 4 shards); the wall-clock delta
  // is the price of crash-safety. Report-only — the regression baseline
  // carries it in the NOISY set — but the printed budget line is what
  // EXPERIMENTS.md quotes (<5% on an unloaded machine).
  double checkpoint_overhead_pct = 0.0;
  {
    const std::size_t ck_devices = smoke ? 500 : 5000;
    const auto plain = run_timed(fleet_config(ck_devices, 64, 0, seed));
    char ck_template[] = "/tmp/capman_bench_ckpt_XXXXXX";
    char* ck_dir = mkdtemp(ck_template);
    if (ck_dir == nullptr) {
      std::cout << "  [skip] mkdtemp failed; checkpoint overhead not "
                   "measured\n";
    } else {
      auto config = fleet_config(ck_devices, 64, 0, seed);
      config.checkpoint.directory = ck_dir;
      config.checkpoint.every_shards = 4;
      const auto durable = run_timed(config);
      checkpoint_overhead_pct =
          plain.seconds > 0.0
              ? 100.0 * (durable.seconds - plain.seconds) / plain.seconds
              : 0.0;
      bench::measured_note(
          std::cout,
          "checkpoint overhead: " +
              util::TextTable::format(checkpoint_overhead_pct, 2) +
              "% wall clock (" + std::to_string(ck_devices) +
              " devices, write every 4 shards, " +
              std::to_string(durable.result.checkpoint.writes) +
              " writes, last " +
              std::to_string(durable.result.checkpoint.bytes_last_write) +
              " bytes)");
      std::remove((std::string{ck_dir} + "/fleet.ckpt").c_str());
      std::remove((std::string{ck_dir} + "/fleet.ckpt.tmp").c_str());
      rmdir(ck_dir);
    }
  }

  if (json) {
    // Curve-stage aggregates are deterministic for a fixed (devices, seed);
    // the throughput number is machine-dependent and carries a loose
    // tolerance in the regression baseline. curve_devices is recorded so a
    // smoke-mode artifact cannot silently diff against a full-mode baseline.
    bench::BenchJson artifact{"fleet_scaling", seed};
    artifact.metric("identity_ok", 1.0);  // main() returned above otherwise
    artifact.metric("curve_devices", static_cast<double>(curve_devices));
    if (curve_dual != nullptr) {
      artifact.metric("dual_p50_s", curve_dual->lifetime_s_sketch.quantile(0.5));
      artifact.metric("dual_p90_s", curve_dual->lifetime_s_sketch.quantile(0.9));
      artifact.metric("dual_brownout_pct",
                      100.0 * curve_dual->brownout_fraction());
      artifact.metric("dual_switches_per_dev", curve_dual->mean_switches());
    }
    artifact.metric("devices_per_sec_best", best_rate);
    artifact.metric("checkpoint_overhead_pct", checkpoint_overhead_pct);
    artifact.write_file();
  }

  if (!smoke) {
    // Stage 3: the headline run. Peak-RSS growth across it, divided by
    // the device count, is the flat-memory evidence: per-device state is
    // transient, so the delta stays in single-digit KiB per device even
    // at 10^5 (and amortizes toward zero as fleets grow).
    const std::size_t headline = devices_from_args(argc, argv, 100000);
    const long rss_before = max_rss_kib();
    const auto run = run_timed(fleet_config(headline, 1024, 0, seed));
    const long rss_after = max_rss_kib();
    record(run);
    util::print_section(std::cout, "headline run");
    util::TextTable table{
        {"devices", "shards", "threads", "seconds", "devices/sec"}};
    table.add_row(std::to_string(run.result.device_count),
                  {static_cast<double>(run.result.shard_count),
                   static_cast<double>(run.result.threads), run.seconds,
                   run.devices_per_sec()});
    table.print(std::cout);
    const double kib_per_device =
        static_cast<double>(rss_after - rss_before) /
        static_cast<double>(headline);
    bench::measured_note(
        std::cout,
        "peak-RSS growth over the headline run: " +
            util::TextTable::format(kib_per_device, 3) + " KiB/device (" +
            std::to_string(rss_after - rss_before) + " KiB total)");
    const auto* dual = run.result.find(sim::PolicyKind::kDual);
    if (dual != nullptr) {
      bench::measured_note(
          std::cout,
          "Dual lifetime p50/p90: " +
              util::TextTable::format(dual->lifetime_s_sketch.quantile(0.5),
                                      1) +
              " / " +
              util::TextTable::format(dual->lifetime_s_sketch.quantile(0.9),
                                      1) +
              " s over " + std::to_string(dual->devices) + " devices");
    }
  }

  if (csv_out) {
    std::cout << "  wrote bench_fleet_scaling.csv\n";
  }

  if (smoke && hw < 2) {
    // Constrained machine: identity verified above, but a scaling curve
    // on one core is meaningless — report a CTest skip.
    std::cout << "  [skip] <2 hardware threads; scaling curve not "
                 "meaningful here\n";
    return kSkipExitCode;
  }
  return 0;
}
