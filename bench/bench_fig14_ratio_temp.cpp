// Fig. 14 reproduction: relationship between the big/LITTLE activation-time
// ratio and the temperature reduction the TEC achieves (vs the same run
// with the TEC disabled), per workload, under CAPMAN.
//
// Paper: "when LITTLE battery takes charge, more dynamic power surges
// arrive in the system ... TEC is highly likely to be on" - so LITTLE-heavy
// workloads (PCMark, eta-80%) show the largest reduction beyond the default
// cooling plate.
#include "bench_common.h"

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};

  util::print_section(std::cout,
                      "Fig. 14 - big/LITTLE activation ratio vs TEC "
                      "temperature reduction (CAPMAN)");
  util::TextTable table({"workload", "big active [min]", "LITTLE active [min]",
                         "big:LITTLE ratio", "max hotspot w/ TEC [C]",
                         "max hotspot w/o TEC [C]", "reduction [K]"});
  sim::RunnerOptions tec_options;
  tec_options.seed = seed;
  const sim::ExperimentRunner with_tec{phone, tec_options};
  sim::RunnerOptions no_tec_options = tec_options;
  no_tec_options.config.enable_tec = false;
  const sim::ExperimentRunner without_tec{phone, no_tec_options};

  for (const auto& generator : workload::paper_suite()) {
    const auto trace = generator->generate(util::Seconds{600.0}, seed);

    const auto ra = with_tec.run(trace, sim::PolicyKind::kCapman);
    const auto rb = without_tec.run(trace, sim::PolicyKind::kCapman);

    table.add_row(trace.name(),
                  {ra.big_active_s / 60.0, ra.little_active_s / 60.0,
                   ra.big_little_ratio(), ra.max_cpu_temp_c,
                   rb.max_cpu_temp_c, rb.max_cpu_temp_c - ra.max_cpu_temp_c},
                  2);
  }
  table.print(std::cout);
  bench::paper_note(std::cout,
                    "workloads with heavier LITTLE activation (more surges) "
                    "see the largest temperature reduction from the TEC "
                    "(PCMark, eta-80% in the paper).");
  return 0;
}
