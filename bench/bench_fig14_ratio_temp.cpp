// Fig. 14 reproduction: relationship between the big/LITTLE activation-time
// ratio and the temperature reduction the TEC achieves (vs the same run
// with the TEC disabled), per workload, under CAPMAN.
//
// Paper: "when LITTLE battery takes charge, more dynamic power surges
// arrive in the system ... TEC is highly likely to be on" - so LITTLE-heavy
// workloads (PCMark, eta-80%) show the largest reduction beyond the default
// cooling plate.
#include "bench_common.h"

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};

  util::print_section(std::cout,
                      "Fig. 14 - big/LITTLE activation ratio vs TEC "
                      "temperature reduction (CAPMAN)");
  util::TextTable table({"workload", "big active [min]", "LITTLE active [min]",
                         "big:LITTLE ratio", "max hotspot w/ TEC [C]",
                         "max hotspot w/o TEC [C]", "reduction [K]"});
  for (const auto& generator : workload::paper_suite()) {
    const auto trace = generator->generate(util::Seconds{600.0}, seed);

    sim::SimConfig with_tec;
    auto policy_a = sim::make_policy(sim::PolicyKind::kCapman, seed);
    const auto ra = sim::SimEngine{with_tec}.run(trace, *policy_a, phone);

    sim::SimConfig without_tec;
    without_tec.enable_tec = false;
    auto policy_b = sim::make_policy(sim::PolicyKind::kCapman, seed);
    const auto rb = sim::SimEngine{without_tec}.run(trace, *policy_b, phone);

    table.add_row(trace.name(),
                  {ra.big_active_s / 60.0, ra.little_active_s / 60.0,
                   ra.big_little_ratio(), ra.max_cpu_temp_c,
                   rb.max_cpu_temp_c, rb.max_cpu_temp_c - ra.max_cpu_temp_c},
                  2);
  }
  table.print(std::cout);
  bench::paper_note(std::cout,
                    "workloads with heavier LITTLE activation (more surges) "
                    "see the largest temperature reduction from the TEC "
                    "(PCMark, eta-80% in the paper).");
  return 0;
}
