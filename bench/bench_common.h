// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints the rows/series of one paper table or figure and
// (where useful) writes a CSV named after the figure next to the working
// directory, so results can be re-plotted offline.
#pragma once

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json_append.h"
#include "sim/experiment.h"
#include "util/csv.h"
#include "util/table.h"

namespace capman::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

/// Strict uint64 parse: the whole token must be a decimal number that
/// fits. Returns std::nullopt for junk ("abc", "12x", "-1", "",
/// out-of-range) instead of throwing or truncating — the testable core of
/// seed_from_args (tests/bench/bench_common_test.cpp).
inline std::optional<std::uint64_t> parse_seed(std::string_view token) {
  std::uint64_t value = 0;
  const char* const first = token.data();
  const char* const last = first + token.size();
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc{} || result.ptr != last || token.empty()) {
    return std::nullopt;
  }
  return value;
}

/// Parse an optional "--seed N" argument. A malformed or missing value is
/// a usage error: print it and exit 2 (previously std::stoull let the
/// exception escape as a terminate backtrace).
inline std::uint64_t seed_from_args(int argc, char** argv,
                                    std::uint64_t fallback = kDefaultSeed) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg != "--seed") continue;
    if (i + 1 >= argc) {
      std::cerr << "error: --seed requires a value\n"
                << "usage: " << argv[0] << " [--seed N] [--csv] [--json]\n";
      std::exit(2);
    }
    const auto seed = parse_seed(argv[i + 1]);
    if (!seed.has_value()) {
      std::cerr << "error: invalid --seed '" << argv[i + 1]
                << "' (expected an unsigned integer)\n"
                << "usage: " << argv[0] << " [--seed N] [--csv] [--json]\n";
      std::exit(2);
    }
    return *seed;
  }
  return fallback;
}

/// True when "--csv" was passed (dump series files).
inline bool csv_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--csv") return true;
  }
  return false;
}

/// True when "--json" was passed (write the BENCH_<name>.json artifact).
inline bool json_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--json") return true;
  }
  return false;
}

/// Headline-number artifact of one bench run: collects (key, value) pairs
/// and writes BENCH_<name>.json for scripts/check_bench_regress.py to
/// diff against the committed baseline. Keys keep insertion order (the
/// bench's own narrative order); values serialise via to_chars, so the
/// artifact of a deterministic bench is byte-stable.
class BenchJson {
 public:
  BenchJson(std::string name, std::uint64_t seed)
      : name_(std::move(name)), seed_(seed) {}

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Serialise ({"name":...,"seed":...,"metrics":{...}}) to `out`.
  void write(std::ostream& out) const {
    std::string buf;
    buf.reserve(512);
    buf += "{\"name\":";
    obs::detail::append_string(buf, name_);
    buf += ",\"seed\":";
    obs::detail::append_u64(buf, seed_);
    buf += ",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) buf += ',';
      obs::detail::append_string(buf, metrics_[i].first);
      buf += ':';
      obs::detail::append_double(buf, metrics_[i].second);
    }
    buf += "}}\n";
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }

  /// Write BENCH_<name>.json in the working directory.
  void write_file() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out{path, std::ios::trunc};
    if (!out) {
      std::cerr << "error: cannot open " << path << "\n";
      std::exit(1);
    }
    write(out);
    std::cout << "  wrote " << path << "\n";
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& metrics()
      const {
    return metrics_;
  }

 private:
  std::string name_;
  std::uint64_t seed_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void paper_note(std::ostream& out, const std::string& text) {
  out << "  [paper] " << text << "\n";
}

inline void measured_note(std::ostream& out, const std::string& text) {
  out << "  [measured] " << text << "\n";
}

}  // namespace capman::bench
