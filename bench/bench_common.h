// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints the rows/series of one paper table or figure and
// (where useful) writes a CSV named after the figure next to the working
// directory, so results can be re-plotted offline.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/csv.h"
#include "util/table.h"

namespace capman::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

/// Parse an optional "--seed N" / positional seed argument.
inline std::uint64_t seed_from_args(int argc, char** argv,
                                    std::uint64_t fallback = kDefaultSeed) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) return std::stoull(argv[i + 1]);
  }
  return fallback;
}

/// True when "--csv" was passed (dump series files).
inline bool csv_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--csv") return true;
  }
  return false;
}

inline void paper_note(std::ostream& out, const std::string& text) {
  out << "  [paper] " << text << "\n";
}

inline void measured_note(std::ostream& out, const std::string& text) {
  out << "  [measured] " << text << "\n";
}

}  // namespace capman::bench
