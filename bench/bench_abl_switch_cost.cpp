// Ablation: sensitivity to the per-flip switch loss of the switch facility.
//
// "Frequently switching batteries may cause additional energy loss and heat
// dissipation" (Section II). This sweep shows how the per-switch energy
// cost moves CAPMAN's service time and its switch count on the eta-50%
// mixed workload, and where switching stops paying off.
#include "bench_common.h"

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_eta_static(0.5)->generate(util::Seconds{600.0}, seed);

  util::print_section(std::cout,
                      "Ablation - per-switch energy loss sweep (eta-50%, "
                      "CAPMAN vs Dual)");
  util::TextTable table({"switch loss [J]", "CAPMAN [min]", "CAPMAN switches",
                         "Dual [min]", "CAPMAN advantage [%]"});
  for (double loss_j : {0.0, 0.05, 0.2, 0.5, 1.0, 2.0}) {
    sim::RunnerOptions options;
    options.seed = seed;
    options.config.pack_config.switch_config.switch_loss =
        util::Joules{loss_j};
    const sim::ExperimentRunner runner{phone, options};

    const auto rc = runner.run(trace, sim::PolicyKind::kCapman);
    const auto rd = runner.run(trace, sim::PolicyKind::kDual);

    table.add_row(util::TextTable::format(loss_j, 2),
                  {rc.service_time_s / 60.0,
                   static_cast<double>(rc.switch_count),
                   rd.service_time_s / 60.0,
                   sim::improvement_pct(rc.service_time_s,
                                        rd.service_time_s)},
                  1);
  }
  table.print(std::cout);
  bench::measured_note(std::cout,
                       "CAPMAN's advantage persists until per-flip losses "
                       "reach joule scale; Dual (2 switches/cycle) is nearly "
                       "insensitive.");
  return 0;
}
