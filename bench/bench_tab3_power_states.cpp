// Table III reproduction: average power cost of every hardware state, per
// tested device profile, computed from the Table II component models
// (CPU [4][36], Screen [29][7], WiFi [20][44], TEC [16]).
#include "bench_common.h"

#include "device/phone.h"
#include "thermal/tec.h"

using namespace capman;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  for (const auto& profile : {device::nexus_profile(), device::honor_profile(),
                              device::lenovo_profile()}) {
    const device::PhoneModel phone{profile};
    util::print_section(std::cout,
                        "Table III - state powers [mW], " + profile.name +
                            " (Android " + profile.android_version + ")");
    util::TextTable cpu({"CPU", "C0 (50% util, mid freq)", "C1", "C2",
                         "Sleep"});
    cpu.add_row("power",
                {util::to_milliwatts(
                     phone.cpu().power(device::CpuState::kC0, 50.0, 1)),
                 util::to_milliwatts(
                     phone.cpu().power(device::CpuState::kC1, 0.0, 0)),
                 util::to_milliwatts(
                     phone.cpu().power(device::CpuState::kC2, 0.0, 0)),
                 util::to_milliwatts(
                     phone.cpu().power(device::CpuState::kSleep, 0.0, 0))},
                1);
    cpu.print(std::cout);

    util::TextTable screen({"Screen", "Off", "On (brightness 180)"});
    screen.add_row(
        "power",
        {util::to_milliwatts(phone.screen().power(device::ScreenState::kOff, 0)),
         util::to_milliwatts(
             phone.screen().power(device::ScreenState::kOn, 180.0))},
        1);
    screen.print(std::cout);

    util::TextTable wifi({"WiFi", "Idle", "Access (p=100)", "Send (p=100)"});
    wifi.add_row(
        "power",
        {util::to_milliwatts(phone.wifi().power(device::WifiState::kIdle, 0)),
         util::to_milliwatts(
             phone.wifi().power(device::WifiState::kAccess, 100.0)),
         util::to_milliwatts(
             phone.wifi().power(device::WifiState::kSend, 100.0))},
        1);
    wifi.print(std::cout);

    thermal::Tec tec;
    util::TextTable tec_table(
        {"TEC", "Off", "On (paper Table III, duty-averaged)",
         "On (physical model @ rated I, dT=8K)"});
    tec_table.add_row(
        "power",
        {0.0, profile.tec_on_mw.raw(),
         1000.0 * tec.electric_power(util::Celsius{45.0}, util::Celsius{53.0},
                                     tec.params().rated_current)
                      .value()},
        1);
    tec_table.print(std::cout);
  }
  bench::paper_note(std::cout,
                    "Nexus row matches Table III verbatim: CPU 612/462/310/55,"
                    " Screen 22/790, WiFi 60/1284/1548 mW. The TEC's 29.17 mW"
                    " is the paper's duty-averaged figure; the simulation uses"
                    " the physical Peltier power when the TEC is on.");
  return 0;
}
