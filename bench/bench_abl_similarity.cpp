// Ablation: what the structural-similarity index buys at decision time.
//
// CAPMAN's point (Section III-C): runtime decisions must not re-solve the
// MDP. This google-benchmark binary times the three alternatives on a
// learned runtime graph:
//   * indexed decision      - the O(1) Q-table lookup CAPMAN uses,
//   * value-iteration solve - re-running the Bellman solver per decision,
//   * full Algorithm 1      - re-running the similarity recursion.
#include <benchmark/benchmark.h>

#include "core/controller.h"
#include "core/similarity.h"
#include "core/value_iteration.h"
#include "workload/generators.h"

using namespace capman;

namespace {

core::CapmanController& shared_controller() {
  static core::CapmanController* controller = [] {
    core::CapmanConfig config;
    config.exploration_initial = 0.5;
    auto* ctl = new core::CapmanController{config, 42};
    const auto trace =
        workload::make_eta_static(0.5)->generate(util::Seconds{600.0}, 42);
    auto current = battery::BatterySelection::kBig;
    for (const auto& event : trace.events()) {
      current = ctl->on_event(event.action, event.demand.state_vector(),
                              current, util::Seconds{event.time_s});
      ctl->record_step(util::Joules{1.0}, util::Joules{0.1}, true);
    }
    ctl->scheduler().recalibrate();
    return ctl;
  }();
  return *controller;
}

void BM_IndexedDecision(benchmark::State& state) {
  auto& ctl = shared_controller();
  const device::DeviceStateVector dev{device::CpuState::kC0,
                                      device::ScreenState::kOn,
                                      device::WifiState::kAccess};
  const workload::Action event{workload::Syscall::kNetRecvStart, 7};
  core::DecideRequest req;
  req.event = event;
  req.device = dev;
  req.current = battery::BatterySelection::kBig;
  req.allow_exploration = false;
  double t = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.scheduler().decide(req));
    t += 1.0;
  }
}
BENCHMARK(BM_IndexedDecision);

void BM_ValueIterationSolve(benchmark::State& state) {
  auto& ctl = shared_controller();
  const auto& graph = ctl.scheduler().graph();
  core::ValueIterationConfig cfg;
  cfg.rho = 0.8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_values(graph, cfg));
  }
}
BENCHMARK(BM_ValueIterationSolve);

void BM_FullSimilarityRecursion(benchmark::State& state) {
  auto& ctl = shared_controller();
  const auto& graph = ctl.scheduler().graph();
  core::SimilarityConfig cfg;
  cfg.c_s = 1.0;
  cfg.c_a = 0.8;
  cfg.epsilon = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_structural_similarity(graph, cfg));
  }
}
BENCHMARK(BM_FullSimilarityRecursion);

void BM_FullRecalibration(benchmark::State& state) {
  auto& ctl = shared_controller();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.scheduler().recalibrate());
  }
}
BENCHMARK(BM_FullRecalibration);

}  // namespace

BENCHMARK_MAIN();
