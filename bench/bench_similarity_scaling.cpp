// Scaling study of the parallel, memoized Algorithm 1 engine
// (core/similarity.cpp): wall-clock speedup of the engine over the serial
// path at 1/2/4/8 worker threads on learned-shape MDP graphs of growing
// |S|, plus the contribution of the exact EMD cache and the (approximate)
// frozen-pair frontier.
//
// The serial path is the engine with one thread, no cache and no frontier
// — operation-for-operation the pre-engine implementation. Thread count
// and the EMD cache are bit-identical transformations, which this binary
// re-verifies on every graph; the frontier row is reported separately with
// its max deviation because it is the one approximate mode.
//
// Columns: engine wall time [ms], speedup vs the serial path, sweeps, and
// the pair-visit breakdown (EMD solved / cache hits / frozen skips) from
// SimilarityStats. With --csv, writes bench_similarity_scaling.csv with
// one row per (states, mode, threads) configuration.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/similarity.h"
#include "util/rng.h"

using namespace capman;

namespace {

// A learned-shape synthetic graph: like MdpGraph::from_mdp output, a large
// share of states are absorbing (observed only as targets, below the
// min-observations cut) and transitions are biased toward them. The
// absorbing core is what lets similarity rows freeze — the same structure
// the cache and frontier exploit on real recalibrations.
core::MdpGraph learned_shape_graph(std::size_t n_states, util::Rng& rng) {
  const std::size_t n_absorbing = n_states * 2 / 5;
  std::vector<core::StateVertex> states(n_states);
  std::vector<core::ActionVertex> actions;
  for (std::size_t s = 0; s < n_states; ++s) states[s].state_id = s;
  for (std::size_t s = 0; s + n_absorbing < n_states; ++s) {
    const std::size_t n_act = 1 + rng.uniform_index(3);
    for (std::size_t a = 0; a < n_act; ++a) {
      core::ActionVertex av;
      av.source = s;
      av.action_id = actions.size() % core::decision_action_space_size();
      const std::size_t fanout = 2 + rng.uniform_index(3);
      double total = 0.0;
      for (std::size_t t = 0; t < fanout; ++t) {
        core::TransitionEdge e;
        // 70% of transitions land in the absorbing core.
        e.to = rng.uniform() < 0.7
                   ? n_states - n_absorbing + rng.uniform_index(n_absorbing)
                   : rng.uniform_index(n_states);
        e.probability = rng.uniform(0.1, 1.0);
        e.reward = rng.uniform();
        total += e.probability;
        av.transitions.push_back(e);
      }
      for (auto& e : av.transitions) e.probability /= total;
      states[s].actions.push_back(actions.size());
      actions.push_back(std::move(av));
    }
  }
  return core::MdpGraph::from_parts(std::move(states), std::move(actions));
}

core::SimilarityConfig engine_config(std::size_t threads, bool cache,
                                     bool frontier) {
  core::SimilarityConfig cfg;
  cfg.c_s = 1.0;
  cfg.c_a = 0.9;  // strong coupling between the two similarity layers
  cfg.epsilon = 1e-3;
  cfg.max_iterations = 300;
  cfg.num_threads = threads;
  cfg.use_emd_cache = cache;
  cfg.skip_frozen_pairs = frontier;
  return cfg;
}

struct Timed {
  core::SimilarityResult result;
  double ms = 0.0;
};

Timed run_timed(const core::MdpGraph& graph,
                const core::SimilarityConfig& cfg, int reps) {
  Timed best;
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto result = compute_structural_similarity(graph, cfg);
    const auto end = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (i == 0) best.result = std::move(result);
  }
  std::sort(times.begin(), times.end());
  best.ms = times[times.size() / 2];
  return best;
}

double max_abs_diff(const math::Matrix& a, const math::Matrix& b) {
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    }
  }
  return worst;
}

bool bit_identical(const core::SimilarityResult& a,
                   const core::SimilarityResult& b) {
  return max_abs_diff(a.state_similarity, b.state_similarity) == 0.0 &&
         max_abs_diff(a.action_similarity, b.action_similarity) == 0.0 &&
         a.iterations == b.iterations;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const bool json = bench::json_requested(argc, argv);
  util::Rng rng{seed};

  util::print_section(
      std::cout, "Similarity engine scaling - threads, EMD cache, frontier");

  std::unique_ptr<util::CsvWriter> csv_out;
  if (csv) {
    csv_out = std::make_unique<util::CsvWriter>(
        std::string{"bench_similarity_scaling.csv"});
    csv_out->header({"states", "actions", "mode", "threads", "ms", "speedup",
                     "sweeps", "emd_solved", "cache_hits", "frozen_skips"});
  }

  bool all_identical = true;
  double largest_speedup_4t = 0.0;
  // Deterministic headline counts from the largest (96-state) graph, for
  // the BENCH_similarity_scaling.json artifact.
  std::uint64_t final_sweeps = 0;
  std::uint64_t final_emd_solved = 0;
  double final_frontier_dev = 0.0;
  for (const std::size_t n_states : {24, 48, 96}) {
    const auto graph = learned_shape_graph(n_states, rng);
    const int reps = n_states <= 48 ? 3 : 1;

    std::cout << "\n  |S| = " << graph.state_count()
              << ", |Lambda| = " << graph.action_count() << " ("
              << graph.action_count() * (graph.action_count() - 1) / 2
              << " action pairs per sweep)\n";

    const auto serial = run_timed(graph, engine_config(1, false, false), reps);

    util::TextTable table({"mode", "threads", "ms", "speedup", "sweeps",
                           "EMD solved", "cache hits", "frozen skips"});
    const auto report = [&](const std::string& mode, std::size_t threads,
                            const Timed& timed) {
      const auto& st = timed.result.stats;
      const double speedup = serial.ms / std::max(timed.ms, 1e-9);
      table.add_row(mode,
                    {static_cast<double>(threads), timed.ms, speedup,
                     static_cast<double>(timed.result.iterations),
                     static_cast<double>(st.action_pairs_computed),
                     static_cast<double>(st.action_pairs_cached),
                     static_cast<double>(st.action_pairs_skipped +
                                         st.state_pairs_skipped)},
                    2);
      if (csv_out) {
        csv_out->cell(graph.state_count())
            .cell(graph.action_count())
            .cell(mode)
            .cell(threads)
            .cell(timed.ms)
            .cell(speedup)
            .cell(timed.result.iterations)
            .cell(st.action_pairs_computed)
            .cell(st.action_pairs_cached)
            .cell(st.action_pairs_skipped + st.state_pairs_skipped);
        csv_out->end_row();
      }
      return speedup;
    };

    report("serial", 1, serial);
    for (const std::size_t threads : {1, 2, 4, 8}) {
      const auto engine =
          run_timed(graph, engine_config(threads, true, false), reps);
      const double speedup = report("engine", threads, engine);
      if (!bit_identical(serial.result, engine.result)) {
        all_identical = false;
      }
      if (threads == 4 && n_states == 96) largest_speedup_4t = speedup;
    }
    // Cache off at 4 threads: the pure-threading row.
    const auto no_cache =
        run_timed(graph, engine_config(4, false, false), reps);
    report("no-cache", 4, no_cache);
    if (!bit_identical(serial.result, no_cache.result)) all_identical = false;

    // Frontier on: approximate, reported with its deviation.
    const auto frontier =
        run_timed(graph, engine_config(4, true, true), reps);
    report("frontier", 4, frontier);
    const double dev = std::max(
        max_abs_diff(serial.result.state_similarity,
                     frontier.result.state_similarity),
        max_abs_diff(serial.result.action_similarity,
                     frontier.result.action_similarity));
    final_sweeps = static_cast<std::uint64_t>(serial.result.iterations);
    final_emd_solved = serial.result.stats.action_pairs_computed;
    final_frontier_dev = dev;
    table.print(std::cout);
    std::cout << "  frontier max |deviation| = " << dev
              << " (bound epsilon*c/(4(1-c)) = "
              << 1e-3 * 0.9 / (4.0 * 0.1) << ")\n";
  }

  bench::measured_note(
      std::cout, std::string{"thread/cache modes bit-identical to serial: "} +
                     (all_identical ? "yes" : "NO - ENGINE BUG"));
  bench::measured_note(
      std::cout,
      "largest graph, engine x4 speedup over serial path: " +
          util::TextTable::format(largest_speedup_4t, 2) + "x");
  bench::paper_note(
      std::cout,
      "per-pair decomposition parallelises Algorithm 1 near-linearly on "
      "real cores; on a single-core host the speedup is carried by the "
      "exact EMD cache over the absorbing-frozen rows.");
  if (json) {
    // Counts and the frontier deviation are deterministic for a fixed
    // seed; the x4 speedup is machine-dependent and carries a loose
    // tolerance in the regression baseline.
    bench::BenchJson artifact{"similarity_scaling", seed};
    artifact.metric("bit_identical", all_identical ? 1.0 : 0.0);
    artifact.metric("sweeps_96", static_cast<double>(final_sweeps));
    artifact.metric("emd_solved_96", static_cast<double>(final_emd_solved));
    artifact.metric("frontier_max_dev_96", final_frontier_dev);
    artifact.metric("speedup_x4_96", largest_speedup_4t);
    artifact.write_file();
  }
  return all_identical ? 0 : 1;
}
