// Ablation: what the TEC contributes - and costs.
//
// Three configurations on the hottest workload (Geekbench): TEC under the
// 45 C threshold controller (CAPMAN's design), TEC disabled (the default
// cooling plate only), and the threshold lowered so the TEC runs nearly
// always. Active cooling trades battery energy for hot-spot headroom; the
// threshold controller is the compromise the paper argues for.
#include "bench_common.h"

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_geekbench()->generate(util::Seconds{600.0}, seed);

  struct Variant {
    std::string name;
    bool enable;
    double threshold_c;
  };
  const std::vector<Variant> variants = {
      {"no TEC (cooling plate only)", false, 45.0},
      {"threshold 45C (CAPMAN)", true, 45.0},
      {"threshold 40C", true, 40.0},
      {"threshold 30C (nearly always on)", true, 30.0},
  };

  util::print_section(std::cout, "Ablation - TEC policy on Geekbench (CAPMAN)");
  util::TextTable table({"variant", "service [min]", "max hotspot [C]",
                         "time > 45C [%]", "TEC on [%]", "TEC energy [J]"});
  for (const auto& v : variants) {
    sim::RunnerOptions options;
    options.seed = seed;
    options.config.enable_tec = v.enable;
    options.config.cooling_config.threshold = util::Celsius{v.threshold_c};
    const sim::ExperimentRunner runner{phone, options};
    const auto r = runner.run(trace, sim::PolicyKind::kCapman);
    table.add_row(v.name,
                  {r.service_time_s / 60.0, r.max_cpu_temp_c,
                   r.cpu_temp_series.fraction_above(45.0) * 100.0,
                   r.tec_on_fraction * 100.0, r.tec_energy_j},
                  1);
  }
  table.print(std::cout);
  bench::measured_note(std::cout,
                       "active cooling spends battery energy for hot-spot "
                       "headroom; the 45C threshold keeps the ceiling while "
                       "burning far less than always-on.");
  return 0;
}
