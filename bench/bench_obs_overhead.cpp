// Observability overhead: what telemetry costs on the simulator's hot
// path. Runs the same CAPMAN discharge cycle (the Fig. 12 workload) four
// ways —
//   1. telemetry off (no sinks, no profiler; the default for every bench),
//   2. full decision tracing (JSONL sink, the <5% budget configuration),
//   3. decisions + span profile,
//   4. decisions + spans + verbose per-EMD spans,
// and reports median wall time per configuration plus the overhead
// relative to the disabled baseline. The budget the observability layer
// is held to is <5% for configuration 2 (ScopedSpan is one relaxed
// atomic load when disabled; decision records are only assembled when a
// sink is attached; serialisation goes through std::to_chars into a
// drain buffer, never per-field operator<<).
//
// Wall-clock numbers are machine-dependent; the binary prints PASS/WARN
// against the 5% budget rather than asserting, so CI noise cannot turn a
// slow container into a build failure. --csv writes the per-repeat
// samples to bench_obs_overhead.csv.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "workload/generators.h"

using namespace capman;

namespace {

struct Sample {
  std::string config;
  double wall_ms = 0.0;
  std::size_t trace_events = 0;
  std::uint64_t decisions = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, seed);

  constexpr int kRepeats = 7;
  struct Config {
    const char* name;
    bool decisions;
    bool spans;
    bool verbose;
  };
  const std::vector<Config> configs = {
      {"disabled", false, false, false},
      {"decisions", true, false, false},
      {"decisions+spans", true, true, false},
      {"decisions+spans+verbose", true, true, true},
  };

  const auto run_config = [&](const Config& cfg) {
    sim::RunnerOptions options;
    options.seed = seed;
    // Real file sinks so the measurement includes serialisation and
    // flush, not just in-memory buffering.
    if (cfg.decisions) {
      options.config.telemetry.decision_trace_path =
          "bench_obs_overhead_decisions.jsonl";
    }
    if (cfg.spans) {
      options.config.telemetry.spans_path = "bench_obs_overhead_spans.json";
      options.config.telemetry.verbose_spans = cfg.verbose;
    }
    const sim::ExperimentRunner runner{phone, options};
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner.run(trace, sim::PolicyKind::kCapman);
    const auto stop = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    return Sample{cfg.name, wall_ms,
                  static_cast<std::size_t>(
                      r.metrics.counter_or("engine/trace_events", 0)),
                  r.metrics.counter_or("engine/consults", 0)};
  };

  run_config(configs[0]);  // unmeasured warm-up (cold caches, page-in)

  // Repeats are interleaved round-robin across configurations so slow
  // machine drift (thermal, cache pressure from neighbours) spreads over
  // all rows instead of landing wholesale on whichever config ran last.
  std::vector<Sample> samples;
  std::vector<std::vector<double>> walls(configs.size());
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const Sample s = run_config(configs[i]);
      walls[i].push_back(s.wall_ms);
      samples.push_back(s);
    }
  }
  std::vector<double> medians;
  medians.reserve(configs.size());
  for (const auto& w : walls) medians.push_back(median(w));
  std::remove("bench_obs_overhead_spans.json");
  std::remove("bench_obs_overhead_decisions.jsonl");

  util::print_section(std::cout, "Observability overhead (" + trace.name() +
                                     ", median of " +
                                     std::to_string(kRepeats) + " runs)");
  util::TextTable table({"configuration", "wall [ms]", "overhead [%]",
                         "trace events", "decisions"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const double overhead =
        medians[0] > 0.0 ? 100.0 * (medians[i] - medians[0]) / medians[0]
                         : 0.0;
    // events/decisions are identical across repeats (deterministic sim);
    // report this config's sample from the final round.
    const auto& last = samples[(kRepeats - 1) * configs.size() + i];
    table.add_row(configs[i].name,
                  {medians[i], overhead, static_cast<double>(last.trace_events),
                   static_cast<double>(last.decisions)},
                  2);
  }
  table.print(std::cout);

  const double overhead_pct =
      medians[0] > 0.0 ? 100.0 * (medians[1] - medians[0]) / medians[0] : 0.0;
  const bool pass = overhead_pct < 5.0;
  std::cout << (pass ? "  PASS" : "  WARN") << ": full decision tracing adds "
            << util::TextTable::format(overhead_pct, 2) << "% vs a 5% budget"
            << (pass ? "" : " (machine noise? re-run on an idle host)")
            << "\n";
  bench::measured_note(std::cout,
                       "the disabled row is the bit-identical baseline every "
                       "other bench runs with: no sink, no ambient profiler, "
                       "ScopedSpan degenerates to one relaxed atomic load.");

  if (csv) {
    util::CsvWriter out{"bench_obs_overhead.csv"};
    out.header({"configuration", "wall_ms", "trace_events", "decisions"});
    for (const auto& s : samples) {
      out.cell(s.config).cell(s.wall_ms).cell(s.trace_events).cell(s.decisions);
      out.end_row();
    }
  }
  return 0;  // the budget check warns rather than fails (CI noise)
}
