// Observability overhead: what telemetry costs on the simulator's hot
// path. Runs the same CAPMAN discharge cycle (the Fig. 12 workload) five
// ways —
//   1. telemetry off (no sinks, no profiler; the default for every bench),
//   2. full decision tracing (JSONL sink, the <5% budget configuration),
//   3. decisions + span profile,
//   4. decisions + spans + verbose per-EMD spans,
//   5. sampler + flight recorder + health monitor (the PR-8 time
//      dimension, also held to the <5% budget),
// and reports median wall time per configuration plus the overhead
// relative to the disabled baseline. The budget the observability layer
// is held to is <5% for configurations 2 and 5 (ScopedSpan is one relaxed
// atomic load when disabled; decision records are only assembled when a
// sink is attached; serialisation goes through std::to_chars into a
// drain buffer, never per-field operator<<; the sampler/recorder/monitor
// run on the sim clock behind null-pointer guards).
//
// Wall-clock numbers are machine-dependent; the binary prints PASS/WARN
// against the 5% budget rather than asserting, so CI noise cannot turn a
// slow container into a build failure. --smoke flips that: fewer repeats,
// min-over-repeats overhead (robust to one-sided noise), and a hard exit
// code for the obs_overhead_smoke CTest gate (77 = skip on starved
// machines). --csv writes the per-repeat samples to
// bench_obs_overhead.csv; --json writes BENCH_obs_overhead.json.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "workload/generators.h"

using namespace capman;

namespace {

struct Sample {
  std::string config;
  double wall_ms = 0.0;
  std::size_t trace_events = 0;
  std::uint64_t decisions = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double minimum(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double overhead_pct(double baseline, double value) {
  return baseline > 0.0 ? 100.0 * (value - baseline) / baseline : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const bool json = bench::json_requested(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--smoke") smoke = true;
  }
  if (smoke && std::thread::hardware_concurrency() < 2) {
    std::cout << "SKIP: <2 hardware threads; overhead numbers would be "
                 "scheduler noise\n";
    return 77;
  }

  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, seed);

  const int repeats = smoke ? 5 : 7;
  struct Config {
    const char* name;
    bool decisions;
    bool spans;
    bool verbose;
    bool time_dim;  // sampler + flight recorder + health monitor
  };
  const std::vector<Config> configs = {
      {"disabled", false, false, false, false},
      {"decisions", true, false, false, false},
      {"decisions+spans", true, true, false, false},
      {"decisions+spans+verbose", true, true, true, false},
      {"sampler+recorder+health", false, false, false, true},
  };

  const auto run_config = [&](const Config& cfg) {
    sim::RunnerOptions options;
    options.seed = seed;
    // Real file sinks so the measurement includes serialisation and
    // flush, not just in-memory buffering.
    if (cfg.decisions) {
      options.config.telemetry.decision_trace_path =
          "bench_obs_overhead_decisions.jsonl";
    }
    if (cfg.spans) {
      options.config.telemetry.spans_path = "bench_obs_overhead_spans.json";
      options.config.telemetry.verbose_spans = cfg.verbose;
    }
    if (cfg.time_dim) {
      options.config.telemetry.sampler.enabled = true;
      options.config.telemetry.sampler.csv_path =
          "bench_obs_overhead_samples.csv";
      options.config.telemetry.recorder.enabled = true;
      options.config.telemetry.recorder.dump_path =
          "bench_obs_overhead_flight.jsonl";
      options.config.telemetry.recorder.dump_at_end = true;
      options.config.telemetry.health.enabled = true;
    }
    const sim::ExperimentRunner runner{phone, options};
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner.run(trace, sim::PolicyKind::kCapman);
    const auto stop = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    return Sample{cfg.name, wall_ms,
                  static_cast<std::size_t>(
                      r.metrics.counter_or("engine/trace_events", 0)),
                  r.metrics.counter_or("engine/consults", 0)};
  };

  run_config(configs[0]);  // unmeasured warm-up (cold caches, page-in)

  // Repeats are interleaved round-robin across configurations so slow
  // machine drift (thermal, cache pressure from neighbours) spreads over
  // all rows instead of landing wholesale on whichever config ran last.
  std::vector<Sample> samples;
  std::vector<std::vector<double>> walls(configs.size());
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const Sample s = run_config(configs[i]);
      walls[i].push_back(s.wall_ms);
      samples.push_back(s);
    }
  }
  std::vector<double> medians;
  medians.reserve(configs.size());
  for (const auto& w : walls) medians.push_back(median(w));
  std::remove("bench_obs_overhead_spans.json");
  std::remove("bench_obs_overhead_decisions.jsonl");
  std::remove("bench_obs_overhead_samples.csv");
  std::remove("bench_obs_overhead_flight.jsonl");

  util::print_section(std::cout, "Observability overhead (" + trace.name() +
                                     ", median of " +
                                     std::to_string(repeats) + " runs)");
  util::TextTable table({"configuration", "wall [ms]", "overhead [%]",
                         "trace events", "decisions"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    // events/decisions are identical across repeats (deterministic sim);
    // report this config's sample from the final round.
    const auto& last = samples[(repeats - 1) * configs.size() + i];
    table.add_row(configs[i].name,
                  {medians[i], overhead_pct(medians[0], medians[i]),
                   static_cast<double>(last.trace_events),
                   static_cast<double>(last.decisions)},
                  2);
  }
  table.print(std::cout);

  const double decisions_pct = overhead_pct(medians[0], medians[1]);
  const double time_dim_pct = overhead_pct(medians[0], medians[4]);
  const struct {
    const char* what;
    double pct;
  } budget_rows[] = {{"full decision tracing", decisions_pct},
                     {"sampler+recorder+health", time_dim_pct}};
  bool all_pass = true;
  for (const auto& row : budget_rows) {
    const bool pass = row.pct < 5.0;
    all_pass = all_pass && pass;
    std::cout << (pass ? "  PASS" : "  WARN") << ": " << row.what << " adds "
              << util::TextTable::format(row.pct, 2) << "% vs a 5% budget"
              << (pass ? "" : " (machine noise? re-run on an idle host)")
              << "\n";
  }
  bench::measured_note(std::cout,
                       "the disabled row is the bit-identical baseline every "
                       "other bench runs with: no sink, no ambient profiler, "
                       "ScopedSpan degenerates to one relaxed atomic load.");

  if (csv) {
    util::CsvWriter out{"bench_obs_overhead.csv"};
    out.header({"configuration", "wall_ms", "trace_events", "decisions"});
    for (const auto& s : samples) {
      out.cell(s.config).cell(s.wall_ms).cell(s.trace_events).cell(s.decisions);
      out.end_row();
    }
  }
  if (json) {
    // Wall times are machine noise; the artifact carries the deterministic
    // headline counts plus the overhead percentages (tolerance-gated only).
    bench::BenchJson artifact{"obs_overhead", seed};
    artifact.metric("decisions", static_cast<double>(samples.back().decisions));
    artifact.metric("overhead_decisions_pct", decisions_pct);
    artifact.metric("overhead_time_dim_pct", time_dim_pct);
    artifact.write_file();
  }

  if (smoke) {
    // Gate on min-over-repeats: the minimum is the least noise-inflated
    // estimate of true cost on a time-shared machine.
    const double gate_decisions = overhead_pct(minimum(walls[0]),
                                               minimum(walls[1]));
    const double gate_time_dim = overhead_pct(minimum(walls[0]),
                                              minimum(walls[4]));
    const bool gate_ok = gate_decisions < 5.0 && gate_time_dim < 5.0;
    std::cout << (gate_ok ? "SMOKE PASS" : "SMOKE FAIL")
              << ": min-over-repeats overhead decisions="
              << util::TextTable::format(gate_decisions, 2)
              << "% time-dim=" << util::TextTable::format(gate_time_dim, 2)
              << "% (budget 5%)\n";
    return gate_ok ? 0 : 1;
  }
  return 0;  // the budget check warns rather than fails (CI noise)
}
