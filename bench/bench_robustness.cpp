// Robustness: how the switch-capable policies degrade when the comparator
// switch board misbehaves (sim/faults.h). Sweeps the stuck-comparator
// episode rate across CAPMAN / Dual / Heuristic and reports service time
// against the fault-free baseline plus the fault and degradation telemetry
// read back off the run's metrics snapshot (SimResult::metrics, via
// FaultStats::from_snapshot). A final full-chaos row turns every fault
// knob on at once for CAPMAN. --csv additionally writes the sweep rows to
// bench_robustness.csv; --json writes the BENCH_robustness.json headline
// artifact diffed against bench/baselines/robustness.json by
// scripts/check_bench_regress.py (all metrics deterministic for a seed).
//
// CAPMAN's DegradationGuard is armed automatically by ExperimentRunner
// whenever the fault plan can fire: a switch the facility never latched is
// detected from the observed active cell, the scheduler falls back to the
// active battery's safe policy, and retries with exponential backoff. Dual
// and Heuristic have no watchdog — their dropped switches stay dropped —
// which is exactly the asymmetry this sweep shows.
#include "bench_common.h"

#include "workload/generators.h"

using namespace capman;

namespace {

sim::FaultPlanConfig stuck_plan(double rate_per_min, std::uint64_t seed) {
  sim::FaultPlanConfig plan;
  plan.seed = seed;
  plan.stuck_rate_per_min = rate_per_min;
  plan.stuck_min_duration = util::Seconds{30.0};
  plan.stuck_max_duration = util::Seconds{90.0};
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const bool json = bench::json_requested(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, seed);

  const std::vector<sim::PolicyKind> policies = {sim::PolicyKind::kCapman,
                                                 sim::PolicyKind::kDual,
                                                 sim::PolicyKind::kHeuristic};

  // Fault-free baselines: a plain runner, no injection layer at all.
  sim::RunnerOptions baseline_options;
  baseline_options.seed = seed;
  const sim::ExperimentRunner baseline{phone, baseline_options};
  std::vector<double> baseline_service;
  for (const auto kind : policies) {
    baseline_service.push_back(baseline.run(trace, kind).service_time_s);
  }

  util::print_section(std::cout,
                      "Robustness - stuck-comparator rate sweep (" +
                          trace.name() + ")");
  util::TextTable table({"scenario", "service [min]", "vs fault-free [%]",
                         "stuck [s]", "dropped req", "detected", "fallbacks",
                         "retries"});
  std::unique_ptr<util::CsvWriter> csv_out;
  if (csv) {
    csv_out = std::make_unique<util::CsvWriter>("bench_robustness.csv");
    csv_out->header({"rate_per_min", "policy", "service_s", "vs_baseline_pct",
                     "stuck_s", "dropped_requests", "detected", "fallbacks",
                     "retries"});
  }
  // Fault columns come off the registry snapshot every run carries
  // (SimResult::metrics) — FaultStats is a view over it, not separate
  // bookkeeping, and this bench exercises that read path.
  const auto report = [&](const std::string& scenario, const std::string& rate,
                          const char* policy, const sim::SimResult& r,
                          double baseline_s) {
    const auto faults = sim::FaultStats::from_snapshot(r.metrics);
    const double vs = sim::improvement_pct(r.service_time_s, baseline_s);
    table.add_row(scenario,
                  {r.service_time_s / 60.0, vs, faults.stuck_time_s,
                   static_cast<double>(faults.dropped_requests),
                   static_cast<double>(faults.detected_switch_failures),
                   static_cast<double>(faults.fallback_episodes),
                   static_cast<double>(faults.fallback_retries)},
                  1);
    if (csv_out != nullptr) {
      csv_out->cell(rate)
          .cell(policy)
          .cell(r.service_time_s)
          .cell(vs)
          .cell(faults.stuck_time_s)
          .cell(faults.dropped_requests)
          .cell(faults.detected_switch_failures)
          .cell(faults.fallback_episodes)
          .cell(faults.fallback_retries);
      csv_out->end_row();
    }
  };
  // Headline artifact for the regression gate (bench/baselines/
  // robustness.json): every metric below is a pure function of the seed,
  // so the checker holds them to REL_TOL.
  bench::BenchJson artifact{"robustness", seed};
  for (const double rate : {0.0, 0.5, 1.0, 2.0}) {
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const auto kind = policies[i];
      // Distinct fault seed per rate so scenarios are independent draws;
      // the same seed across policies so they face the same episodes.
      sim::RunnerOptions options;
      options.seed = seed;
      options.faults =
          stuck_plan(rate, seed + 100 * static_cast<std::uint64_t>(rate * 10));
      const sim::ExperimentRunner runner{phone, options};
      const auto r = runner.run(trace, kind);
      report(util::TextTable::format(rate, 1) + "/min  " +
                 sim::to_string(kind),
             util::TextTable::format(rate, 1), sim::to_string(kind), r,
             baseline_service[i]);
      if (rate == 1.0) {
        const std::string policy = sim::to_string(kind);
        const auto faults = sim::FaultStats::from_snapshot(r.metrics);
        artifact.metric(policy + "_service_s_rate1", r.service_time_s);
        artifact.metric(policy + "_stuck_s_rate1", faults.stuck_time_s);
        if (kind == sim::PolicyKind::kCapman) {
          artifact.metric("capman_detected_rate1",
                          static_cast<double>(
                              faults.detected_switch_failures));
          artifact.metric("capman_fallbacks_rate1",
                          static_cast<double>(faults.fallback_episodes));
          artifact.metric("capman_retries_rate1",
                          static_cast<double>(faults.fallback_retries));
        }
      }
    }
  }

  // Everything at once: stuck comparator, latency jitter and spikes,
  // transient request loss, supercap droop, noisy/dropping sensors.
  sim::FaultPlanConfig chaos = stuck_plan(1.0, seed + 7);
  chaos.latency_jitter_frac = 0.3;
  chaos.latency_spike_prob = 0.05;
  chaos.transient_fail_prob = 0.1;
  chaos.droop_prob = 0.2;
  chaos.soc_bias = 0.02;
  chaos.soc_noise_stddev = 0.01;
  chaos.temp_noise_stddev_c = 0.5;
  chaos.sensor_dropout_prob = 0.05;
  sim::RunnerOptions chaos_options;
  chaos_options.seed = seed;
  chaos_options.faults = chaos;
  const sim::ExperimentRunner chaos_runner{phone, chaos_options};
  const auto rc = chaos_runner.run(trace, sim::PolicyKind::kCapman);
  report("full chaos  CAPMAN", "chaos", "CAPMAN", rc, baseline_service[0]);
  table.print(std::cout);

  if (json) {
    const auto chaos_faults = sim::FaultStats::from_snapshot(rc.metrics);
    artifact.metric("capman_service_s_chaos", rc.service_time_s);
    artifact.metric("capman_dropped_chaos",
                    static_cast<double>(chaos_faults.dropped_requests));
    artifact.metric("baseline_capman_service_s", baseline_service[0]);
    artifact.write_file();
  }

  bench::measured_note(std::cout,
                       "the 0.0/min rows are bit-identical to the fault-free "
                       "baseline (the injection layer is never built); under "
                       "stuck episodes CAPMAN detects the unlatched switch, "
                       "parks on the live cell and retries with backoff.");
  return 0;
}
