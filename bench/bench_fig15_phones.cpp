// Fig. 15 reproduction: a runtime snapshot of CAPMAN's active power on the
// three phone profiles (Nexus, Honor, Lenovo) under the same workload
// trace. The paper's point: the *shape* of active power management is
// similar across phones (their absolute levels differ with the SoC), with
// the managed portion ranging roughly 100 -> 450 mW.
#include "bench_common.h"

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const auto trace =
      workload::make_pcmark()->generate(util::Seconds{600.0}, seed);

  util::print_section(std::cout,
                      "Fig. 15 - CAPMAN runtime snapshot on three phones "
                      "(same trace: " + trace.name() + ")");
  util::TextTable table({"phone", "service [min]", "avg power [mW]",
                         "p10 power [mW]", "p90 power [mW]", "switches",
                         "TEC on [%]"});
  for (const auto& profile : {device::nexus_profile(), device::honor_profile(),
                              device::lenovo_profile()}) {
    const device::PhoneModel phone{profile};
    sim::RunnerOptions options;
    options.seed = seed;
    const sim::ExperimentRunner runner{phone, options};
    const auto r = runner.run(trace, sim::PolicyKind::kCapman);

    // Percentiles of the sampled power series.
    util::Histogram hist{0.0, 5.0, 200};
    for (double v : r.power_series.values()) hist.add(v);
    table.add_row(profile.name,
                  {r.service_time_s / 60.0, r.avg_power_w * 1000.0,
                   hist.quantile(0.10) * 1000.0, hist.quantile(0.90) * 1000.0,
                   static_cast<double>(r.switch_count),
                   r.tec_on_fraction * 100.0},
                  1);
    if (csv) {
      util::CsvWriter out{"fig15_" + profile.name + ".csv"};
      out.header({"t_min", "power_w"});
      const auto p = r.power_series.decimate(400);
      for (std::size_t i = 0; i < p.size(); ++i) {
        out.row({p.time_at(i) / 60.0, p.value_at(i)});
      }
    }
  }
  table.print(std::cout);
  bench::paper_note(std::cout,
                    "similar active power management across phones under the "
                    "same trace; managed power spans roughly 100-450 mW "
                    "between the p10 and p90 of the dynamic range.");
  return 0;
}
