// Budget sweeps (EXPERIMENTS.md "Budget sweeps"): what the
// PowerBudgetArbiter (core/power_budget.h) buys and what it costs. For a
// grid of base budgets, ambient temperatures and cap methods the harness
// runs CAPMAN (learning the budget level jointly) on the hot Geekbench
// trace and reports the skin-temperature envelope above ambient, the
// energy efficiency, the shed energy and the arbiter telemetry.
//
// The headline claim the smoke gate pins: a sensible budget tightens the
// skin-temperature envelope by 10-20% while giving up at most 5% energy
// efficiency.
//
// Modes:
//   (default)   full sweep table
//   --smoke     bounded acceptance check (capped envelope <= 0.90x
//               uncapped, efficiency >= 0.95x uncapped); exits 77
//               ("skipped") on machines with <2 hardware threads, in
//               keeping with the other smoke gates
//   --csv       dump bench_power_budget.csv (one row per sweep run)
//   --seed N    override the workload/policy seed
#include "bench_common.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

namespace {

constexpr int kSkipExitCode = 77;  // CTest SKIP_RETURN_CODE convention

struct SweepPoint {
  double budget_mw = 0.0;  // 0 = arbiter disabled (baseline)
  core::CapMethod method = core::CapMethod::kRelax;
  double ambient_c = 26.0;
};

sim::SimResult run_point(const SweepPoint& point, std::uint64_t seed,
                         double sim_minutes) {
  const device::PhoneModel phone{device::nexus_profile()};
  sim::RunnerOptions options;
  options.seed = seed;
  options.config.record_series = false;
  options.config.max_duration = util::Seconds{sim_minutes * 60.0};
  options.config.thermal_config.ambient = util::Celsius{point.ambient_c};
  if (point.budget_mw > 0.0) {
    options.config.budget.enabled = true;
    options.config.budget.base_budget_mw = util::Milliwatts{point.budget_mw};
    options.config.budget.cap_method = point.method;
    options.capman.learn_budget = true;
  }
  const sim::ExperimentRunner runner{phone, options};
  const auto trace =
      workload::make_geekbench()->generate(util::Seconds{600.0}, seed);
  return runner.run(trace, sim::PolicyKind::kCapman);
}

double envelope_k(const sim::SimResult& r, double ambient_c) {
  return r.max_surface_temp_c - ambient_c;
}

/// Headline artifact shared by the smoke and full-sweep paths: the
/// uncapped-vs-3000mW-relax comparison at 26 C ambient, which is the pair
/// the smoke gate pins. All values are deterministic for a fixed seed.
void write_json(std::uint64_t seed, const sim::SimResult& uncapped,
                const sim::SimResult& capped, double ambient) {
  bench::BenchJson artifact{"power_budget", seed};
  artifact.metric("envelope_uncapped_k", envelope_k(uncapped, ambient));
  artifact.metric("envelope_capped_k", envelope_k(capped, ambient));
  const double envelope_uncapped = envelope_k(uncapped, ambient);
  artifact.metric("envelope_ratio",
                  envelope_uncapped > 0.0
                      ? envelope_k(capped, ambient) / envelope_uncapped
                      : 1.0);
  artifact.metric("efficiency_ratio",
                  uncapped.efficiency() > 0.0
                      ? capped.efficiency() / uncapped.efficiency()
                      : 1.0);
  artifact.metric("rebudgets", static_cast<double>(capped.budget_rebudgets));
  artifact.metric("shed_j", capped.budget_shed_j);
  artifact.write_file();
}

int run_smoke(std::uint64_t seed, bool json) {
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "power_budget smoke: <2 hardware threads, skipping\n";
    return kSkipExitCode;
  }
  const double minutes = 45.0;
  const double ambient = 26.0;
  const SweepPoint uncapped_point{0.0, core::CapMethod::kRelax, ambient};
  const SweepPoint capped_point{3000.0, core::CapMethod::kRelax, ambient};
  const auto uncapped = run_point(uncapped_point, seed, minutes);
  const auto capped = run_point(capped_point, seed, minutes);

  const double envelope_uncapped = envelope_k(uncapped, ambient);
  const double envelope_capped = envelope_k(capped, ambient);
  const double envelope_ratio =
      envelope_uncapped > 0.0 ? envelope_capped / envelope_uncapped : 1.0;
  const double efficiency_ratio = uncapped.efficiency() > 0.0
                                      ? capped.efficiency() / uncapped.efficiency()
                                      : 1.0;

  std::cout << "power_budget smoke (seed " << seed << ", "
            << capped_point.budget_mw << " mW relax vs uncapped)\n"
            << "  envelope above ambient: " << envelope_capped << " K vs "
            << envelope_uncapped << " K (ratio " << envelope_ratio << ")\n"
            << "  efficiency: " << capped.efficiency() * 100.0 << "% vs "
            << uncapped.efficiency() * 100.0 << "% (ratio "
            << efficiency_ratio << ")\n"
            << "  rebudgets " << capped.budget_rebudgets << ", shed "
            << capped.budget_shed_j << " J, TEC vetoes "
            << capped.budget_tec_vetoes << "\n";

  bool ok = true;
  if (envelope_ratio > 0.90) {
    std::cout << "FAIL: capped envelope ratio " << envelope_ratio
              << " exceeds 0.90\n";
    ok = false;
  }
  if (efficiency_ratio < 0.95) {
    std::cout << "FAIL: capped efficiency ratio " << efficiency_ratio
              << " below 0.95\n";
    ok = false;
  }
  if (capped.budget_rebudgets == 0) {
    std::cout << "FAIL: arbiter never rebudgeted\n";
    ok = false;
  }
  if (ok) std::cout << "power_budget smoke: PASS\n";
  if (json) write_json(seed, uncapped, capped, ambient);
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool json = bench::json_requested(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--smoke") return run_smoke(seed, json);
  }
  const bool csv = bench::csv_requested(argc, argv);

  std::vector<SweepPoint> points;
  for (double ambient : {26.0, 32.0}) {
    points.push_back({0.0, core::CapMethod::kRelax, ambient});
    for (double budget : {4400.0, 3600.0, 3000.0, 2400.0}) {
      for (auto method : {core::CapMethod::kRelax, core::CapMethod::kStatic}) {
        points.push_back({budget, method, ambient});
      }
    }
  }

  util::print_section(std::cout,
                      "Budget sweeps - skin envelope vs efficiency (CAPMAN, "
                      "Geekbench)");
  util::TextTable table({"budget", "ambient [C]", "avg power [mW]",
                         "max skin [C]", "envelope [K]", "efficiency [%]",
                         "shed [J]", "rebudgets", "TEC vetoes"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>("bench_power_budget.csv");
    out->header({"budget_mw", "method", "ambient_c", "avg_power_mw",
                 "max_skin_c", "envelope_k", "efficiency", "shed_j",
                 "rebudgets", "tec_vetoes"});
  }
  // The smoke-gate pair, recaptured from the sweep for the --json artifact.
  sim::SimResult json_uncapped;
  sim::SimResult json_capped;
  for (const auto& point : points) {
    const auto r = run_point(point, seed, 45.0);
    if (point.ambient_c == 26.0) {
      if (point.budget_mw == 0.0) json_uncapped = r;
      if (point.budget_mw == 3000.0 &&
          point.method == core::CapMethod::kRelax) {
        json_capped = r;
      }
    }
    const std::string label =
        point.budget_mw > 0.0
            ? std::to_string(static_cast<int>(point.budget_mw)) + " " +
                  core::to_string(point.method)
            : "uncapped";
    table.add_row(label,
                  {point.ambient_c, r.avg_power_w * 1000.0,
                   r.max_surface_temp_c, envelope_k(r, point.ambient_c),
                   r.efficiency() * 100.0, r.budget_shed_j,
                   static_cast<double>(r.budget_rebudgets),
                   static_cast<double>(r.budget_tec_vetoes)},
                  1);
    if (out != nullptr) {
      out->row({point.budget_mw, point.budget_mw > 0.0
                                     ? static_cast<double>(point.method)
                                     : -1.0,
                point.ambient_c, r.avg_power_w * 1000.0,
                r.max_surface_temp_c, envelope_k(r, point.ambient_c),
                r.efficiency(), r.budget_shed_j,
                static_cast<double>(r.budget_rebudgets),
                static_cast<double>(r.budget_tec_vetoes)});
    }
  }
  table.print(std::cout);
  bench::measured_note(
      std::cout,
      "mid-table budgets (~3000 mW) tighten the skin envelope 10-20% below "
      "the uncapped run at <=5% efficiency cost; kStatic gives up a little "
      "more than kRelax for the same base budget (worst-case margin).");
  if (json) write_json(seed, json_uncapped, json_capped, 26.0);
  return 0;
}
