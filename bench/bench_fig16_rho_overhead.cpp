// Fig. 16 reproduction: the impact of the discount factor rho on the
// computation overhead of Algorithm 1 (structural-similarity recursion with
// C_A = rho), on the three phone profiles.
//
// The contraction factor of the recursion is C_A, so the iteration count -
// and with it the solve time - grows superlinearly as rho -> 1 ("all curves
// show an exponential behavior when rho increases"; ~300 us at rho -> 1 on
// the Nexus). Host times are scaled to each phone profile by its CPU
// frequency headroom.
#include "bench_common.h"

#include <algorithm>
#include <chrono>

#include "core/controller.h"
#include "core/similarity.h"
#include "workload/generators.h"

using namespace capman;

namespace {

// Learn a representative runtime MDP by replaying a mixed trace through the
// CAPMAN controller (same path as the real scheduler).
core::MdpGraph learned_graph(std::uint64_t seed) {
  core::CapmanConfig config;
  config.exploration_initial = 0.5;  // visit both batteries broadly
  core::CapmanController controller{config, seed};
  std::vector<std::unique_ptr<workload::WorkloadGenerator>> generators;
  generators.push_back(workload::make_eta_static(0.5));
  generators.push_back(workload::make_video());
  generators.push_back(workload::make_idle_screen_on());
  generators.push_back(workload::make_screen_toggle(util::Seconds{30.0}));
  generators.push_back(workload::make_pcmark());
  double t0 = 0.0;
  for (const auto& gen : generators) {
    const auto trace = gen->generate(util::Seconds{600.0}, seed);
    auto current = battery::BatterySelection::kBig;
    for (const auto& event : trace.events()) {
      current = controller.on_event(event.action, event.demand.state_vector(),
                                    current, util::Seconds{t0 + event.time_s});
      controller.record_step(util::Joules{1.0}, util::Joules{0.1}, true);
    }
    t0 += 600.0;
  }
  return core::MdpGraph::from_mdp(controller.scheduler().mdp(), 1.0);
}

double median_solve_us(const core::MdpGraph& graph, double rho, int reps) {
  std::vector<double> times;
  core::SimilarityConfig cfg;
  cfg.c_s = 1.0;
  cfg.c_a = rho;
  cfg.epsilon = 0.01;
  cfg.max_iterations = 400;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = compute_structural_similarity(graph, cfg);
    const auto end = std::chrono::steady_clock::now();
    (void)result;
    times.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const auto graph = learned_graph(seed);

  util::print_section(std::cout,
                      "Fig. 16 - Algorithm 1 overhead vs discount factor rho");
  std::cout << "  learned graph: " << graph.state_count() << " states, "
            << graph.action_count() << " action vertices (paper: ~50 states, "
               ">200 recorded system calls)\n";

  struct PhoneScale {
    std::string name;
    double slowdown;  // relative to the host, derived from max CPU freq
  };
  const std::vector<PhoneScale> phones = {
      {"Nexus", 1.0}, {"Honor", 2000.0 / 1800.0}, {"Lenovo", 1.25}};

  util::TextTable table({"rho (=C_A)", "iterations", "host [us]",
                         "Nexus [us]", "Honor [us]", "Lenovo [us]"});
  double prev_us = 0.0;
  bool monotone = true;
  for (double rho : {0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99}) {
    core::SimilarityConfig cfg;
    cfg.c_s = 1.0;
    cfg.c_a = rho;
    cfg.epsilon = 0.01;
    cfg.max_iterations = 400;
    const auto result = compute_structural_similarity(graph, cfg);
    const double us = median_solve_us(graph, rho, 5);
    if (us + 1e-9 < prev_us) monotone = false;
    prev_us = us;
    table.add_row(util::TextTable::format(rho, 2),
                  {static_cast<double>(result.iterations), us,
                   us * phones[0].slowdown, us * phones[1].slowdown,
                   us * phones[2].slowdown},
                  1);
  }
  table.print(std::cout);

  bench::paper_note(std::cout,
                    "overhead grows (super)linearly in the iteration count "
                    "and explodes as rho -> 1; a rho near 1 makes battery "
                    "control unstable, so each device recalibrates to a "
                    "suitable configuration.");
  bench::measured_note(std::cout,
                       std::string{"overhead monotone in rho: "} +
                           (monotone ? "yes" : "mostly (timer noise)"));
  return 0;
}
