// Fig. 13 reproduction: cooling and active power consumption of the six
// workloads under CAPMAN. For each workload the harness reports the
// active-power profile (mean/peak), the hot-spot temperature ceiling, and
// the TEC behaviour (on-fraction, energy) - the paper's claims being that
// CAPMAN holds the hot spot around the 45 C threshold and boots the TEC
// when active power peaks (~2300 mW whole-system utilization).
#include "bench_common.h"

#include "sim/engine.h"
#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};
  sim::RunnerOptions options;
  options.seed = seed;
  const sim::ExperimentRunner runner{phone, options};

  util::print_section(std::cout,
                      "Fig. 13 - cooling and active power per workload "
                      "(CAPMAN)");
  util::TextTable table({"workload", "avg power [mW]", "peak power [mW]",
                         "avg hotspot [C]", "max hotspot [C]",
                         "time > 45C [%]", "TEC on [%]", "TEC energy [J]"});
  for (const auto& generator : workload::paper_suite()) {
    const auto trace = generator->generate(util::Seconds{600.0}, seed);
    const auto r = runner.run(trace, sim::PolicyKind::kCapman);
    table.add_row(trace.name(),
                  {r.avg_power_w * 1000.0, r.power_series.max_value() * 1000.0,
                   r.avg_cpu_temp_c, r.max_cpu_temp_c,
                   r.cpu_temp_series.fraction_above(45.0) * 100.0,
                   r.tec_on_fraction * 100.0, r.tec_energy_j},
                  1);
    if (csv) {
      util::CsvWriter out{"fig13_" + trace.name() + ".csv"};
      out.header({"t_min", "power_w", "cpu_temp_c", "tec_power_w"});
      const auto p = r.power_series.decimate(400);
      const auto temp = r.cpu_temp_series.decimate(400);
      const auto tec = r.tec_power_series.decimate(400);
      for (std::size_t i = 0; i < p.size() && i < temp.size() && i < tec.size();
           ++i) {
        out.row({p.time_at(i) / 60.0, p.value_at(i), temp.value_at(i),
                 tec.value_at(i)});
      }
    }
  }
  table.print(std::cout);
  bench::paper_note(std::cout,
                    "temperature is held around the predefined 45 C; the TEC "
                    "boots when the system runs at its highest utilization, "
                    "and lighter workloads (Video) draw much less active "
                    "power with the TEC mostly idle.");
  return 0;
}
