// Fig. 12 reproduction (a)-(f): one-discharge-cycle performance of CAPMAN
// vs Oracle / Dual / Heuristic / Practice on the six workloads
// (Geekbench, PCMark, Video, eta-20%, eta-50%, eta-80%).
//
// For each workload the harness prints the service time per policy, the
// improvement ratios the paper quotes, and (with --csv) the remaining-
// capacity-vs-time series each subplot plots.
#include "bench_common.h"

#include "workload/generators.h"

using namespace capman;

int main(int argc, char** argv) {
  const auto seed = bench::seed_from_args(argc, argv);
  const bool csv = bench::csv_requested(argc, argv);
  const device::PhoneModel phone{device::nexus_profile()};
  sim::RunnerOptions options;
  options.seed = seed;
  const sim::ExperimentRunner runner{phone, options};

  util::RunningStats capman_vs_practice;
  util::RunningStats capman_vs_dual;
  util::RunningStats capman_vs_heuristic;

  for (const auto& generator : workload::paper_suite()) {
    const auto trace = generator->generate(util::Seconds{600.0}, seed);
    const auto results = runner.compare(trace);

    util::print_section(std::cout,
                        "Fig. 12 - one discharge cycle: " + trace.name());
    const auto& practice = results.at(sim::PolicyKind::kPractice);
    const auto& oracle = results.at(sim::PolicyKind::kOracle);
    util::TextTable table({"policy", "service time [min]", "vs Practice [%]",
                           "vs Oracle [%]", "stranded big SoC",
                           "switches"});
    for (const auto& [kind, r] : results.entries()) {
      table.add_row(r.policy,
                    {r.service_time_s / 60.0,
                     sim::improvement_pct(r.service_time_s,
                                          practice.service_time_s),
                     sim::improvement_pct(r.service_time_s,
                                          oracle.service_time_s),
                     r.end_big_soc, static_cast<double>(r.switch_count)},
                    1);
    }
    table.print(std::cout);

    const auto& capman = results.at(sim::PolicyKind::kCapman);
    const auto& dual = results.at(sim::PolicyKind::kDual);
    const auto& heuristic = results.at(sim::PolicyKind::kHeuristic);
    capman_vs_practice.add(sim::improvement_pct(capman.service_time_s,
                                                practice.service_time_s));
    capman_vs_dual.add(
        sim::improvement_pct(capman.service_time_s, dual.service_time_s));
    capman_vs_heuristic.add(sim::improvement_pct(capman.service_time_s,
                                                 heuristic.service_time_s));

    if (csv) {
      util::CsvWriter out{"fig12_" + trace.name() + "_soc.csv"};
      out.header({"policy", "t_min", "soc"});
      for (const auto& [kind, r] : results.entries()) {
        const auto series = r.soc_series.decimate(300);
        for (std::size_t i = 0; i < series.size(); ++i) {
          out.cell(r.policy).cell(series.time_at(i) / 60.0)
              .cell(series.value_at(i));
          out.end_row();
        }
      }
    }
  }

  util::print_section(std::cout, "Fig. 12 - headline averages");
  bench::paper_note(std::cout,
                    "CAPMAN: ~2x service time vs Practice on skewed mixes "
                    "(+76/105/114%), +50% on Geekbench, +67.1% on Video; "
                    "+55.08% vs Dual and +53.27% vs Heuristic on Video; "
                    "within 9.6% of Oracle on Video.");
  bench::measured_note(
      std::cout,
      "CAPMAN vs Practice: mean +" +
          util::TextTable::format(capman_vs_practice.mean(), 1) + "% (range " +
          util::TextTable::format(capman_vs_practice.min(), 1) + " .. " +
          util::TextTable::format(capman_vs_practice.max(), 1) + "%)");
  bench::measured_note(
      std::cout, "CAPMAN vs Dual: mean +" +
                     util::TextTable::format(capman_vs_dual.mean(), 1) + "%");
  bench::measured_note(
      std::cout,
      "CAPMAN vs Heuristic: mean +" +
          util::TextTable::format(capman_vs_heuristic.mean(), 1) + "%");
  return 0;
}
