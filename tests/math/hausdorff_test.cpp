#include "math/hausdorff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace capman::math {
namespace {

// Ground distance over two explicit point sets on the line.
SetGroundDistance line_distance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  return [&a, &b](std::size_t i, std::size_t j) {
    return std::abs(a[i] - b[j]);
  };
}

TEST(Hausdorff, IdenticalSetsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(hausdorff(a.size(), a.size(), line_distance(a, a)), 0.0);
}

TEST(Hausdorff, KnownExample) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{0.0, 3.0};
  // directed(a->b): max(min(0,3), min(1,2)) = 1; directed(b->a): point 3 is
  // 2 away from nearest -> 2. Symmetric = 2... distances: |3-0|=3,|3-1|=2.
  EXPECT_DOUBLE_EQ(hausdorff(a.size(), b.size(), line_distance(a, b)), 2.0);
}

TEST(Hausdorff, DirectedAsymmetry) {
  const std::vector<double> a{0.0};
  const std::vector<double> b{0.0, 10.0};
  // a -> b: 0 (0 is in b). b -> a: point 10 is 10 away.
  EXPECT_DOUBLE_EQ(directed_hausdorff(a.size(), b.size(), line_distance(a, b)),
                   0.0);
  EXPECT_DOUBLE_EQ(directed_hausdorff(b.size(), a.size(), line_distance(b, a)),
                   10.0);
  EXPECT_DOUBLE_EQ(hausdorff(a.size(), b.size(), line_distance(a, b)), 10.0);
}

TEST(Hausdorff, EmptySets) {
  const auto d = [](std::size_t, std::size_t) { return 0.5; };
  EXPECT_DOUBLE_EQ(directed_hausdorff(0, 3, d), 0.0);
  EXPECT_DOUBLE_EQ(directed_hausdorff(3, 0, d), 1.0);
  EXPECT_DOUBLE_EQ(hausdorff(0, 0, d), 0.0);
  EXPECT_DOUBLE_EQ(hausdorff(3, 0, d), 1.0);
  EXPECT_DOUBLE_EQ(hausdorff(0, 3, d), 1.0);
}

TEST(Hausdorff, SubsetDirectedZero) {
  const std::vector<double> sub{1.0, 2.0};
  const std::vector<double> super{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(
      directed_hausdorff(sub.size(), super.size(), line_distance(sub, super)),
      0.0);
}

TEST(Hausdorff, SymmetricProperty) {
  const std::vector<double> a{0.2, 0.9, 0.5};
  const std::vector<double> b{0.1, 0.4};
  const double ab = hausdorff(a.size(), b.size(), line_distance(a, b));
  const double ba = hausdorff(b.size(), a.size(), line_distance(b, a));
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST(Hausdorff, TriangleInequalityOnLineSets) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{0.5, 1.5};
  const std::vector<double> c{2.0};
  const double ab = hausdorff(a.size(), b.size(), line_distance(a, b));
  const double bc = hausdorff(b.size(), c.size(), line_distance(b, c));
  const double ac = hausdorff(a.size(), c.size(), line_distance(a, c));
  EXPECT_LE(ac, ab + bc + 1e-12);
}

}  // namespace
}  // namespace capman::math
