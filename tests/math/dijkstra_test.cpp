#include "math/dijkstra.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace capman::math {
namespace {

TEST(Dijkstra, LineGraph) {
  Digraph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 3.0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 6.0);
  EXPECT_EQ(sp.parent[3], 2u);
}

TEST(Dijkstra, PrefersCheaperDetour) {
  Digraph g{3};
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 3.0);
  EXPECT_EQ(sp.parent[2], 1u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Digraph g{3};
  g.add_edge(0, 1, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_EQ(sp.distance[2], std::numeric_limits<double>::infinity());
  EXPECT_EQ(sp.parent[2], ShortestPaths::npos);
}

TEST(Dijkstra, ZeroWeightEdges) {
  Digraph g{3};
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 0.0);
}

TEST(Dijkstra, RandomizedTriangleInequality) {
  util::Rng rng{5};
  const std::size_t n = 40;
  Digraph g{n};
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < 4; ++k) {
      g.add_edge(i, rng.uniform_index(n), rng.uniform(0.1, 5.0));
    }
  }
  const auto sp = dijkstra(g, 0);
  // Relaxation invariant: no edge can shorten a settled distance.
  for (std::size_t u = 0; u < n; ++u) {
    if (sp.distance[u] == std::numeric_limits<double>::infinity()) continue;
    for (const auto& e : g.out_edges(u)) {
      EXPECT_LE(sp.distance[e.to], sp.distance[u] + e.weight + 1e-9);
    }
  }
}

}  // namespace
}  // namespace capman::math
