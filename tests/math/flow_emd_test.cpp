#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/emd.h"
#include "math/min_cost_flow.h"
#include "util/rng.h"

namespace capman::math {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow f{2};
  f.add_edge(0, 1, 5.0, 2.0);
  const auto r = f.solve(0, 1, 3.0);
  EXPECT_TRUE(r.saturated);
  EXPECT_DOUBLE_EQ(r.flow, 3.0);
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
}

TEST(MinCostFlow, PicksCheaperPathFirst) {
  MinCostFlow f{4};
  f.add_edge(0, 1, 2.0, 1.0);
  f.add_edge(1, 3, 2.0, 1.0);
  f.add_edge(0, 2, 2.0, 5.0);
  f.add_edge(2, 3, 2.0, 5.0);
  // 3 units: 2 over the cheap path (cost 4), 1 over the expensive (cost 10).
  const auto r = f.solve(0, 3, 3.0);
  EXPECT_TRUE(r.saturated);
  EXPECT_NEAR(r.cost, 14.0, 1e-9);
}

TEST(MinCostFlow, CapacityLimitsFlow) {
  MinCostFlow f{2};
  f.add_edge(0, 1, 1.5, 1.0);
  const auto r = f.solve(0, 1, 10.0);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.flow, 1.5, 1e-9);
}

TEST(MinCostFlow, DisconnectedYieldsZero) {
  MinCostFlow f{3};
  f.add_edge(0, 1, 1.0, 1.0);
  const auto r = f.solve(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(r.flow, 0.0);
  EXPECT_FALSE(r.saturated);
}

TEST(MinCostFlow, FlowOnReportsPerEdgeFlow) {
  MinCostFlow f{3};
  const auto cheap = f.add_edge(0, 1, 1.0, 1.0);
  const auto direct = f.add_edge(0, 2, 5.0, 10.0);
  f.add_edge(1, 2, 1.0, 1.0);
  f.solve(0, 2, 2.0);
  EXPECT_NEAR(f.flow_on(cheap), 1.0, 1e-9);
  EXPECT_NEAR(f.flow_on(direct), 1.0, 1e-9);
}

// Brute-force check on tiny transportation instances: enumerate splits of
// supply across two routes.
TEST(MinCostFlow, MatchesBruteForceOnTransportation) {
  util::Rng rng{77};
  for (int trial = 0; trial < 50; ++trial) {
    // Two sources (supply a, b summing to 1), two sinks (demand c, d).
    const double a = rng.uniform(0.1, 0.9);
    const double c = rng.uniform(0.1, 0.9);
    double cost[2][2];
    for (auto& row : cost) {
      for (double& x : row) x = rng.uniform(0.0, 1.0);
    }
    // Flow solver network.
    MinCostFlow f{6};
    f.add_edge(0, 1, a, 0.0);
    f.add_edge(0, 2, 1.0 - a, 0.0);
    f.add_edge(3, 5, c, 0.0);
    f.add_edge(4, 5, 1.0 - c, 0.0);
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) f.add_edge(1 + i, 3 + j, 2.0, cost[i][j]);
    }
    const auto r = f.solve(0, 5, 1.0);
    ASSERT_TRUE(r.saturated);

    // Brute force: x = flow source0 -> sink0 parameterizes the whole plan.
    double best = 1e18;
    for (int k = 0; k <= 2000; ++k) {
      const double x = k / 2000.0;
      const double x01 = a - x;        // source0 -> sink1
      const double x10 = c - x;        // source1 -> sink0
      const double x11 = (1.0 - a) - x10;
      if (x01 < -1e-12 || x10 < -1e-12 || x11 < -1e-12 || x > a + 1e-12 ||
          x > c + 1e-12) {
        continue;
      }
      best = std::min(best, x * cost[0][0] + x01 * cost[0][1] +
                                x10 * cost[1][0] + x11 * cost[1][1]);
    }
    EXPECT_NEAR(r.cost, best, 2e-3);
  }
}

TEST(Emd, IdenticalDistributionsZero) {
  Distribution p{{0.3, 0.7}};
  const auto d = [](std::size_t i, std::size_t j) {
    return i == j ? 0.0 : 1.0;
  };
  EXPECT_NEAR(earth_movers_distance(p, p, d), 0.0, 1e-9);
}

TEST(Emd, DisjointPointMasses) {
  Distribution p{{1.0, 0.0}};
  Distribution q{{0.0, 1.0}};
  const auto d = [](std::size_t i, std::size_t j) {
    return i == j ? 0.0 : 0.8;
  };
  EXPECT_NEAR(earth_movers_distance(p, q, d), 0.8, 1e-9);
}

TEST(Emd, NormalizesUnnormalizedInputs) {
  Distribution p{{2.0, 2.0}};   // = {0.5, 0.5}
  Distribution q{{30.0, 10.0}}; // = {0.75, 0.25}
  const auto d = [](std::size_t i, std::size_t j) {
    return std::abs(static_cast<double>(i) - static_cast<double>(j));
  };
  // Move 0.25 mass a distance of 1.
  EXPECT_NEAR(earth_movers_distance(p, q, d), 0.25, 1e-9);
}

TEST(Emd, ThrowsOnEmptyDistribution) {
  Distribution p{{0.0}};
  Distribution q{{1.0}};
  const auto d = [](std::size_t, std::size_t) { return 1.0; };
  EXPECT_THROW(earth_movers_distance(p, q, d), std::invalid_argument);
}

TEST(Emd, MatchesClosedForm1D) {
  util::Rng rng{123};
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(6);
    std::vector<double> p(n);
    std::vector<double> q(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.uniform(0.01, 1.0);
      q[i] = rng.uniform(0.01, 1.0);
    }
    Distribution dp{p};
    Distribution dq{q};
    const auto ground = [](std::size_t i, std::size_t j) {
      return std::abs(static_cast<double>(i) - static_cast<double>(j));
    };
    EXPECT_NEAR(earth_movers_distance(dp, dq, ground), emd_1d(p, q), 1e-6);
  }
}

TEST(Emd, SymmetricWithMetricGround) {
  util::Rng rng{321};
  for (int trial = 0; trial < 20; ++trial) {
    Distribution p{{rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0),
                    rng.uniform(0.1, 1.0)}};
    Distribution q{{rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0),
                    rng.uniform(0.1, 1.0)}};
    const auto ground = [](std::size_t i, std::size_t j) {
      return i == j ? 0.0 : 0.5 + 0.1 * static_cast<double>(i + j);
    };
    const auto ground_t = [&](std::size_t i, std::size_t j) {
      return ground(j, i);
    };
    EXPECT_NEAR(earth_movers_distance(p, q, ground),
                earth_movers_distance(q, p, ground_t), 1e-7);
  }
}

TEST(Emd, BoundedByGroundDiameter) {
  util::Rng rng{55};
  for (int trial = 0; trial < 20; ++trial) {
    Distribution p{{rng.uniform(), rng.uniform(), rng.uniform(), 0.01}};
    Distribution q{{0.01, rng.uniform(), rng.uniform(), rng.uniform()}};
    const auto ground = [](std::size_t i, std::size_t j) {
      return i == j ? 0.0 : 1.0;
    };
    const double d = earth_movers_distance(p, q, ground);
    EXPECT_GE(d, -1e-9);
    EXPECT_LE(d, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace capman::math
