#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "math/indexed_heap.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace capman::math {
namespace {

TEST(Matrix, IdentityDiagonal) {
  const Matrix m = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, LinfDistance) {
  Matrix a(2, 2, 0.0);
  Matrix b(2, 2, 0.0);
  b(1, 0) = 0.7;
  b(0, 1) = -0.2;
  EXPECT_DOUBLE_EQ(a.linf_distance(b), 0.7);
  EXPECT_DOUBLE_EQ(b.linf_distance(a), 0.7);
}

TEST(Matrix, AllIn) {
  Matrix m(3, 3, 0.5);
  EXPECT_TRUE(m.all_in(0.0, 1.0));
  m(2, 2) = 1.5;
  EXPECT_FALSE(m.all_in(0.0, 1.0));
}

TEST(Matrix, FillOverwrites) {
  Matrix m = Matrix::identity(3);
  m.fill(0.25);
  EXPECT_TRUE(m.all_in(0.25, 0.25));
}

TEST(IndexedHeap, PopsInOrder) {
  IndexedMinHeap h(10);
  h.push_or_decrease(3, 5.0);
  h.push_or_decrease(1, 2.0);
  h.push_or_decrease(7, 9.0);
  h.push_or_decrease(0, 4.0);
  EXPECT_EQ(h.pop_min().first, 1u);
  EXPECT_EQ(h.pop_min().first, 0u);
  EXPECT_EQ(h.pop_min().first, 3u);
  EXPECT_EQ(h.pop_min().first, 7u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, DecreaseKeyReorders) {
  IndexedMinHeap h(5);
  h.push_or_decrease(0, 10.0);
  h.push_or_decrease(1, 20.0);
  h.push_or_decrease(1, 1.0);  // decrease
  EXPECT_EQ(h.pop_min().first, 1u);
}

TEST(IndexedHeap, IncreaseIsIgnored) {
  IndexedMinHeap h(5);
  h.push_or_decrease(0, 1.0);
  h.push_or_decrease(0, 100.0);  // no-op
  const auto [key, prio] = h.pop_min();
  EXPECT_EQ(key, 0u);
  EXPECT_DOUBLE_EQ(prio, 1.0);
}

TEST(IndexedHeap, ContainsTracksMembership) {
  IndexedMinHeap h(4);
  EXPECT_FALSE(h.contains(2));
  h.push_or_decrease(2, 1.0);
  EXPECT_TRUE(h.contains(2));
  h.pop_min();
  EXPECT_FALSE(h.contains(2));
}

TEST(IndexedHeap, ClearEmptiesAndAllowsReuse) {
  IndexedMinHeap h(4);
  h.push_or_decrease(1, 1.0);
  h.push_or_decrease(2, 2.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(1));
  h.push_or_decrease(1, 5.0);
  EXPECT_EQ(h.pop_min().first, 1u);
}

TEST(IndexedHeap, RandomizedAgainstSort) {
  util::Rng rng{99};
  IndexedMinHeap h(1000);
  std::vector<double> priorities(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    priorities[i] = rng.uniform();
    h.push_or_decrease(i, priorities[i]);
  }
  std::vector<double> sorted = priorities;
  std::sort(sorted.begin(), sorted.end());
  for (double expected : sorted) {
    EXPECT_DOUBLE_EQ(h.pop_min().second, expected);
  }
}

}  // namespace
}  // namespace capman::math
