// Span profiler: ambient install/uninstall, no-op behavior without a
// profiler, event recording across threads, and Chrome trace-event
// structure (metadata, pids, sim tracks).
#include "obs/spans.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace capman::obs {
namespace {

TEST(SpanProfilerTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(SpanProfiler::current(), nullptr);
  {
    SpanProfiler outer;
    SpanProfiler::Scope outer_scope{outer};
    EXPECT_EQ(SpanProfiler::current(), &outer);
    {
      SpanProfiler inner;
      SpanProfiler::Scope inner_scope{inner};
      EXPECT_EQ(SpanProfiler::current(), &inner);
    }
    EXPECT_EQ(SpanProfiler::current(), &outer);
  }
  EXPECT_EQ(SpanProfiler::current(), nullptr);
}

TEST(SpanProfilerTest, ScopedSpanWithoutProfilerIsNoop) {
  ASSERT_EQ(SpanProfiler::current(), nullptr);
  {
    ScopedSpan span{"orphan", "test"};
  }  // must not crash or record anywhere
}

TEST(SpanProfilerTest, ScopedSpanRecordsCompleteEvent) {
  SpanProfiler profiler;
  {
    SpanProfiler::Scope scope{profiler};
    ScopedSpan span{"work", "test"};
  }
  EXPECT_EQ(profiler.event_count(), 1u);

  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(SpanProfilerTest, ThreadsGetTheirOwnTracks) {
  SpanProfiler profiler;
  {
    SpanProfiler::Scope scope{profiler};
    set_current_thread_label("main-track");
    profiler.complete("on-main", "test", 0.0, 1.0);
    std::thread worker([&profiler] {
      set_current_thread_label("worker-track");
      profiler.complete("on-worker", "test", 0.0, 1.0);
    });
    worker.join();
  }
  set_current_thread_label("");  // don't leak the label into other tests

  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"args\":{\"name\":\"main-track\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"worker-track\"}"),
            std::string::npos);
  // Distinct tids on pid 1: the two events must not share a track.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(SpanProfilerTest, SimEventsLandOnPid2Tracks) {
  SpanProfiler profiler;
  profiler.sim_complete("switch->big", "actuator",
                        SpanProfiler::kActuatorTrack, 10.0, 0.5);
  profiler.sim_instant("decision", "decision", SpanProfiler::kDecisionTrack,
                       11.0);
  profiler.sim_counter("soc", 12.0, 0.5);
  EXPECT_EQ(profiler.event_count(), 3u);

  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const std::string json = out.str();
  // Simulation seconds are scaled to trace microseconds.
  EXPECT_NE(json.find("\"ts\":10000000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500000.000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":0.500000}"), std::string::npos);
  // Named sim tracks are announced as thread_name metadata on pid 2.
  EXPECT_NE(json.find("\"args\":{\"name\":\"switch transients\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"decisions\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"sim counters\"}"),
            std::string::npos);
}

TEST(SpanProfilerTest, VerboseFlagIsExposed) {
  SpanProfiler quiet;
  EXPECT_FALSE(quiet.verbose());
  SpanProfiler::Options options;
  options.verbose = true;
  SpanProfiler chatty{options};
  EXPECT_TRUE(chatty.verbose());
}

TEST(SpanProfilerTest, TraceIsWellFormedJson) {
  SpanProfiler profiler;
  {
    SpanProfiler::Scope scope{profiler};
    ScopedSpan a{"a", "t"};
    ScopedSpan b{"b", "t"};
  }
  profiler.sim_instant("mark", "decision", SpanProfiler::kDecisionTrack, 1.0);

  std::ostringstream out;
  profiler.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.substr(0, 16), "{\"traceEvents\":[");
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // Balanced braces is a cheap well-formedness proxy (no raw braces occur
  // inside the names used here); full validation runs in
  // scripts/check_trace_schema.py.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && c == '{') {
      ++depth;
    } else if (!in_string && c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace capman::obs
