// HealthMonitor and FlightRecorder contracts (src/obs/health.h,
// src/obs/flight_recorder.h): rule edges, latches and serialised alert
// form; ring wrap, trigger drains and dump framing; and the end-to-end
// acceptance run — a stuck-comparator fault cycle must fire a health
// alert and land a schema-valid flight-recorder dump.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "workload/generators.h"

namespace capman::obs {
namespace {

HealthConfig enabled_config() {
  HealthConfig config;
  config.enabled = true;
  return config;
}

TEST(HealthRule, SlugsAreStable) {
  EXPECT_STREQ(to_string(HealthRule::kThermalRunaway), "thermal_runaway");
  EXPECT_STREQ(to_string(HealthRule::kBudgetStarvation), "budget_starvation");
  EXPECT_STREQ(to_string(HealthRule::kSwitchThrash), "switch_thrash");
  EXPECT_STREQ(to_string(HealthRule::kGuardEngaged), "guard_engaged");
  EXPECT_STREQ(to_string(HealthRule::kTimeToEmpty), "time_to_empty");
}

TEST(HealthConfigValidate, FieldMessagesAreLocked) {
  HealthConfig config;
  config.period_s = 0.0;
  config.thermal_slope_c_per_min = 0.0;
  config.thermal_window_s = 0.0;
  config.starvation_ratio = 1.0;
  config.starvation_windows = 0;
  config.thrash_rate_per_min = 0.0;
  config.thrash_window_s = 0.0;
  config.tte_watermark_s = 0.0;
  config.tte_window_s = 0.0;
  config.alerts_path = "alerts.jsonl";  // without enabled
  const std::vector<std::string> expected = {
      "period_s must be > 0",
      "thermal_slope_c_per_min must be > 0",
      "thermal_window_s must be > 0",
      "starvation_ratio must be in (0, 1)",
      "starvation_windows must be >= 1",
      "thrash_rate_per_min must be > 0",
      "thrash_window_s must be > 0",
      "tte_watermark_s must be > 0",
      "tte_window_s must be > 0",
      "alerts_path requires enabled to be true",
  };
  EXPECT_EQ(config.validate(), expected);
  EXPECT_THROW(HealthMonitor{config}, std::invalid_argument);
  EXPECT_TRUE(HealthConfig{}.validate().empty());
}

TEST(HealthMonitor, GuardAlertIsEdgeTriggeredAndRearms) {
  HealthMonitor monitor{enabled_config()};
  HealthMonitor::Inputs inputs;

  inputs.guard_engaged = true;
  EXPECT_EQ(monitor.evaluate(0.0, inputs).size(), 1u);
  EXPECT_EQ(monitor.evaluate(2.0, inputs).size(), 0u);  // still engaged
  inputs.guard_engaged = false;
  EXPECT_EQ(monitor.evaluate(4.0, inputs).size(), 0u);  // cleared, re-armed
  inputs.guard_engaged = true;
  EXPECT_EQ(monitor.evaluate(6.0, inputs).size(), 1u);  // second episode

  const auto& stats = monitor.stats();
  EXPECT_EQ(stats.alerts[static_cast<std::size_t>(HealthRule::kGuardEngaged)],
            2u);
  EXPECT_EQ(stats.total_alerts(), 2u);
  EXPECT_EQ(stats.evaluations, 4u);
  EXPECT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[1].seq, 1u);
}

TEST(HealthMonitor, ThermalRunawayNeedsFloorAndFullWindow) {
  HealthConfig config = enabled_config();
  config.thermal_window_s = 10.0;
  config.thermal_slope_c_per_min = 3.0;
  config.thermal_floor_c = 40.0;
  HealthMonitor monitor{config};
  HealthMonitor::Inputs inputs;

  // 1 C per 2 s = 30 C/min, far past the slope limit — but only alert
  // once the temperature clears the warm-up floor AND the window spans
  // at least half of thermal_window_s.
  std::size_t fired_at_eval = 0;
  for (int i = 0; i < 10; ++i) {
    inputs.skin_c = 30.0 + i;
    inputs.cell_c = 25.0;  // max(skin, cell) picks the skin trace
    const auto& fired = monitor.evaluate(2.0 * i, inputs);
    if (!fired.empty() && fired_at_eval == 0) {
      fired_at_eval = static_cast<std::size_t>(i);
      EXPECT_EQ(fired[0].rule, HealthRule::kThermalRunaway);
      EXPECT_NEAR(fired[0].value, 30.0, 1e-9);  // C/min
      EXPECT_DOUBLE_EQ(fired[0].threshold, 3.0);
    }
  }
  // skin_c crosses 40.0 at i == 10? No: 30 + i >= 40 at i == 10, loop
  // tops out at i == 9 (39 C) — no alert while below the floor.
  EXPECT_EQ(fired_at_eval, 0u);
  EXPECT_EQ(monitor.alerts().size(), 0u);

  inputs.skin_c = 41.0;
  const auto& fired = monitor.evaluate(20.0, inputs);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, HealthRule::kThermalRunaway);
}

TEST(HealthMonitor, BudgetStarvationNeedsConsecutiveWindows) {
  HealthConfig config = enabled_config();
  config.starvation_ratio = 0.5;
  config.starvation_windows = 3;
  HealthMonitor monitor{config};
  HealthMonitor::Inputs inputs;
  inputs.budget_active = true;
  inputs.demand_mw = 4000.0;
  inputs.granted_mw = 1000.0;  // 25% of demand: starved

  EXPECT_TRUE(monitor.evaluate(0.0, inputs).empty());
  EXPECT_TRUE(monitor.evaluate(2.0, inputs).empty());
  inputs.granted_mw = 3000.0;  // relief resets the consecutive count
  EXPECT_TRUE(monitor.evaluate(4.0, inputs).empty());
  inputs.granted_mw = 1000.0;
  EXPECT_TRUE(monitor.evaluate(6.0, inputs).empty());
  EXPECT_TRUE(monitor.evaluate(8.0, inputs).empty());
  const auto& fired = monitor.evaluate(10.0, inputs);  // third in a row
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, HealthRule::kBudgetStarvation);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.25);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 0.5);

  // Without an active arbiter the rule never counts, however low the grant.
  HealthMonitor unbudgeted{config};
  inputs.budget_active = false;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(unbudgeted.evaluate(2.0 * i, inputs).empty());
  }
}

TEST(HealthMonitor, SwitchThrashDifferencesTheCumulativeCount) {
  HealthConfig config = enabled_config();
  config.thrash_window_s = 20.0;
  config.thrash_rate_per_min = 12.0;
  HealthMonitor monitor{config};
  HealthMonitor::Inputs inputs;

  // One switch per 2 s tick = 30 switches/min once the window fills.
  std::size_t alerts = 0;
  for (int i = 0; i < 10; ++i) {
    inputs.switch_count = static_cast<std::uint64_t>(i);
    alerts += monitor.evaluate(2.0 * i, inputs).size();
  }
  EXPECT_EQ(alerts, 1u);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, HealthRule::kSwitchThrash);
  EXPECT_NEAR(monitor.alerts()[0].value, 30.0, 1e-9);
}

TEST(HealthMonitor, TimeToEmptyFirstPassageFiresOnce) {
  HealthConfig config = enabled_config();
  config.tte_window_s = 10.0;
  config.tte_watermark_s = 120.0;
  HealthMonitor monitor{config};
  HealthMonitor::Inputs inputs;

  EXPECT_TRUE(std::isinf(monitor.time_to_empty_s()));
  // SoC falls 0.01 per 2 s tick: slope 0.005/s. TTE = soc / 0.005, which
  // passes 120 s once soc < 0.6.
  std::size_t alerts = 0;
  double alert_t = -1.0;
  for (int i = 0; i < 40; ++i) {
    inputs.soc = 0.9 - 0.01 * i;
    const auto& fired = monitor.evaluate(2.0 * i, inputs);
    if (!fired.empty() && alert_t < 0.0) alert_t = fired[0].t_s;
    alerts += fired.size();
  }
  EXPECT_EQ(alerts, 1u);  // first passage only, stays latched below
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, HealthRule::kTimeToEmpty);
  EXPECT_LT(monitor.alerts()[0].value, 120.0);
  EXPECT_GT(alert_t, 0.0);
  EXPECT_LT(monitor.time_to_empty_s(), 120.0);
}

TEST(HealthStats, MergeAndRegistryRoundTrip) {
  HealthStats a;
  a.evaluations = 10;
  a.alerts[0] = 1;
  a.alerts[3] = 2;
  HealthStats b;
  b.evaluations = 5;
  b.alerts[3] = 1;
  b.alerts[4] = 4;
  a.merge(b);
  EXPECT_EQ(a.evaluations, 15u);
  EXPECT_EQ(a.total_alerts(), 8u);

  MetricsRegistry registry;
  a.publish(registry);
  const HealthStats back = HealthStats::from_snapshot(registry.snapshot());
  EXPECT_EQ(back.evaluations, a.evaluations);
  EXPECT_EQ(back.alerts, a.alerts);
  EXPECT_EQ(registry.snapshot().counter_or("health/alerts_total"), 8u);
}

TEST(HealthMonitor, AlertJsonLineIsPinned) {
  HealthAlert alert;
  alert.seq = 3;
  alert.t_s = 12.5;
  alert.rule = HealthRule::kSwitchThrash;
  alert.value = 14.5;
  alert.threshold = 12.0;
  alert.detail = "switches=4.0";
  std::ostringstream out;
  HealthMonitor::write_json_line(out, alert);
  EXPECT_EQ(out.str(),
            "{\"seq\":3,\"t_s\":12.500,\"rule\":\"switch_thrash\","
            "\"value\":14.5,\"threshold\":12,\"detail\":\"switches=4.0\"}\n");
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorderConfig recorder_config(std::size_t capacity = 4) {
  FlightRecorderConfig config;
  config.enabled = true;
  config.capacity = capacity;
  config.dump_path = "unused-stream-backed.jsonl";
  return config;
}

TEST(FlightRecorder, EnabledWithoutDumpPathIsInvalid) {
  FlightRecorderConfig config;
  config.enabled = true;
  EXPECT_FALSE(config.validate().empty());
  EXPECT_THROW(FlightRecorder{config}, std::invalid_argument);
  EXPECT_TRUE(FlightRecorderConfig{}.validate().empty());
}

TEST(FlightRecorder, TriggerOnEmptyRingWritesNothing) {
  std::ostringstream out;
  FlightRecorder recorder{recorder_config(), out};
  EXPECT_EQ(recorder.trigger(1.0, "end-of-run"), 0u);
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(recorder.dumps_written(), 0u);
}

TEST(FlightRecorder, RingKeepsTheMostRecentCapacityEvents) {
  std::ostringstream out;
  FlightRecorder recorder{recorder_config(4), out};
  for (int i = 0; i < 7; ++i) {
    recorder.record(1.0 * i, FlightEventKind::kDecision,
                    "e" + std::to_string(i));
  }
  EXPECT_EQ(recorder.buffered(), 4u);
  EXPECT_EQ(recorder.trigger(7.0, "alert:switch_thrash"), 5u);  // header + 4
  EXPECT_EQ(recorder.buffered(), 0u);  // drained

  std::istringstream in{out.str()};
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  // Header first, then the surviving events oldest-to-newest (e3..e6).
  EXPECT_NE(lines[0].find("\"kind\":\"trigger\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"what\":\"alert:switch_thrash\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"value\":4"), std::string::npos);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i) + 1].find(
                  "\"what\":\"e" + std::to_string(i + 3) + "\""),
              std::string::npos)
        << lines[static_cast<std::size_t>(i) + 1];
  }
}

TEST(FlightRecorder, BackToBackTriggersNeverReplayHistory) {
  std::ostringstream out;
  FlightRecorder recorder{recorder_config(8), out};
  recorder.record(1.0, FlightEventKind::kFault, "stuck-enter");
  EXPECT_EQ(recorder.trigger(2.0, "alert:guard_engaged"), 2u);
  recorder.record(3.0, FlightEventKind::kFault, "stuck-exit");
  EXPECT_EQ(recorder.trigger(4.0, "end-of-run"), 2u);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(recorder.records_written(), 4u);
  // The second dump contains only post-first-trigger events.
  EXPECT_EQ(out.str().find("stuck-enter"), out.str().rfind("stuck-enter"));
}

TEST(FlightRecorder, DumpLineIsPinned) {
  FlightEvent event;
  event.seq = 9;
  event.t_s = 33.25;
  event.kind = FlightEventKind::kBudget;
  event.what = "rebudget";
  event.detail = "level=1";
  event.value = 3450.0;
  std::ostringstream out;
  FlightRecorder::write_json_line(out, event, 2);
  EXPECT_EQ(out.str(),
            "{\"dump\":2,\"seq\":9,\"t_s\":33.250,\"kind\":\"budget\","
            "\"what\":\"rebudget\",\"detail\":\"level=1\","
            "\"value\":3450}\n");
}

// ---------------------------------------------------------------------------
// Acceptance: a stuck-comparator fault run fires a health alert and lands
// a flight-recorder dump whose every line matches the pinned schema
// (field names in serialisation order; scripts/check_trace_schema.py
// does the deep typed validation on the same artifacts).
// ---------------------------------------------------------------------------

void expect_schema_line(const std::string& line) {
  const char* fields[] = {"{\"dump\":", "\"seq\":",    "\"t_s\":",
                          "\"kind\":\"", "\"what\":\"", "\"detail\":\"",
                          "\"value\":"};
  std::size_t at = 0;
  for (const char* field : fields) {
    const std::size_t next = line.find(field, at);
    ASSERT_NE(next, std::string::npos) << field << " missing in: " << line;
    at = next + 1;
  }
  EXPECT_EQ(line.back(), '}') << line;
}

TEST(HealthAcceptance, StuckComparatorRunFiresAlertAndDumpsFlightRing) {
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, 42);

  sim::RunnerOptions options;
  options.seed = 42;
  options.config.max_duration = util::Seconds{1800.0};
  sim::FaultPlanConfig plan;
  plan.seed = 42;
  plan.stuck_rate_per_min = 2.0;
  plan.stuck_min_duration = util::Seconds{20.0};
  plan.stuck_max_duration = util::Seconds{60.0};
  options.faults = plan;
  options.config.telemetry.health.enabled = true;
  options.config.telemetry.recorder.enabled = true;
  const std::string dump_path = "health_acceptance_flight.jsonl";
  options.config.telemetry.recorder.dump_path = dump_path;

  const sim::ExperimentRunner runner{phone, options};
  const auto result = runner.run(trace, sim::PolicyKind::kCapman);

  // The watchdogs saw the fault: at least one alert fired and was
  // surfaced on the SimResult, mirrored by the health/* counters.
  ASSERT_FALSE(result.health_alerts.empty());
  EXPECT_GT(result.health.evaluations, 0u);
  EXPECT_EQ(result.health.total_alerts(), result.health_alerts.size());
  EXPECT_EQ(result.health.total_alerts(),
            result.metrics.counter_or("health/alerts_total"));

  // dump_on_alert (the default) landed at least one dump, headed by a
  // trigger record naming the alert, every line schema-shaped.
  std::ifstream in{dump_path};
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::size_t triggers = 0;
  for (std::string line; std::getline(in, line);) {
    expect_schema_line(line);
    if (line.find("\"kind\":\"trigger\"") != std::string::npos) {
      ++triggers;
      EXPECT_NE(line.find("\"what\":\"alert:"), std::string::npos) << line;
    }
    ++lines;
  }
  in.close();
  std::remove(dump_path.c_str());
  EXPECT_GT(triggers, 0u);
  EXPECT_GT(lines, triggers);
}

}  // namespace
}  // namespace capman::obs
