// MetricsRegistry: exactness under concurrent writers, histogram bucket
// edge semantics, and deterministic snapshot ordering — the properties the
// stats-struct views (DecisionStats, FaultStats, ...) and the JSON
// exporter depend on.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

namespace capman::obs {
namespace {

TEST(MetricsRegistryTest, ConcurrentCounterIncrementsSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&registry] {
      // Resolve the handle through the registry every time on purpose:
      // registration is the only locked path and must stay correct under
      // contention too.
      Counter& c = registry.counter("test/increments");
      for (std::uint64_t n = 0; n < kPerThread; ++n) c.add();
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(registry.counter("test/increments").value(),
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentGaugeAddIsLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;

  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&registry] {
      Gauge& g = registry.gauge("test/accumulated");
      for (int n = 0; n < kPerThread; ++n) g.add(0.5);
    });
  }
  for (auto& w : workers) w.join();

  // 0.5 is exactly representable, so the CAS loop must not lose a single
  // contribution.
  EXPECT_DOUBLE_EQ(registry.gauge("test/accumulated").value(),
                   0.5 * kThreads * kPerThread);
}

TEST(MetricsRegistryTest, HistogramBucketEdges) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test/latency", {1.0, 10.0, 100.0});

  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == bound   -> bucket 0 (bounds are inclusive)
  h.observe(1.0001); //            -> bucket 1
  h.observe(10.0);   //            -> bucket 1
  h.observe(100.0);  //            -> bucket 2
  h.observe(1e6);    // > last     -> overflow bucket 3

  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6);
}

TEST(MetricsRegistryTest, HistogramEveryBoundIsInclusiveUpperEdge) {
  // Samples landing *exactly* on a bucket bound go to that bucket, for
  // every bound — including 0 and negative edges (an "le"-style
  // cumulative exposition depends on this being consistent).
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test/edges", {-1.0, 0.0, 1.0, 2.0});
  for (const double bound : {-1.0, 0.0, 1.0, 2.0}) {
    h.observe(bound);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.bucket_count(i), 1u) << "bound bucket " << i;
  }
  EXPECT_EQ(h.bucket_count(4), 0u);  // nothing overflowed
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);

  // The next representable value above a bound spills into the next
  // bucket — the edge really is the edge.
  h.observe(std::nextafter(1.0, 2.0));
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
}

TEST(MetricsRegistryTest, HistogramReregistrationKeepsOriginalBounds) {
  MetricsRegistry registry;
  Histogram& first = registry.histogram("test/h", {1.0, 2.0});
  Histogram& again = registry.histogram("test/h", {99.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndOrderIndependent) {
  // Feed two registries the same values in different registration orders;
  // snapshots (and their JSON) must be identical.
  MetricsRegistry a;
  a.counter("z/last").add(3);
  a.counter("a/first").add(1);
  a.gauge("m/mid").set(2.5);
  a.histogram("h/one", {1.0}).observe(0.5);

  MetricsRegistry b;
  b.histogram("h/one", {1.0}).observe(0.5);
  b.gauge("m/mid").set(2.5);
  b.counter("a/first").add(1);
  b.counter("z/last").add(3);

  const MetricsSnapshot sa = a.snapshot();
  const MetricsSnapshot sb = b.snapshot();

  ASSERT_EQ(sa.counters.size(), 2u);
  EXPECT_EQ(sa.counters[0].name, "a/first");
  EXPECT_EQ(sa.counters[1].name, "z/last");

  std::ostringstream ja;
  std::ostringstream jb;
  sa.write_json(ja);
  sb.write_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(MetricsSnapshotTest, LookupHelpers) {
  MetricsRegistry registry;
  registry.counter("engine/steps").add(42);
  registry.gauge("switch/big_active_s").set(12.5);
  registry.histogram("similarity/sweep_ms", {1.0, 10.0}).observe(3.0);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("engine/steps"), 42u);
  EXPECT_EQ(snap.counter_or("engine/absent", 7), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("switch/big_active_s"), 12.5);
  EXPECT_DOUBLE_EQ(snap.gauge_or("absent", -1.0), -1.0);

  const auto* h = snap.find_histogram("similarity/sweep_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->buckets.size(), h->bounds.size() + 1);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(snap.find_histogram("absent"), nullptr);
}

}  // namespace
}  // namespace capman::obs
