// Decision-trace recorder: JSONL schema stability (field-for-field), NaN
// and missing-detail handling, string escaping, and the null-object /
// buffered-sink contracts the engine relies on.
#include "obs/decision_trace.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace capman::obs {
namespace {

DecisionRecord sample_record() {
  DecisionRecord rec;
  rec.seq = 7;
  rec.t_s = 12.25;
  rec.policy = "CAPMAN";
  rec.event = "video_frame";
  rec.param = 3;
  rec.emergency = false;
  rec.cpu = "C2";
  rec.screen = "ON";
  rec.wifi = "IDLE";
  rec.active = "big";
  rec.chosen = "LITTLE";
  DecisionDetail detail;
  detail.source = DecisionDetail::Source::kTransferred;
  detail.matched_state = 42;
  detail.q_big = 1.5;
  detail.q_little = 2.25;
  rec.detail = detail;
  rec.switch_requested = true;
  rec.switch_accepted = true;
  rec.switch_pending = false;
  rec.guard_fallback = false;
  rec.fault_stuck = true;
  rec.big_soc = 0.75;
  rec.little_soc = 0.5;
  rec.hotspot_c = 41.125;
  rec.demand_w = 2.5;
  rec.budget_level = 1;
  rec.granted_mw = 3450.5;
  return rec;
}

TEST(DecisionTraceTest, FullRecordSerialisesEveryField) {
  std::ostringstream out;
  JsonlDecisionSink::write_json_line(out, sample_record());
  // The schema is append-only and scripts/check_trace_schema.py validates
  // it from the outside; here we pin the exact line so accidental field
  // renames/reorderings fail loudly. All doubles in the sample are exactly
  // representable, so fixed-point formatting is deterministic.
  EXPECT_EQ(out.str(),
            "{\"seq\":7,\"t_s\":12.250,\"policy\":\"CAPMAN\","
            "\"event\":\"video_frame\",\"param\":3,\"emergency\":false,"
            "\"cpu\":\"C2\",\"screen\":\"ON\",\"wifi\":\"IDLE\","
            "\"active\":\"big\",\"chosen\":\"LITTLE\","
            "\"source\":\"transferred\",\"matched_state\":42,"
            "\"q_big\":1.5000,\"q_little\":2.2500,"
            "\"switch_requested\":true,\"switch_accepted\":true,"
            "\"switch_pending\":false,\"guard_fallback\":false,"
            "\"fault_stuck\":true,\"big_soc\":0.750000,"
            "\"little_soc\":0.500000,\"hotspot_c\":41.125,"
            "\"demand_w\":2.5000,\"budget_level\":1,"
            "\"granted_mw\":3450.5}\n");
}

TEST(DecisionTraceTest, MissingDetailAndNaNBecomeNull) {
  DecisionRecord rec = sample_record();
  rec.detail.reset();
  std::ostringstream out;
  JsonlDecisionSink::write_json_line(out, rec);
  EXPECT_NE(out.str().find("\"source\":null,\"matched_state\":null,"
                           "\"q_big\":null,\"q_little\":null"),
            std::string::npos);

  DecisionDetail detail;  // q's default to NaN, matched_state to -1
  detail.source = DecisionDetail::Source::kFallback;
  rec.detail = detail;
  std::ostringstream out2;
  JsonlDecisionSink::write_json_line(out2, rec);
  EXPECT_NE(out2.str().find("\"source\":\"fallback\",\"matched_state\":null,"
                            "\"q_big\":null,\"q_little\":null"),
            std::string::npos);
}

TEST(DecisionTraceTest, StringsAreEscaped) {
  DecisionRecord rec = sample_record();
  rec.event = "weird\"name\\with\nnewline";
  std::ostringstream out;
  JsonlDecisionSink::write_json_line(out, rec);
  EXPECT_NE(out.str().find("\"event\":\"weird\\\"name\\\\with\\nnewline\""),
            std::string::npos);
}

TEST(DecisionTraceTest, NullSinkDropsEverything) {
  DecisionSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.record(sample_record());
  sink.flush();
  EXPECT_EQ(sink.records_written(), 0u);
}

TEST(DecisionTraceTest, BufferedSinkDrainsOnFlush) {
  std::ostringstream out;
  JsonlDecisionSink sink{out};
  ASSERT_TRUE(sink.enabled());
  for (int i = 0; i < 10; ++i) {
    DecisionRecord rec = sample_record();
    rec.seq = static_cast<std::uint64_t>(i);
    sink.record(rec);
  }
  EXPECT_EQ(sink.records_written(), 10u);
  sink.flush();

  // One line per record, each a '{...}' object carrying its own seq.
  std::istringstream lines{out.str()};
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"seq\":" + std::to_string(n) + ","),
              std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 10);
}

TEST(DecisionTraceTest, SourceNames) {
  EXPECT_STREQ(to_string(DecisionDetail::Source::kExact), "exact");
  EXPECT_STREQ(to_string(DecisionDetail::Source::kTransferred), "transferred");
  EXPECT_STREQ(to_string(DecisionDetail::Source::kFallback), "fallback");
  EXPECT_STREQ(to_string(DecisionDetail::Source::kExplored), "explored");
}

}  // namespace
}  // namespace capman::obs
