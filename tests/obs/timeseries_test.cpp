// TimeSeries / MetricsSampler contracts (src/obs/timeseries.h): the
// stride-downsampling ring keeps bounded memory with a retained set that
// is a pure function of the add() sequence, and the sampler keeps every
// channel on one shared cadence so exported CSV rows align by column.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace capman::obs {
namespace {

TEST(TimeSeries, CapacityBelowTwoThrows) {
  EXPECT_THROW(TimeSeries{0}, std::invalid_argument);
  EXPECT_THROW(TimeSeries{1}, std::invalid_argument);
  EXPECT_NO_THROW(TimeSeries{2});
}

TEST(TimeSeries, KeepsEverySampleUntilFull) {
  TimeSeries series{4};
  for (int i = 0; i < 4; ++i) {
    series.add(util::Seconds{static_cast<double>(i)}, 10.0 * i);
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.stride(), 1u);
  EXPECT_EQ(series.total_offered(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(series.time_at(i), static_cast<double>(i));
    EXPECT_DOUBLE_EQ(series.value_at(i), 10.0 * static_cast<double>(i));
  }
}

TEST(TimeSeries, OverflowCompactsAndDoublesStride) {
  // Capacity 4, offer indices 0..6 with t = index: the 5th offer (index
  // 4) finds the ring full, keeps every other retained sample ([0, 2]),
  // doubles the stride to 2, and appends index 4 (4 % 2 == 0).
  TimeSeries series{4};
  for (int i = 0; i <= 6; ++i) {
    series.add(util::Seconds{static_cast<double>(i)}, static_cast<double>(i));
  }
  EXPECT_EQ(series.stride(), 2u);
  EXPECT_EQ(series.times(), (std::vector<double>{0.0, 2.0, 4.0, 6.0}));
}

TEST(TimeSeries, RepeatedOverflowKeepsStrideMultiples) {
  // Continue through two more compactions: retained offer indices are
  // always multiples of the current stride, oldest sample is index 0.
  TimeSeries series{4};
  for (int i = 0; i <= 16; ++i) {
    series.add(util::Seconds{static_cast<double>(i)}, static_cast<double>(i));
  }
  EXPECT_EQ(series.stride(), 8u);
  EXPECT_EQ(series.times(), (std::vector<double>{0.0, 8.0, 16.0}));
  EXPECT_EQ(series.total_offered(), 17u);
  // Never exceeded capacity along the way.
  EXPECT_LE(series.size(), series.capacity());
}

TEST(TimeSeries, RetainedSetIsAPureFunctionOfTheAddSequence) {
  // Two rings fed the identical sequence hold bit-identical state — the
  // determinism clause fleet/telemetry bit-identity tests lean on.
  TimeSeries a{8};
  TimeSeries b{8};
  for (int i = 0; i < 1000; ++i) {
    const double t = 0.25 * i;
    const double v = (i * 7919) % 104729;  // deterministic, non-monotonic
    a.add(util::Seconds{t}, v);
    b.add(util::Seconds{t}, v);
  }
  EXPECT_EQ(a.stride(), b.stride());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.time_at(i), b.time_at(i));
    EXPECT_EQ(a.value_at(i), b.value_at(i));
  }
}

TEST(TimeSeries, SummaryHelpersTrackRetainedSamples) {
  TimeSeries series{8};
  EXPECT_DOUBLE_EQ(series.last_time(), 0.0);
  EXPECT_DOUBLE_EQ(series.min_value(), 0.0);
  series.add(util::Seconds{1.0}, 5.0);
  series.add(util::Seconds{2.0}, -3.0);
  series.add(util::Seconds{3.0}, 9.0);
  EXPECT_DOUBLE_EQ(series.last_time(), 3.0);
  EXPECT_DOUBLE_EQ(series.last_value(), 9.0);
  EXPECT_DOUBLE_EQ(series.min_value(), -3.0);
  EXPECT_DOUBLE_EQ(series.max_value(), 9.0);
}

SamplerConfig enabled_config() {
  SamplerConfig config;
  config.enabled = true;
  return config;
}

TEST(SamplerConfigValidate, FieldMessagesAreLocked) {
  SamplerConfig config;
  config.period_s = 0.0;
  config.capacity = 1;
  config.csv_path = "x.csv";  // without enabled
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0], "period_s must be > 0");
  EXPECT_EQ(errors[1], "capacity must be >= 2");
  EXPECT_EQ(errors[2], "csv_path requires enabled to be true");
}

TEST(MetricsSampler, CtorRejectsInvalidConfig) {
  SamplerConfig config = enabled_config();
  config.period_s = -1.0;
  EXPECT_THROW(MetricsSampler{config}, std::invalid_argument);
}

TEST(MetricsSampler, DuplicateChannelNamesThrow) {
  MetricsSampler sampler{enabled_config()};
  sampler.channel("soc");
  EXPECT_THROW(sampler.channel("soc"), std::invalid_argument);
}

TEST(MetricsSampler, ChannelsShareOneCadence) {
  SamplerConfig config = enabled_config();
  config.period_s = 2.0;
  MetricsSampler sampler{config};
  const std::size_t soc = sampler.channel("soc");
  const std::size_t power = sampler.channel("power_w");

  EXPECT_TRUE(sampler.due(util::Seconds{0.0}));  // first tick fires immediately
  double t = 0.0;
  for (int step = 0; step < 100; ++step) {
    t = 0.1 * step;
    sampler.set(soc, 1.0 - 0.001 * step);
    sampler.set(power, 2.0);
    if (sampler.due(util::Seconds{t})) sampler.sample(util::Seconds{t});
  }
  EXPECT_FALSE(sampler.due(util::Seconds{t}));
  EXPECT_EQ(sampler.samples_taken(), 5u);  // t = 0, 2, 4, 6, 8
  EXPECT_EQ(sampler.series(soc).size(), sampler.series(power).size());
  EXPECT_EQ(sampler.series(soc).times(), sampler.series(power).times());
}

TEST(MetricsSampler, BoundInstrumentsAreReadAtTheTick) {
  MetricsRegistry registry;
  Counter& steps = registry.counter("engine/steps");
  Gauge& temp = registry.gauge("thermal/hotspot_c");

  MetricsSampler sampler{enabled_config()};
  const std::size_t c = sampler.bind_counter("steps", steps);
  const std::size_t g = sampler.bind_gauge("hotspot", temp);

  steps.add(3);
  temp.set(41.5);
  sampler.sample(util::Seconds{0.0});
  steps.add(4);
  temp.set(44.0);
  sampler.sample(util::Seconds{2.0});

  EXPECT_DOUBLE_EQ(sampler.series(c).value_at(0), 3.0);
  EXPECT_DOUBLE_EQ(sampler.series(c).value_at(1), 7.0);
  EXPECT_DOUBLE_EQ(sampler.series(g).value_at(0), 41.5);
  EXPECT_DOUBLE_EQ(sampler.series(g).value_at(1), 44.0);
}

TEST(MetricsSampler, FindLocatesChannelsByName) {
  MetricsSampler sampler{enabled_config()};
  sampler.channel("soc");
  EXPECT_NE(sampler.find("soc"), nullptr);
  EXPECT_EQ(sampler.find("nope"), nullptr);
}

TEST(MetricsSampler, CsvRowsAlignAcrossDownsampledChannels) {
  SamplerConfig config = enabled_config();
  config.capacity = 4;  // force downsampling
  MetricsSampler sampler{config};
  const std::size_t a = sampler.channel("a");
  const std::size_t b = sampler.channel("b");
  for (int i = 0; i <= 6; ++i) {
    sampler.set(a, 1.0 * i);
    sampler.set(b, -1.0 * i);
    sampler.sample(util::Seconds{static_cast<double>(i)});
  }

  std::ostringstream out;
  sampler.write_csv(out);
  std::istringstream in{out.str()};
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  ASSERT_EQ(lines.size(), 1u + sampler.series(a).size());
  EXPECT_EQ(lines[0], "t_s,a,b");
  // Post-overflow retained ticks (see OverflowCompactsAndDoublesStride).
  EXPECT_EQ(lines[1], "0.000,0,-0");
  EXPECT_EQ(lines[2], "2.000,2,-2");
  EXPECT_EQ(lines[3], "4.000,4,-4");
  EXPECT_EQ(lines[4], "6.000,6,-6");
}

}  // namespace
}  // namespace capman::obs
