#include "obs/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace capman::obs {
namespace {

TEST(QuantileSketch, EmptySketchReturnsZeros) {
  const QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketch, RejectsBadRelativeError) {
  EXPECT_THROW(QuantileSketch{0.0}, std::invalid_argument);
  EXPECT_THROW(QuantileSketch{1.0}, std::invalid_argument);
  EXPECT_THROW(QuantileSketch{-0.1}, std::invalid_argument);
}

TEST(QuantileSketch, RejectsNegativeAndNaN) {
  QuantileSketch sketch;
  EXPECT_THROW(sketch.observe(-1.0), std::invalid_argument);
  EXPECT_THROW(sketch.observe(std::nan("")), std::invalid_argument);
}

TEST(QuantileSketch, ExactMinMaxAndCount) {
  QuantileSketch sketch;
  for (double v : {5.0, 1.0, 9.5, 3.25, 0.0}) sketch.observe(v);
  EXPECT_EQ(sketch.count(), 5u);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 9.5);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 9.5);
}

TEST(QuantileSketch, RelativeErrorBoundHolds) {
  // 10k values spanning four decades; every quantile estimate must land
  // within alpha (relative) of the true nearest-rank sample.
  const double alpha = 0.02;
  QuantileSketch sketch{alpha};
  std::vector<double> values;
  double v = 0.01;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(v);
    sketch.observe(v);
    v *= 1.001;  // geometric ramp: 0.01 .. ~0.01 * e^10
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    const double truth = values[rank];
    const double estimate = sketch.quantile(q);
    EXPECT_NEAR(estimate, truth, alpha * truth * 1.5) << "q=" << q;
  }
}

TEST(QuantileSketch, ZerosAreCountedExactly) {
  QuantileSketch sketch;
  for (int i = 0; i < 10; ++i) sketch.observe(0.0);
  sketch.observe(100.0);
  EXPECT_EQ(sketch.count(), 11u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 100.0);
}

TEST(QuantileSketch, ObservationOrderDoesNotMatter) {
  std::vector<double> values;
  for (int i = 1; i <= 500; ++i) values.push_back(0.1 * i);
  QuantileSketch forward, backward;
  for (double x : values) forward.observe(x);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.observe(*it);
  }
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(forward.quantile(q), backward.quantile(q)) << q;
  }
  EXPECT_EQ(forward.bucket_count(), backward.bucket_count());
}

// The fleet contract: merging per-shard sketches in any grouping is
// bit-identical to one sketch observing every value.
TEST(QuantileSketch, MergeEqualsSingleSketchForAnyPartition) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(0.5 + 0.037 * i + (i % 7 == 0 ? 0.0 : 3.1));
  }
  QuantileSketch whole;
  for (double x : values) whole.observe(x);

  for (std::size_t parts : {2u, 3u, 8u}) {
    std::vector<QuantileSketch> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[i % parts].observe(values[i]);
    }
    QuantileSketch merged;
    for (const auto& shard : shards) merged.merge(shard);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_EQ(merged.bucket_count(), whole.bucket_count());
    for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
      EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q))
          << parts << " parts, q=" << q;
    }
  }
}

TEST(QuantileSketch, MergeRequiresIdenticalRelativeError) {
  QuantileSketch a{0.01};
  const QuantileSketch b{0.02};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, MergeIntoEmptyAdoptsExtremes) {
  QuantileSketch a, b;
  b.observe(2.0);
  b.observe(8.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(QuantileSketch, MemoryStaysLogarithmic) {
  // A million observations over six decades: bucket count stays bounded
  // by O(log(max/min)/alpha), nowhere near the observation count.
  QuantileSketch sketch{0.01};
  double v = 1e-3;
  for (int i = 0; i < 100000; ++i) {
    sketch.observe(v);
    v = v * 1.0002;
  }
  EXPECT_EQ(sketch.count(), 100000u);
  EXPECT_LT(sketch.bucket_count(), 2000u);
}

TEST(QuantileSketch, QuantileIsClampedToObservedRange) {
  QuantileSketch sketch{0.05};
  sketch.observe(10.0);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.quantile(q), 10.0) << q;
  }
}

TEST(QuantileSketch, MergingAnEmptySketchIsANoOp) {
  QuantileSketch populated;
  populated.observe(3.0);
  populated.observe(5.0);
  const QuantileSketch empty;
  populated.merge(empty);
  EXPECT_EQ(populated.count(), 2u);
  EXPECT_DOUBLE_EQ(populated.min(), 3.0);
  EXPECT_DOUBLE_EQ(populated.max(), 5.0);

  // And both ways: empty.merge(empty) stays empty.
  QuantileSketch a;
  a.merge(QuantileSketch{});
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
}

TEST(QuantileSketch, MergeOfSingleSampleSketchesMatchesDirectObservation) {
  // Fleet shards often hold one device each; folding N one-sample
  // sketches must be bit-identical to one sketch observing all N values,
  // regardless of merge grouping.
  const double values[] = {0.0, 0.5, 2.0, 8.0, 512.0};
  QuantileSketch direct;
  QuantileSketch left_fold;
  QuantileSketch pairwise;
  std::vector<QuantileSketch> singles;
  for (const double v : values) {
    direct.observe(v);
    QuantileSketch one;
    one.observe(v);
    singles.push_back(one);
    left_fold.merge(one);
  }
  pairwise.merge(singles[0]);
  QuantileSketch right;
  right.merge(singles[3]);
  right.merge(singles[4]);
  pairwise.merge(singles[1]);
  pairwise.merge(singles[2]);
  pairwise.merge(right);

  EXPECT_EQ(left_fold.count(), direct.count());
  EXPECT_EQ(pairwise.count(), direct.count());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(left_fold.quantile(q), direct.quantile(q)) << q;
    EXPECT_EQ(pairwise.quantile(q), direct.quantile(q)) << q;
  }
  EXPECT_EQ(direct.min(), 0.0);
  EXPECT_EQ(direct.max(), 512.0);
}

TEST(QuantileSketch, SelfMergeDoublesEveryCount) {
  // A shard folded into itself (the degenerate resume case where the
  // same checkpointed state is merged twice) must double counts without
  // disturbing extremes or bucket structure.
  QuantileSketch sketch;
  for (double v : {0.0, 1.5, 1.5, 40.0}) sketch.observe(v);
  const std::size_t buckets_before = sketch.bucket_count();
  sketch.merge(sketch);
  EXPECT_EQ(sketch.count(), 8u);
  EXPECT_EQ(sketch.bucket_count(), buckets_before);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 40.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), sketch.quantile(0.5));
}

TEST(QuantileSketch, StateRoundTripIsBitIdentical) {
  QuantileSketch sketch{0.02};
  for (int i = 0; i < 300; ++i) sketch.observe(0.25 * (i % 37) + 0.01);
  sketch.observe(0.0);
  const QuantileSketchState state = sketch.state();
  EXPECT_DOUBLE_EQ(state.relative_error, 0.02);
  const QuantileSketch restored = QuantileSketch::from_state(state);
  EXPECT_EQ(restored.count(), sketch.count());
  EXPECT_EQ(restored.bucket_count(), sketch.bucket_count());
  EXPECT_DOUBLE_EQ(restored.min(), sketch.min());
  EXPECT_DOUBLE_EQ(restored.max(), sketch.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(restored.quantile(q), sketch.quantile(q)) << q;
  }
}

TEST(QuantileSketch, EmptyStateRoundTripStaysEmpty) {
  const QuantileSketch restored =
      QuantileSketch::from_state(QuantileSketch{0.05}.state());
  EXPECT_TRUE(restored.empty());
  EXPECT_DOUBLE_EQ(restored.relative_error(), 0.05);
  EXPECT_DOUBLE_EQ(restored.quantile(0.5), 0.0);
}

TEST(QuantileSketch, FromStateRejectsBadRelativeError) {
  QuantileSketchState state;
  state.relative_error = 0.0;
  EXPECT_THROW(QuantileSketch::from_state(state), std::invalid_argument);
  state.relative_error = 1.5;
  EXPECT_THROW(QuantileSketch::from_state(state), std::invalid_argument);
}

TEST(QuantileSketch, MergeAfterRoundTripMatchesDirectMerge) {
  // The resume path: shard sketches written to a checkpoint, read back,
  // then folded — the fold must be bit-identical to merging the
  // originals (the fleet --json byte-identity contract depends on it).
  std::vector<QuantileSketch> shards(3);
  for (int i = 0; i < 600; ++i) {
    shards[static_cast<std::size_t>(i) % 3].observe(0.3 + 0.011 * i);
  }
  QuantileSketch direct;
  QuantileSketch via_state;
  for (const auto& shard : shards) {
    direct.merge(shard);
    via_state.merge(QuantileSketch::from_state(shard.state()));
  }
  EXPECT_EQ(via_state.count(), direct.count());
  EXPECT_EQ(via_state.bucket_count(), direct.bucket_count());
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(via_state.quantile(q), direct.quantile(q)) << q;
  }
}

}  // namespace
}  // namespace capman::obs
