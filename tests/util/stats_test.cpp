#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace capman::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(TimeSeries, IntegrateTrapezoid) {
  TimeSeries ts;
  ts.add(0.0, 0.0);
  ts.add(1.0, 2.0);
  ts.add(3.0, 2.0);
  // 0..1: area 1; 1..3: area 4.
  EXPECT_DOUBLE_EQ(ts.integrate(), 5.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(2.0, 1.0);
  ts.add(4.0, 3.0);
  // integral = 2 + 4 = 6 over span 4.
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 1.5);
}

TEST(TimeSeries, MinMax) {
  TimeSeries ts;
  ts.add(0.0, 2.0);
  ts.add(1.0, -1.0);
  ts.add(2.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 5.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), -1.0);
}

TEST(TimeSeries, EmptyBehaviour) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.integrate(), 0.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 0.0);
}

TEST(TimeSeries, DecimateKeepsEndpoints) {
  TimeSeries ts;
  for (int i = 0; i <= 100; ++i) ts.add(i, 2.0 * i);
  const TimeSeries d = ts.decimate(11);
  ASSERT_EQ(d.size(), 11u);
  EXPECT_DOUBLE_EQ(d.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(d.time_at(10), 100.0);
  EXPECT_DOUBLE_EQ(d.value_at(10), 200.0);
}

TEST(TimeSeries, DecimateNoOpWhenSmall) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 2.0);
  EXPECT_EQ(ts.decimate(10).size(), 2u);
}

TEST(TimeSeries, FractionAbove) {
  TimeSeries ts;
  ts.add(0.0, 1.0);  // holds during [0,1): below
  ts.add(1.0, 5.0);  // holds during [1,3): above
  ts.add(3.0, 1.0);
  EXPECT_NEAR(ts.fraction_above(3.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ts.fraction_above(10.0), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, Quantile) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, BinLow) {
  Histogram h{10.0, 20.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 18.0);
}

}  // namespace
}  // namespace capman::util
