// Compile-time lock on the copy/move contracts of the classes that own
// threads, atomics or aliased instrument storage. A regression here is a
// silent use-after-move or double-join bug factory, so the contracts are
// static_asserts: the test fails at build time, not at run time.
#include <gtest/gtest.h>

#include <type_traits>

#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/fleet.h"
#include "util/thread_pool.h"

namespace {

using capman::obs::MetricsRegistry;
using capman::sim::ExperimentRunner;
using capman::sim::FleetRunner;
using capman::util::ThreadPool;

// util::ThreadPool: workers capture `this` and block on the pool's mutex /
// condition variables; neither copying nor moving can be made safe.
static_assert(!std::is_copy_constructible_v<ThreadPool>);
static_assert(!std::is_copy_assignable_v<ThreadPool>);
static_assert(!std::is_move_constructible_v<ThreadPool>);
static_assert(!std::is_move_assignable_v<ThreadPool>);
static_assert(std::is_destructible_v<ThreadPool>);

// obs::MetricsRegistry: subsystems hold Counter&/Gauge&/Histogram& into
// registry-owned storage for the registry's lifetime.
static_assert(!std::is_copy_constructible_v<MetricsRegistry>);
static_assert(!std::is_copy_assignable_v<MetricsRegistry>);
static_assert(!std::is_move_constructible_v<MetricsRegistry>);
static_assert(!std::is_move_assignable_v<MetricsRegistry>);
static_assert(std::is_default_constructible_v<MetricsRegistry>);

// sim::ExperimentRunner: stable owner of the validated engine for a whole
// experiment; constructed in place at every call site.
static_assert(!std::is_copy_constructible_v<ExperimentRunner>);
static_assert(!std::is_copy_assignable_v<ExperimentRunner>);
static_assert(!std::is_move_constructible_v<ExperimentRunner>);
static_assert(!std::is_move_assignable_v<ExperimentRunner>);

// sim::FleetRunner: stable owner of the validated fleet configuration,
// mirroring ExperimentRunner.
static_assert(!std::is_copy_constructible_v<FleetRunner>);
static_assert(!std::is_copy_assignable_v<FleetRunner>);
static_assert(!std::is_move_constructible_v<FleetRunner>);
static_assert(!std::is_move_assignable_v<FleetRunner>);

// The instruments themselves stay pinned too: a Counter that moved out of
// its registry slot would detach every subsystem holding the reference.
static_assert(!std::is_copy_constructible_v<capman::obs::Counter>);
static_assert(!std::is_move_constructible_v<capman::obs::Counter>);

TEST(TypeTraits, ContractsHoldAtRuntimeToo) {
  // The static_asserts above are the test; this instantiation just keeps
  // the translation unit from being empty and proves the types are still
  // constructible the intended way.
  ThreadPool pool{1};
  EXPECT_EQ(pool.worker_count(), 1u);
  MetricsRegistry registry;
  registry.counter("traits/smoke").add();
  EXPECT_EQ(registry.snapshot().counter_or("traits/smoke"), 1u);
}

}  // namespace
