// Logger: level parsing (CAPMAN_LOG), line format (timestamp, level,
// thread id), level filtering, and a concurrent-writers smoke test (the
// sink mutex must keep lines whole).
#include "util/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <thread>
#include <vector>

namespace capman::util {
namespace {

/// Restores the singleton's level and sink on scope exit so tests don't
/// perturb each other (the Logger is process-global).
class LoggerGuard {
 public:
  LoggerGuard() : saved_level_(Logger::instance().level()) {}
  ~LoggerGuard() {
    Logger::instance().set_level(saved_level_);
    Logger::instance().set_sink(nullptr);
  }

 private:
  LogLevel saved_level_;
};

TEST(LogLevelTest, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(LoggerTest, LineCarriesTimestampLevelAndThreadId) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kDebug);

  log_info("engine", "step ", 42);

  // [HH:MM:SS.mmm] [INFO] [tid NNNNN] engine: step 42
  const std::regex line_re(
      R"(\[\d{2}:\d{2}:\d{2}\.\d{3}\] \[INFO\] \[tid \d+\] engine: step 42\n)");
  EXPECT_TRUE(std::regex_match(sink.str(), line_re)) << sink.str();
}

TEST(LoggerTest, LevelFiltersLowerSeverities) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kWarn);

  log_debug("t", "dropped");
  log_info("t", "dropped");
  log_warn("t", "kept-warn");
  log_error("t", "kept-error");

  const std::string out = sink.str();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept-warn"), std::string::npos);
  EXPECT_NE(out.find("kept-error"), std::string::npos);

  Logger::instance().set_level(LogLevel::kOff);
  log_error("t", "silenced");
  EXPECT_EQ(sink.str().find("silenced"), std::string::npos);
}

TEST(LoggerTest, ConcurrentWritersKeepLinesWhole) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  Logger::instance().set_level(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        log_info("worker", "t", t, " line ", i, " end");
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every line must be intact: starts with a timestamp bracket, ends with
  // "end", and the total count matches.
  std::istringstream lines{sink.str()};
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_EQ(line.substr(line.size() - 3), "end") << line;
    ++n;
  }
  EXPECT_EQ(n, kThreads * kLines);
}

}  // namespace
}  // namespace capman::util
