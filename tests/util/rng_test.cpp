#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace capman::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng{8};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{9};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng{10};
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.uniform_index(10)];
  }
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{11};
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng{12};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng{14};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng{15};
  // For alpha = 1.5, xm = 1: P(X > 10) = 10^-1.5 ~ 3.2%.
  int over = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.0, 1.5) > 10.0) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / n, 0.0316, 0.006);
}

TEST(Rng, ZipfRankZeroMostFrequent) {
  Rng rng{16};
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.zipf(20, 1.2)];
  }
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  // Monotone-ish decay between first and later ranks.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(Rng, ZipfWithinRange) {
  Rng rng{17};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.zipf(7, 0.9), 7u);
}

TEST(Rng, ChanceProbabilityRoughlyHonored) {
  Rng rng{18};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a{42};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace capman::util
