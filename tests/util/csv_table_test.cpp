#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/table.h"

namespace capman::util {
namespace {

TEST(Csv, EscapePlain) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(Csv, EscapeComma) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(Csv, EscapeQuote) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(Csv, EscapeNewline) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w{os};
  w.header({"t", "v"});
  w.row({1.0, 2.5});
  w.cell("x").cell(3.0);
  w.end_row();
  EXPECT_EQ(os.str(), "t,v\n1,2.5\nx,3\n");
}

TEST(Csv, MixedCellTypes) {
  std::ostringstream os;
  CsvWriter w{os};
  w.cell(std::size_t{7}).cell(static_cast<long long>(-3)).cell("s");
  w.end_row();
  EXPECT_EQ(os.str(), "7,-3,s\n");
}

TEST(Csv, FileConstructorThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter{std::string{"/nonexistent/dir/x.csv"}},
               std::runtime_error);
}

TEST(Table, FormatsAligned) {
  TextTable t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.50"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  TextTable t{{"w", "a", "b"}};
  t.add_row("row", {1.2345, 2.0}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
}

TEST(Table, FormatHelper) {
  EXPECT_EQ(TextTable::format(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::format(2.0, 0), "2");
}

TEST(Table, SectionHeader) {
  std::ostringstream os;
  print_section(os, "Fig. 12");
  EXPECT_NE(os.str().find("Fig. 12"), std::string::npos);
}

TEST(Logging, RespectsLevel) {
  std::ostringstream os;
  auto& logger = Logger::instance();
  logger.set_sink(&os);
  logger.set_level(LogLevel::kWarn);
  log_info("test", "hidden");
  log_warn("test", "visible ", 42);
  logger.set_sink(nullptr);
  EXPECT_EQ(os.str().find("hidden"), std::string::npos);
  EXPECT_NE(os.str().find("visible 42"), std::string::npos);
  EXPECT_NE(os.str().find("[WARN]"), std::string::npos);
}

TEST(Logging, OffSilencesEverything) {
  std::ostringstream os;
  auto& logger = Logger::instance();
  logger.set_sink(&os);
  logger.set_level(LogLevel::kOff);
  log_error("test", "nope");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::kWarn);
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace capman::util
