#include "util/sharding.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace capman::util {
namespace {

TEST(ResolveShardCount, ExplicitRequestWins) {
  EXPECT_EQ(resolve_shard_count(7, 1000), 7u);
  EXPECT_EQ(resolve_shard_count(1, 1), 1u);
  EXPECT_EQ(resolve_shard_count(4096, 10), 4096u);  // legal, surplus empty
}

TEST(ResolveShardCount, AutoIsMinTotal64AtLeastOne) {
  EXPECT_EQ(resolve_shard_count(0, 1000), 64u);
  EXPECT_EQ(resolve_shard_count(0, 10), 10u);
  EXPECT_EQ(resolve_shard_count(0, 0), 1u);
  EXPECT_EQ(resolve_shard_count(0, 64), 64u);
  EXPECT_EQ(resolve_shard_count(0, 65), 64u);
}

TEST(ShardPlan, RangesTileTotalInOrder) {
  for (std::size_t total : {0u, 1u, 7u, 64u, 100u, 1001u}) {
    for (std::size_t shards : {1u, 2u, 3u, 7u, 64u}) {
      const ShardPlan plan{total, shards};
      std::size_t expected_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto range = plan.range(s);
        EXPECT_EQ(range.begin, expected_begin) << total << "/" << shards;
        EXPECT_LE(range.begin, range.end);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, total) << total << "/" << shards;
    }
  }
}

TEST(ShardPlan, SizesDifferByAtMostOne) {
  const ShardPlan plan{1001, 64};
  std::size_t lo = 1001, hi = 0;
  for (std::size_t s = 0; s < 64; ++s) {
    lo = std::min(lo, plan.range(s).size());
    hi = std::max(hi, plan.range(s).size());
  }
  EXPECT_EQ(lo, 15u);
  EXPECT_EQ(hi, 16u);
}

TEST(ShardPlan, ShardOfIsTheInverseOfRange) {
  for (std::size_t total : {1u, 7u, 64u, 100u, 1001u}) {
    for (std::size_t shards : {1u, 2u, 3u, 7u, 64u, 200u}) {
      const ShardPlan plan{total, shards};
      for (std::size_t item = 0; item < total; ++item) {
        const std::size_t shard = plan.shard_of(item);
        const auto range = plan.range(shard);
        EXPECT_GE(item, range.begin) << total << "/" << shards;
        EXPECT_LT(item, range.end) << total << "/" << shards;
      }
    }
  }
}

TEST(ShardPlan, ZeroShardCountClampsToOne) {
  const ShardPlan plan{10, 0};
  EXPECT_EQ(plan.shard_count(), 1u);
  EXPECT_EQ(plan.range(0).begin, 0u);
  EXPECT_EQ(plan.range(0).end, 10u);
}

TEST(ShardPlan, MoreShardsThanItemsLeavesSurplusEmpty) {
  const ShardPlan plan{3, 8};
  EXPECT_EQ(plan.range(0).size(), 1u);
  EXPECT_EQ(plan.range(2).size(), 1u);
  EXPECT_TRUE(plan.range(3).empty());
  EXPECT_TRUE(plan.range(7).empty());
  EXPECT_EQ(plan.shard_of(2), 2u);
}

TEST(ShardRange, SizeAndEmpty) {
  EXPECT_EQ((ShardRange{3, 7}.size()), 4u);
  EXPECT_FALSE((ShardRange{3, 7}.empty()));
  EXPECT_TRUE((ShardRange{5, 5}.empty()));
}

// The keystone: shard contents depend only on (total, shard_count), so a
// consumer merging shard-local state in shard order visits items exactly
// as a single [0, total) loop would — the fleet determinism contract.
TEST(ShardPlan, MergeOrderEqualsLinearOrderForAnyShardCount) {
  const std::size_t total = 137;
  std::vector<std::size_t> linear;
  for (std::size_t i = 0; i < total; ++i) linear.push_back(i);
  for (std::size_t shards : {1u, 2u, 5u, 64u, 137u}) {
    const ShardPlan plan{total, shards};
    std::vector<std::size_t> folded;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto range = plan.range(s);
      for (std::size_t i = range.begin; i < range.end; ++i) {
        folded.push_back(i);
      }
    }
    EXPECT_EQ(folded, linear) << shards << " shards";
  }
}

}  // namespace
}  // namespace capman::util
