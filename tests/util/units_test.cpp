#include "util/units.h"

#include <gtest/gtest.h>

namespace capman::util {
namespace {

TEST(Units, SameUnitArithmetic) {
  const Watts a{2.0};
  const Watts b{3.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 5.0);
  EXPECT_DOUBLE_EQ((b - a).value(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 4.0);
  EXPECT_DOUBLE_EQ((b / 2.0).value(), 1.5);
  EXPECT_DOUBLE_EQ(b / a, 1.5);
  EXPECT_DOUBLE_EQ((-a).value(), -2.0);
}

TEST(Units, CompoundAssignment) {
  Joules e{10.0};
  e += Joules{5.0};
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e -= Joules{3.0};
  EXPECT_DOUBLE_EQ(e.value(), 12.0);
  e *= 2.0;
  EXPECT_DOUBLE_EQ(e.value(), 24.0);
  e /= 4.0;
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Volts{3.0}, Volts{3.7});
  EXPECT_GE(Amperes{1.0}, Amperes{1.0});
  EXPECT_EQ(Seconds{5.0}, Seconds{5.0});
}

TEST(Units, CrossUnitPhysics) {
  EXPECT_DOUBLE_EQ((Volts{3.7} * Amperes{2.0}).value(), 7.4);
  EXPECT_DOUBLE_EQ((Watts{2.0} * Seconds{10.0}).value(), 20.0);
  EXPECT_DOUBLE_EQ((Amperes{0.5} * Seconds{7200.0}).value(), 3600.0);
  EXPECT_DOUBLE_EQ((Amperes{2.0} * Ohms{0.1}).value(), 0.2);
  EXPECT_DOUBLE_EQ((Volts{4.0} / Ohms{2.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ((Watts{7.4} / Volts{3.7}).value(), 2.0);
  EXPECT_DOUBLE_EQ((Watts{7.4} / Amperes{2.0}).value(), 3.7);
  EXPECT_DOUBLE_EQ((Joules{100.0} / Seconds{50.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ((Joules{100.0} / Watts{4.0}).value(), 25.0);
}

TEST(Units, TemperatureArithmetic) {
  const Celsius t{40.0};
  EXPECT_DOUBLE_EQ((t + KelvinDiff{5.0}).value(), 45.0);
  EXPECT_DOUBLE_EQ((t - KelvinDiff{5.0}).value(), 35.0);
  EXPECT_DOUBLE_EQ(temperature_difference(Celsius{50.0}, t).value(), 10.0);
  EXPECT_DOUBLE_EQ(kelvin(Celsius{25.0}), 298.15);
  EXPECT_DOUBLE_EQ(kelvin(Celsius{-273.15}), 0.0);
}

TEST(Units, ConvenienceConstructors) {
  EXPECT_DOUBLE_EQ(milliwatts(500.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(milliseconds(250.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(minutes(2.0).value(), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5).value(), 5400.0);
  EXPECT_DOUBLE_EQ(milliamp_hours(1000.0).value(), 3600.0);
  EXPECT_DOUBLE_EQ(to_milliamp_hours(Coulombs{3600.0}), 1000.0);
  EXPECT_DOUBLE_EQ(to_milliwatts(Watts{1.5}), 1500.0);
  EXPECT_DOUBLE_EQ(watt_hours(2.0).value(), 7200.0);
  EXPECT_DOUBLE_EQ(to_watt_hours(Joules{7200.0}), 2.0);
}

TEST(Units, RoundTripConversions) {
  for (double mah : {1.0, 700.0, 2500.0, 10000.0}) {
    EXPECT_NEAR(to_milliamp_hours(milliamp_hours(mah)), mah, 1e-9);
  }
  for (double wh : {0.1, 9.25, 11.4}) {
    EXPECT_NEAR(to_watt_hours(watt_hours(wh)), wh, 1e-12);
  }
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Celsius{}.value(), 0.0);
}

}  // namespace
}  // namespace capman::util
