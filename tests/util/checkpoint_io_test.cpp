// The durability primitives under sim/checkpoint.h: CRC-32 framing
// (util/crc32.h), atomic replace-on-commit file writes
// (util/atomic_file.h), and the strict CLI value parsers (util/parse.h)
// the exit-2 usage contract rides on.
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/parse.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace capman::util {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// crc32

TEST(Crc32, MatchesKnownVectors) {
  // The standard reflected CRC-32 (IEEE 802.3) check values.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string payload(256, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 7);
  }
  const std::uint32_t good = crc32(payload);
  for (const std::size_t byte : {std::size_t{0}, payload.size() / 2,
                                 payload.size() - 1}) {
    std::string corrupted = payload;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x10);
    EXPECT_NE(crc32(corrupted), good) << "flip at byte " << byte;
  }
}

TEST(Crc32, IncrementalContinuationMatchesOneShot) {
  const std::string a = "frame header ";
  const std::string b = "and its payload bytes";
  EXPECT_EQ(crc32(b, crc32(a)), crc32(a + b));
  // Degenerate splits too.
  EXPECT_EQ(crc32(a + b, crc32("")), crc32(a + b));
  EXPECT_EQ(crc32("", crc32(a)), crc32(a));
}

// ---------------------------------------------------------------------------
// AtomicFile

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("capman_atomic_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_file(const fs::path& path) const {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, CommitPublishesAllBytes) {
  const fs::path target = dir_ / "state.bin";
  {
    AtomicFile file{target.string()};
    file.append("hello ");
    file.append(std::string("wor\0ld", 6));
    file.commit();
  }
  EXPECT_EQ(read_file(target), std::string("hello wor\0ld", 12));
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST_F(AtomicFileTest, UncommittedWriterLeavesTargetUntouched) {
  const fs::path target = dir_ / "state.bin";
  {
    AtomicFile file{target.string()};
    file.append("first version");
    file.commit();
  }
  {
    // A writer that dies (scope exit without commit) must not clobber
    // the committed file — this is the crash-safety property the
    // checkpoint layer depends on.
    AtomicFile file{target.string()};
    file.append("torn half-writ");
  }
  EXPECT_EQ(read_file(target), "first version");
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST_F(AtomicFileTest, CommitReplacesPreviousContent) {
  const fs::path target = dir_ / "state.bin";
  for (const std::string content : {"generation 1", "gen 2", "3"}) {
    AtomicFile file{target.string()};
    file.append(content);
    file.commit();
    EXPECT_EQ(read_file(target), content);
  }
}

TEST_F(AtomicFileTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(
      AtomicFile{(dir_ / "no_such_subdir" / "state.bin").string()},
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// parse_u64 / parse_double

TEST(ParseU64, AcceptsWholeTokensOnly) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12abc"));
  EXPECT_FALSE(parse_u64("-3"));
  EXPECT_FALSE(parse_u64("4.5"));
  EXPECT_FALSE(parse_u64(" 7"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
}

TEST(ParseDouble, AcceptsWholeTokensOnly) {
  EXPECT_EQ(parse_double("0.25"), 0.25);
  EXPECT_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_EQ(parse_double("7"), 7.0);
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("1.5x"));
  EXPECT_FALSE(parse_double("bogus"));
}

}  // namespace
}  // namespace capman::util
