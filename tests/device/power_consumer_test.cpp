// The PowerConsumer surface: capability reporting, the shared cap
// quantization rule, and — the property the arbiter leans on — that after
// shape() the Table II model draw of each consumer fits its granted cap.
#include "device/power_consumer.h"

#include <gtest/gtest.h>

#include "thermal/tec_consumer.h"

namespace capman::device {
namespace {

PhoneProfile profile() { return nexus_profile(); }

TEST(QuantizeCap, FloorsToQuantumThenClamps) {
  ConsumerCapability cap;
  cap.min_draw_mw = util::Milliwatts{50.0};
  cap.max_draw_mw = util::Milliwatts{500.0};
  cap.quantum_mw = util::Milliwatts{25.0};
  EXPECT_DOUBLE_EQ(quantize_cap(util::Milliwatts{130.0}, cap).raw(), 125.0);
  EXPECT_DOUBLE_EQ(quantize_cap(util::Milliwatts{125.0}, cap).raw(), 125.0);
  EXPECT_DOUBLE_EQ(quantize_cap(util::Milliwatts{10.0}, cap).raw(),
                   50.0);  // below floor
  EXPECT_DOUBLE_EQ(quantize_cap(util::Milliwatts{9999.0}, cap).raw(),
                   500.0);  // above ceiling
}

TEST(QuantizeCap, ZeroQuantumSkipsQuantization) {
  ConsumerCapability cap;
  cap.min_draw_mw = util::Milliwatts{0.0};
  cap.max_draw_mw = util::Milliwatts{100.0};
  cap.quantum_mw = util::Milliwatts{0.0};
  EXPECT_DOUBLE_EQ(quantize_cap(util::Milliwatts{33.3}, cap).raw(), 33.3);
}

TEST(ConsumerKindNames, CoverEveryKind) {
  EXPECT_STREQ(to_string(ConsumerKind::kCpu), "cpu");
  EXPECT_STREQ(to_string(ConsumerKind::kScreen), "screen");
  EXPECT_STREQ(to_string(ConsumerKind::kWifi), "wifi");
  EXPECT_STREQ(to_string(ConsumerKind::kTec), "tec");
}

// ---------------------------------------------------------------- CPU ---

TEST(CpuPowerConsumer, StartsUncapped) {
  const CpuModel model{profile().cpu};
  CpuPowerConsumer cpu{model};
  const auto cap = cpu.capability();
  EXPECT_DOUBLE_EQ(cpu.granted_mw().raw(), cap.max_draw_mw.raw());
  EXPECT_DOUBLE_EQ(cpu.util_cap(), 100.0);
  EXPECT_EQ(cpu.freq_cap(), model.params().gamma_mw_per_util.size() - 1);
}

TEST(CpuPowerConsumer, CapabilitySpansTableII) {
  const CpuModel model{profile().cpu};
  const CpuPowerConsumer cpu{model};
  const auto cap = cpu.capability();
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(cap.max_draw_mw.raw(),
                   p.gamma_mw_per_util.back() * 100.0 + p.c0_base_mw.raw());
  EXPECT_DOUBLE_EQ(cap.min_draw_mw.raw(),
                   p.gamma_mw_per_util.front() * CpuPowerConsumer::kMinUtil +
                       p.c0_base_mw.raw());
  EXPECT_LT(cap.min_draw_mw, cap.max_draw_mw);
}

TEST(CpuPowerConsumer, ShapedDrawFitsGrant) {
  const CpuModel model{profile().cpu};
  CpuPowerConsumer cpu{model};
  const auto cap = cpu.capability();
  DeviceDemand demand;
  demand.cpu = CpuState::kC0;
  demand.utilization = 100.0;
  demand.freq_index = model.params().gamma_mw_per_util.size() - 1;
  for (double budget : {cap.max_draw_mw.raw(), 1500.0, 900.0, 500.0,
                        cap.min_draw_mw.raw(), 0.0}) {
    const double granted = cpu.apply_cap(util::Milliwatts{budget}).raw();
    DeviceDemand shaped = demand;
    cpu.shape(shaped);
    const double draw_mw = util::to_milliwatts(
        model.power(shaped.cpu, shaped.utilization, shaped.freq_index));
    EXPECT_LE(draw_mw, granted + 1e-9)
        << "budget " << budget << " granted " << granted;
    EXPECT_GE(granted, cap.min_draw_mw.raw());
  }
}

TEST(CpuPowerConsumer, LowGrantFallsBackToUtilizationCeiling) {
  const CpuModel model{profile().cpu};
  CpuPowerConsumer cpu{model};
  cpu.apply_cap(cpu.capability().min_draw_mw);
  EXPECT_EQ(cpu.freq_cap(), 0u);
  EXPECT_LT(cpu.util_cap(), 100.0);
  EXPECT_GE(cpu.util_cap(), CpuPowerConsumer::kMinUtil);
}

TEST(CpuPowerConsumer, IdleStatesAreNotShaped) {
  const CpuModel model{profile().cpu};
  CpuPowerConsumer cpu{model};
  cpu.apply_cap(cpu.capability().min_draw_mw);
  DeviceDemand demand;
  demand.cpu = CpuState::kSleep;
  demand.utilization = 80.0;
  demand.freq_index = 2;
  DeviceDemand shaped = demand;
  cpu.shape(shaped);
  EXPECT_DOUBLE_EQ(shaped.utilization, demand.utilization);
  EXPECT_EQ(shaped.freq_index, demand.freq_index);
}

// ------------------------------------------------------------- Screen ---

TEST(ScreenPowerConsumer, ShapedDrawFitsGrant) {
  const ScreenModel model{profile().screen};
  ScreenPowerConsumer screen{model};
  const auto cap = screen.capability();
  DeviceDemand demand;
  demand.screen = ScreenState::kOn;
  demand.brightness = 255.0;
  for (double budget : {cap.max_draw_mw.raw(), cap.max_draw_mw.raw() / 2.0,
                        cap.min_draw_mw.raw(), 0.0}) {
    const double granted = screen.apply_cap(util::Milliwatts{budget}).raw();
    DeviceDemand shaped = demand;
    screen.shape(shaped);
    // The panel's two alphas straddle the capability's mean alpha, so
    // allow the black/white asymmetry as slack.
    const auto& p = model.params();
    const double slack =
        std::abs(p.alpha_b_mw_per_level - p.alpha_w_mw_per_level) * 255.0;
    const double draw_mw =
        util::to_milliwatts(model.power(shaped.screen, shaped.brightness));
    EXPECT_LE(draw_mw, granted + slack + 1e-9);
  }
}

TEST(ScreenPowerConsumer, CapNeverTurnsScreenOff) {
  const ScreenModel model{profile().screen};
  ScreenPowerConsumer screen{model};
  screen.apply_cap(util::Milliwatts{0.0});
  EXPECT_GE(screen.granted_mw().raw(), model.params().c_screen_mw.raw());
  EXPECT_DOUBLE_EQ(screen.brightness_cap(), 0.0);
  DeviceDemand demand;
  demand.screen = ScreenState::kOn;
  demand.brightness = 200.0;
  screen.shape(demand);
  EXPECT_EQ(demand.screen, ScreenState::kOn);
  EXPECT_DOUBLE_EQ(demand.brightness, 0.0);
}

// --------------------------------------------------------------- WiFi ---

TEST(WifiPowerConsumer, ShapedDrawFitsGrant) {
  const WifiModel model{profile().wifi};
  WifiPowerConsumer wifi{model};
  const auto cap = wifi.capability();
  DeviceDemand demand;
  demand.wifi = WifiState::kSend;
  demand.packet_rate = WifiPowerConsumer::kMaxPacketRate;
  for (double budget : {cap.max_draw_mw.raw(), cap.max_draw_mw.raw() / 2.0,
                        cap.min_draw_mw.raw() + 40.0, 0.0}) {
    const double granted = wifi.apply_cap(util::Milliwatts{budget}).raw();
    DeviceDemand shaped = demand;
    wifi.shape(shaped);
    const double draw_mw =
        util::to_milliwatts(model.power(shaped.wifi, shaped.packet_rate));
    EXPECT_LE(draw_mw, granted + 1e-9)
        << "budget " << budget << " granted " << granted;
  }
}

TEST(WifiPowerConsumer, ShedsFirst) {
  const WifiModel model{profile().wifi};
  const CpuModel cpu_model{profile().cpu};
  const ScreenModel screen_model{profile().screen};
  EXPECT_LT(WifiPowerConsumer{model}.capability().shed_priority,
            ScreenPowerConsumer{screen_model}.capability().shed_priority);
  EXPECT_LT(ScreenPowerConsumer{screen_model}.capability().shed_priority,
            CpuPowerConsumer{cpu_model}.capability().shed_priority);
}

// ---------------------------------------------------------------- TEC ---

TEST(TecPowerConsumer, GrantGatesTurnOn) {
  const thermal::Tec tec_model;
  thermal::TecPowerConsumer tec{tec_model};
  const util::Milliwatts reference = tec.reference_draw_mw();
  EXPECT_GT(reference.raw(), 0.0);

  tec.apply_cap(reference);
  EXPECT_TRUE(tec.allows_on());
  tec.apply_cap(util::Milliwatts{0.0});
  EXPECT_FALSE(tec.allows_on());
  EXPECT_DOUBLE_EQ(tec.granted_mw().raw(), 0.0);
}

TEST(TecPowerConsumer, ReferenceDrawCoversRatedCurrentRun) {
  const thermal::Tec tec_model;
  const thermal::TecPowerConsumer tec{tec_model};
  const double i = tec_model.params().rated_current.value();
  const double expected_w =
      tec_model.params().seebeck_v_per_k * i *
          thermal::TecPowerConsumer::kReferenceDeltaK +
      i * i * tec_model.params().resistance.value();
  EXPECT_NEAR(tec.reference_draw_mw().raw(), expected_w * 1000.0, 1e-6);
}

}  // namespace
}  // namespace capman::device
