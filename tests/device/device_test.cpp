#include <gtest/gtest.h>

#include "device/cpu.h"
#include "device/phone.h"
#include "device/power_state.h"
#include "device/screen.h"
#include "device/wifi.h"

namespace capman::device {
namespace {

TEST(PowerState, IndexRoundTrip) {
  for (std::size_t i = 0; i < device_state_count(); ++i) {
    EXPECT_EQ(DeviceStateVector::from_index(i).index(), i);
  }
}

TEST(PowerState, CountIs24) { EXPECT_EQ(device_state_count(), 24u); }

TEST(PowerState, DistinctStatesDistinctIndices) {
  DeviceStateVector a{CpuState::kC0, ScreenState::kOn, WifiState::kSend};
  DeviceStateVector b{CpuState::kC0, ScreenState::kOn, WifiState::kAccess};
  EXPECT_NE(a.index(), b.index());
  EXPECT_NE(a, b);
}

TEST(PowerState, ToStringContainsParts) {
  DeviceStateVector v{CpuState::kSleep, ScreenState::kOff, WifiState::kIdle};
  const std::string s = to_string(v);
  EXPECT_NE(s.find("SLEEP"), std::string::npos);
  EXPECT_NE(s.find("OFF"), std::string::npos);
  EXPECT_NE(s.find("IDLE"), std::string::npos);
}

CpuParams nexus_cpu() { return nexus_profile().cpu; }

TEST(CpuModel, TableIIIStatePowers) {
  CpuModel cpu{nexus_cpu()};
  EXPECT_NEAR(util::to_milliwatts(cpu.power(CpuState::kSleep, 0, 0)), 55.0,
              1e-9);
  EXPECT_NEAR(util::to_milliwatts(cpu.power(CpuState::kC2, 0, 0)), 310.0,
              1e-9);
  EXPECT_NEAR(util::to_milliwatts(cpu.power(CpuState::kC1, 0, 0)), 462.0,
              1e-9);
}

TEST(CpuModel, C0MatchesTableIIAtReferencePoint) {
  // Table III's C0 = 612 mW corresponds to 50% utilization at the middle
  // frequency: gamma * 50 + 310 = 612 -> gamma = 6.04.
  CpuModel cpu{nexus_cpu()};
  EXPECT_NEAR(util::to_milliwatts(cpu.power(CpuState::kC0, 50.0, 1)), 612.0,
              1.0);
}

TEST(CpuModel, PowerLinearInUtilization) {
  CpuModel cpu{nexus_cpu()};
  const double p0 = cpu.power(CpuState::kC0, 20.0, 1).value();
  const double p1 = cpu.power(CpuState::kC0, 40.0, 1).value();
  const double p2 = cpu.power(CpuState::kC0, 60.0, 1).value();
  EXPECT_NEAR(p1 - p0, p2 - p1, 1e-12);
}

TEST(CpuModel, HigherFrequencyCostsMore) {
  CpuModel cpu{nexus_cpu()};
  EXPECT_LT(cpu.power(CpuState::kC0, 80.0, 0).value(),
            cpu.power(CpuState::kC0, 80.0, 1).value());
  EXPECT_LT(cpu.power(CpuState::kC0, 80.0, 1).value(),
            cpu.power(CpuState::kC0, 80.0, 2).value());
}

TEST(CpuModel, UtilizationClamped) {
  CpuModel cpu{nexus_cpu()};
  EXPECT_DOUBLE_EQ(cpu.power(CpuState::kC0, 150.0, 1).value(),
                   cpu.power(CpuState::kC0, 100.0, 1).value());
  EXPECT_DOUBLE_EQ(cpu.power(CpuState::kC0, -5.0, 1).value(),
                   cpu.power(CpuState::kC0, 0.0, 1).value());
}

TEST(CpuModel, FreqIndexClamped) {
  CpuModel cpu{nexus_cpu()};
  EXPECT_DOUBLE_EQ(cpu.power(CpuState::kC0, 50.0, 99).value(),
                   cpu.power(CpuState::kC0, 50.0, 2).value());
}

TEST(ScreenModel, OffPowerMatchesTableIII) {
  ScreenModel screen{nexus_profile().screen};
  EXPECT_NEAR(util::to_milliwatts(screen.power(ScreenState::kOff, 200.0)),
              22.0, 1e-9);
}

TEST(ScreenModel, OnPowerMatchesTableIIIAtReferenceBrightness) {
  // On = 790 mW at brightness 180: (3.5+3.0)/2 * 180 + 205 = 790.
  ScreenModel screen{nexus_profile().screen};
  EXPECT_NEAR(util::to_milliwatts(screen.power(ScreenState::kOn, 180.0)),
              790.0, 1.0);
}

TEST(ScreenModel, PowerIncreasesWithBrightness) {
  ScreenModel screen{nexus_profile().screen};
  EXPECT_LT(screen.power(ScreenState::kOn, 50.0).value(),
            screen.power(ScreenState::kOn, 250.0).value());
}

TEST(ScreenModel, BrightnessClamped) {
  ScreenModel screen{nexus_profile().screen};
  EXPECT_DOUBLE_EQ(screen.power(ScreenState::kOn, 400.0).value(),
                   screen.power(ScreenState::kOn, 255.0).value());
}

TEST(WifiModel, IdleMatchesTableIII) {
  WifiModel wifi{nexus_profile().wifi};
  EXPECT_NEAR(util::to_milliwatts(wifi.power(WifiState::kIdle, 0.0)), 60.0,
              1e-9);
}

TEST(WifiModel, AccessAtThresholdMatchesTableIII) {
  // 12.24 * 100 + 60 = 1284 mW (Table III Access).
  WifiModel wifi{nexus_profile().wifi};
  EXPECT_NEAR(util::to_milliwatts(wifi.power(WifiState::kAccess, 100.0)),
              1284.0, 1.0);
}

TEST(WifiModel, SendPremiumMatchesTableIII) {
  WifiModel wifi{nexus_profile().wifi};
  EXPECT_NEAR(util::to_milliwatts(wifi.power(WifiState::kSend, 100.0)),
              1548.0, 1.0);
}

TEST(WifiModel, PiecewiseContinuousAtThreshold) {
  WifiModel wifi{nexus_profile().wifi};
  const double below = wifi.power(WifiState::kAccess, 99.999).value();
  const double above = wifi.power(WifiState::kAccess, 100.001).value();
  EXPECT_NEAR(below, above, 0.01);
}

TEST(WifiModel, HighRateUsesHighSlope) {
  WifiModel wifi{nexus_profile().wifi};
  const auto& p = nexus_profile().wifi;
  const double p200 = util::to_milliwatts(wifi.power(WifiState::kAccess, 200.0));
  EXPECT_NEAR(p200, p.gamma_high_mw_per_rate * 200.0 + p.c_high_mw.raw(), 1.0);
}

TEST(WifiModel, StateForRate) {
  WifiModel wifi{nexus_profile().wifi};
  EXPECT_EQ(wifi.state_for_rate(0.0, false), WifiState::kIdle);
  EXPECT_EQ(wifi.state_for_rate(50.0, false), WifiState::kAccess);
  EXPECT_EQ(wifi.state_for_rate(50.0, true), WifiState::kSend);
}

TEST(PhoneModel, TotalIsSumOfComponents) {
  PhoneModel phone{nexus_profile()};
  DeviceDemand d;
  d.cpu = CpuState::kC0;
  d.utilization = 60.0;
  d.freq_index = 1;
  d.screen = ScreenState::kOn;
  d.brightness = 180.0;
  d.wifi = WifiState::kAccess;
  d.packet_rate = 100.0;
  const auto p = phone.power(d);
  EXPECT_NEAR(p.total().value(),
              p.cpu.value() + p.screen.value() + p.wifi.value(), 1e-12);
  EXPECT_GT(p.total().value(), 2.0);
}

TEST(PhoneModel, SleepDemandIsCheap) {
  PhoneModel phone{nexus_profile()};
  DeviceDemand d;  // defaults: sleep/off/idle
  EXPECT_NEAR(util::to_milliwatts(phone.power(d).total()),
              55.0 + 22.0 + 60.0, 1.0);
}

TEST(PhoneModel, ProfilesDifferInScale) {
  PhoneModel nexus{nexus_profile()};
  PhoneModel honor{honor_profile()};
  PhoneModel lenovo{lenovo_profile()};
  DeviceDemand d;
  d.cpu = CpuState::kC0;
  d.utilization = 80.0;
  d.freq_index = 1;
  d.screen = ScreenState::kOn;
  const double pn = nexus.power(d).total().value();
  EXPECT_LT(honor.power(d).total().value(), pn);
  EXPECT_GT(lenovo.power(d).total().value(), pn);
}

TEST(PhoneModel, DemandStateVectorMatchesFields) {
  DeviceDemand d;
  d.cpu = CpuState::kC1;
  d.screen = ScreenState::kOn;
  d.wifi = WifiState::kSend;
  const DeviceStateVector v = d.state_vector();
  EXPECT_EQ(v.cpu, CpuState::kC1);
  EXPECT_EQ(v.screen, ScreenState::kOn);
  EXPECT_EQ(v.wifi, WifiState::kSend);
}

TEST(PhoneModel, ProfileMetadata) {
  EXPECT_EQ(nexus_profile().name, "Nexus");
  EXPECT_EQ(honor_profile().name, "Honor");
  EXPECT_EQ(lenovo_profile().name, "Lenovo");
  EXPECT_NEAR(nexus_profile().tec_on_mw.raw(), 29.17, 1e-9);
}

}  // namespace
}  // namespace capman::device
