#include <gtest/gtest.h>

#include "policy/baselines.h"
#include "policy/capman_policy.h"
#include "policy/oracle.h"

namespace capman::policy {
namespace {

using battery::BatterySelection;
using workload::Action;
using workload::Syscall;

PolicyContext context_with(double demand_w, double little_soc = 1.0,
                           double big_soc = 1.0) {
  PolicyContext ctx;
  ctx.demand_w = demand_w;
  ctx.little_soc = little_soc;
  ctx.big_soc = big_soc;
  return ctx;
}

TEST(Practice, AlwaysBigAndSinglePack) {
  PracticePolicy p;
  EXPECT_TRUE(p.wants_single_pack());
  EXPECT_EQ(p.on_event(context_with(5.0), Action{Syscall::kScreenWake, 0}),
            BatterySelection::kBig);
  EXPECT_EQ(p.name(), "Practice");
}

TEST(Dual, LittleFirstUntilFloor) {
  DualPolicy p{0.05};
  EXPECT_FALSE(p.wants_single_pack());
  EXPECT_EQ(p.on_event(context_with(1.0, 0.9), Action{}),
            BatterySelection::kLittle);
  EXPECT_EQ(p.on_event(context_with(1.0, 0.04), Action{}),
            BatterySelection::kBig);
}

TEST(Dual, ExactlyAtFloorFallsToBig) {
  DualPolicy p{0.05};
  EXPECT_EQ(p.on_event(context_with(1.0, 0.05), Action{}),
            BatterySelection::kBig);
}

TEST(Heuristic, RoutesPredictedHighDemandToLittle) {
  HeuristicPolicy p{1.5, 5.0};
  PolicyContext ctx = context_with(3.0);
  ctx.now_s = 0.0;
  // First event primes the EWMA with the demand itself.
  EXPECT_EQ(p.on_event(ctx, Action{}), BatterySelection::kLittle);
}

TEST(Heuristic, RoutesLowDemandToBig) {
  HeuristicPolicy p{1.5, 5.0};
  EXPECT_EQ(p.on_event(context_with(0.5), Action{}), BatterySelection::kBig);
}

TEST(Heuristic, LagsPatternChanges) {
  // After a long high-power phase, the EWMA stays high, so a now-steady
  // low-power interval is still mispredicted onto LITTLE - the heuristic's
  // lag wastes the small cell. This is the weakness CAPMAN exploits
  // (paper Fig. 12b).
  HeuristicPolicy p{2.0, 20.0};
  PolicyContext high = context_with(3.5);
  for (int i = 0; i < 20; ++i) {
    high.now_s = i;
    p.on_event(high, Action{});
  }
  PolicyContext calm = context_with(0.8);
  calm.now_s = 20.5;
  EXPECT_EQ(p.on_event(calm, Action{}), BatterySelection::kLittle);  // wrong!
}

TEST(Heuristic, ProtectsEmptyLittle) {
  HeuristicPolicy p{1.5, 5.0};
  EXPECT_EQ(p.on_event(context_with(3.0, 0.01), Action{}),
            BatterySelection::kBig);
}

TEST(Oracle, ConfigValidateNamesTheInvalidField) {
  EXPECT_TRUE(OracleConfig{}.validate().empty());
  OracleConfig bad;
  bad.little_reserve_soc = 1.0;
  bad.lookahead_cap_s = 0.0;
  const auto errors = bad.validate();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("little_reserve_soc"), std::string::npos);
  EXPECT_NE(errors[1].find("lookahead_cap_s"), std::string::npos);
  EXPECT_THROW(OraclePolicy{bad}, std::invalid_argument);
}

TEST(Oracle, DefaultsToBigWithoutPack) {
  OraclePolicy p;
  EXPECT_EQ(p.on_event(context_with(1.0), Action{}), BatterySelection::kBig);
}

TEST(Oracle, RoutesSurgeToLittleAndSteadyToBig) {
  battery::DualPackConfig cfg;
  battery::DualBatteryPack pack{cfg};
  OraclePolicy p;

  PolicyContext steady = context_with(1.2);
  steady.pack = &pack;
  steady.interval_avg_w = 1.2;
  steady.interval_peak_w = 1.2;
  steady.interval_duration_s = 8.0;
  EXPECT_EQ(p.on_event(steady, Action{}), BatterySelection::kBig);

  PolicyContext surge = context_with(3.2);
  surge.pack = &pack;
  surge.interval_avg_w = 3.2;
  surge.interval_peak_w = 3.2;
  surge.interval_duration_s = 0.8;
  EXPECT_EQ(p.on_event(surge, Action{}), BatterySelection::kLittle);
}

TEST(Oracle, UsesSurvivorWhenOneCellIsExhausted) {
  battery::DualPackConfig cfg;
  cfg.little_capacity_mah = 20.0;  // tiny: drain it fast
  battery::DualBatteryPack pack{cfg};
  pack.request(BatterySelection::kLittle, util::Seconds{0.0});
  double t = 0.1;
  while (!pack.little_cell().exhausted() && t < 10000.0) {
    pack.step(util::Watts{1.0}, util::Seconds{1.0}, util::Seconds{t});
    t += 1.0;
  }
  // Force little to stay selected even if the pack auto-fell back.
  OraclePolicy p;
  PolicyContext ctx = context_with(3.0);
  ctx.pack = &pack;
  ctx.interval_avg_w = 3.0;
  ctx.interval_peak_w = 3.0;
  ctx.interval_duration_s = 1.0;
  EXPECT_EQ(p.on_event(ctx, Action{}), BatterySelection::kBig);
}

TEST(Oracle, ReservesLittleForSurges) {
  battery::DualPackConfig cfg;
  battery::DualBatteryPack pack{cfg};
  // Drain LITTLE to below the reserve.
  pack.request(BatterySelection::kLittle, util::Seconds{0.0});
  double t = 0.1;
  while (pack.little_cell().soc() > 0.04 && t < 50000.0) {
    pack.step(util::Watts{1.5}, util::Seconds{2.0}, util::Seconds{t});
    t += 2.0;
  }
  OracleConfig ocfg;
  ocfg.little_reserve_soc = 0.06;
  OraclePolicy p{ocfg};
  PolicyContext surge = context_with(2.5);
  surge.pack = &pack;
  surge.interval_avg_w = 2.5;
  surge.interval_peak_w = 2.5;
  surge.interval_duration_s = 1.0;
  // Even a surge goes to big when LITTLE is below reserve and big can serve.
  EXPECT_EQ(p.on_event(surge, Action{}), BatterySelection::kBig);
}

TEST(CapmanPolicyAdapter, DelegatesToController) {
  core::CapmanConfig cfg;
  cfg.exploration_initial = 0.0;
  cfg.exploration_floor = 0.0;
  CapmanPolicy p{cfg, 5};
  EXPECT_EQ(p.name(), "CAPMAN");
  EXPECT_FALSE(p.wants_single_pack());
  PolicyContext ctx = context_with(2.0);
  ctx.device = {device::CpuState::kC0, device::ScreenState::kOn,
                device::WifiState::kIdle};
  const auto choice = p.on_event(ctx, Action{Syscall::kScreenWake, 0});
  EXPECT_EQ(choice, BatterySelection::kLittle);  // kind prior
  p.record_step(util::Joules{1.0}, util::Joules{0.1}, true);
  EXPECT_GT(p.maintenance(util::Seconds{0.0}).value(), 0.0);
}

}  // namespace
}  // namespace capman::policy
