#include <gtest/gtest.h>

#include "device/phone.h"
#include "workload/event.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace capman::workload {
namespace {

TEST(Event, ActionIndexRoundTrip) {
  for (std::size_t i = 0; i < action_space_size(); ++i) {
    EXPECT_EQ(Action::from_index(i).index(), i);
  }
}

TEST(Event, ActionSpaceIs200) {
  // The paper records "over 200 system calls"; our action space is
  // 20 kinds x 10 parameter buckets.
  EXPECT_EQ(action_space_size(), 200u);
}

TEST(Event, BucketParamEdges) {
  EXPECT_EQ(bucket_param(0.0, 100.0), 0);
  EXPECT_EQ(bucket_param(100.0, 100.0), kParamBuckets - 1);
  EXPECT_EQ(bucket_param(55.0, 100.0), 5);
  EXPECT_EQ(bucket_param(-3.0, 100.0), 0);
  EXPECT_EQ(bucket_param(500.0, 100.0), kParamBuckets - 1);
  EXPECT_EQ(bucket_param(1.0, 0.0), 0);
}

TEST(Event, ToStringIncludesKindAndBucket) {
  const Action a{Syscall::kScreenWake, 7};
  EXPECT_EQ(to_string(a), "screen_wake#7");
}

device::DeviceDemand demand_with_util(double util) {
  device::DeviceDemand d;
  d.cpu = device::CpuState::kC0;
  d.utilization = util;
  return d;
}

TEST(Trace, BuilderKeepsOrder) {
  TraceBuilder tb{"t"};
  tb.add(0.0, {Syscall::kAppLaunch, 0}, demand_with_util(10));
  tb.add(5.0, {Syscall::kCpuBurst, 1}, demand_with_util(50));
  EXPECT_EQ(tb.size(), 2u);
  EXPECT_DOUBLE_EQ(tb.last_time(), 5.0);
  const Trace t = std::move(tb).build(10.0);
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_DOUBLE_EQ(t.horizon_s(), 10.0);
}

TEST(TraceCursor, DemandHoldsUntilNextEvent) {
  TraceBuilder tb{"t"};
  tb.add(0.0, {Syscall::kAppLaunch, 0}, demand_with_util(10));
  tb.add(5.0, {Syscall::kCpuBurst, 1}, demand_with_util(50));
  const Trace t = std::move(tb).build(10.0);
  TraceCursor cursor{t};
  EXPECT_DOUBLE_EQ(cursor.demand_at(0.0).utilization, 10.0);
  EXPECT_DOUBLE_EQ(cursor.demand_at(4.9).utilization, 10.0);
  EXPECT_DOUBLE_EQ(cursor.demand_at(5.0).utilization, 50.0);
  EXPECT_DOUBLE_EQ(cursor.demand_at(9.9).utilization, 50.0);
}

TEST(TraceCursor, LoopsPastHorizon) {
  TraceBuilder tb{"t"};
  tb.add(0.0, {Syscall::kAppLaunch, 0}, demand_with_util(10));
  tb.add(5.0, {Syscall::kCpuBurst, 1}, demand_with_util(50));
  const Trace t = std::move(tb).build(10.0);
  TraceCursor cursor{t};
  EXPECT_DOUBLE_EQ(cursor.demand_at(12.0).utilization, 10.0);
  EXPECT_DOUBLE_EQ(cursor.demand_at(17.0).utilization, 50.0);
}

TEST(TraceCursor, AdvanceFiresOncePerEvent) {
  TraceBuilder tb{"t"};
  tb.add(0.0, {Syscall::kAppLaunch, 0}, demand_with_util(10));
  tb.add(5.0, {Syscall::kCpuBurst, 1}, demand_with_util(50));
  const Trace t = std::move(tb).build(10.0);
  TraceCursor cursor{t};
  EXPECT_TRUE(cursor.advance(0.0));
  EXPECT_FALSE(cursor.advance(1.0));
  EXPECT_FALSE(cursor.advance(4.9));
  EXPECT_TRUE(cursor.advance(5.0));
  EXPECT_FALSE(cursor.advance(6.0));
  // Looping re-fires the first event.
  EXPECT_TRUE(cursor.advance(10.5));
}

TEST(TraceCursor, NextEventTime) {
  TraceBuilder tb{"t"};
  tb.add(0.0, {Syscall::kAppLaunch, 0}, demand_with_util(10));
  tb.add(5.0, {Syscall::kCpuBurst, 1}, demand_with_util(50));
  const Trace t = std::move(tb).build(10.0);
  TraceCursor cursor{t};
  EXPECT_DOUBLE_EQ(cursor.next_event_time(0.0), 5.0);
  EXPECT_DOUBLE_EQ(cursor.next_event_time(5.0), 10.0);  // wraps to t=0
  EXPECT_DOUBLE_EQ(cursor.next_event_time(7.3), 10.0);
  EXPECT_DOUBLE_EQ(cursor.next_event_time(12.0), 15.0);
}

TEST(Trace, AveragePowerWeighsDurations) {
  TraceBuilder tb{"t"};
  device::DeviceDemand lo;  // sleep: ~137 mW on the Nexus profile
  device::DeviceDemand hi = demand_with_util(50.0);
  hi.screen = device::ScreenState::kOn;
  tb.add(0.0, {Syscall::kAppLaunch, 0}, lo);
  tb.add(8.0, {Syscall::kCpuBurst, 9}, hi);
  const Trace t = std::move(tb).build(10.0);
  device::PhoneModel phone{device::nexus_profile()};
  const double avg = t.average_power(phone).value();
  const double lo_w = phone.power(lo).total().value();
  const double hi_w = phone.power(hi).total().value();
  EXPECT_NEAR(avg, 0.8 * lo_w + 0.2 * hi_w, 1e-9);
}

class GeneratorTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<WorkloadGenerator> make() const {
    switch (GetParam()) {
      case 0: return make_geekbench();
      case 1: return make_pcmark();
      case 2: return make_video();
      case 3: return make_eta_static(0.5);
      case 4: return make_screen_toggle(util::Seconds{60.0});
      default: return make_idle_screen_on();
    }
  }
};

TEST_P(GeneratorTest, DeterministicForSameSeed) {
  const auto gen = make();
  const Trace a = gen->generate(util::Seconds{300.0}, 7);
  const Trace b = gen->generate(util::Seconds{300.0}, 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].action, b.events()[i].action);
  }
}

TEST_P(GeneratorTest, EventsSortedWithinHorizon) {
  const auto gen = make();
  const Trace t = gen->generate(util::Seconds{600.0}, 3);
  ASSERT_FALSE(t.empty());
  double prev = -1.0;
  for (const auto& e : t.events()) {
    EXPECT_GE(e.time_s, prev);
    EXPECT_LT(e.time_s, 600.0 + 1e-9);
    prev = e.time_s;
  }
}

TEST_P(GeneratorTest, SeedsProduceDifferentTraces) {
  const auto gen = make();
  const Trace a = gen->generate(util::Seconds{300.0}, 1);
  const Trace b = gen->generate(util::Seconds{300.0}, 2);
  bool differs = a.events().size() != b.events().size();
  if (!differs) {
    for (std::size_t i = 0; i < a.events().size(); ++i) {
      if (a.events()[i].time_s != b.events()[i].time_s) {
        differs = true;
        break;
      }
    }
  }
  // Geekbench is intentionally near-deterministic; allow equality there.
  if (GetParam() != 0) {
    EXPECT_TRUE(differs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorTest,
                         ::testing::Range(0, 6));

TEST(Generators, GeekbenchSaturatesCpu) {
  const Trace t = make_geekbench()->generate(util::Seconds{300.0}, 1);
  for (const auto& e : t.events()) {
    EXPECT_EQ(e.demand.cpu, device::CpuState::kC0);
    EXPECT_GE(e.demand.utilization, 90.0);
  }
}

TEST(Generators, VideoDrawsMoreThanIdleOnAverage) {
  device::PhoneModel phone{device::nexus_profile()};
  const Trace video = make_video()->generate(util::Seconds{600.0}, 1);
  const Trace idle = make_idle_screen_on()->generate(util::Seconds{600.0}, 1);
  EXPECT_GT(video.average_power(phone).value(),
            idle.average_power(phone).value());
}

TEST(Generators, EtaInterpolatesBetweenVideoAndPCMark) {
  device::PhoneModel phone{device::nexus_profile()};
  const double p20 =
      make_eta_static(0.2)->generate(util::Seconds{1200.0}, 5)
          .average_power(phone).value();
  const double p80 =
      make_eta_static(0.8)->generate(util::Seconds{1200.0}, 5)
          .average_power(phone).value();
  // More PCMark share -> more average power.
  EXPECT_GT(p80, p20 * 0.95);
}

TEST(Generators, ToggleMostlyAsleep) {
  device::PhoneModel phone{device::nexus_profile()};
  const Trace t =
      make_screen_toggle(util::Seconds{60.0})->generate(
          util::Seconds{1200.0}, 2);
  // Average power well below always-on idle (~0.9 W).
  EXPECT_LT(t.average_power(phone).value(), 0.5);
}

TEST(Generators, PaperSuiteHasSixWorkloads) {
  const auto suite = paper_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0]->name(), "Geekbench");
  EXPECT_EQ(suite[1]->name(), "PCMark");
  EXPECT_EQ(suite[2]->name(), "Video");
  EXPECT_EQ(suite[3]->name(), "eta-20%");
  EXPECT_EQ(suite[4]->name(), "eta-50%");
  EXPECT_EQ(suite[5]->name(), "eta-80%");
}

TEST(Generators, ToggleNameFormatsPeriod) {
  EXPECT_EQ(make_screen_toggle(util::Seconds{60.0})->name(), "Toggle-1min");
  EXPECT_EQ(make_screen_toggle(util::Seconds{5.0})->name(), "Toggle-5s");
}

}  // namespace
}  // namespace capman::workload
