#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generators.h"

namespace capman::workload {
namespace {

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto original =
      make_pcmark()->generate(util::Seconds{120.0}, 5);
  std::stringstream buffer;
  save_trace_csv(original, buffer);
  const auto loaded = load_trace_csv(buffer, "PCMark", original.horizon_s());

  ASSERT_EQ(loaded.events().size(), original.events().size());
  for (std::size_t i = 0; i < original.events().size(); ++i) {
    const auto& a = original.events()[i];
    const auto& b = loaded.events()[i];
    EXPECT_NEAR(a.time_s, b.time_s, 1e-6) << i;
    EXPECT_EQ(a.action, b.action) << i;
    EXPECT_EQ(a.demand.cpu, b.demand.cpu) << i;
    EXPECT_NEAR(a.demand.utilization, b.demand.utilization, 1e-6) << i;
    EXPECT_EQ(a.demand.freq_index, b.demand.freq_index) << i;
    EXPECT_EQ(a.demand.screen, b.demand.screen) << i;
    EXPECT_NEAR(a.demand.brightness, b.demand.brightness, 1e-6) << i;
    EXPECT_EQ(a.demand.wifi, b.demand.wifi) << i;
    EXPECT_NEAR(a.demand.packet_rate, b.demand.packet_rate, 1e-6) << i;
  }
  EXPECT_DOUBLE_EQ(loaded.horizon_s(), original.horizon_s());
}

TEST(TraceIo, StateNameRoundTrips) {
  for (auto s : {device::CpuState::kSleep, device::CpuState::kC2,
                 device::CpuState::kC1, device::CpuState::kC0}) {
    EXPECT_EQ(parse_cpu_state(cpu_state_name(s)), s);
  }
  for (auto s : {device::ScreenState::kOff, device::ScreenState::kOn}) {
    EXPECT_EQ(parse_screen_state(screen_state_name(s)), s);
  }
  for (auto s : {device::WifiState::kIdle, device::WifiState::kAccess,
                 device::WifiState::kSend}) {
    EXPECT_EQ(parse_wifi_state(wifi_state_name(s)), s);
  }
}

TEST(TraceIo, SyscallNamesRoundTrip) {
  for (std::size_t k = 0; k < kSyscallCount; ++k) {
    const auto kind = static_cast<Syscall>(k);
    EXPECT_EQ(parse_syscall(to_string(kind)), kind);
  }
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream empty;
  EXPECT_THROW(load_trace_csv(empty, "x", 10.0), std::runtime_error);
}

TEST(TraceIo, RejectsHeaderOnly) {
  std::stringstream in{"time_s,syscall,param_bucket,cpu_state,utilization,"
                       "freq_index,screen_state,brightness,wifi_state,"
                       "packet_rate\n"};
  EXPECT_THROW(load_trace_csv(in, "x", 10.0), std::runtime_error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream in{"header\n1.0,cpu_burst,3\n"};
  EXPECT_THROW(load_trace_csv(in, "x", 10.0), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownStateNames) {
  std::stringstream in{
      "header\n0.0,cpu_burst,3,warp9,50,1,on,180,idle,0\n"};
  EXPECT_THROW(load_trace_csv(in, "x", 10.0), std::runtime_error);
}

TEST(TraceIo, RejectsUnsortedTimestamps) {
  std::stringstream in{
      "header\n"
      "5.0,cpu_burst,3,c0,50,1,on,180,idle,0\n"
      "1.0,cpu_idle,0,c1,0,0,on,180,idle,0\n"};
  EXPECT_THROW(load_trace_csv(in, "x", 10.0), std::runtime_error);
}

TEST(TraceIo, HorizonExtendsPastLastEvent) {
  std::stringstream in{"header\n2.0,cpu_burst,3,c0,50,1,on,180,idle,0\n"};
  const auto trace = load_trace_csv(in, "x", 1.0);  // horizon below event
  EXPECT_GT(trace.horizon_s(), 2.0);
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = make_video()->generate(util::Seconds{60.0}, 3);
  const std::string path = "/tmp/capman_trace_io_test.csv";
  save_trace_csv(original, path);
  const auto loaded = load_trace_csv(path, original.horizon_s());
  EXPECT_EQ(loaded.events().size(), original.events().size());
  EXPECT_EQ(loaded.name(), "capman_trace_io_test.csv");
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv", 10.0),
               std::runtime_error);
}

}  // namespace
}  // namespace capman::workload
