// End-to-end telemetry contracts on real engine runs:
//  * enabling the decision-trace recorder (and the span profiler) leaves
//    every simulated quantity bit-identical to a sink-free run,
//  * the metrics snapshot a run carries is populated, consistent with the
//    summary stats, and reproducible run-to-run,
//  * FaultStats/DecisionStats views reconstruct exactly from the snapshot.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/engine.h"
#include "sim/experiment.h"
#include "workload/generators.h"

namespace capman::sim {
namespace {

device::PhoneModel nexus() {
  return device::PhoneModel{device::nexus_profile()};
}

workload::Trace video_trace(std::uint64_t seed = 7) {
  return workload::make_video()->generate(util::Seconds{600.0}, seed);
}

/// Everything simulated must match bit for bit; telemetry artifacts
/// (snapshot contents, trace files) are allowed to differ.
void expect_bit_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.service_time_s, b.service_time_s);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.died_of_brownout, b.died_of_brownout);
  EXPECT_EQ(a.energy_delivered_j, b.energy_delivered_j);
  EXPECT_EQ(a.energy_lost_j, b.energy_lost_j);
  EXPECT_EQ(a.tec_energy_j, b.tec_energy_j);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.avg_cpu_temp_c, b.avg_cpu_temp_c);
  EXPECT_EQ(a.max_cpu_temp_c, b.max_cpu_temp_c);
  EXPECT_EQ(a.switch_count, b.switch_count);
  EXPECT_EQ(a.big_active_s, b.big_active_s);
  EXPECT_EQ(a.little_active_s, b.little_active_s);
  EXPECT_EQ(a.end_big_soc, b.end_big_soc);
  EXPECT_EQ(a.end_little_soc, b.end_little_soc);
  ASSERT_EQ(a.soc_series.size(), b.soc_series.size());
  for (std::size_t i = 0; i < a.soc_series.size(); ++i) {
    EXPECT_EQ(a.soc_series.value_at(i), b.soc_series.value_at(i));
    EXPECT_EQ(a.power_series.value_at(i), b.power_series.value_at(i));
    EXPECT_EQ(a.cpu_temp_series.value_at(i), b.cpu_temp_series.value_at(i));
  }
}

TEST(TelemetryTest, DecisionTracingIsBitIdentical) {
  const auto trace = video_trace();

  RunnerOptions plain;
  plain.seed = 11;
  plain.config.max_duration = util::Seconds{900.0};
  const ExperimentRunner baseline{nexus(), plain};
  const auto r0 = baseline.run(trace, PolicyKind::kCapman);

  RunnerOptions traced = plain;
  const std::string path = "telemetry_test_decisions.jsonl";
  traced.config.telemetry.decision_trace_path = path;
  const ExperimentRunner recorder{nexus(), traced};
  const auto r1 = recorder.run(trace, PolicyKind::kCapman);

  expect_bit_identical(r0, r1);

  // The sink actually recorded: one line per consultation.
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(lines, r1.metrics.counter_or("engine/consults"));
  EXPECT_GT(lines, 0u);
}

TEST(TelemetryTest, SpanProfilingIsBitIdentical) {
  const auto trace = video_trace();

  RunnerOptions plain;
  plain.seed = 11;
  plain.config.max_duration = util::Seconds{600.0};
  const ExperimentRunner baseline{nexus(), plain};
  const auto r0 = baseline.run(trace, PolicyKind::kCapman);

  RunnerOptions profiled = plain;
  const std::string path = "telemetry_test_spans.json";
  profiled.config.telemetry.spans_path = path;
  const ExperimentRunner profiler{nexus(), profiled};
  const auto r1 = profiler.run(trace, PolicyKind::kCapman);

  expect_bit_identical(r0, r1);
  std::remove(path.c_str());

  // Only the profiled run counts its trace events.
  EXPECT_EQ(r0.metrics.counter_or("engine/trace_events"), 0u);
  EXPECT_GT(r1.metrics.counter_or("engine/trace_events"), 0u);
}

TEST(TelemetryTest, TimeDimensionSinksAreBitIdentical) {
  // Sampler + flight recorder + health monitor all on (the PR-8 time
  // dimension): every simulated quantity must still match a sink-free
  // run bit for bit — the three components only observe.
  const auto trace = video_trace();

  RunnerOptions plain;
  plain.seed = 11;
  plain.config.max_duration = util::Seconds{900.0};
  const ExperimentRunner baseline{nexus(), plain};
  const auto r0 = baseline.run(trace, PolicyKind::kCapman);

  RunnerOptions observed = plain;
  const std::string csv_path = "telemetry_test_samples.csv";
  const std::string dump_path = "telemetry_test_flight.jsonl";
  const std::string alerts_path = "telemetry_test_alerts.jsonl";
  observed.config.telemetry.sampler.enabled = true;
  observed.config.telemetry.sampler.csv_path = csv_path;
  observed.config.telemetry.recorder.enabled = true;
  observed.config.telemetry.recorder.dump_path = dump_path;
  observed.config.telemetry.recorder.dump_at_end = true;
  observed.config.telemetry.health.enabled = true;
  observed.config.telemetry.health.alerts_path = alerts_path;
  const ExperimentRunner recorder{nexus(), observed};
  const auto r1 = recorder.run(trace, PolicyKind::kCapman);

  expect_bit_identical(r0, r1);

  // Only the observed run carries health telemetry; the baseline result
  // must not even mention it (publication is gated on construction).
  EXPECT_GT(r1.health.evaluations, 0u);
  EXPECT_EQ(r0.health.evaluations, 0u);
  EXPECT_EQ(r0.metrics.counter_or("health/evaluations"), 0u);

  // The sinks actually landed.
  std::ifstream csv{csv_path};
  EXPECT_TRUE(csv.good());
  csv.close();
  std::ifstream dump{dump_path};
  EXPECT_TRUE(dump.good());
  dump.close();
  std::remove(csv_path.c_str());
  std::remove(dump_path.c_str());
  std::remove(alerts_path.c_str());
}

TEST(TelemetryTest, HealthStatsRoundTripThroughSnapshot) {
  RunnerOptions options;
  options.seed = 9;
  options.config.max_duration = util::Seconds{900.0};
  options.config.telemetry.health.enabled = true;
  FaultPlanConfig plan;
  plan.seed = 9;
  plan.stuck_rate_per_min = 2.0;
  plan.stuck_min_duration = util::Seconds{30.0};
  plan.stuck_max_duration = util::Seconds{60.0};
  options.faults = plan;
  const ExperimentRunner runner{nexus(), options};
  const auto r = runner.run(video_trace(), PolicyKind::kCapman);

  const auto views = obs::HealthStats::from_snapshot(r.metrics);
  EXPECT_EQ(views.evaluations, r.health.evaluations);
  EXPECT_EQ(views.alerts, r.health.alerts);
  EXPECT_GT(r.health.evaluations, 0u);
  EXPECT_EQ(r.health.total_alerts(), r.health_alerts.size());
}

TEST(TelemetryTest, SnapshotIsPopulatedAndConsistent) {
  RunnerOptions options;
  options.seed = 3;
  options.config.max_duration = util::Seconds{600.0};
  const ExperimentRunner runner{nexus(), options};
  const auto r = runner.run(video_trace(), PolicyKind::kCapman);

  const auto& m = r.metrics;
  EXPECT_FALSE(m.empty());
  EXPECT_GT(m.counter_or("engine/steps"), 0u);
  EXPECT_GT(m.counter_or("engine/consults"), 0u);
  EXPECT_EQ(m.counter_or("switch/count"), r.switch_count);
  EXPECT_DOUBLE_EQ(m.gauge_or("switch/big_active_s"), r.big_active_s);
  EXPECT_DOUBLE_EQ(m.gauge_or("switch/little_active_s"), r.little_active_s);

  // CAPMAN publishes its decision ladder; the branch counters add up to
  // the number of consultations the scheduler answered.
  const std::uint64_t ladder = m.counter_or("scheduler/decisions_exact") +
                               m.counter_or("scheduler/decisions_transferred") +
                               m.counter_or("scheduler/decisions_fallback") +
                               m.counter_or("scheduler/decisions_explored");
  EXPECT_GT(ladder, 0u);
  EXPECT_GT(m.counter_or("scheduler/recalibrations"), 0u);
  EXPECT_GT(m.counter_or("similarity/state_pairs_total"), 0u);
}

TEST(TelemetryTest, SnapshotIsReproducibleAcrossRuns) {
  RunnerOptions options;
  options.seed = 5;
  options.config.max_duration = util::Seconds{600.0};
  const ExperimentRunner runner{nexus(), options};

  const auto r1 = runner.run(video_trace(), PolicyKind::kCapman);
  const auto r2 = runner.run(video_trace(), PolicyKind::kCapman);

  std::ostringstream j1;
  std::ostringstream j2;
  r1.metrics.write_json(j1);
  r2.metrics.write_json(j2);
  EXPECT_EQ(j1.str(), j2.str());
}

TEST(TelemetryTest, FaultStatsRoundTripThroughSnapshot) {
  FaultPlanConfig plan;
  plan.seed = 9;
  plan.stuck_rate_per_min = 2.0;
  plan.stuck_min_duration = util::Seconds{30.0};
  plan.stuck_max_duration = util::Seconds{60.0};

  RunnerOptions options;
  options.seed = 9;
  options.config.max_duration = util::Seconds{600.0};
  options.faults = plan;
  const ExperimentRunner runner{nexus(), options};
  const auto r = runner.run(video_trace(), PolicyKind::kCapman);

  const FaultStats views = FaultStats::from_snapshot(r.metrics);
  EXPECT_EQ(views.stuck_episodes, r.faults.stuck_episodes);
  EXPECT_EQ(views.dropped_requests, r.faults.dropped_requests);
  EXPECT_EQ(views.detected_switch_failures, r.faults.detected_switch_failures);
  EXPECT_EQ(views.fallback_episodes, r.faults.fallback_episodes);
  EXPECT_EQ(views.fallback_retries, r.faults.fallback_retries);
  EXPECT_DOUBLE_EQ(views.stuck_time_s, r.faults.stuck_time_s);
  EXPECT_GT(views.stuck_episodes, 0u);
}

}  // namespace
}  // namespace capman::sim
