#include "sim/engine.h"

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/generators.h"

namespace capman::sim {
namespace {

device::PhoneModel nexus() { return device::PhoneModel{device::nexus_profile()}; }

workload::Trace video_trace(std::uint64_t seed = 7) {
  return workload::make_video()->generate(util::Seconds{600.0}, seed);
}

TEST(SimEngine, TruncatesAtMaxDuration) {
  // A sleeping phone outlives any short budget.
  workload::TraceBuilder tb{"sleep"};
  device::DeviceDemand sleep;  // defaults: Sleep/Off/Idle
  tb.add(0.0, {workload::Syscall::kScreenSleep, 0}, sleep);
  const auto trace = std::move(tb).build(60.0);

  SimConfig config;
  config.max_duration = util::Seconds{120.0};
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kDual);
  const auto r = engine.run(trace, *policy, nexus());
  EXPECT_TRUE(r.truncated);
  EXPECT_NEAR(r.service_time_s, 120.0, 1.0);
  EXPECT_FALSE(r.died_of_brownout);
}

TEST(SimEngine, PracticeRunsOnSinglePack) {
  SimConfig config;
  config.max_duration = util::Seconds{300.0};
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kPractice);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_EQ(r.switch_count, 0u);
  EXPECT_DOUBLE_EQ(r.little_active_s, 0.0);
  EXPECT_DOUBLE_EQ(r.end_little_soc, 0.0);
  EXPECT_GT(r.big_active_s, 0.0);
}

TEST(SimEngine, SeriesAreRecordedAndOrdered) {
  SimConfig config;
  config.max_duration = util::Seconds{120.0};
  config.series_period = util::Seconds{1.0};
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_GT(r.soc_series.size(), 50u);
  EXPECT_EQ(r.soc_series.size(), r.power_series.size());
  EXPECT_EQ(r.soc_series.size(), r.cpu_temp_series.size());
  // SoC never increases.
  for (std::size_t i = 1; i < r.soc_series.size(); ++i) {
    EXPECT_LE(r.soc_series.value_at(i), r.soc_series.value_at(i - 1) + 1e-9);
  }
}

TEST(SimEngine, RecordSeriesOffKeepsSeriesEmpty) {
  SimConfig config;
  config.max_duration = util::Seconds{60.0};
  config.record_series = false;
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_TRUE(r.soc_series.empty());
}

TEST(SimEngine, EnergyConservationAgainstPackCapacity) {
  // Delivered + lost can never exceed the pack's initial chemical energy.
  SimConfig config;
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  battery::DualBatteryPack fresh{config.pack_config};
  EXPECT_LE(r.energy_delivered_j + r.energy_lost_j,
            fresh.energy_remaining().value() * 1.02);
  EXPECT_GT(r.energy_delivered_j, 0.0);
}

TEST(SimEngine, DeterministicForSameSeed) {
  SimConfig config;
  config.max_duration = util::Seconds{900.0};
  SimEngine engine{config};
  auto a = make_policy(PolicyKind::kCapman, 9);
  auto b = make_policy(PolicyKind::kCapman, 9);
  const auto ra = engine.run(video_trace(3), *a, nexus());
  const auto rb = engine.run(video_trace(3), *b, nexus());
  EXPECT_DOUBLE_EQ(ra.service_time_s, rb.service_time_s);
  EXPECT_EQ(ra.switch_count, rb.switch_count);
  EXPECT_DOUBLE_EQ(ra.energy_delivered_j, rb.energy_delivered_j);
}

TEST(SimEngine, TecDisabledNeverDrawsTecPower) {
  SimConfig config;
  config.enable_tec = false;
  config.max_duration = util::Seconds{600.0};
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kDual);
  const auto r = engine.run(
      workload::make_geekbench()->generate(util::Seconds{600.0}, 7), *policy,
      nexus());
  EXPECT_DOUBLE_EQ(r.tec_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(r.tec_on_fraction, 0.0);
}

TEST(SimEngine, TecEngagesOnHotWorkload) {
  SimConfig config;
  config.max_duration = util::Seconds{1800.0};
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kDual);
  const auto r = engine.run(
      workload::make_geekbench()->generate(util::Seconds{600.0}, 7), *policy,
      nexus());
  EXPECT_GT(r.tec_on_fraction, 0.1);
  EXPECT_GT(r.tec_energy_j, 0.0);
  // The controller caps the hot spot near the threshold (death-phase
  // excursions allowed).
  EXPECT_LT(r.avg_cpu_temp_c, 48.0);
}

TEST(SimEngine, ResultMetadataFilled) {
  SimConfig config;
  config.max_duration = util::Seconds{30.0};
  SimEngine engine{config};
  auto policy = make_policy(PolicyKind::kOracle);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_EQ(r.workload, "Video");
  EXPECT_EQ(r.policy, "Oracle");
  EXPECT_EQ(r.phone, "Nexus");
  EXPECT_GT(r.avg_power_w, 0.5);
}

TEST(Experiment, AllPolicyKindsConstruct) {
  for (auto kind : all_policy_kinds()) {
    auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(Experiment, ImprovementPct) {
  EXPECT_DOUBLE_EQ(improvement_pct(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(50.0, 100.0), -50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(1.0, 0.0), 0.0);
}

TEST(Experiment, FindResultByName) {
  std::vector<SimResult> results(2);
  results[0].policy = "CAPMAN";
  results[1].policy = "Dual";
  EXPECT_EQ(find_result(results, "Dual"), &results[1]);
  EXPECT_EQ(find_result(results, "nope"), nullptr);
}

TEST(Experiment, ComparisonRunsAllFivePolicies) {
  SimConfig config;
  config.max_duration = util::Seconds{60.0};
  config.record_series = false;
  const auto results =
      run_policy_comparison(video_trace(), nexus(), config, 1);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].policy, "Oracle");
  EXPECT_EQ(results[4].policy, "Practice");
}

TEST(SimResult, DerivedAccessors) {
  SimResult r;
  r.energy_delivered_j = 80.0;
  r.energy_lost_j = 20.0;
  r.big_active_s = 300.0;
  r.little_active_s = 100.0;
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.8);
  EXPECT_DOUBLE_EQ(r.big_little_ratio(), 3.0);
  SimResult empty;
  EXPECT_DOUBLE_EQ(empty.efficiency(), 0.0);
  EXPECT_DOUBLE_EQ(empty.big_little_ratio(), 0.0);
}

}  // namespace
}  // namespace capman::sim
