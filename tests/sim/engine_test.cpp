#include "sim/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.h"
#include "workload/generators.h"

namespace capman::sim {
namespace {

device::PhoneModel nexus() { return device::PhoneModel{device::nexus_profile()}; }

workload::Trace video_trace(std::uint64_t seed = 7) {
  return workload::make_video()->generate(util::Seconds{600.0}, seed);
}

// Fresh policy of `kind` wired to `seed` via a throwaway runner (the
// replacement for the removed make_policy shim).
std::unique_ptr<policy::BatteryPolicy> make_test_policy(PolicyKind kind,
                                                        std::uint64_t seed = 42) {
  RunnerOptions options;
  options.seed = seed;
  return ExperimentRunner{nexus(), options}.build_policy(kind);
}

TEST(SimEngine, TruncatesAtMaxDuration) {
  // A sleeping phone outlives any short budget.
  workload::TraceBuilder tb{"sleep"};
  device::DeviceDemand sleep;  // defaults: Sleep/Off/Idle
  tb.add(0.0, {workload::Syscall::kScreenSleep, 0}, sleep);
  const auto trace = std::move(tb).build(60.0);

  SimConfig config;
  config.max_duration = util::Seconds{120.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(trace, *policy, nexus());
  EXPECT_TRUE(r.truncated);
  EXPECT_NEAR(r.service_time_s, 120.0, 1.0);
  EXPECT_FALSE(r.died_of_brownout);
}

TEST(SimEngine, PracticeRunsOnSinglePack) {
  SimConfig config;
  config.max_duration = util::Seconds{300.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kPractice);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_EQ(r.switch_count, 0u);
  EXPECT_DOUBLE_EQ(r.little_active_s, 0.0);
  EXPECT_DOUBLE_EQ(r.end_little_soc, 0.0);
  EXPECT_GT(r.big_active_s, 0.0);
}

TEST(SimEngine, SeriesAreRecordedAndOrdered) {
  SimConfig config;
  config.max_duration = util::Seconds{120.0};
  config.series_period = util::Seconds{1.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_GT(r.soc_series.size(), 50u);
  EXPECT_EQ(r.soc_series.size(), r.power_series.size());
  EXPECT_EQ(r.soc_series.size(), r.cpu_temp_series.size());
  // SoC never increases.
  for (std::size_t i = 1; i < r.soc_series.size(); ++i) {
    EXPECT_LE(r.soc_series.value_at(i), r.soc_series.value_at(i - 1) + 1e-9);
  }
}

TEST(SimEngine, RecordSeriesOffKeepsSeriesEmpty) {
  SimConfig config;
  config.max_duration = util::Seconds{60.0};
  config.record_series = false;
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_TRUE(r.soc_series.empty());
}

TEST(SimEngine, EnergyConservationAgainstPackCapacity) {
  // Delivered + lost can never exceed the pack's initial chemical energy.
  SimConfig config;
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  battery::DualBatteryPack fresh{config.pack_config};
  EXPECT_LE(r.energy_delivered_j + r.energy_lost_j,
            fresh.energy_remaining().value() * 1.02);
  EXPECT_GT(r.energy_delivered_j, 0.0);
}

TEST(SimEngine, DeterministicForSameSeed) {
  SimConfig config;
  config.max_duration = util::Seconds{900.0};
  SimEngine engine{config};
  auto a = make_test_policy(PolicyKind::kCapman, 9);
  auto b = make_test_policy(PolicyKind::kCapman, 9);
  const auto ra = engine.run(video_trace(3), *a, nexus());
  const auto rb = engine.run(video_trace(3), *b, nexus());
  EXPECT_DOUBLE_EQ(ra.service_time_s, rb.service_time_s);
  EXPECT_EQ(ra.switch_count, rb.switch_count);
  EXPECT_DOUBLE_EQ(ra.energy_delivered_j, rb.energy_delivered_j);
}

TEST(SimEngine, TecDisabledNeverDrawsTecPower) {
  SimConfig config;
  config.enable_tec = false;
  config.max_duration = util::Seconds{600.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(
      workload::make_geekbench()->generate(util::Seconds{600.0}, 7), *policy,
      nexus());
  EXPECT_DOUBLE_EQ(r.tec_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(r.tec_on_fraction, 0.0);
}

TEST(SimEngine, TecEngagesOnHotWorkload) {
  SimConfig config;
  config.max_duration = util::Seconds{1800.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(
      workload::make_geekbench()->generate(util::Seconds{600.0}, 7), *policy,
      nexus());
  EXPECT_GT(r.tec_on_fraction, 0.1);
  EXPECT_GT(r.tec_energy_j, 0.0);
  // The controller caps the hot spot near the threshold (death-phase
  // excursions allowed).
  EXPECT_LT(r.avg_cpu_temp_c, 48.0);
}

TEST(SimEngine, ResultMetadataFilled) {
  SimConfig config;
  config.max_duration = util::Seconds{30.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kOracle);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_EQ(r.workload, "Video");
  EXPECT_EQ(r.policy, "Oracle");
  EXPECT_EQ(r.phone, "Nexus");
  EXPECT_GT(r.avg_power_w, 0.5);
}

TEST(Experiment, AllPolicyKindsConstruct) {
  for (auto kind : all_policy_kinds()) {
    auto policy = make_test_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(Experiment, ImprovementPct) {
  EXPECT_DOUBLE_EQ(improvement_pct(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(50.0, 100.0), -50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(1.0, 0.0), 0.0);
}

TEST(Experiment, FindResultByName) {
  std::vector<SimResult> results(2);
  results[0].policy = "CAPMAN";
  results[1].policy = "Dual";
  EXPECT_EQ(find_result(results, "Dual"), &results[1]);
  EXPECT_EQ(find_result(results, "nope"), nullptr);
}

TEST(Experiment, FindResultIsCaseInsensitive) {
  std::vector<SimResult> results(2);
  results[0].policy = "CAPMAN";
  results[1].policy = "Dual";
  EXPECT_EQ(find_result(results, "capman"), &results[0]);
  EXPECT_EQ(find_result(results, "DUAL"), &results[1]);
  EXPECT_EQ(find_result(results, "dua"), nullptr);  // no prefix matching
}

// Policy display names are stable API (tables, CSVs and lookups key on
// them); renaming one is a breaking change and must show up here.
TEST(Experiment, PolicyNamesAreStable) {
  EXPECT_STREQ(to_string(PolicyKind::kOracle), "Oracle");
  EXPECT_STREQ(to_string(PolicyKind::kCapman), "CAPMAN");
  EXPECT_STREQ(to_string(PolicyKind::kDual), "Dual");
  EXPECT_STREQ(to_string(PolicyKind::kHeuristic), "Heuristic");
  EXPECT_STREQ(to_string(PolicyKind::kPractice), "Practice");
}

TEST(SimConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(SimConfig{}.validate().empty());
}

TEST(SimConfigValidate, ListsEveryProblem) {
  SimConfig config;
  config.dt = util::Seconds{-0.05};
  config.death_grace = util::Seconds{0.0};
  config.pack_config.switch_config.oscillator_hz = 0.0;
  config.faults.sensor_dropout_prob = 7.0;
  const auto errors = config.validate();
  EXPECT_EQ(errors.size(), 4u);
}

TEST(SimConfigValidate, AggregatesNestedConfigsWithPathPrefixes) {
  // Every nested *Config is reachable from SimConfig::validate() (the L3
  // lint contract) and each error is prefixed with the member path.
  SimConfig config;
  config.pack_config.baseline_tau = util::Seconds{0.0};
  config.pack_config.switch_config.oscillator_hz = 0.0;
  config.thermal_config.cpu_capacity = -1.0;
  config.cooling_config.hysteresis = util::KelvinDiff{-1.0};
  config.telemetry.verbose_spans = true;  // without spans_path
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 5u);
  const auto has = [&errors](const std::string& needle) {
    for (const auto& e : errors) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("pack_config.baseline_tau"));
  EXPECT_TRUE(has("pack_config.switch_config: oscillator_hz"));
  EXPECT_TRUE(has("thermal_config.cpu_capacity"));
  EXPECT_TRUE(has("cooling_config.hysteresis"));
  EXPECT_TRUE(has("telemetry.verbose_spans"));
}

TEST(SimConfigValidate, TelemetrySinksMustNotShareAFile) {
  SimConfig config;
  config.telemetry.decision_trace_path = "same.out";
  config.telemetry.spans_path = "same.out";
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("decision_trace_path"), std::string::npos);
  EXPECT_NE(errors.front().find("spans_path"), std::string::npos);
}

TEST(SimConfigValidate, EngineConstructionRejectsInvalidConfig) {
  SimConfig config;
  config.dt = util::Seconds{0.0};
  EXPECT_THROW(SimEngine{config}, std::invalid_argument);
  SimConfig bad_switch;
  bad_switch.pack_config.switch_config.oscillator_hz = -1.0;
  EXPECT_THROW(SimEngine{bad_switch}, std::invalid_argument);
  EXPECT_THROW(
      (ExperimentRunner{nexus(), {bad_switch, 42, std::nullopt}}),
      std::invalid_argument);
}

TEST(ExperimentRunner, CompareIsDeterministic) {
  SimConfig config;
  config.max_duration = util::Seconds{120.0};
  config.record_series = false;
  const auto trace = video_trace(5);

  ExperimentRunner first{nexus(), {config, 11, std::nullopt}};
  ExperimentRunner second{nexus(), {config, 11, std::nullopt}};
  const auto a = first.compare(trace);
  const auto b = second.compare(trace);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    EXPECT_EQ(ea.result.policy, eb.result.policy);
    EXPECT_DOUBLE_EQ(ea.result.service_time_s, eb.result.service_time_s);
    EXPECT_EQ(ea.result.switch_count, eb.result.switch_count);
    EXPECT_DOUBLE_EQ(ea.result.energy_delivered_j,
                     eb.result.energy_delivered_j);
  }
}

TEST(ExperimentRunner, ComparisonResultLookups) {
  SimConfig config;
  config.max_duration = util::Seconds{60.0};
  config.record_series = false;
  ExperimentRunner runner{nexus(), {config, 1, std::nullopt}};
  const auto comparison = runner.compare(video_trace());

  EXPECT_EQ(comparison.at(PolicyKind::kCapman).policy, "CAPMAN");
  ASSERT_NE(comparison.find("practice"), nullptr);  // case-insensitive
  EXPECT_EQ(comparison.find("practice")->policy, "Practice");
  EXPECT_EQ(comparison.find("nope"), nullptr);

  ComparisonResult empty;
  EXPECT_EQ(empty.find(PolicyKind::kOracle), nullptr);
  EXPECT_THROW(static_cast<void>(empty.at(PolicyKind::kOracle)),
               std::out_of_range);

  const auto vec = comparison.to_vector();
  ASSERT_EQ(vec.size(), 5u);
  EXPECT_EQ(vec[0].policy, "Oracle");  // legacy paper order preserved
  EXPECT_EQ(vec[4].policy, "Practice");
}

TEST(ExperimentRunner, RunCyclesKeepsOnePolicyInstance) {
  SimConfig config;
  config.max_duration = util::Seconds{60.0};
  config.record_series = false;
  ExperimentRunner runner{nexus(), {config, 2, std::nullopt}};
  const auto cycles = runner.run_cycles(video_trace(), PolicyKind::kCapman, 3);
  ASSERT_EQ(cycles.size(), 3u);
  for (const auto& r : cycles) EXPECT_EQ(r.policy, "CAPMAN");
}

TEST(Experiment, ComparisonRunsAllFivePolicies) {
  SimConfig config;
  config.max_duration = util::Seconds{60.0};
  config.record_series = false;
  const auto results =
      ExperimentRunner{nexus(), {config, 1, std::nullopt}}.compare(video_trace())
          .to_vector();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].policy, "Oracle");
  EXPECT_EQ(results[4].policy, "Practice");
}

// ------------------------------------------------- power-budget arbiter ---

TEST(SimEngineBudget, DisabledArbiterLeavesResultFieldsZero) {
  SimConfig config;
  config.max_duration = util::Seconds{120.0};
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kDual);
  const auto r = engine.run(video_trace(), *policy, nexus());
  EXPECT_DOUBLE_EQ(r.avg_budget_mw, 0.0);
  EXPECT_DOUBLE_EQ(r.budget_shed_j, 0.0);
  EXPECT_EQ(r.budget_rebudgets, 0u);
  EXPECT_EQ(r.budget_throttled_steps, 0u);
  EXPECT_EQ(r.budget_tec_vetoes, 0u);
}

TEST(SimEngineBudget, ValidationErrorsCarryTheBudgetPrefix) {
  SimConfig config;
  config.budget.enabled = true;
  config.budget.min_rebudget_gap_s = 0.0;
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front(), "budget.min_rebudget_gap_s must be > 0");
  EXPECT_THROW(SimEngine{config}, std::invalid_argument);
}

TEST(SimEngineBudget, EnabledRunIsDeterministic) {
  SimConfig config;
  config.max_duration = util::Seconds{900.0};
  config.budget.enabled = true;
  config.budget.base_budget_mw = util::Milliwatts{3200.0};
  SimEngine engine{config};
  RunnerOptions options;
  options.seed = 9;
  options.config = config;
  options.capman.learn_budget = true;
  const ExperimentRunner runner{nexus(), options};
  auto a = runner.build_policy(PolicyKind::kCapman);
  auto b = runner.build_policy(PolicyKind::kCapman);
  const auto ra = engine.run(video_trace(3), *a, nexus());
  const auto rb = engine.run(video_trace(3), *b, nexus());
  EXPECT_DOUBLE_EQ(ra.service_time_s, rb.service_time_s);
  EXPECT_EQ(ra.switch_count, rb.switch_count);
  EXPECT_DOUBLE_EQ(ra.energy_delivered_j, rb.energy_delivered_j);
  EXPECT_DOUBLE_EQ(ra.avg_budget_mw, rb.avg_budget_mw);
  EXPECT_EQ(ra.budget_rebudgets, rb.budget_rebudgets);
  EXPECT_EQ(ra.budget_tec_vetoes, rb.budget_tec_vetoes);
  EXPECT_GT(ra.budget_rebudgets, 0u);
  EXPECT_GT(ra.avg_budget_mw, 0.0);
}

TEST(SimEngineBudget, TightBudgetShedsPowerAndCoolsTheRun) {
  SimConfig config;
  config.max_duration = util::Seconds{900.0};
  config.record_series = false;
  SimEngine uncapped_engine{config};
  auto uncapped_policy = make_test_policy(PolicyKind::kDual);
  const auto trace =
      workload::make_geekbench()->generate(util::Seconds{600.0}, 7);
  const auto uncapped = uncapped_engine.run(trace, *uncapped_policy, nexus());

  config.budget.enabled = true;
  config.budget.base_budget_mw = util::Milliwatts{2400.0};
  SimEngine capped_engine{config};
  auto capped_policy = make_test_policy(PolicyKind::kDual);
  const auto capped = capped_engine.run(trace, *capped_policy, nexus());

  EXPECT_GT(capped.budget_throttled_steps, 0u);
  EXPECT_GT(capped.budget_shed_j, 0.0);
  EXPECT_LT(capped.avg_power_w, uncapped.avg_power_w);
  EXPECT_LE(capped.max_cpu_temp_c, uncapped.max_cpu_temp_c + 0.5);
}

TEST(SimResult, DerivedAccessors) {
  SimResult r;
  r.energy_delivered_j = 80.0;
  r.energy_lost_j = 20.0;
  r.big_active_s = 300.0;
  r.little_active_s = 100.0;
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.8);
  EXPECT_DOUBLE_EQ(r.big_little_ratio(), 3.0);
  SimResult empty;
  EXPECT_DOUBLE_EQ(empty.efficiency(), 0.0);
  EXPECT_DOUBLE_EQ(empty.big_little_ratio(), 0.0);
}

}  // namespace
}  // namespace capman::sim
