// FleetRunner determinism suite: pins every clause of the contract in
// src/sim/fleet.h — seed-only device sampling, bit-identical aggregates
// across thread AND shard counts, and the PR-4 field-naming convention of
// FleetConfig::validate().
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

namespace capman::sim {
namespace {

// A fleet small and short enough for unit tests: tiny cells (devices die
// in minutes of simulated time), coarse dt, short trace horizon.
FleetConfig small_fleet(std::size_t devices, std::size_t shards = 0,
                        std::size_t threads = 1) {
  FleetConfig config;
  config.device_count = devices;
  config.shard_count = shards;
  config.threads = threads;
  config.seed = 7;
  config.base.dt = util::Seconds{0.25};
  config.base.max_duration = util::hours(2.0);
  config.base.record_series = false;
  config.population.big_capacity_mah_lo = 500.0;
  config.population.big_capacity_mah_hi = 800.0;
  config.population.little_capacity_mah_lo = 200.0;
  config.population.little_capacity_mah_hi = 350.0;
  config.population.trace_horizon = util::Seconds{120.0};
  return config;
}

std::string snapshot_json(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream out;
  snapshot.write_json(out);
  return out.str();
}

bool has_error(const std::vector<std::string>& errors,
               const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(),
                     [&needle](const std::string& e) {
                       return e.find(needle) != std::string::npos;
                     });
}

TEST(FleetConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(FleetConfig{}.validate().empty());
  EXPECT_TRUE(PopulationSpec{}.validate().empty());
}

TEST(FleetConfigValidate, FieldMessagesAreLocked) {
  FleetConfig config;
  config.device_count = 0;
  config.sketch_relative_error = 1.5;
  config.policies.clear();
  auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "device_count must be > 0"));
  EXPECT_TRUE(has_error(errors, "policies must not be empty"));
  EXPECT_TRUE(
      has_error(errors, "sketch_relative_error must be in (0, 1)"));
}

TEST(FleetConfigValidate, ShardCountBounds) {
  FleetConfig config;
  config.device_count = 8;
  config.shard_count = 9;
  EXPECT_TRUE(has_error(config.validate(),
                        "shard_count must be <= device_count (0 = auto)"));
  config.device_count = 100000;
  config.shard_count = 5000;
  EXPECT_TRUE(has_error(config.validate(), "shard_count must be <= 4096"));
  config.shard_count = 0;  // auto is always legal
  EXPECT_TRUE(config.validate().empty());
}

TEST(FleetConfigValidate, RepeatedPoliciesRejected) {
  FleetConfig config;
  config.policies = {PolicyKind::kDual, PolicyKind::kDual};
  EXPECT_TRUE(
      has_error(config.validate(), "policies must not repeat a PolicyKind"));
}

TEST(FleetConfigValidate, BaseFaultPlansAreRejected) {
  FleetConfig config;
  config.base.faults.stuck_rate_per_min = 1.0;
  EXPECT_TRUE(has_error(
      config.validate(),
      "base.faults must be inactive; sample fleet faults via "
      "population.fault_fraction and fault_template"));
}

TEST(FleetConfigValidate, NestedErrorsCarryPathPrefixes) {
  FleetConfig config;
  config.base.dt = util::Seconds{0.0};
  config.population.fault_fraction = 2.0;
  config.population.ambient_hi = util::Celsius{-10.0};
  auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "base.dt must be > 0"));
  EXPECT_TRUE(
      has_error(errors, "population.fault_fraction must be in [0, 1]"));
  EXPECT_TRUE(
      has_error(errors, "population.ambient_hi must be >= ambient_lo"));
}

TEST(PopulationSpecValidate, WeightedChoiceMessages) {
  PopulationSpec spec;
  spec.phones.clear();
  spec.workloads[0].weight = -1.0;
  spec.big_chemistries = {{battery::Chemistry::kNCA, 0.0}};
  spec.big_capacity_mah_lo = 0.0;
  spec.workloads[2].eta = 1.5;
  auto errors = spec.validate();
  EXPECT_TRUE(has_error(errors, "phones must not be empty"));
  EXPECT_TRUE(has_error(errors, "workloads weights must be >= 0"));
  EXPECT_TRUE(
      has_error(errors, "big_chemistries needs at least one positive weight"));
  EXPECT_TRUE(has_error(errors, "big_capacity_mah_lo must be > 0"));
  EXPECT_TRUE(has_error(errors, "workloads[2].eta must be in [0, 1]"));
}

TEST(FleetRunner, CtorThrowsListingEveryProblem) {
  FleetConfig config;
  config.device_count = 0;
  config.policies.clear();
  try {
    FleetRunner runner{config};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("invalid FleetConfig:"), std::string::npos);
    EXPECT_NE(message.find("device_count must be > 0"), std::string::npos);
    EXPECT_NE(message.find("policies must not be empty"), std::string::npos);
  }
}

TEST(FleetRunner, DeviceSeedIsPureAndSpreads) {
  EXPECT_EQ(FleetRunner::device_seed(7, 3), FleetRunner::device_seed(7, 3));
  EXPECT_NE(FleetRunner::device_seed(7, 3), FleetRunner::device_seed(7, 4));
  EXPECT_NE(FleetRunner::device_seed(7, 3), FleetRunner::device_seed(8, 3));
}

TEST(FleetRunner, SampleDeviceIsDeterministicAndInRange) {
  const PopulationSpec spec;
  for (std::uint64_t id = 0; id < 100; ++id) {
    const DeviceSpec a = FleetRunner::sample_device(spec, 42, id);
    const DeviceSpec b = FleetRunner::sample_device(spec, 42, id);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.phone, b.phone);
    EXPECT_DOUBLE_EQ(a.big_capacity_mah, b.big_capacity_mah);
    EXPECT_DOUBLE_EQ(a.ambient.value(), b.ambient.value());
    EXPECT_GE(a.big_capacity_mah, spec.big_capacity_mah_lo);
    EXPECT_LT(a.big_capacity_mah, spec.big_capacity_mah_hi);
    EXPECT_GE(a.little_capacity_mah, spec.little_capacity_mah_lo);
    EXPECT_LT(a.little_capacity_mah, spec.little_capacity_mah_hi);
    EXPECT_GE(a.ambient.value(), spec.ambient_lo.value());
    EXPECT_LT(a.ambient.value(), spec.ambient_hi.value());
    EXPECT_FALSE(a.faulty);  // fault_fraction defaults to 0
  }
}

TEST(FleetRunner, ZeroWeightChoicesAreNeverSampled) {
  PopulationSpec spec;
  spec.phones = {{FleetPhone::kNexus, 1.0}, {FleetPhone::kHonor, 0.0}};
  spec.big_chemistries = {{battery::Chemistry::kNMC, 1.0},
                          {battery::Chemistry::kNCA, 0.0}};
  for (std::uint64_t id = 0; id < 200; ++id) {
    const DeviceSpec device = FleetRunner::sample_device(spec, 1, id);
    EXPECT_EQ(device.phone, FleetPhone::kNexus);
    EXPECT_EQ(device.big_chemistry, battery::Chemistry::kNMC);
  }
}

TEST(FleetRunner, PopulationIsActuallyHeterogeneous) {
  const PopulationSpec spec;
  bool phones_differ = false, capacities_differ = false;
  const DeviceSpec first = FleetRunner::sample_device(spec, 42, 0);
  for (std::uint64_t id = 1; id < 50; ++id) {
    const DeviceSpec device = FleetRunner::sample_device(spec, 42, id);
    phones_differ |= device.phone != first.phone;
    capacities_differ |= device.big_capacity_mah < first.big_capacity_mah ||
                         device.big_capacity_mah > first.big_capacity_mah;
  }
  EXPECT_TRUE(phones_differ);
  EXPECT_TRUE(capacities_differ);
}

TEST(FleetRunner, ResolvesAutoShardAndThreadCounts) {
  const FleetRunner runner{small_fleet(10)};
  EXPECT_EQ(runner.shard_count(), 10u);  // min(devices, 64)
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(FleetRunner, RunProducesCoherentAggregates) {
  const FleetRunner runner{small_fleet(8, 4)};
  const FleetResult result = runner.run();

  EXPECT_EQ(result.device_count, 8u);
  EXPECT_EQ(result.shard_count, 4u);
  ASSERT_EQ(result.policies.size(), 2u);
  for (const auto& aggregate : result.policies) {
    EXPECT_EQ(aggregate.devices, 8u);
    EXPECT_EQ(aggregate.lifetime_s_sketch.count(), 8u);
    EXPECT_GT(aggregate.mean_lifetime_s(), 0.0);
    EXPECT_GT(aggregate.mean_energy_j(), 0.0);
    EXPECT_GT(aggregate.mean_max_temp_c(), 10.0);
    EXPECT_LE(aggregate.lifetime_s_sketch.min(),
              aggregate.mean_lifetime_s());
    EXPECT_LE(aggregate.mean_lifetime_s(),
              aggregate.lifetime_s_sketch.max() + 1e-9);
  }

  // Shard ranges tile [0, device_count) and steps roll up.
  ASSERT_EQ(result.shards.size(), 4u);
  std::size_t expected_begin = 0;
  std::uint64_t steps = 0;
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.device_begin, expected_begin);
    expected_begin = shard.device_end;
    steps += shard.engine_steps;
  }
  EXPECT_EQ(expected_begin, 8u);
  EXPECT_EQ(steps, result.total_engine_steps);
  EXPECT_GT(steps, 0u);

  // Lookup and registry mapping.
  ASSERT_NE(result.find(PolicyKind::kDual), nullptr);
  EXPECT_EQ(result.find(PolicyKind::kOracle), nullptr);
  EXPECT_EQ(result.metrics.counter_or("fleet/devices"), 8u);
  EXPECT_EQ(result.metrics.counter_or("fleet/shards"), 4u);
  EXPECT_EQ(result.metrics.counter_or("fleet/steps"),
            result.total_engine_steps);
  EXPECT_EQ(result.metrics.counter_or("fleet/Dual/devices"), 8u);
  EXPECT_EQ(result.metrics.counter_or("fleet/shard/0000/devices"), 2u);
  EXPECT_GT(result.metrics.gauge_or("fleet/Dual/lifetime_s/mean"), 0.0);
}

// The headline contract: thread count never changes anything observable.
TEST(FleetRunner, BitIdenticalAcrossThreadCounts) {
  const FleetResult r1 = FleetRunner{small_fleet(12, 6, 1)}.run();
  const FleetResult r2 = FleetRunner{small_fleet(12, 6, 2)}.run();
  const FleetResult r8 = FleetRunner{small_fleet(12, 6, 8)}.run();
  const std::string json1 = snapshot_json(r1.metrics);
  EXPECT_EQ(json1, snapshot_json(r2.metrics));
  EXPECT_EQ(json1, snapshot_json(r8.metrics));
  EXPECT_EQ(r1.total_engine_steps, r8.total_engine_steps);
}

// And shard count only changes the fleet/shard/* breakdown — the merged
// policy aggregates are bit-identical because merges are integer folds.
TEST(FleetRunner, PolicyAggregatesIdenticalAcrossShardCounts) {
  const FleetResult base = FleetRunner{small_fleet(12, 1, 2)}.run();
  for (std::size_t shards : {3u, 6u, 12u}) {
    const FleetResult other = FleetRunner{small_fleet(12, shards, 2)}.run();
    ASSERT_EQ(other.policies.size(), base.policies.size());
    for (std::size_t i = 0; i < base.policies.size(); ++i) {
      const auto& a = base.policies[i];
      const auto& b = other.policies[i];
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.devices, b.devices);
      EXPECT_EQ(a.brownouts, b.brownouts);
      EXPECT_EQ(a.truncated, b.truncated);
      EXPECT_EQ(a.switch_total, b.switch_total);
      EXPECT_EQ(a.lifetime_us, b.lifetime_us);
      EXPECT_EQ(a.max_temp_mc, b.max_temp_mc);
      EXPECT_EQ(a.energy_delivered_mj, b.energy_delivered_mj);
      EXPECT_EQ(a.lifetime_s_sketch.count(), b.lifetime_s_sketch.count());
      for (double q : {0.0, 0.5, 0.9, 1.0}) {
        EXPECT_DOUBLE_EQ(a.lifetime_s_sketch.quantile(q),
                         b.lifetime_s_sketch.quantile(q))
            << shards << " shards, q=" << q;
      }
    }
  }
}

TEST(FleetRunner, RepeatedRunsAreBitIdentical) {
  const FleetRunner runner{small_fleet(6, 3, 2)};
  EXPECT_EQ(snapshot_json(runner.run().metrics),
            snapshot_json(runner.run().metrics));
}

TEST(FleetRunner, DifferentSeedsChangeTheFleet) {
  FleetConfig a = small_fleet(8, 4);
  FleetConfig b = small_fleet(8, 4);
  b.seed = 8;
  EXPECT_NE(snapshot_json(FleetRunner{a}.run().metrics),
            snapshot_json(FleetRunner{b}.run().metrics));
}

TEST(FleetRunner, FaultFractionSamplesFaultyDevices) {
  FleetConfig config = small_fleet(6, 3);
  config.population.fault_fraction = 1.0;
  config.population.fault_template.stuck_rate_per_min = 2.0;
  const FleetResult result = FleetRunner{config}.run();
  for (const auto& aggregate : result.policies) {
    EXPECT_EQ(aggregate.faulty_devices, 6u);
  }
  // Per-device fault seeds differ even though the template is shared.
  const DeviceSpec d0 =
      FleetRunner::sample_device(config.population, config.seed, 0);
  const DeviceSpec d1 =
      FleetRunner::sample_device(config.population, config.seed, 1);
  EXPECT_TRUE(d0.faulty);
  EXPECT_TRUE(d1.faulty);
  EXPECT_NE(d0.fault_seed, d1.fault_seed);
}

// Arbiter-enabled fleets keep the headline determinism contract: the
// arbiter is pure arithmetic, so thread count still changes nothing.
TEST(FleetRunner, BudgetEnabledStaysBitIdenticalAcrossThreads) {
  FleetConfig base = small_fleet(8, 4, 1);
  base.base.budget.enabled = true;
  base.base.budget.base_budget_mw = util::Milliwatts{2600.0};
  base.capman.learn_budget = true;
  FleetConfig threaded = base;
  threaded.threads = 4;
  const FleetResult r1 = FleetRunner{base}.run();
  const FleetResult r4 = FleetRunner{threaded}.run();
  EXPECT_EQ(snapshot_json(r1.metrics), snapshot_json(r4.metrics));
  EXPECT_EQ(r1.total_engine_steps, r4.total_engine_steps);
}

// Health monitoring reduces per-device alert counts into the policy
// aggregates by exact integer folds in shard order, so the PR-8 contract
// holds: thread count changes nothing observable, including alert counts.
TEST(FleetRunner, HealthAlertCountsBitIdenticalAcrossThreadCounts) {
  FleetConfig base = small_fleet(12, 6, 1);
  base.health.enabled = true;
  // Every device faulty so the watchdogs have something to bark at.
  base.population.fault_fraction = 1.0;
  base.population.fault_template.stuck_rate_per_min = 2.0;
  FleetConfig threaded = base;
  threaded.threads = 4;

  const FleetResult r1 = FleetRunner{base}.run();
  const FleetResult r4 = FleetRunner{threaded}.run();

  EXPECT_TRUE(r1.health_enabled);
  EXPECT_EQ(snapshot_json(r1.metrics), snapshot_json(r4.metrics));
  ASSERT_EQ(r1.policies.size(), r4.policies.size());
  std::uint64_t evaluations = 0;
  for (std::size_t i = 0; i < r1.policies.size(); ++i) {
    EXPECT_EQ(r1.policies[i].health_evaluations,
              r4.policies[i].health_evaluations);
    EXPECT_EQ(r1.policies[i].health_alerts, r4.policies[i].health_alerts);
    evaluations += r1.policies[i].health_evaluations;
  }
  EXPECT_GT(evaluations, 0u);
}

// Shard count changes only the fleet/shard/* breakdown; merged per-policy
// alert counts are invariant because the fold is shard-ordered integers.
TEST(FleetRunner, HealthAlertCountsIdenticalAcrossShardCounts) {
  FleetConfig base = small_fleet(12, 1, 2);
  base.health.enabled = true;
  base.population.fault_fraction = 1.0;
  base.population.fault_template.stuck_rate_per_min = 2.0;
  const FleetResult one = FleetRunner{base}.run();

  for (std::size_t shards : {3u, 6u, 12u}) {
    FleetConfig config = base;
    config.shard_count = shards;
    const FleetResult other = FleetRunner{config}.run();
    ASSERT_EQ(other.policies.size(), one.policies.size());
    for (std::size_t i = 0; i < one.policies.size(); ++i) {
      const auto& a = one.policies[i];
      const auto& b = other.policies[i];
      EXPECT_EQ(a.health_evaluations, b.health_evaluations)
          << shards << " shards, policy " << i;
      EXPECT_EQ(a.health_alerts, b.health_alerts)
          << shards << " shards, policy " << i;
      EXPECT_EQ(a.health_alert_total(), b.health_alert_total());
    }
  }
}

// Health counters must stay out of default snapshots entirely — that is
// what keeps pre-health and health-off fleets bit-identical.
TEST(FleetRunner, HealthCountersAbsentWhenMonitoringIsOff) {
  const FleetResult result = FleetRunner{small_fleet(4, 2)}.run();
  EXPECT_FALSE(result.health_enabled);
  const std::string json = snapshot_json(result.metrics);
  EXPECT_EQ(json.find("health"), std::string::npos);
  for (const auto& aggregate : result.policies) {
    EXPECT_EQ(aggregate.health_evaluations, 0u);
    EXPECT_EQ(aggregate.health_alert_total(), 0u);
  }
}

TEST(FleetConfigValidate, HealthAlertsPathIsRejected) {
  FleetConfig config;
  config.health.enabled = true;
  config.health.alerts_path = "alerts.jsonl";
  EXPECT_TRUE(has_error(
      config.validate(),
      "health.alerts_path must be empty for fleet runs (fleets "
      "aggregate alert counts, they do not write per-device files)"));
}

TEST(FleetConfigValidate, HealthErrorsCarryTheNestedPrefix) {
  FleetConfig config;
  config.health.enabled = true;
  config.health.thermal_window_s = 0.0;
  const auto errors = config.validate();
  bool prefixed = false;
  for (const auto& error : errors) {
    prefixed = prefixed || error.rfind("health.", 0) == 0;
  }
  EXPECT_TRUE(prefixed) << "health.* validation must carry the prefix";
}

TEST(FleetConfigValidate, BudgetErrorsCarryTheNestedPrefix) {
  FleetConfig config;
  config.base.budget.enabled = true;
  config.base.budget.min_rebudget_gap_s = 0.0;
  EXPECT_TRUE(has_error(config.validate(),
                        "base.budget.min_rebudget_gap_s must be > 0"));
}

TEST(FleetRunner, EnumNamesAreStable) {
  EXPECT_STREQ(to_string(FleetPhone::kNexus), "nexus");
  EXPECT_STREQ(to_string(FleetPhone::kHonor), "honor");
  EXPECT_STREQ(to_string(FleetPhone::kLenovo), "lenovo");
  EXPECT_STREQ(to_string(FleetWorkload::kGeekbench), "geekbench");
  EXPECT_STREQ(to_string(FleetWorkload::kEtaStatic), "eta");
  EXPECT_STREQ(to_string(FleetWorkload::kScreenToggle), "toggle");
}

// ---------------------------------------------------------------------------
// Supervised execution (bounded retry + quarantine)

TEST(FleetConfigValidate, CheckpointErrorsCarryTheNestedPrefix) {
  FleetConfig config;
  config.checkpoint.every_shards = 0;
  EXPECT_TRUE(has_error(config.validate(),
                        "checkpoint.every_shards must be > 0"));
  config = FleetConfig{};
  config.checkpoint.resume = true;  // no directory
  EXPECT_TRUE(has_error(config.validate(),
                        "checkpoint.resume requires a checkpoint directory"));
}

TEST(FleetSupervisor, PoisonedDeviceIsQuarantinedAfterBoundedRetry) {
  auto config = small_fleet(20, 4);
  config.poison_devices = {5};
  config.quarantine_retries = 2;
  const FleetRunner runner{config};
  const auto result = runner.run();

  EXPECT_EQ(result.quarantined_devices, 1u);
  EXPECT_EQ(result.quarantine_retries, 2u);  // both extra attempts burned
  for (const auto& aggregate : result.policies) {
    EXPECT_EQ(aggregate.quarantined, 1u);
    // The quarantined device contributes to no aggregate: 19 fold in.
    EXPECT_EQ(aggregate.devices, 19u);
  }
  // The campaign is loud about it: fleet/<policy>/quarantined counters
  // plus the per-shard supervisor counters.
  bool shard_counter_seen = false;
  for (const auto& counter : result.metrics.counters) {
    if (counter.name.find("/quarantined") != std::string::npos &&
        counter.value > 0) {
      shard_counter_seen = true;
    }
  }
  EXPECT_TRUE(shard_counter_seen);
}

TEST(FleetSupervisor, QuarantineIsDeterministicAcrossThreadCounts) {
  auto config = small_fleet(20, 4, 1);
  config.poison_devices = {3, 11};
  const auto serial = FleetRunner{config}.run();
  config.threads = 2;
  const auto parallel = FleetRunner{config}.run();
  EXPECT_EQ(serial.quarantined_devices, 2u);
  EXPECT_EQ(snapshot_json(serial.metrics), snapshot_json(parallel.metrics));
}

TEST(FleetSupervisor, TransientPoisonSucceedsOnRetryWithoutHalfCounting) {
  auto config = small_fleet(20, 4);
  const auto clean = FleetRunner{config}.run();

  config.poison_devices = {5};
  config.poison_transient = true;  // first attempt throws, retry succeeds
  const auto retried = FleetRunner{config}.run();

  EXPECT_EQ(retried.quarantined_devices, 0u);
  EXPECT_EQ(retried.quarantine_retries, 1u);
  ASSERT_EQ(retried.policies.size(), clean.policies.size());
  for (std::size_t i = 0; i < clean.policies.size(); ++i) {
    // The retried device folds in exactly once: every aggregate matches
    // the clean run (no double-count from the failed first attempt).
    EXPECT_EQ(retried.policies[i].devices, clean.policies[i].devices);
    EXPECT_EQ(retried.policies[i].lifetime_us, clean.policies[i].lifetime_us);
    EXPECT_EQ(retried.policies[i].switch_total,
              clean.policies[i].switch_total);
    EXPECT_EQ(retried.policies[i].quarantined, 0u);
  }
}

}  // namespace
}  // namespace capman::sim
