// Tests for the fault-injection layer (sim/faults.h) and the scheduler's
// graceful-degradation response (core/degradation.h), including the two
// headline invariants from the robustness work:
//  * an all-zero FaultPlan routed through the injection path is
//    bit-identical to the plain engine, and
//  * CAPMAN rides out a stuck-switch plan without phone death, with the
//    DegradationGuard logging at least one fallback episode.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include "core/degradation.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "workload/generators.h"

namespace capman::sim {
namespace {

using battery::BatterySelection;
using util::Seconds;

device::PhoneModel nexus() {
  return device::PhoneModel{device::nexus_profile()};
}

workload::Trace video_trace(std::uint64_t seed = 7) {
  return workload::make_video()->generate(util::Seconds{600.0}, seed);
}

// ---------------------------------------------------------------------------
// FaultPlanConfig

TEST(FaultPlan, DefaultPlanIsInactiveAndValid) {
  FaultPlanConfig plan;
  EXPECT_FALSE(plan.any_active());
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.validate().empty());
}

TEST(FaultPlan, ForceInjectionPathEnablesWithoutActivating) {
  FaultPlanConfig plan;
  plan.force_injection_path = true;
  EXPECT_FALSE(plan.any_active());
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, EachKnobActivatesThePlan) {
  const auto active = [](auto&& tweak) {
    FaultPlanConfig plan;
    tweak(plan);
    return plan.any_active();
  };
  EXPECT_TRUE(active([](auto& p) { p.stuck_rate_per_min = 0.5; }));
  EXPECT_TRUE(active([](auto& p) { p.latency_jitter_frac = 0.2; }));
  EXPECT_TRUE(active([](auto& p) { p.latency_spike_prob = 0.01; }));
  EXPECT_TRUE(active([](auto& p) { p.transient_fail_prob = 0.1; }));
  EXPECT_TRUE(active([](auto& p) { p.droop_prob = 0.1; }));
  EXPECT_TRUE(active([](auto& p) { p.soc_bias = -0.05; }));
  EXPECT_TRUE(active([](auto& p) { p.soc_noise_stddev = 0.01; }));
  EXPECT_TRUE(active([](auto& p) { p.temp_bias_c = 2.0; }));
  EXPECT_TRUE(active([](auto& p) { p.temp_noise_stddev_c = 0.5; }));
  EXPECT_TRUE(active([](auto& p) { p.sensor_dropout_prob = 0.05; }));
}

TEST(FaultPlan, ValidateCatchesMalformedKnobs) {
  FaultPlanConfig plan;
  plan.stuck_rate_per_min = -1.0;
  plan.stuck_min_duration = Seconds{10.0};
  plan.stuck_max_duration = Seconds{5.0};  // max < min
  plan.latency_spike_prob = 1.5;
  plan.transient_fail_prob = 1.0;  // must be < 1
  plan.droop_ride_through = -0.2;
  plan.sensor_dropout_prob = 2.0;
  const auto errors = plan.validate();
  EXPECT_GE(errors.size(), 6u);
}

TEST(FaultPlan, ValidationErrorsNameTheInvalidField) {
  // The L3 contract (DESIGN.md §11): every validation message must carry
  // the exact member name, so an engine-ctor throw is actionable without
  // grepping the source.
  const auto errors_mention = [](void (*mutate)(FaultPlanConfig&),
                                 const char* field) {
    FaultPlanConfig plan;
    mutate(plan);
    const auto errors = plan.validate();
    EXPECT_EQ(errors.size(), 1u) << field;
    return !errors.empty() &&
           errors.front().find(field) != std::string::npos;
  };
  EXPECT_TRUE(errors_mention([](auto& p) { p.stuck_rate_per_min = -1.0; },
                             "stuck_rate_per_min"));
  EXPECT_TRUE(errors_mention([](auto& p) { p.stuck_min_duration = Seconds{0.0}; },
                             "stuck_min_duration"));
  EXPECT_TRUE(errors_mention([](auto& p) { p.latency_spike_prob = 2.0; },
                             "latency_spike_prob"));
  EXPECT_TRUE(errors_mention([](auto& p) { p.transient_fail_prob = 1.0; },
                             "transient_fail_prob"));
  EXPECT_TRUE(errors_mention([](auto& p) { p.droop_ride_through = -0.2; },
                             "droop_ride_through"));
  EXPECT_TRUE(errors_mention([](auto& p) { p.soc_noise_stddev = -0.1; },
                             "soc_noise_stddev"));
  EXPECT_TRUE(errors_mention([](auto& p) { p.sensor_dropout_prob = 1.0; },
                             "sensor_dropout_prob"));
}

// ---------------------------------------------------------------------------
// FaultySwitchFacility

battery::SwitchFacilityConfig fast_board() {
  battery::SwitchFacilityConfig cfg;
  cfg.latency = util::milliseconds(1.0);
  return cfg;
}

TEST(FaultySwitchFacility, ZeroPlanMatchesIdealFacilityExactly) {
  battery::SwitchFacility ideal{fast_board()};
  FaultySwitchFacility faulty{fast_board(), FaultPlanConfig{}, util::Rng{1}};

  double t = 0.0;
  for (int i = 0; i < 6; ++i) {
    const auto target = (i % 2 == 0) ? BatterySelection::kLittle
                                     : BatterySelection::kBig;
    EXPECT_EQ(ideal.request(target, Seconds{t}),
              faulty.request(target, Seconds{t}));
    t += 0.01;
    EXPECT_DOUBLE_EQ(ideal.advance(Seconds{t}).value(),
                     faulty.advance(Seconds{t}).value());
    EXPECT_EQ(ideal.active(), faulty.active());
    EXPECT_DOUBLE_EQ(faulty.surge_ride_through(Seconds{t}), 1.0);
  }
  EXPECT_EQ(ideal.switch_count(), faulty.switch_count());
  EXPECT_DOUBLE_EQ(ideal.total_switch_loss().value(),
                   faulty.total_switch_loss().value());
  const auto& c = faulty.counters();
  EXPECT_EQ(c.stuck_episodes, 0u);
  EXPECT_EQ(c.dropped_requests, 0u);
  EXPECT_EQ(c.transient_failures, 0u);
  EXPECT_EQ(c.jittered_switches, 0u);
  EXPECT_EQ(c.droop_episodes, 0u);
}

TEST(FaultySwitchFacility, StuckComparatorEatsRequests) {
  FaultPlanConfig plan;
  plan.stuck_rate_per_min = 30.0;  // mean 2 s between episodes
  plan.stuck_min_duration = Seconds{2.0};
  plan.stuck_max_duration = Seconds{2.0};
  FaultySwitchFacility sw{fast_board(), plan, util::Rng{11}};

  std::size_t refused_while_stuck = 0;
  for (double t = 0.0; t < 60.0; t += 0.5) {
    const auto target = sw.active() == BatterySelection::kBig
                            ? BatterySelection::kLittle
                            : BatterySelection::kBig;
    const bool initiated = sw.request(target, Seconds{t});
    if (sw.stuck_now(Seconds{t})) {
      EXPECT_FALSE(initiated);  // a stuck board initiates nothing
      ++refused_while_stuck;
    }
    sw.advance(Seconds{t + 0.25});
  }
  const auto& c = sw.counters();
  EXPECT_GE(c.stuck_episodes, 1u);
  EXPECT_GE(c.dropped_requests, 1u);
  EXPECT_GE(refused_while_stuck, 1u);
  EXPECT_GT(c.stuck_time_s, 0.0);
  // Working windows exist too: some switches must have completed.
  EXPECT_GE(sw.switch_count(), 1u);
}

TEST(FaultySwitchFacility, TransientGlitchRetriesAreBounded) {
  FaultPlanConfig plan;
  plan.transient_fail_prob = 0.5;
  plan.max_transient_retries = 3;
  plan.transient_retry_delay = Seconds{0.1};
  FaultySwitchFacility sw{fast_board(), plan, util::Rng{5}};

  // Persistently ask for LITTLE, as a policy would; the board glitches on
  // roughly half the attempts but the retry path keeps driving.
  double t = 0.0;
  while (sw.active() != BatterySelection::kLittle && t < 30.0) {
    sw.request(BatterySelection::kLittle, Seconds{t});
    t += 0.5;
    sw.advance(Seconds{t});
  }
  EXPECT_EQ(sw.active(), BatterySelection::kLittle);
  EXPECT_EQ(sw.switch_count(), 1u);
  const auto& c = sw.counters();
  EXPECT_GE(c.transient_failures, 1u);  // seed 5 glitches at least once
  // Each retry is a response to a failure, and the budget bounds them.
  EXPECT_LE(c.transient_retries, c.transient_failures *
                                     static_cast<std::size_t>(
                                         plan.max_transient_retries));
}

TEST(FaultySwitchFacility, RetryCompletesAnEatenSwitchWithoutNewRequest) {
  FaultPlanConfig plan;
  plan.transient_fail_prob = 0.5;
  plan.max_transient_retries = 50;
  plan.transient_retry_delay = Seconds{0.1};
  FaultySwitchFacility sw{fast_board(), plan, util::Rng{3}};

  // Issue toggling requests until the glitch eats one (seeded, so this
  // terminates deterministically), completing the successful ones.
  double t = 0.0;
  BatterySelection wanted = BatterySelection::kLittle;
  bool glitched = false;
  while (t < 60.0) {
    wanted = sw.active() == BatterySelection::kBig ? BatterySelection::kLittle
                                                   : BatterySelection::kBig;
    if (!sw.request(wanted, Seconds{t})) {
      glitched = true;
      break;
    }
    t += 0.5;
    sw.advance(Seconds{t});
  }
  ASSERT_TRUE(glitched);
  // No further request() calls: only the board's internal retry machinery
  // may complete the eaten switch. With a 0.5 glitch rate and 50 retries
  // in the budget, one retry lands with near-certainty.
  bool switched = false;
  for (double u = t + 0.1; u <= t + 30.0; u += 0.1) {
    sw.advance(Seconds{u});
    if (sw.active() == wanted) {
      switched = true;
      break;
    }
  }
  EXPECT_TRUE(switched);
  EXPECT_GE(sw.counters().transient_retries, 1u);
}

TEST(FaultySwitchFacility, LatencySpikeDelaysCompletion) {
  FaultPlanConfig plan;
  plan.latency_spike_prob = 1.0;
  plan.latency_spike_factor = 10.0;
  battery::SwitchFacilityConfig cfg;
  cfg.latency = util::milliseconds(5.0);
  FaultySwitchFacility sw{cfg, plan, util::Rng{1}};

  ASSERT_TRUE(sw.request(BatterySelection::kLittle, Seconds{0.0}));
  // Nominal latency is 5 ms; the spike stretches it to 50 ms.
  EXPECT_DOUBLE_EQ(sw.advance(Seconds{0.006}).value(), 0.0);
  EXPECT_EQ(sw.active(), BatterySelection::kBig);
  EXPECT_GT(sw.advance(Seconds{0.051}).value(), 0.0);
  EXPECT_EQ(sw.active(), BatterySelection::kLittle);
  EXPECT_EQ(sw.counters().latency_spikes, 1u);
  EXPECT_EQ(sw.counters().jittered_switches, 1u);
}

TEST(FaultySwitchFacility, JitterKeepsOscillatorQuantization) {
  FaultPlanConfig plan;
  plan.latency_jitter_frac = 0.5;
  battery::SwitchFacilityConfig cfg;
  cfg.oscillator_hz = 10.0;  // 100 ms ticks, exaggerated
  cfg.latency = Seconds{0.0};
  FaultySwitchFacility sw{cfg, plan, util::Rng{2}};

  sw.request(BatterySelection::kLittle, Seconds{0.01});
  // Jitter perturbs the latency term, but completion still cannot precede
  // the next oscillator tick at 100 ms.
  EXPECT_DOUBLE_EQ(sw.advance(Seconds{0.05}).value(), 0.0);
  EXPECT_EQ(sw.counters().jittered_switches, 1u);
}

TEST(FaultySwitchFacility, DroopDeratesRideThroughDuringSwitch) {
  FaultPlanConfig plan;
  plan.droop_prob = 1.0;
  plan.droop_ride_through = 0.3;
  plan.droop_duration = Seconds{1.0};
  FaultySwitchFacility sw{fast_board(), plan, util::Rng{1}};

  EXPECT_DOUBLE_EQ(sw.surge_ride_through(Seconds{0.0}), 1.0);
  ASSERT_TRUE(sw.request(BatterySelection::kLittle, Seconds{0.0}));
  EXPECT_DOUBLE_EQ(sw.surge_ride_through(Seconds{0.5}), 0.3);
  // Past switch latency (1 ms) + droop tail (1 s) the rail recovers.
  EXPECT_DOUBLE_EQ(sw.surge_ride_through(Seconds{1.5}), 1.0);
  EXPECT_EQ(sw.counters().droop_episodes, 1u);
}

TEST(FaultySwitchFacility, NoOpRequestsNeverTripFaults) {
  FaultPlanConfig plan;
  plan.transient_fail_prob = 0.9;
  plan.droop_prob = 1.0;
  FaultySwitchFacility sw{fast_board(), plan, util::Rng{1}};

  // Requesting the already-active cell is a pure no-op: no RNG draw, no
  // fault, no droop — exactly like the ideal facility.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sw.request(BatterySelection::kBig, Seconds{0.01 * i}));
  }
  EXPECT_EQ(sw.counters().transient_failures, 0u);
  EXPECT_EQ(sw.counters().droop_episodes, 0u);
}

// ---------------------------------------------------------------------------
// SensorChannel

TEST(SensorChannel, ZeroConfigIsExactPassthrough) {
  SensorChannel ch{0.0, 0.0, 0.0, 0.0, 1.0, util::Rng{1}};
  EXPECT_EQ(ch.read(0.73125), 0.73125);  // bitwise, no arithmetic applied
  EXPECT_EQ(ch.corrupted_reads(), 0u);
  EXPECT_EQ(ch.dropouts(), 0u);
}

TEST(SensorChannel, BiasIsAppliedAndClamped) {
  SensorChannel ch{0.2, 0.0, 0.0, 0.0, 1.0, util::Rng{1}};
  EXPECT_DOUBLE_EQ(ch.read(0.5), 0.7);
  EXPECT_DOUBLE_EQ(ch.read(0.95), 1.0);  // clamped to the physical range
  EXPECT_EQ(ch.corrupted_reads(), 2u);
}

TEST(SensorChannel, DropoutServesLastKnownGood) {
  SensorChannel ch{0.0, 0.0, 1.0, 0.0, 1.0, util::Rng{1}};
  // The very first read has no last-known-good to serve, so it passes.
  EXPECT_DOUBLE_EQ(ch.read(0.9), 0.9);
  EXPECT_DOUBLE_EQ(ch.read(0.5), 0.9);
  EXPECT_DOUBLE_EQ(ch.read(0.1), 0.9);
  EXPECT_EQ(ch.dropouts(), 2u);
}

TEST(SensorChannel, NoiseStaysWithinClampAndCounts) {
  SensorChannel ch{0.0, 0.05, 0.0, 0.0, 1.0, util::Rng{9}};
  for (int i = 0; i < 200; ++i) {
    const double reading = ch.read(0.5);
    EXPECT_GE(reading, 0.0);
    EXPECT_LE(reading, 1.0);
  }
  EXPECT_EQ(ch.corrupted_reads(), 200u);
}

// ---------------------------------------------------------------------------
// DegradationGuard

core::DegradationConfig guard_config() {
  core::DegradationConfig cfg;
  cfg.enabled = true;
  return cfg;  // defaults: detect 0.3 s, retry 0.5 s x2 up to 16 s
}

TEST(DegradationGuard, DisabledGuardPassesDesiredThrough) {
  core::DegradationGuard guard{core::DegradationConfig{}};
  const auto out = guard.filter(Seconds{10.0}, BatterySelection::kBig,
                                BatterySelection::kLittle, false);
  EXPECT_EQ(out, BatterySelection::kLittle);
  EXPECT_EQ(guard.stats().failures_detected, 0u);
}

TEST(DegradationGuard, DetectsFailedSwitchAndFallsBack) {
  core::DegradationGuard guard{guard_config()};
  // Scheduler wants LITTLE; the switch silently fails (observed stays big).
  EXPECT_EQ(guard.filter(Seconds{0.0}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kLittle);
  // 0.1 s later: still inside the detection window, keep trying the wish.
  EXPECT_EQ(guard.filter(Seconds{0.1}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kLittle);
  // 0.5 s later: past detect_after, the guard declares failure and falls
  // back to the cell that is actually carrying the load.
  EXPECT_EQ(guard.filter(Seconds{0.5}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kBig);
  EXPECT_TRUE(guard.in_fallback());
  EXPECT_EQ(guard.stats().failures_detected, 1u);
  EXPECT_EQ(guard.stats().fallback_episodes, 1u);
}

TEST(DegradationGuard, RetriesWithExponentialBackoff) {
  core::DegradationGuard guard{guard_config()};
  guard.filter(Seconds{0.0}, BatterySelection::kBig,
               BatterySelection::kLittle, false);
  guard.filter(Seconds{0.5}, BatterySelection::kBig,
               BatterySelection::kLittle, false);  // -> fallback at 0.5
  ASSERT_TRUE(guard.in_fallback());
  // Before the first retry point (0.5 + 0.5 s): hold the fallback cell.
  EXPECT_EQ(guard.filter(Seconds{0.8}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kBig);
  // Past it: one retry of the desired cell goes out.
  EXPECT_EQ(guard.filter(Seconds{1.1}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kLittle);
  EXPECT_EQ(guard.stats().retries, 1u);
  // The interval doubled (to 1.0 s): a consult 0.6 s later still holds.
  EXPECT_EQ(guard.filter(Seconds{1.7}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kBig);
  EXPECT_EQ(guard.filter(Seconds{2.2}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kLittle);
  EXPECT_EQ(guard.stats().retries, 2u);
}

TEST(DegradationGuard, BackoffSaturatesAtRetryMax) {
  // A permanently stuck actuator: the retry interval doubles until it
  // hits retry_max and then stays pinned there — it must never keep
  // growing (a guard that backs off to hours would effectively abandon
  // the desired cell) and never wrap back down.
  core::DegradationConfig cfg;
  cfg.enabled = true;
  cfg.retry_initial = Seconds{0.5};
  cfg.retry_backoff = 2.0;
  cfg.retry_max = Seconds{2.0};
  core::DegradationGuard guard{cfg};
  guard.filter(Seconds{0.0}, BatterySelection::kBig,
               BatterySelection::kLittle, false);
  guard.filter(Seconds{0.4}, BatterySelection::kBig,
               BatterySelection::kLittle, false);  // -> fallback at 0.4
  ASSERT_TRUE(guard.in_fallback());

  // Exact schedule: retries at 0.9 (0.5 later), 1.9 (1.0), 3.9 (2.0,
  // now saturated), then every 2.0 s forever.
  const double retry_times[] = {0.9, 1.9, 3.9, 5.9, 7.9, 9.9};
  std::size_t expected_retries = 0;
  for (const double t : retry_times) {
    // Just before the scheduled point the guard still holds the safe cell.
    EXPECT_EQ(guard.filter(Seconds{t - 0.05}, BatterySelection::kBig,
                           BatterySelection::kLittle, false),
              BatterySelection::kBig)
        << "t=" << t - 0.05;
    EXPECT_EQ(guard.filter(Seconds{t}, BatterySelection::kBig,
                           BatterySelection::kLittle, false),
              BatterySelection::kLittle)
        << "t=" << t;
    EXPECT_EQ(guard.stats().retries, ++expected_retries) << "t=" << t;
  }

  // An emergency retry mid-interval fires immediately but must not push
  // the interval past retry_max either.
  EXPECT_EQ(guard.filter(Seconds{10.5}, BatterySelection::kBig,
                         BatterySelection::kLittle, true),
            BatterySelection::kLittle);
  EXPECT_EQ(guard.filter(Seconds{12.4}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kBig);
  EXPECT_EQ(guard.filter(Seconds{12.5}, BatterySelection::kBig,
                         BatterySelection::kLittle, false),
            BatterySelection::kLittle);
}

TEST(DegradationGuard, EmergencyBypassesBackoff) {
  core::DegradationGuard guard{guard_config()};
  guard.filter(Seconds{0.0}, BatterySelection::kBig,
               BatterySelection::kLittle, false);
  guard.filter(Seconds{0.5}, BatterySelection::kBig,
               BatterySelection::kLittle, false);  // -> fallback
  // An emergency consultation retries immediately, backoff or not.
  EXPECT_EQ(guard.filter(Seconds{0.55}, BatterySelection::kBig,
                         BatterySelection::kLittle, true),
            BatterySelection::kLittle);
  EXPECT_EQ(guard.stats().retries, 1u);
}

TEST(DegradationGuard, RecoversWhenSwitchFinallyLands) {
  core::DegradationGuard guard{guard_config()};
  guard.filter(Seconds{0.0}, BatterySelection::kBig,
               BatterySelection::kLittle, false);
  guard.filter(Seconds{0.5}, BatterySelection::kBig,
               BatterySelection::kLittle, false);  // -> fallback
  ASSERT_TRUE(guard.in_fallback());
  // The actuator recovered: observed now matches the scheduler's wish.
  EXPECT_EQ(guard.filter(Seconds{1.2}, BatterySelection::kLittle,
                         BatterySelection::kLittle, false),
            BatterySelection::kLittle);
  EXPECT_FALSE(guard.in_fallback());
}

TEST(DegradationGuard, SuccessfulSwitchesNeverTripTheWatchdog) {
  core::DegradationGuard guard{guard_config()};
  // Normal operation: desire flips, and by the next consultation (ms-scale
  // switch latency << detect window) the observed cell has caught up.
  auto sel = [](int i) {
    return i % 2 == 0 ? BatterySelection::kBig : BatterySelection::kLittle;
  };
  for (int i = 0; i < 20; ++i) {
    const auto desired = sel(i + 1);
    EXPECT_EQ(guard.filter(Seconds{i * 1.0}, sel(i), desired, false), desired);
  }
  EXPECT_EQ(guard.stats().failures_detected, 0u);
  EXPECT_FALSE(guard.in_fallback());
}

// ---------------------------------------------------------------------------
// Engine-level invariants

SimConfig short_config() {
  SimConfig config;
  config.max_duration = util::hours(1.0);
  config.series_period = Seconds{10.0};
  return config;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_DOUBLE_EQ(a.service_time_s, b.service_time_s);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.died_of_brownout, b.died_of_brownout);
  EXPECT_DOUBLE_EQ(a.energy_delivered_j, b.energy_delivered_j);
  EXPECT_DOUBLE_EQ(a.energy_lost_j, b.energy_lost_j);
  EXPECT_DOUBLE_EQ(a.tec_energy_j, b.tec_energy_j);
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_DOUBLE_EQ(a.avg_cpu_temp_c, b.avg_cpu_temp_c);
  EXPECT_DOUBLE_EQ(a.max_cpu_temp_c, b.max_cpu_temp_c);
  EXPECT_EQ(a.switch_count, b.switch_count);
  EXPECT_DOUBLE_EQ(a.big_active_s, b.big_active_s);
  EXPECT_DOUBLE_EQ(a.little_active_s, b.little_active_s);
  EXPECT_DOUBLE_EQ(a.end_big_soc, b.end_big_soc);
  EXPECT_DOUBLE_EQ(a.end_little_soc, b.end_little_soc);
  ASSERT_EQ(a.soc_series.size(), b.soc_series.size());
  for (std::size_t i = 0; i < a.soc_series.size(); ++i) {
    EXPECT_EQ(a.soc_series.value_at(i), b.soc_series.value_at(i));
    EXPECT_EQ(a.power_series.value_at(i), b.power_series.value_at(i));
    EXPECT_EQ(a.cpu_temp_series.value_at(i), b.cpu_temp_series.value_at(i));
  }
}

// The headline regression: a zero-fault plan forced through the injection
// path (decorated facility + sensor shims, nothing armed) produces results
// bit-identical to the plain engine, for every policy.
TEST(FaultInjection, ZeroFaultPlanIsBitIdenticalAcrossAllPolicies) {
  const auto trace = video_trace(3);

  ExperimentRunner plain{nexus(), {short_config(), 9, std::nullopt}};
  FaultPlanConfig forced;
  forced.force_injection_path = true;
  ExperimentRunner wrapped{nexus(), {short_config(), 9, forced}};

  for (PolicyKind kind : all_policy_kinds()) {
    SCOPED_TRACE(to_string(kind));
    const auto a = plain.run(trace, kind);
    const auto b = wrapped.run(trace, kind);
    expect_identical(a, b);
    EXPECT_FALSE(b.faults.any());  // nothing fired, nothing degraded
  }
}

// Acceptance criterion: under a stuck-switch plan (1% episode probability
// per minute, with episodes long enough to catch switches), CAPMAN
// completes its discharge cycle without premature phone death and the
// DegradationGuard logs at least one fallback episode. "No phone death"
// is asserted as service-time parity with the fault-free run: in this
// engine EVERY policy's discharge cycle ends in a terminal brownout once
// the last serviceable cell sags (died_of_brownout is the normal
// end-of-cycle signature, fault plan or not), so the fault-induced
// failure mode to rule out is a shortened cycle, not the flag itself.
TEST(FaultInjection, CapmanRidesThroughStuckSwitchPlan) {
  const auto trace = video_trace(3);
  ExperimentRunner plain{nexus(), {SimConfig{}, 42, std::nullopt}};
  const auto baseline = plain.run(trace, PolicyKind::kCapman);
  ASSERT_FALSE(baseline.truncated);

  FaultPlanConfig plan;
  plan.seed = 23;
  plan.stuck_rate_per_min = 0.01;
  plan.stuck_min_duration = util::Seconds{30.0};
  plan.stuck_max_duration = util::Seconds{90.0};
  ExperimentRunner runner{nexus(), {SimConfig{}, 42, plan}};
  const auto r = runner.run(trace, PolicyKind::kCapman);

  EXPECT_FALSE(r.truncated);  // a real, completed discharge cycle
  // Graceful degradation: the faulty run serves (essentially) the full
  // fault-free cycle instead of dying early on a stuck comparator.
  EXPECT_GE(r.service_time_s, 0.99 * baseline.service_time_s);
  EXPECT_GE(r.faults.stuck_episodes, 1u);
  EXPECT_GE(r.faults.dropped_requests, 1u);
  EXPECT_GE(r.faults.detected_switch_failures, 1u);
  EXPECT_GE(r.faults.fallback_episodes, 1u);
}

// Every fault class armed at once on a short run: primarily a sanitizer
// target (scripts/check_asan.sh runs this binary under ASan+UBSan), but
// also checks the stats plumbing end to end.
TEST(FaultInjection, FullChaosSmoke) {
  FaultPlanConfig plan;
  plan.stuck_rate_per_min = 2.0;
  plan.latency_jitter_frac = 0.3;
  plan.latency_spike_prob = 0.05;
  plan.transient_fail_prob = 0.2;
  plan.droop_prob = 0.3;
  plan.soc_bias = -0.02;
  plan.soc_noise_stddev = 0.01;
  plan.temp_bias_c = 1.5;
  plan.temp_noise_stddev_c = 0.4;
  plan.sensor_dropout_prob = 0.05;

  SimConfig config;
  config.max_duration = Seconds{600.0};
  config.record_series = false;
  ExperimentRunner runner{nexus(), {config, 7, plan}};
  const auto r = runner.run(video_trace(5), PolicyKind::kCapman);

  EXPECT_GT(r.service_time_s, 0.0);
  EXPECT_TRUE(r.faults.any());
  EXPECT_GE(r.faults.corrupted_reads, 1u);
}

// Same plan, same seeds -> the whole faulty run replays exactly.
TEST(FaultInjection, FaultScenariosAreDeterministic) {
  FaultPlanConfig plan;
  plan.stuck_rate_per_min = 1.0;
  plan.transient_fail_prob = 0.1;
  plan.soc_noise_stddev = 0.02;
  SimConfig config;
  config.max_duration = Seconds{900.0};
  ExperimentRunner runner{nexus(), {config, 4, plan}};
  const auto a = runner.run(video_trace(2), PolicyKind::kCapman);
  const auto b = runner.run(video_trace(2), PolicyKind::kCapman);
  expect_identical(a, b);
  EXPECT_EQ(a.faults.dropped_requests, b.faults.dropped_requests);
  EXPECT_EQ(a.faults.corrupted_reads, b.faults.corrupted_reads);
  EXPECT_EQ(a.faults.fallback_episodes, b.faults.fallback_episodes);
}

// Switch-count and loss accounting must stay consistent when the decorator
// sits between the pack and the cells.
TEST(FaultInjection, SwitchAccountingSurvivesTheDecorator) {
  FaultPlanConfig plan;
  plan.transient_fail_prob = 0.3;
  FaultInjector injector{plan};
  auto facility = injector.make_switch_facility(fast_board());
  battery::DualBatteryPack pack{battery::DualPackConfig{},
                                std::move(facility)};

  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    const auto target = (i % 2 == 0) ? BatterySelection::kLittle
                                     : BatterySelection::kBig;
    pack.request(target, Seconds{t});
    pack.step(util::Watts{1.0}, Seconds{0.05}, Seconds{t});
    t += 0.5;
  }
  const auto stats = injector.collect();
  // Some requests were eaten; the ones that landed are counted once each,
  // and every counted switch carries exactly one switch_loss of debt.
  EXPECT_GE(stats.transient_failures, 1u);
  EXPECT_GT(pack.switch_count(), 0u);
  EXPECT_LT(pack.switch_count(), 40u);
  EXPECT_NEAR(pack.switch_facility().total_switch_loss().value(),
              static_cast<double>(pack.switch_count()) *
                  fast_board().switch_loss.value(),
              1e-9);
}

}  // namespace
}  // namespace capman::sim
