// End-to-end integration tests: full discharge cycles asserting the
// paper's headline orderings (Fig. 12). These run the real engine, real
// pack, real thermal stack and real policies; tolerances are deliberately
// loose because the assertions are about *ordering and rough factor*, not
// exact minutes.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/generators.h"

namespace capman::sim {
namespace {

constexpr std::uint64_t kSeed = 42;

device::PhoneModel nexus() { return device::PhoneModel{device::nexus_profile()}; }

std::vector<SimResult> run_suite(const workload::Trace& trace) {
  SimConfig config;
  config.record_series = false;
  return ExperimentRunner{nexus(), {config, kSeed, std::nullopt}}
      .compare(trace)
      .to_vector();
}

// Fresh policy of `kind` wired to `seed` via a throwaway runner (the
// replacement for the removed make_policy shim).
std::unique_ptr<policy::BatteryPolicy> make_test_policy(PolicyKind kind,
                                                        std::uint64_t seed) {
  RunnerOptions options;
  options.seed = seed;
  return ExperimentRunner{nexus(), options}.build_policy(kind);
}

double minutes(const std::vector<SimResult>& results, const char* name) {
  const auto* r = find_result(results, name);
  EXPECT_NE(r, nullptr) << name;
  return r->service_time_s / 60.0;
}

TEST(Integration, MixedWorkloadHeadline) {
  // Paper Fig. 12(e): on skewed mixes CAPMAN roughly doubles the original
  // phone's service time and clearly beats the naive dual baseline.
  const auto trace =
      workload::make_eta_static(0.5)->generate(util::Seconds{600.0}, kSeed);
  const auto results = run_suite(trace);
  const double capman = minutes(results, "CAPMAN");
  const double dual = minutes(results, "Dual");
  const double practice = minutes(results, "Practice");
  const double oracle = minutes(results, "Oracle");
  EXPECT_GT(capman, 1.8 * practice);  // ~2x the original phone
  EXPECT_GT(capman, 1.25 * dual);     // clearly beats LITTLE-first
  EXPECT_GT(oracle, dual);            // ground truth above naive baseline
}

TEST(Integration, VideoOrdering) {
  // Paper Fig. 12(c): every dual-pack policy comfortably beats the single
  // battery on streaming video.
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, kSeed);
  const auto results = run_suite(trace);
  const double practice = minutes(results, "Practice");
  for (const char* name : {"Oracle", "CAPMAN", "Dual", "Heuristic"}) {
    EXPECT_GT(minutes(results, name), 1.5 * practice) << name;
  }
  EXPECT_GE(minutes(results, "CAPMAN"), 0.99 * minutes(results, "Dual"));
}

TEST(Integration, GeekbenchCapmanTiesDual) {
  // Paper Fig. 12(a): on the stationary saturated workload CAPMAN works
  // like Dual/Heuristic (its model upkeep buys nothing), but still far
  // outlives Practice.
  const auto trace =
      workload::make_geekbench()->generate(util::Seconds{600.0}, kSeed);
  const auto results = run_suite(trace);
  const double capman = minutes(results, "CAPMAN");
  const double dual = minutes(results, "Dual");
  EXPECT_NEAR(capman, dual, 0.15 * dual);
  EXPECT_GT(capman, 1.4 * minutes(results, "Practice"));
}

TEST(Integration, PCMarkCapmanBeatsRuleBaselines) {
  // Paper Fig. 12(b): the learned model beats both rule baselines once the
  // software pattern changes mid-run.
  const auto trace =
      workload::make_pcmark()->generate(util::Seconds{600.0}, kSeed);
  const auto results = run_suite(trace);
  const double capman = minutes(results, "CAPMAN");
  EXPECT_GT(capman, 1.1 * minutes(results, "Dual"));
  EXPECT_GT(capman, 1.1 * minutes(results, "Heuristic"));
}

TEST(Integration, StrandedChargeTellsTheStory) {
  // The mechanism behind the gaps: Practice dies with a large fraction of
  // its battery stranded (it cannot serve surges once drained); CAPMAN
  // dies nearly empty.
  const auto trace =
      workload::make_eta_static(0.5)->generate(util::Seconds{600.0}, kSeed);
  const auto results = run_suite(trace);
  const auto* practice = find_result(results, "Practice");
  const auto* capman = find_result(results, "CAPMAN");
  ASSERT_NE(practice, nullptr);
  ASSERT_NE(capman, nullptr);
  EXPECT_GT(practice->end_big_soc, 0.3);
  // CAPMAN strands strictly less of its big cell than the stock phone
  // strands of its single cell (and its LITTLE cell is spent, not wasted).
  EXPECT_LT(capman->end_big_soc, practice->end_big_soc - 0.05);
  EXPECT_LT(capman->end_little_soc, 0.15);
}

TEST(Integration, CapmanLearnsToSwitch) {
  // CAPMAN actually exercises the switch facility (hundreds of informed
  // switches per cycle), unlike Dual's single hand-off.
  const auto trace =
      workload::make_eta_static(0.5)->generate(util::Seconds{600.0}, kSeed);
  const auto results = run_suite(trace);
  EXPECT_GT(find_result(results, "CAPMAN")->switch_count, 50u);
  EXPECT_LE(find_result(results, "Dual")->switch_count, 10u);
}

TEST(Integration, HotWorkloadStaysNearThreshold) {
  // Paper Fig. 13: CAPMAN maintains the hot spot around 45 C even under
  // the heaviest load (the TEC engages instead of letting it run away).
  const auto trace =
      workload::make_geekbench()->generate(util::Seconds{600.0}, kSeed);
  SimConfig config;
  config.record_series = false;
  SimEngine engine{config};
  auto policy = make_test_policy(PolicyKind::kCapman, kSeed);
  const auto r = engine.run(trace, *policy, nexus());
  EXPECT_GT(r.tec_on_fraction, 0.3);
  EXPECT_LT(r.avg_cpu_temp_c, 47.5);

  SimConfig no_tec;
  no_tec.enable_tec = false;
  no_tec.record_series = false;
  auto policy2 = make_test_policy(PolicyKind::kCapman, kSeed);
  const auto r2 = SimEngine{no_tec}.run(trace, *policy2, nexus());
  EXPECT_GT(r2.max_cpu_temp_c, r.max_cpu_temp_c + 1.0);
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

// The headline ordering is not a single-seed artifact.
TEST_P(SeedSweepTest, MixedOrderingHoldsAcrossSeeds) {
  const auto trace = workload::make_eta_static(0.5)->generate(
      util::Seconds{600.0}, GetParam());
  SimConfig config;
  config.record_series = false;
  SimEngine engine{config};
  auto capman = make_test_policy(PolicyKind::kCapman, GetParam());
  auto practice = make_test_policy(PolicyKind::kPractice, GetParam());
  const double t_capman =
      engine.run(trace, *capman, nexus()).service_time_s;
  const double t_practice =
      engine.run(trace, *practice, nexus()).service_time_s;
  EXPECT_GT(t_capman, 1.4 * t_practice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(Integration, LearningPersistsAcrossChargeCycles) {
  // Multi-cycle experiment: CAPMAN's learned MDP survives a recharge, so
  // later cycles never regress below the cold-start first cycle by much
  // and the best warm cycle beats it.
  const auto trace =
      workload::make_pcmark()->generate(util::Seconds{600.0}, kSeed);
  SimConfig config;
  config.record_series = false;
  const auto cycles = ExperimentRunner{nexus(), {config, kSeed, std::nullopt}}
                          .run_cycles(trace, PolicyKind::kCapman, 3);
  ASSERT_EQ(cycles.size(), 3u);
  const double first = cycles[0].service_time_s;
  double best_warm = 0.0;
  for (std::size_t c = 1; c < cycles.size(); ++c) {
    best_warm = std::max(best_warm, cycles[c].service_time_s);
    EXPECT_GT(cycles[c].service_time_s, 0.75 * first) << "cycle " << c;
  }
  EXPECT_GT(best_warm, 0.95 * first);
}

TEST(Integration, MultiCycleStaticPolicyIsStable) {
  // A memoryless policy repeats itself: cycle-to-cycle variation is noise.
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, kSeed);
  SimConfig config;
  config.record_series = false;
  const auto cycles = ExperimentRunner{nexus(), {config, kSeed, std::nullopt}}
                          .run_cycles(trace, PolicyKind::kDual, 2);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_NEAR(cycles[0].service_time_s, cycles[1].service_time_s,
              0.02 * cycles[0].service_time_s);
}

}  // namespace
}  // namespace capman::sim
