// sim/checkpoint.h: the CRC-framed checkpoint format behind crash-safe
// fleet campaigns — full-fidelity round-trips, torn/corrupt-tail
// rollback, version and fingerprint refusal. The end-to-end contract
// (SIGKILL + resume == uninterrupted, byte for byte) lives in the
// crash_resume_check gate; this file pins the format layer itself.
#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"

namespace capman::sim {
namespace {

namespace fs = std::filesystem;

CheckpointHeader test_header() {
  CheckpointHeader header;
  header.fingerprint = 0xDEADBEEFCAFEF00Dull;
  header.device_count = 100;
  header.shard_count = 4;
  header.seed = 42;
  header.policies = {PolicyKind::kDual, PolicyKind::kHeuristic};
  header.sketch_relative_error = 0.01;
  return header;
}

PolicyAggregate test_aggregate(PolicyKind kind, std::uint64_t salt) {
  PolicyAggregate agg;
  agg.kind = kind;
  agg.devices = 25 + salt;
  agg.brownouts = 3 + salt;
  agg.truncated = 1;
  agg.switch_total = 400 + salt;
  agg.faulty_devices = 2;
  agg.fault_fallbacks = 5;
  agg.fault_dropped_requests = 7 + salt;
  agg.quarantined = salt % 2;
  agg.lifetime_us = util::MicroSeconds{123456789 + salt};
  agg.max_temp_mc =
      util::MilliCelsius{static_cast<std::int64_t>(38500 * (1 + salt))};
  agg.energy_delivered_mj = util::Millijoules{987654 + salt};
  agg.health_evaluations = 11 + salt;
  agg.health_alerts[0] = 1;
  agg.health_alerts[2] = 4 + salt;
  for (std::uint64_t i = 0; i < 40; ++i) {
    agg.lifetime_s_sketch.observe(900.0 + 13.0 * static_cast<double>(i + salt));
    agg.max_temp_c_sketch.observe(35.0 + 0.1 * static_cast<double>(i));
    agg.switches_sketch.observe(static_cast<double>(i % 9));
  }
  return agg;
}

ShardCheckpoint test_shard(std::uint64_t index) {
  ShardCheckpoint shard;
  shard.shard = index;
  shard.device_begin = index * 25;
  shard.device_end = (index + 1) * 25;
  shard.engine_steps = 100000 + index * 997;
  shard.quarantine_retries = index;
  shard.policies = {test_aggregate(PolicyKind::kDual, index),
                    test_aggregate(PolicyKind::kHeuristic, index + 1)};
  return shard;
}

void expect_aggregates_equal(const PolicyAggregate& a,
                             const PolicyAggregate& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.brownouts, b.brownouts);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.switch_total, b.switch_total);
  EXPECT_EQ(a.faulty_devices, b.faulty_devices);
  EXPECT_EQ(a.fault_fallbacks, b.fault_fallbacks);
  EXPECT_EQ(a.fault_dropped_requests, b.fault_dropped_requests);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.lifetime_us, b.lifetime_us);
  EXPECT_EQ(a.max_temp_mc, b.max_temp_mc);
  EXPECT_EQ(a.energy_delivered_mj, b.energy_delivered_mj);
  EXPECT_EQ(a.health_evaluations, b.health_evaluations);
  EXPECT_EQ(a.health_alerts, b.health_alerts);
  // Sketch equality through the serialized state: bucket-exact.
  const auto sa = a.lifetime_s_sketch.state();
  const auto sb = b.lifetime_s_sketch.state();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.zero_count, sb.zero_count);
  EXPECT_EQ(sa.buckets, sb.buckets);
  EXPECT_EQ(sa.min, sb.min);
  EXPECT_EQ(sa.max, sb.max);
  EXPECT_EQ(a.max_temp_c_sketch.state().buckets,
            b.max_temp_c_sketch.state().buckets);
  EXPECT_EQ(a.switches_sketch.state().buckets,
            b.switches_sketch.state().buckets);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("capman_ckpt_" + std::string{::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()});
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "fleet.ckpt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_file() const {
    std::ifstream in{path_, std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  void write_file(const std::string& bytes) const {
    std::ofstream out{path_, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointTest, RoundTripsHeaderAndShardsExactly) {
  CheckpointWriter writer{path_, test_header()};
  // Deliberately out of order: the writer sorts frames by shard index.
  writer.write({test_shard(2), test_shard(0), test_shard(3)});
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_GT(writer.bytes_last_write(), 0u);

  const auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  EXPECT_EQ(load->frames_discarded, 0u);
  EXPECT_EQ(load->frames_kept, 4u);  // header + 3 shards
  EXPECT_EQ(load->header.version, kCheckpointFormatVersion);
  EXPECT_EQ(load->header.fingerprint, test_header().fingerprint);
  EXPECT_EQ(load->header.device_count, 100u);
  EXPECT_EQ(load->header.shard_count, 4u);
  EXPECT_EQ(load->header.seed, 42u);
  EXPECT_EQ(load->header.policies, test_header().policies);
  EXPECT_DOUBLE_EQ(load->header.sketch_relative_error, 0.01);

  ASSERT_EQ(load->shards.size(), 3u);
  const std::uint64_t expected_order[] = {0, 2, 3};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& got = load->shards[i];
    const auto want = test_shard(expected_order[i]);
    EXPECT_EQ(got.shard, want.shard);
    EXPECT_EQ(got.device_begin, want.device_begin);
    EXPECT_EQ(got.device_end, want.device_end);
    EXPECT_EQ(got.engine_steps, want.engine_steps);
    EXPECT_EQ(got.quarantine_retries, want.quarantine_retries);
    ASSERT_EQ(got.policies.size(), 2u);
    expect_aggregates_equal(got.policies[0], want.policies[0]);
    expect_aggregates_equal(got.policies[1], want.policies[1]);
  }
}

TEST_F(CheckpointTest, RewriteReplacesNotAppends) {
  CheckpointWriter writer{path_, test_header()};
  writer.write({test_shard(0)});
  const auto size_one = fs::file_size(path_);
  writer.write({test_shard(0), test_shard(1)});
  writer.write({test_shard(0)});
  EXPECT_EQ(writer.writes(), 3u);
  // Back to one shard: the file shrank back, proving replace semantics.
  EXPECT_EQ(fs::file_size(path_), size_one);
  const auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  EXPECT_EQ(load->shards.size(), 1u);
}

TEST_F(CheckpointTest, MissingFileIsACleanColdStart) {
  EXPECT_FALSE(CheckpointReader::load(path_).has_value());
}

TEST_F(CheckpointTest, EmptyAndGarbageFilesAreColdStarts) {
  write_file("");
  EXPECT_FALSE(CheckpointReader::load(path_).has_value());
  write_file("this is not a checkpoint at all, not even close......");
  EXPECT_FALSE(CheckpointReader::load(path_).has_value());
}

TEST_F(CheckpointTest, TornTailRollsBackToLastValidFrame) {
  CheckpointWriter writer{path_, test_header()};
  writer.write({test_shard(0), test_shard(1), test_shard(2)});
  const std::string full = read_file();
  // Chop into the last frame (any cut strictly inside it): the loader
  // must keep the header + first two shards and report the discard.
  write_file(full.substr(0, full.size() - 11));
  const auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  EXPECT_EQ(load->shards.size(), 2u);
  EXPECT_EQ(load->shards[0].shard, 0u);
  EXPECT_EQ(load->shards[1].shard, 1u);
  EXPECT_EQ(load->frames_discarded, 1u);
  EXPECT_GT(load->bytes_discarded, 0u);
}

TEST_F(CheckpointTest, CorruptTailCrcRollsBack) {
  CheckpointWriter writer{path_, test_header()};
  writer.write({test_shard(0), test_shard(1)});
  std::string bytes = read_file();
  // Flip one byte near the end (inside the last frame's payload or CRC).
  bytes[bytes.size() - 7] = static_cast<char>(bytes[bytes.size() - 7] ^ 0x40);
  write_file(bytes);
  const auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  EXPECT_EQ(load->shards.size(), 1u);
  EXPECT_EQ(load->frames_discarded, 1u);
}

TEST_F(CheckpointTest, CorruptHeaderMeansColdStart) {
  CheckpointWriter writer{path_, test_header()};
  writer.write({test_shard(0)});
  std::string bytes = read_file();
  bytes[6] = static_cast<char>(bytes[6] ^ 0x01);  // inside the header frame
  write_file(bytes);
  EXPECT_FALSE(CheckpointReader::load(path_).has_value());
}

// Frame layout: type u8 | payload_len u32 LE | payload | crc u32. The
// size of the frame starting at `offset`, parsed from its length field.
std::size_t frame_size_at(const std::string& bytes, std::size_t offset) {
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[offset + 1 +
                                                static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  return 1 + 4 + len + 4;
}

TEST_F(CheckpointTest, DuplicateShardFramesLastWins) {
  // The format tolerates the same shard appearing in multiple frames
  // (last wins) — the reader dedups. Splice a second, updated copy of
  // shard 0's frame onto a valid file.
  CheckpointWriter first{path_, test_header()};
  first.write({test_shard(0)});
  const std::string base = read_file();

  const std::string other_path = (dir_ / "other.ckpt").string();
  CheckpointWriter second{other_path, test_header()};
  ShardCheckpoint updated = test_shard(0);
  updated.engine_steps = 999999;
  second.write({updated});
  std::ifstream other{other_path, std::ios::binary};
  std::ostringstream other_bytes;
  other_bytes << other.rdbuf();
  const std::string other_full = other_bytes.str();

  // Both files are header frame + one shard frame with identical
  // headers; skip past the header frame to get the updated shard frame.
  const std::size_t header_size = frame_size_at(other_full, 0);
  ASSERT_EQ(frame_size_at(base, 0), header_size);
  write_file(base + other_full.substr(header_size));

  const auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  EXPECT_EQ(load->frames_discarded, 0u);
  ASSERT_EQ(load->shards.size(), 1u);
  EXPECT_EQ(load->shards[0].shard, 0u);
  EXPECT_EQ(load->shards[0].engine_steps, 999999u);
}

TEST_F(CheckpointTest, FingerprintChangesWithIdentityFields) {
  FleetConfig config;
  config.device_count = 100;
  config.seed = 42;
  const std::uint64_t base = checkpoint_fingerprint(config, 4);
  EXPECT_EQ(checkpoint_fingerprint(config, 4), base);  // deterministic

  FleetConfig other = config;
  other.seed = 43;
  EXPECT_NE(checkpoint_fingerprint(other, 4), base);

  other = config;
  other.device_count = 101;
  EXPECT_NE(checkpoint_fingerprint(other, 4), base);

  other = config;
  other.policies = {PolicyKind::kDual};
  EXPECT_NE(checkpoint_fingerprint(other, 4), base);

  other = config;
  other.population.fault_fraction = 0.5;
  EXPECT_NE(checkpoint_fingerprint(other, 4), base);

  // Different resolved shard plan: different fingerprint.
  EXPECT_NE(checkpoint_fingerprint(config, 8), base);

  // Thread count is operational, not identity: same fingerprint.
  other = config;
  other.threads = 7;
  EXPECT_EQ(checkpoint_fingerprint(other, 4), base);

  // Checkpoint cadence is operational too.
  other = config;
  other.checkpoint.every_shards = 99;
  EXPECT_EQ(checkpoint_fingerprint(other, 4), base);
}

TEST_F(CheckpointTest, UnknownVersionIsRefused) {
  CheckpointWriter writer{path_, test_header()};
  writer.write({test_shard(0)});
  std::string bytes = read_file();
  // Frame layout: type u8 | len u32 | payload | crc u32; the header
  // payload starts with the version u32 at offset 5. Bump it and fix the
  // CRC so only the version check can reject.
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]),
            kCheckpointFormatVersion & 0xFF);
  bytes[5] = static_cast<char>(kCheckpointFormatVersion + 1);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[1 + i]))
           << (8 * i);
  }
  const std::uint32_t crc =
      util::crc32(std::string_view{bytes}.substr(0, 5 + len));
  for (int i = 0; i < 4; ++i) {
    bytes[5 + len + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  write_file(bytes);
  EXPECT_FALSE(CheckpointReader::load(path_).has_value());
}

// ---------------------------------------------------------------------------
// FleetRunner resume integration (in-process). The SIGKILL end-to-end
// path — crash, resume, byte-compare against an uninterrupted run — is
// the crash_resume_check CTest gate; these tests drive the same resume
// machinery without leaving the process.

FleetConfig resume_fleet(const std::string& dir) {
  FleetConfig config;
  config.device_count = 24;
  config.shard_count = 6;
  config.threads = 1;
  config.seed = 7;
  config.base.dt = util::Seconds{0.25};
  config.base.max_duration = util::hours(2.0);
  config.base.record_series = false;
  config.population.big_capacity_mah_lo = 500.0;
  config.population.big_capacity_mah_hi = 800.0;
  config.population.little_capacity_mah_lo = 200.0;
  config.population.little_capacity_mah_hi = 350.0;
  config.population.trace_horizon = util::Seconds{120.0};
  config.checkpoint.directory = dir;
  config.checkpoint.every_shards = 2;
  return config;
}

std::string snapshot_json(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream out;
  snapshot.write_json(out);
  return out.str();
}

TEST_F(CheckpointTest, FullResumeIsByteIdenticalToTheOriginalRun) {
  auto config = resume_fleet(dir_.string());
  const auto original = FleetRunner{config}.run();
  EXPECT_FALSE(original.checkpoint.resumed);
  EXPECT_GT(original.checkpoint.writes, 0u);

  config.checkpoint.resume = true;
  const auto resumed = FleetRunner{config}.run();
  EXPECT_TRUE(resumed.checkpoint.resumed);
  EXPECT_EQ(resumed.checkpoint.resumed_shards, 6u);
  EXPECT_EQ(snapshot_json(resumed.metrics), snapshot_json(original.metrics));
}

TEST_F(CheckpointTest, PartialResumeIsByteIdenticalAcrossThreadCounts) {
  auto config = resume_fleet(dir_.string());
  const auto original = FleetRunner{config}.run();

  // Rewind the checkpoint to its first three shards — the on-disk state
  // after an early crash — and resume with a different worker count.
  auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  ASSERT_EQ(load->shards.size(), 6u);
  load->shards.resize(3);
  CheckpointWriter rewind{path_, load->header};
  rewind.write(load->shards);

  config.checkpoint.resume = true;
  config.threads = 2;
  const auto resumed = FleetRunner{config}.run();
  EXPECT_TRUE(resumed.checkpoint.resumed);
  EXPECT_EQ(resumed.checkpoint.resumed_shards, 3u);
  EXPECT_EQ(snapshot_json(resumed.metrics), snapshot_json(original.metrics));
}

TEST_F(CheckpointTest, MismatchedConfigRefusesToResume) {
  auto config = resume_fleet(dir_.string());
  (void)FleetRunner{config}.run();

  auto other = config;
  other.seed = 8;
  other.checkpoint.resume = true;
  try {
    (void)FleetRunner{other}.run();
    FAIL() << "resume with a different seed must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string{error.what()}.find("fingerprint mismatch"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(CheckpointTest, ResumeWithoutAFileIsAColdStart) {
  auto config = resume_fleet(dir_.string());
  config.checkpoint.resume = true;  // nothing on disk yet
  const auto result = FleetRunner{config}.run();
  EXPECT_FALSE(result.checkpoint.resumed);
  EXPECT_EQ(result.checkpoint.resumed_shards, 0u);
  EXPECT_GT(result.checkpoint.writes, 0u);
}

TEST_F(CheckpointTest, CrashHookKillsTheProcessAfterNShards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto config = resume_fleet(dir_.string());
  config.crash_after_shards = 2;
  EXPECT_EXIT((void)FleetRunner{config}.run(),
              ::testing::KilledBySignal(SIGKILL), "");
  // The injected crash fires after the cadence logic, so the file left
  // behind is a loadable checkpoint.
  const auto load = CheckpointReader::load(path_);
  ASSERT_TRUE(load.has_value());
  EXPECT_GE(load->shards.size(), 2u);
}

}  // namespace
}  // namespace capman::sim
