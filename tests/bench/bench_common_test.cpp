// bench::parse_seed and bench::BenchJson (bench/bench_common.h): the
// testable core of the shared bench argument handling. seed_from_args
// itself exits the process on bad input — that path is pinned by the
// bench_seed_usage_error CTest gate, which runs a real bench binary with
// `--seed bogus` and expects exit code 2.
#include "bench_common.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace capman::bench {
namespace {

TEST(ParseSeed, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_seed("0"), 0u);
  EXPECT_EQ(parse_seed("42"), 42u);
  EXPECT_EQ(parse_seed("18446744073709551615"),  // UINT64_MAX
            18446744073709551615ull);
}

TEST(ParseSeed, RejectsJunk) {
  EXPECT_FALSE(parse_seed("").has_value());
  EXPECT_FALSE(parse_seed("abc").has_value());
  EXPECT_FALSE(parse_seed("12x").has_value());    // trailing garbage
  EXPECT_FALSE(parse_seed("x12").has_value());
  EXPECT_FALSE(parse_seed("-1").has_value());     // negative
  EXPECT_FALSE(parse_seed("+1").has_value());     // from_chars takes no sign
  EXPECT_FALSE(parse_seed("1.5").has_value());    // not an integer
  EXPECT_FALSE(parse_seed(" 42").has_value());    // leading whitespace
  EXPECT_FALSE(parse_seed("0x10").has_value());   // no hex
  EXPECT_FALSE(parse_seed("18446744073709551616").has_value());  // overflow
}

TEST(SeedFromArgs, FallsBackWithoutTheFlag) {
  const char* argv[] = {"bench", "--csv"};
  EXPECT_EQ(seed_from_args(2, const_cast<char**>(argv)), kDefaultSeed);
  EXPECT_EQ(seed_from_args(2, const_cast<char**>(argv), 7u), 7u);
}

TEST(SeedFromArgs, ParsesAValidSeed) {
  const char* argv[] = {"bench", "--seed", "123"};
  EXPECT_EQ(seed_from_args(3, const_cast<char**>(argv)), 123u);
}

TEST(FlagHelpers, DetectCsvAndJson) {
  const char* argv[] = {"bench", "--json"};
  EXPECT_TRUE(json_requested(2, const_cast<char**>(argv)));
  EXPECT_FALSE(csv_requested(2, const_cast<char**>(argv)));
}

TEST(BenchJson, SerialisesNameSeedAndOrderedMetrics) {
  BenchJson artifact{"demo", 42};
  artifact.metric("count", 7409.0);
  artifact.metric("ratio", 0.5);
  std::ostringstream out;
  artifact.write(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"demo\",\"seed\":42,"
            "\"metrics\":{\"count\":7409,\"ratio\":0.5}}\n");
  EXPECT_EQ(artifact.name(), "demo");
  EXPECT_EQ(artifact.seed(), 42u);
  EXPECT_EQ(artifact.metrics().size(), 2u);
}

}  // namespace
}  // namespace capman::bench
