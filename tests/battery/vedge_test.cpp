#include "battery/vedge.h"

#include <gtest/gtest.h>

#include "battery/cell.h"
#include "util/stats.h"

namespace capman::battery {
namespace {

using util::Seconds;
using util::TimeSeries;
using util::Watts;

// Record the terminal/open-circuit voltage of a cell through a pre-load
// rest, a load pulse, and a recovery window.
TimeSeries record_pulse(Cell& cell, double load_w, double pre_s,
                        double load_s, double post_s) {
  TimeSeries v;
  const double dt = 0.1;
  double t = 0.0;
  for (; t < pre_s; t += dt) {
    cell.rest(Seconds{dt});
    v.add(t, cell.open_circuit_voltage().value());
  }
  for (; t < pre_s + load_s; t += dt) {
    const auto r = cell.draw(Watts{load_w}, Seconds{dt});
    v.add(t, r.terminal_voltage.value());
  }
  for (; t < pre_s + load_s + post_s; t += dt) {
    cell.rest(Seconds{dt});
    v.add(t, cell.open_circuit_voltage().value());
  }
  return v;
}

TEST(VEdge, SyntheticCurveAreas) {
  // Hand-built curve: V0 = 4.0 flat, dips to 3.0 during the load, recovers
  // to 3.8 afterwards.
  TimeSeries v;
  for (double t = 0.0; t < 2.0; t += 0.1) v.add(t, 4.0);
  for (double t = 2.0; t <= 4.0 + 1e-9; t += 0.1) v.add(t, 3.0);
  for (double t = 4.1; t <= 10.0; t += 0.1) v.add(t, 3.8);
  const auto areas = analyze_vedge(v, 2.0, 4.0);
  EXPECT_NEAR(areas.v0, 4.0, 1e-6);
  EXPECT_NEAR(areas.v_recovered, 3.8, 1e-6);
  EXPECT_NEAR(areas.v_min, 3.0, 1e-6);
  // D1 ~ (3.8 - 3.0) * 2 s = 1.6 V s (sampling slack at the edges).
  EXPECT_NEAR(areas.d1_vs, 1.6, 0.15);
  // D2 = (4.0 - 3.8) * 2 s = 0.4 V s.
  EXPECT_NEAR(areas.d2_vs, 0.4, 0.05);
  // D3 ~ (3.8 - 3.0) * 6 s = 4.8 V s.
  EXPECT_NEAR(areas.d3_vs, 4.8, 0.3);
  EXPECT_NEAR(areas.saving_potential_vs(), areas.d3_vs - areas.d1_vs, 1e-9);
}

TEST(VEdge, TooShortSeriesIsZero) {
  TimeSeries v;
  v.add(0.0, 4.0);
  const auto areas = analyze_vedge(v, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(areas.d1_vs, 0.0);
  EXPECT_DOUBLE_EQ(areas.d3_vs, 0.0);
}

TEST(VEdge, RealCellShowsDipAndRecovery) {
  Cell cell{Chemistry::kNCA, 2500.0};
  const auto v = record_pulse(cell, 3.0, 5.0, 10.0, 60.0);
  const auto areas = analyze_vedge(v, 5.0, 15.0);
  EXPECT_GT(areas.d1_vs, 0.0);   // the dip exists
  EXPECT_GT(areas.d3_vs, 0.0);   // recovery exists
  EXPECT_LT(areas.v_min, areas.v_recovered);
  EXPECT_LE(areas.v_recovered, areas.v0 + 1e-9);
}

TEST(VEdge, BigChemistryHasLargerD1ThanLittle) {
  // The paper's premise: the LITTLE battery minimizes D1.
  Cell big{Chemistry::kNCA, 2500.0};
  Cell little{Chemistry::kLMO, 2500.0};
  const auto v_big = record_pulse(big, 3.0, 5.0, 10.0, 60.0);
  const auto v_little = record_pulse(little, 3.0, 5.0, 10.0, 60.0);
  const auto a_big = analyze_vedge(v_big, 5.0, 15.0);
  const auto a_little = analyze_vedge(v_little, 5.0, 15.0);
  EXPECT_GT(a_big.d1_vs, a_little.d1_vs);
}

TEST(VEdge, LongerPulseDeepensTheEdge) {
  Cell a{Chemistry::kNCA, 2500.0};
  Cell b{Chemistry::kNCA, 2500.0};
  const auto v_short = record_pulse(a, 3.0, 5.0, 2.0, 60.0);
  const auto v_long = record_pulse(b, 3.0, 5.0, 20.0, 60.0);
  const auto area_short = analyze_vedge(v_short, 5.0, 7.0);
  const auto area_long = analyze_vedge(v_long, 5.0, 25.0);
  EXPECT_GT(area_long.d1_vs, area_short.d1_vs);
}

}  // namespace
}  // namespace capman::battery
