#include <gtest/gtest.h>

#include "battery/supercap.h"
#include "battery/switcher.h"

namespace capman::battery {
namespace {

using util::Seconds;
using util::Watts;

TEST(Switcher, InitialStateAndSignal) {
  SwitchFacility sw{SwitchFacilityConfig{}};
  EXPECT_EQ(sw.active(), BatterySelection::kBig);
  EXPECT_DOUBLE_EQ(sw.signal_level().value(), 3.5);
  EXPECT_EQ(sw.switch_count(), 0u);
}

TEST(Switcher, RequestThenAdvanceCompletesSwitch) {
  SwitchFacility sw{SwitchFacilityConfig{}};
  EXPECT_TRUE(sw.request(BatterySelection::kLittle, Seconds{0.0}));
  EXPECT_TRUE(sw.switch_pending());
  EXPECT_EQ(sw.active(), BatterySelection::kBig);  // not yet
  const auto loss = sw.advance(Seconds{0.01});
  EXPECT_EQ(sw.active(), BatterySelection::kLittle);
  EXPECT_DOUBLE_EQ(loss.value(), SwitchFacilityConfig{}.switch_loss.value());
  EXPECT_DOUBLE_EQ(sw.signal_level().value(), 0.3);
}

TEST(Switcher, AdvanceBeforeLatencyDoesNothing) {
  SwitchFacilityConfig cfg;
  cfg.latency = util::milliseconds(5.0);
  SwitchFacility sw{cfg};
  sw.request(BatterySelection::kLittle, Seconds{0.0});
  EXPECT_DOUBLE_EQ(sw.advance(Seconds{0.002}).value(), 0.0);
  EXPECT_EQ(sw.active(), BatterySelection::kBig);
}

TEST(Switcher, RedundantRequestIgnored) {
  SwitchFacility sw{SwitchFacilityConfig{}};
  EXPECT_FALSE(sw.request(BatterySelection::kBig, Seconds{0.0}));
  EXPECT_FALSE(sw.switch_pending());
}

TEST(Switcher, RequestBackCancelsPending) {
  SwitchFacility sw{SwitchFacilityConfig{}};
  sw.request(BatterySelection::kLittle, Seconds{0.0});
  sw.request(BatterySelection::kBig, Seconds{0.0001});
  EXPECT_FALSE(sw.switch_pending());
  sw.advance(Seconds{1.0});
  EXPECT_EQ(sw.active(), BatterySelection::kBig);
  EXPECT_EQ(sw.switch_count(), 0u);
}

TEST(Switcher, CountsAndAccumulatesLosses) {
  SwitchFacility sw{SwitchFacilityConfig{}};
  double t = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto target = (i % 2 == 0) ? BatterySelection::kLittle
                                     : BatterySelection::kBig;
    sw.request(target, Seconds{t});
    t += 0.01;
    sw.advance(Seconds{t});
  }
  EXPECT_EQ(sw.switch_count(), 4u);
  EXPECT_NEAR(sw.total_switch_loss().value(),
              4.0 * SwitchFacilityConfig{}.switch_loss.value(), 1e-12);
}

TEST(Switcher, OscillatorQuantizesCompletion) {
  SwitchFacilityConfig cfg;
  cfg.oscillator_hz = 10.0;  // 100 ms ticks, exaggerated for the test
  cfg.latency = Seconds{0.0};
  SwitchFacility sw{cfg};
  sw.request(BatterySelection::kLittle, Seconds{0.01});
  // Completion cannot happen before the next 100 ms oscillator tick.
  EXPECT_DOUBLE_EQ(sw.advance(Seconds{0.05}).value(), 0.0);
  EXPECT_GT(sw.advance(Seconds{0.11}).value(), 0.0);
}

TEST(Switcher, LatencyAddsAfterOscillatorQuantization) {
  SwitchFacilityConfig cfg;
  cfg.oscillator_hz = 10.0;  // 100 ms ticks
  cfg.latency = Seconds{0.05};
  SwitchFacility sw{cfg};
  sw.request(BatterySelection::kLittle, Seconds{0.01});
  // Next tick at 0.10, plus 50 ms latency: completes at ~0.15.
  EXPECT_DOUBLE_EQ(sw.advance(Seconds{0.149}).value(), 0.0);
  EXPECT_GT(sw.advance(Seconds{0.1501}).value(), 0.0);
  EXPECT_EQ(sw.active(), BatterySelection::kLittle);
}

TEST(Switcher, AdvanceAtExactLatencyBoundaryCompletes) {
  SwitchFacilityConfig cfg;
  cfg.latency = util::milliseconds(1.0);
  cfg.oscillator_hz = 1000.0;  // 1 ms ticks so the boundary lands exactly
  SwitchFacility sw{cfg};
  sw.request(BatterySelection::kLittle, Seconds{0.0});
  // Request at t=0 quantizes to tick 0; completion is scheduled for
  // exactly latency. Advancing to that instant (not past it) completes.
  EXPECT_GT(sw.advance(Seconds{0.001}).value(), 0.0);
  EXPECT_EQ(sw.active(), BatterySelection::kLittle);
}

TEST(Switcher, ReRequestDuringPendingKeepsOriginalSchedule) {
  SwitchFacilityConfig cfg;
  cfg.latency = Seconds{0.010};
  SwitchFacility sw{cfg};
  EXPECT_TRUE(sw.request(BatterySelection::kLittle, Seconds{0.0}));
  // Re-requesting the already-pending target is a no-op: it neither
  // initiates a second switch nor pushes the completion time out.
  EXPECT_FALSE(sw.request(BatterySelection::kLittle, Seconds{0.005}));
  EXPECT_TRUE(sw.switch_pending());
  sw.advance(Seconds{0.011});
  EXPECT_EQ(sw.active(), BatterySelection::kLittle);
  EXPECT_EQ(sw.switch_count(), 1u);
  EXPECT_DOUBLE_EQ(sw.total_switch_loss().value(),
                   SwitchFacilityConfig{}.switch_loss.value());
}

TEST(Switcher, ConfigValidateAcceptsDefaultsAndCatchesNonsense) {
  EXPECT_TRUE(SwitchFacilityConfig{}.validate().empty());
  SwitchFacilityConfig bad;
  bad.latency = Seconds{-0.001};
  bad.switch_loss = util::Joules{-1.0};
  bad.oscillator_hz = 0.0;
  bad.high_level = util::Volts{0.3};
  bad.low_level = util::Volts{3.5};  // inverted
  EXPECT_EQ(bad.validate().size(), 4u);
}

TEST(Switcher, ValidationErrorsNameTheInvalidField) {
  // L3 contract: each message carries the exact member name so an engine
  // constructor throw is actionable without reading switcher.cpp.
  const auto sole_error_mentions = [](void (*mutate)(SwitchFacilityConfig&),
                                      const char* field) {
    SwitchFacilityConfig config;
    mutate(config);
    const auto errors = config.validate();
    EXPECT_EQ(errors.size(), 1u) << field;
    return !errors.empty() &&
           errors.front().find(field) != std::string::npos;
  };
  EXPECT_TRUE(sole_error_mentions(
      [](auto& c) { c.latency = Seconds{-0.001}; }, "latency"));
  EXPECT_TRUE(sole_error_mentions(
      [](auto& c) { c.switch_loss = util::Joules{-1.0}; }, "switch_loss"));
  EXPECT_TRUE(sole_error_mentions(
      [](auto& c) { c.oscillator_hz = 0.0; }, "oscillator_hz"));
  EXPECT_TRUE(sole_error_mentions(
      [](auto& c) { c.high_level = c.low_level; }, "high_level"));
  EXPECT_TRUE(sole_error_mentions(
      [](auto& c) { c.high_level = c.low_level; }, "low_level"));
}

TEST(Supercap, StartsFull) {
  Supercapacitor sc{util::Farads{2.0}, util::Volts{4.0}, util::Ohms{0.02}};
  EXPECT_NEAR(sc.fill(), 1.0, 1e-12);
  EXPECT_NEAR(sc.capacity().value(), 16.0, 1e-12);
  EXPECT_NEAR(sc.voltage().value(), 4.0, 1e-12);
}

TEST(Supercap, ShavesSurgeAboveBaseline) {
  Supercapacitor sc{util::Farads{2.0}, util::Volts{4.0}, util::Ohms{0.02}};
  // Load 5 W, baseline 1 W: cell should see ~1 W while the cap covers 4 W.
  const auto cell_load = sc.filter(Watts{5.0}, Watts{1.0}, Seconds{0.1});
  EXPECT_NEAR(cell_load.value(), 1.0, 1e-6);
  EXPECT_LT(sc.fill(), 1.0);
}

TEST(Supercap, RechargesDuringCalm) {
  Supercapacitor sc{util::Farads{2.0}, util::Volts{4.0}, util::Ohms{0.02}};
  sc.filter(Watts{6.0}, Watts{1.0}, Seconds{1.0});  // drain
  const double drained = sc.fill();
  ASSERT_LT(drained, 0.9);
  // Calm period: load 0.5 W, baseline 2 W -> recharge headroom 1.5 W.
  const auto cell_load = sc.filter(Watts{0.5}, Watts{2.0}, Seconds{1.0});
  EXPECT_GT(cell_load.value(), 0.5);  // cell also charges the cap
  EXPECT_LE(cell_load.value(), 2.0 + 1e-9);
  EXPECT_GT(sc.fill(), drained);
}

TEST(Supercap, NeverDrainsBelowFloor) {
  Supercapacitor sc{util::Farads{0.5}, util::Volts{4.0}, util::Ohms{0.02}};
  for (int i = 0; i < 100; ++i) {
    sc.filter(Watts{50.0}, Watts{0.0}, Seconds{0.1});
  }
  EXPECT_GE(sc.fill(), 0.0);
  EXPECT_LE(sc.fill(), 0.06);  // 5% reserve floor plus rounding
}

TEST(Supercap, EsrLossesAccumulate) {
  Supercapacitor sc{util::Farads{2.0}, util::Volts{4.0}, util::Ohms{0.1}};
  sc.filter(Watts{8.0}, Watts{1.0}, Seconds{0.5});
  EXPECT_GT(sc.losses().value(), 0.0);
}

TEST(Supercap, PassthroughWhenLoadEqualsBaseline) {
  Supercapacitor sc{util::Farads{2.0}, util::Volts{4.0}, util::Ohms{0.02}};
  const auto cell_load = sc.filter(Watts{1.0}, Watts{1.0}, Seconds{0.1});
  EXPECT_NEAR(cell_load.value(), 1.0, 1e-9);
}

}  // namespace
}  // namespace capman::battery
