#include "battery/chemistry.h"

#include <gtest/gtest.h>

namespace capman::battery {
namespace {

TEST(Chemistry, CatalogueHasSixEntries) {
  EXPECT_EQ(all_chemistries().size(), 6u);
}

TEST(Chemistry, LookupRoundTrips) {
  for (Chemistry c : all_chemistries()) {
    EXPECT_EQ(chemistry_profile(c).chemistry, c);
  }
}

// Table I "Result" column: LCO/NCA -> big; LMO/NMC/LFP/LTO -> LITTLE.
struct ClassifyCase {
  Chemistry chemistry;
  BatteryClass expected;
};

class ClassifyTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyTest, MatchesTableI) {
  const auto& param = GetParam();
  EXPECT_EQ(classify(chemistry_profile(param.chemistry)), param.expected);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ClassifyTest,
    ::testing::Values(ClassifyCase{Chemistry::kLCO, BatteryClass::kBig},
                      ClassifyCase{Chemistry::kNCA, BatteryClass::kBig},
                      ClassifyCase{Chemistry::kLMO, BatteryClass::kLittle},
                      ClassifyCase{Chemistry::kNMC, BatteryClass::kLittle},
                      ClassifyCase{Chemistry::kLFP, BatteryClass::kLittle},
                      ClassifyCase{Chemistry::kLTO, BatteryClass::kLittle}));

TEST(Chemistry, StarRatingsMatchTableI) {
  const auto& lco = chemistry_profile(Chemistry::kLCO);
  EXPECT_EQ(lco.stars.cost_efficiency, 2);
  EXPECT_EQ(lco.stars.lifetime, 3);
  EXPECT_EQ(lco.stars.discharge_rate, 2);
  EXPECT_EQ(lco.stars.energy_density, 4);
  const auto& lto = chemistry_profile(Chemistry::kLTO);
  EXPECT_EQ(lto.stars.lifetime, 5);
  EXPECT_EQ(lto.stars.discharge_rate, 5);
  EXPECT_EQ(lto.stars.energy_density, 1);
}

TEST(Chemistry, StarsWithinOneToFive) {
  for (Chemistry c : all_chemistries()) {
    const auto& s = chemistry_profile(c).stars;
    for (int v : {s.cost_efficiency, s.lifetime, s.discharge_rate,
                  s.energy_density, s.safety}) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 5);
    }
  }
}

TEST(Chemistry, BigChemistriesStoreMoreUsableEnergy) {
  const double big_factor =
      chemistry_profile(Chemistry::kNCA).usable_capacity_factor;
  for (Chemistry c : {Chemistry::kLMO, Chemistry::kNMC, Chemistry::kLFP,
                      Chemistry::kLTO}) {
    EXPECT_GT(big_factor, chemistry_profile(c).usable_capacity_factor);
  }
}

TEST(Chemistry, LittleChemistriesHaveShallowerSurge) {
  // LITTLE cells must dip less on a power step (smaller D1 of Fig. 3).
  const auto& nca = chemistry_profile(Chemistry::kNCA);
  const auto& lmo = chemistry_profile(Chemistry::kLMO);
  EXPECT_GT(nca.surge_resistance_ohm_at_1ah, lmo.surge_resistance_ohm_at_1ah);
  EXPECT_GT(nca.surge_tau_s, lmo.surge_tau_s);
}

TEST(Chemistry, LittleChemistriesRecoverFaster) {
  const auto& nca = chemistry_profile(Chemistry::kNCA);
  const auto& lmo = chemistry_profile(Chemistry::kLMO);
  EXPECT_GT(lmo.kibam_k_per_s, nca.kibam_k_per_s);
  EXPECT_GT(lmo.kibam_c, nca.kibam_c);
}

TEST(Chemistry, DischargeRateStarsOrderMaxCRate) {
  // More discharge-rate stars -> higher sustained C-rate limit.
  for (Chemistry a : all_chemistries()) {
    for (Chemistry b : all_chemistries()) {
      const auto& pa = chemistry_profile(a);
      const auto& pb = chemistry_profile(b);
      if (pa.stars.discharge_rate > pb.stars.discharge_rate) {
        EXPECT_GE(pa.max_c_rate, pb.max_c_rate)
            << pa.name << " vs " << pb.name;
      }
    }
  }
}

class EfficiencyCurveTest : public ::testing::TestWithParam<Chemistry> {};

TEST_P(EfficiencyCurveTest, EfficiencyWithinUnitInterval) {
  const auto& profile = chemistry_profile(GetParam());
  for (double c = 0.0; c <= 5.0; c += 0.05) {
    const double eta = delivery_efficiency(profile, c);
    EXPECT_GT(eta, 0.0);
    EXPECT_LE(eta, 1.0);
  }
}

TEST_P(EfficiencyCurveTest, CurveClampsOutsideKnots) {
  const auto& profile = chemistry_profile(GetParam());
  EXPECT_DOUBLE_EQ(delivery_efficiency(profile, 0.0),
                   profile.efficiency_curve.front().efficiency);
  EXPECT_DOUBLE_EQ(delivery_efficiency(profile, 99.0),
                   profile.efficiency_curve.back().efficiency);
}

TEST_P(EfficiencyCurveTest, InterpolatesBetweenKnots) {
  const auto& profile = chemistry_profile(GetParam());
  const auto& curve = profile.efficiency_curve;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double mid = 0.5 * (curve[i - 1].c_rate + curve[i].c_rate);
    const double lo = std::min(curve[i - 1].efficiency, curve[i].efficiency);
    const double hi = std::max(curve[i - 1].efficiency, curve[i].efficiency);
    const double eta = delivery_efficiency(profile, mid);
    EXPECT_GE(eta, lo - 1e-12);
    EXPECT_LE(eta, hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllChemistries, EfficiencyCurveTest,
                         ::testing::ValuesIn(all_chemistries()));

TEST(Chemistry, ToStringNames) {
  EXPECT_EQ(to_string(Chemistry::kNCA), "NCA");
  EXPECT_EQ(to_string(Chemistry::kLMO), "LMO");
  EXPECT_EQ(to_string(BatteryClass::kBig), "big");
  EXPECT_EQ(to_string(BatteryClass::kLittle), "LITTLE");
}

}  // namespace
}  // namespace capman::battery
