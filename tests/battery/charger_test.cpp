#include "battery/charger.h"

#include <gtest/gtest.h>

namespace capman::battery {
namespace {

using util::Seconds;
using util::Watts;

Cell drained_cell(Chemistry chem, double mah, double watts, double seconds) {
  Cell cell{chem, mah};
  double t = 0.0;
  while (t < seconds && !cell.exhausted()) {
    const auto r = cell.draw(Watts{watts}, Seconds{1.0});
    if (r.brownout) break;
    t += 1.0;
  }
  return cell;
}

TEST(Charger, ConfigValidateNamesTheInvalidField) {
  EXPECT_TRUE(ChargerConfig{}.validate().empty());
  ChargerConfig bad;
  bad.cc_c_rate = 0.0;
  bad.efficiency = 1.5;
  const auto errors = bad.validate();
  // cc_c_rate = 0 also invalidates the cutoff < cc_c_rate relation.
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_NE(errors[0].find("cc_c_rate"), std::string::npos);
  EXPECT_NE(errors[1].find("cutoff_c_rate"), std::string::npos);
  EXPECT_NE(errors[2].find("efficiency"), std::string::npos);
  EXPECT_THROW(Charger{bad}, std::invalid_argument);
}

TEST(Charger, FullCellIsDoneImmediately) {
  Cell cell{Chemistry::kNCA, 1000.0};
  Charger charger;
  const auto r = charger.step(cell, Seconds{1.0});
  EXPECT_TRUE(r.done);
  EXPECT_DOUBLE_EQ(r.accepted.value(), 0.0);
}

TEST(Charger, ChargingRaisesSoc) {
  Cell cell = drained_cell(Chemistry::kNCA, 1000.0, 1.0, 3600.0);
  const double before = cell.soc();
  ASSERT_LT(before, 0.9);
  Charger charger;
  for (int i = 0; i < 600; ++i) charger.step(cell, Seconds{1.0});
  EXPECT_GT(cell.soc(), before + 0.05);
}

TEST(Charger, ChargeFullyReachesFull) {
  Cell cell = drained_cell(Chemistry::kLMO, 800.0, 1.0, 5400.0);
  ASSERT_LT(cell.soc(), 0.8);
  Charger charger;
  const auto t = charger.charge_fully(cell, Seconds{10.0});
  EXPECT_GT(cell.soc(), 0.95);
  EXPECT_GT(t.value(), 60.0);
  EXPECT_LT(t.value(), 10.0 * 3600.0);
}

TEST(Charger, TaperSlowsNearFull) {
  Cell cell = drained_cell(Chemistry::kNCA, 1000.0, 1.0, 3600.0);
  Charger charger;
  // Current early in the charge...
  const auto early = charger.step(cell, Seconds{1.0});
  // ... must exceed the current just before completion.
  charger.charge_fully(cell, Seconds{10.0});
  Cell almost = cell;  // full cell; drain a sliver
  almost.draw(Watts{1.0}, Seconds{30.0});
  const auto late = charger.step(almost, Seconds{1.0});
  EXPECT_GT(early.current.value(), late.current.value());
}

TEST(Charger, EfficiencyLossAccounted) {
  Cell cell = drained_cell(Chemistry::kNCA, 1000.0, 1.0, 3600.0);
  ChargerConfig cfg;
  cfg.efficiency = 0.8;
  Charger charger{cfg};
  const auto r = charger.step(cell, Seconds{1.0});
  EXPECT_GT(r.losses.value(), 0.0);
  EXPECT_GT(r.accepted.value(), 0.0);
}

TEST(Charger, ConservesChargeBudget) {
  Cell cell = drained_cell(Chemistry::kNCA, 1000.0, 0.8, 3600.0);
  const double q_before =
      cell.available_charge().value() + cell.bound_charge().value();
  Charger charger;
  const auto r = charger.step(cell, Seconds{5.0});
  const double q_after =
      cell.available_charge().value() + cell.bound_charge().value();
  EXPECT_NEAR(q_after - q_before,
              r.current.value() * 5.0 * charger.config().efficiency, 1e-6);
}

TEST(Charger, ChargesWholePack) {
  DualPackConfig cfg;
  cfg.big_capacity_mah = 400.0;
  cfg.little_capacity_mah = 200.0;
  DualBatteryPack pack{cfg};
  // Drain both cells a bit.
  for (int i = 0; i < 300; ++i) {
    pack.step(Watts{0.8}, Seconds{1.0}, Seconds{static_cast<double>(i)});
  }
  pack.request(BatterySelection::kLittle, Seconds{301.0});
  for (int i = 0; i < 300; ++i) {
    pack.step(Watts{0.8}, Seconds{1.0}, Seconds{302.0 + i});
  }
  ASSERT_LT(pack.soc(), 0.95);
  Charger charger;
  const auto t = charger.charge_fully(pack, Seconds{10.0});
  EXPECT_GT(pack.big_soc(), 0.95);
  EXPECT_GT(pack.little_soc(), 0.95);
  EXPECT_GT(t.value(), 0.0);
}

TEST(Charger, DischargeChargeCycleIsRepeatable) {
  // Multi-cycle loop: the second discharge from a re-charged cell delivers
  // roughly the same energy as the first (no spurious capacity fade in the
  // model).
  Cell cell{Chemistry::kLMO, 500.0};
  Charger charger;
  auto discharge = [&]() {
    double delivered = 0.0;
    for (int i = 0; i < 100000; ++i) {
      const auto r = cell.draw(Watts{1.0}, Seconds{1.0});
      if (r.brownout || cell.exhausted()) break;
      delivered += r.delivered.value();
    }
    return delivered;
  };
  const double first = discharge();
  charger.charge_fully(cell, Seconds{10.0});
  const double second = discharge();
  EXPECT_NEAR(second, first, 0.1 * first);
}

TEST(CellCharging, ChargeCapsAtFull) {
  Cell cell{Chemistry::kNCA, 100.0};
  const auto accepted =
      cell.charge(util::Amperes{1.0}, Seconds{3600.0}, 1.0);
  EXPECT_DOUBLE_EQ(accepted.value(), 0.0);  // already full
  EXPECT_TRUE(cell.full());
}

TEST(CellCharging, ZeroCurrentAcceptsNothing) {
  Cell cell{Chemistry::kNCA, 100.0};
  cell.draw(Watts{0.3}, Seconds{600.0});
  EXPECT_DOUBLE_EQ(cell.charge(util::Amperes{0.0}, Seconds{10.0}).value(),
                   0.0);
}

}  // namespace
}  // namespace capman::battery
