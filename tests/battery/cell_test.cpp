#include "battery/cell.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace capman::battery {
namespace {

using util::Seconds;
using util::Watts;

Cell nca_cell() { return Cell{Chemistry::kNCA, 2500.0}; }
Cell lmo_cell() { return Cell{Chemistry::kLMO, 2500.0}; }

TEST(Cell, StartsFull) {
  Cell c = nca_cell();
  EXPECT_NEAR(c.soc(), 1.0, 1e-9);
  EXPECT_NEAR(c.available_fill(), 1.0, 1e-9);
  EXPECT_FALSE(c.exhausted());
}

TEST(Cell, OcvWithinPlausibleWindow) {
  Cell c = nca_cell();
  const double v = c.open_circuit_voltage().value();
  EXPECT_GT(v, 3.5);
  EXPECT_LT(v, 4.4);
}

TEST(Cell, DrawDeliversRequestedEnergy) {
  Cell c = nca_cell();
  const auto r = c.draw(Watts{1.0}, Seconds{1.0});
  EXPECT_FALSE(r.brownout);
  EXPECT_NEAR(r.delivered.value(), 1.0, 1e-9);
  EXPECT_GT(r.losses.value(), 0.0);
  EXPECT_GT(r.current.value(), 0.2);
}

TEST(Cell, SocDecreasesUnderLoad) {
  Cell c = nca_cell();
  const double before = c.soc();
  for (int i = 0; i < 100; ++i) c.draw(Watts{2.0}, Seconds{1.0});
  EXPECT_LT(c.soc(), before);
}

TEST(Cell, ChargeConservationUnderDraw) {
  // Charge drawn from the wells equals current/eta integrated over time.
  Cell c = nca_cell();
  const double q_before =
      c.available_charge().value() + c.bound_charge().value();
  double drawn_c = 0.0;
  for (int i = 0; i < 600; ++i) {
    const auto r = c.draw(Watts{1.5}, Seconds{1.0});
    const double c_rate = r.current.value() / c.capacity_ah();
    drawn_c += r.current.value() /
               delivery_efficiency(c.profile(), c_rate) * 1.0;
  }
  const double q_after =
      c.available_charge().value() + c.bound_charge().value();
  // Allow for self-discharge (tiny over 10 minutes).
  EXPECT_NEAR(q_before - q_after, drawn_c, 0.01 * q_before);
}

TEST(Cell, RestRedistributesIntoAvailableWell) {
  Cell c = nca_cell();
  // Heavy draw to depress the available well.
  for (int i = 0; i < 900; ++i) c.draw(Watts{4.0}, Seconds{1.0});
  const double fill_after_load = c.available_fill();
  ASSERT_LT(fill_after_load, 1.0);
  c.rest(Seconds{600.0});
  // Recovery effect: the available well refills from the bound well.
  EXPECT_GT(c.available_fill(), fill_after_load);
}

TEST(Cell, VoltageDipsUnderLoadAndRecovers) {
  // The V-edge of paper Fig. 3, straight from the equivalent circuit.
  Cell c = nca_cell();
  c.rest(Seconds{1.0});
  const double v_initial = c.open_circuit_voltage().value();
  double v_loaded = v_initial;
  for (int i = 0; i < 50; ++i) {
    v_loaded = c.draw(Watts{3.0}, Seconds{0.1}).terminal_voltage.value();
  }
  EXPECT_LT(v_loaded, v_initial - 0.1);
  c.rest(Seconds{60.0});
  const double v_recovered = c.open_circuit_voltage().value();
  EXPECT_GT(v_recovered, v_loaded);
  EXPECT_LE(v_recovered, v_initial + 1e-9);  // some charge is gone for good
}

TEST(Cell, SurgeOverpotentialDeeperOnBigChemistry) {
  Cell big = nca_cell();
  Cell little = lmo_cell();
  for (int i = 0; i < 30; ++i) {
    big.draw(Watts{3.0}, Seconds{0.1});
    little.draw(Watts{3.0}, Seconds{0.1});
  }
  EXPECT_GT(big.surge_overpotential().value(),
            little.surge_overpotential().value());
}

TEST(Cell, LittleMoreEfficientOnBursts) {
  // Alternate genuine power bursts (5 W, well into the big chemistry's
  // resistive regime but servable by both) with rests; the LITTLE
  // chemistry must waste much less.
  Cell big = nca_cell();
  Cell little = lmo_cell();
  double big_losses = 0.0;
  double little_losses = 0.0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      const auto rb = big.draw(Watts{5.0}, Seconds{0.1});
      const auto rl = little.draw(Watts{5.0}, Seconds{0.1});
      EXPECT_FALSE(rb.brownout);
      EXPECT_FALSE(rl.brownout);
      big_losses += rb.losses.value();
      little_losses += rl.losses.value();
    }
    big.rest(Seconds{5.0});
    little.rest(Seconds{5.0});
  }
  EXPECT_LT(little_losses, 0.7 * big_losses);
}

TEST(Cell, BigCollapsesOnHeavyBurstsLittleServes) {
  // Past ~1C the big chemistry's rail collapses outright while the LITTLE
  // one keeps serving - the serviceability asymmetry the scheduler manages.
  Cell big = nca_cell();
  Cell little = lmo_cell();
  int big_brownouts = 0;
  int little_brownouts = 0;
  for (int i = 0; i < 20; ++i) {
    big_brownouts += big.draw(Watts{9.0}, Seconds{0.1}).brownout ? 1 : 0;
    little_brownouts +=
        little.draw(Watts{9.0}, Seconds{0.1}).brownout ? 1 : 0;
  }
  EXPECT_GT(big_brownouts, 10);
  EXPECT_EQ(little_brownouts, 0);
}

TEST(Cell, DepletesAndReportsExhaustion) {
  Cell c{Chemistry::kNCA, 500.0};  // small cell so the test is fast
  int steps = 0;
  while (!c.exhausted() && steps < 2000000) {
    const auto r = c.draw(Watts{0.5}, Seconds{1.0});
    ++steps;
    if (r.brownout && c.exhausted()) break;
    if (r.brownout) break;  // sustained brownout near empty also ends it
  }
  EXPECT_LT(steps, 2000000);
  EXPECT_LT(c.soc(), 0.5);
}

TEST(Cell, BrownoutOnImpossibleLoad) {
  Cell c{Chemistry::kNCA, 100.0};  // small cell, huge load
  const auto r = c.draw(Watts{500.0}, Seconds{0.1});
  EXPECT_TRUE(r.brownout);
  EXPECT_DOUBLE_EQ(r.delivered.value(), 0.0);
}

TEST(Cell, CanSupplyReflectsLimits) {
  Cell c = nca_cell();
  EXPECT_TRUE(c.can_supply(Watts{1.0}));
  EXPECT_FALSE(c.can_supply(Watts{1000.0}));
  EXPECT_TRUE(c.can_supply(Watts{0.0}));
}

TEST(Cell, CRateLimitEnforced) {
  Cell c = lmo_cell();  // max 10 C on 2.5 Ah -> 25 A -> ~90 W
  EXPECT_TRUE(c.can_supply(Watts{20.0}));
  Cell nca = nca_cell();  // max 2 C -> 5 A -> ~17 W; R0 may bind earlier
  EXPECT_FALSE(nca.can_supply(Watts{40.0}));
}

TEST(Cell, SelfDischargeDrainsAtRest) {
  Cell c = lmo_cell();  // LMO has the highest self-discharge
  const double before = c.soc();
  for (int i = 0; i < 24; ++i) c.rest(Seconds{3600.0});  // one day
  const double after = c.soc();
  EXPECT_LT(after, before);
  EXPECT_NEAR(before - after,
              c.profile().self_discharge_per_day, 0.01);
}

TEST(Cell, RechargeRestoresFullState) {
  Cell c = nca_cell();
  for (int i = 0; i < 100; ++i) c.draw(Watts{2.0}, Seconds{1.0});
  ASSERT_LT(c.soc(), 1.0);
  c.recharge();
  EXPECT_NEAR(c.soc(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.surge_overpotential().value(), 0.0);
}

TEST(Cell, EnergyRemainingDecreasesMonotonically) {
  Cell c = nca_cell();
  double prev = c.energy_remaining().value();
  for (int i = 0; i < 50; ++i) {
    c.draw(Watts{2.0}, Seconds{5.0});
    const double now = c.energy_remaining().value();
    EXPECT_LT(now, prev + 1e-6);
    prev = now;
  }
}

TEST(Cell, HeatEqualsLossRate) {
  Cell c = nca_cell();
  const auto r = c.draw(Watts{2.0}, Seconds{0.5});
  EXPECT_NEAR(r.heat.value() * 0.5, r.losses.value(), 1e-9);
}

struct RateCase {
  double watts;
};

class SustainedRateTest : public ::testing::TestWithParam<RateCase> {};

// Rate-capacity effect: the higher the sustained power, the less total
// energy the cell delivers before exhaustion.
TEST_P(SustainedRateTest, DeliveredEnergyShrinksWithRate) {
  Cell slow{Chemistry::kNCA, 300.0};
  Cell fast{Chemistry::kNCA, 300.0};
  const double base_w = GetParam().watts;
  auto run = [](Cell& cell, double watts) {
    double delivered = 0.0;
    for (int i = 0; i < 2000000; ++i) {
      const auto r = cell.draw(Watts{watts}, Seconds{1.0});
      if (r.brownout || cell.exhausted()) break;
      delivered += r.delivered.value();
    }
    return delivered;
  };
  const double slow_energy = run(slow, base_w);
  const double fast_energy = run(fast, 3.0 * base_w);
  EXPECT_GT(slow_energy, fast_energy);
}

INSTANTIATE_TEST_SUITE_P(Rates, SustainedRateTest,
                         ::testing::Values(RateCase{0.2}, RateCase{0.4},
                                           RateCase{0.6}));

}  // namespace
}  // namespace capman::battery
