#include "battery/pack.h"

#include <gtest/gtest.h>

namespace capman::battery {
namespace {

using util::Seconds;
using util::Watts;

TEST(SinglePack, DeliversAndDepletes) {
  SingleBatteryPack pack{Chemistry::kLCO, 500.0};
  const auto r = pack.step(Watts{0.5}, Seconds{1.0}, Seconds{0.0});
  EXPECT_TRUE(r.demand_met);
  EXPECT_NEAR(r.delivered.value(), 0.5, 1e-9);
  EXPECT_EQ(pack.switch_count(), 0u);
  EXPECT_EQ(pack.little_soc(), 0.0);
}

TEST(SinglePack, RequestIsNoOp) {
  SingleBatteryPack pack{Chemistry::kLCO, 100.0};
  pack.request(BatterySelection::kLittle, Seconds{0.0});
  EXPECT_EQ(pack.active(), BatterySelection::kBig);
}

TEST(SinglePack, ActivationTimeAccumulates) {
  SingleBatteryPack pack{Chemistry::kLCO, 2500.0};
  for (int i = 0; i < 10; ++i) {
    pack.step(Watts{1.0}, Seconds{0.5}, Seconds{i * 0.5});
  }
  EXPECT_NEAR(pack.activation_time(BatterySelection::kBig).value(), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(pack.activation_time(BatterySelection::kLittle).value(),
                   0.0);
}

DualPackConfig small_pack_config() {
  DualPackConfig cfg;
  cfg.big_capacity_mah = 400.0;
  cfg.little_capacity_mah = 150.0;
  return cfg;
}

TEST(DualPack, StartsOnBig) {
  DualBatteryPack pack{small_pack_config()};
  EXPECT_EQ(pack.active(), BatterySelection::kBig);
  EXPECT_NEAR(pack.soc(), 1.0, 1e-9);
}

TEST(DualPack, SwitchTakesEffectAfterLatency) {
  DualBatteryPack pack{small_pack_config()};
  pack.request(BatterySelection::kLittle, Seconds{0.0});
  // Before the latency elapses the big cell still carries the load.
  auto r = pack.step(Watts{1.0}, Seconds{0.0005}, Seconds{0.0005});
  EXPECT_EQ(r.supplied_by, BatterySelection::kBig);
  r = pack.step(Watts{1.0}, Seconds{0.01}, Seconds{0.02});
  EXPECT_EQ(r.supplied_by, BatterySelection::kLittle);
  EXPECT_EQ(pack.switch_count(), 1u);
}

TEST(DualPack, SwitchCostsEnergy) {
  DualBatteryPack pack{small_pack_config()};
  pack.request(BatterySelection::kLittle, Seconds{0.0});
  const auto r = pack.step(Watts{0.5}, Seconds{0.1}, Seconds{0.1});
  // The completed switch charges its loss into this step.
  EXPECT_GT(r.losses.value(),
            pack.switch_facility().total_switch_loss().value() * 0.5);
  EXPECT_EQ(pack.switch_count(), 1u);
}

TEST(DualPack, RedundantRequestDoesNotSwitch) {
  DualBatteryPack pack{small_pack_config()};
  pack.request(BatterySelection::kBig, Seconds{0.0});
  pack.step(Watts{0.5}, Seconds{0.1}, Seconds{0.1});
  EXPECT_EQ(pack.switch_count(), 0u);
}

TEST(DualPack, TracksPerCellActivationTime) {
  DualBatteryPack pack{small_pack_config()};
  pack.step(Watts{1.0}, Seconds{1.0}, Seconds{1.0});
  pack.request(BatterySelection::kLittle, Seconds{1.0});
  for (int i = 0; i < 3; ++i) {
    pack.step(Watts{1.0}, Seconds{1.0}, Seconds{2.0 + i});
  }
  EXPECT_NEAR(pack.activation_time(BatterySelection::kBig).value(), 1.0, 1e-9);
  EXPECT_NEAR(pack.activation_time(BatterySelection::kLittle).value(), 3.0,
              1e-9);
}

TEST(DualPack, NoSilentFallbackOnBrownout) {
  // There is no autonomous mid-interval fallback: a load beyond the active
  // cell's capability is a brownout until the scheduler requests a switch.
  DualPackConfig cfg = small_pack_config();
  DualBatteryPack pack{cfg};
  // 400 mAh NCA is limited to 2 C; ~3 W is beyond it.
  const auto r = pack.step(Watts{3.0}, Seconds{0.1}, Seconds{0.0});
  EXPECT_FALSE(r.demand_met);
  EXPECT_EQ(r.supplied_by, BatterySelection::kBig);
  EXPECT_EQ(pack.switch_count(), 0u);
}

TEST(DualPack, RequestValidationRefusesUnserviceableCell) {
  // The comparator will not latch onto a rail that cannot carry the
  // present load: a request for the big cell under a 3 W draw (beyond the
  // 400 mAh NCA) is ignored while LITTLE carries it.
  DualPackConfig cfg = small_pack_config();
  DualBatteryPack pack{cfg};
  pack.request(BatterySelection::kLittle, Seconds{0.0});
  pack.step(Watts{3.0}, Seconds{0.1}, Seconds{0.1});
  ASSERT_EQ(pack.active(), BatterySelection::kLittle);
  // Now ask for big while the 3 W load persists: refused.
  pack.request(BatterySelection::kBig, Seconds{0.2});
  pack.step(Watts{3.0}, Seconds{0.1}, Seconds{0.3});
  EXPECT_EQ(pack.active(), BatterySelection::kLittle);
  // Under a light load the same request is honored.
  pack.step(Watts{0.3}, Seconds{0.1}, Seconds{0.4});
  pack.request(BatterySelection::kBig, Seconds{0.5});
  pack.step(Watts{0.3}, Seconds{0.1}, Seconds{0.6});
  EXPECT_EQ(pack.active(), BatterySelection::kBig);
}

TEST(DualPack, ExhaustedOnlyWhenBothCellsAre) {
  DualPackConfig cfg;
  cfg.big_capacity_mah = 20.0;
  cfg.little_capacity_mah = 20.0;
  DualBatteryPack pack{cfg};
  double t = 0.0;
  int guard = 0;
  while (!pack.exhausted() && guard++ < 100000) {
    const auto r = pack.step(Watts{0.4}, Seconds{1.0}, Seconds{t});
    t += 1.0;
    if (!r.demand_met && pack.exhausted()) break;
    if (!r.demand_met) break;  // persistent brownout before exhaustion
  }
  // One of the two exit conditions must have fired before the guard.
  EXPECT_LT(guard, 100000);
}

TEST(DualPack, CombinedSocIsCapacityWeighted) {
  DualPackConfig cfg;
  cfg.big_capacity_mah = 300.0;
  cfg.little_capacity_mah = 100.0;
  DualBatteryPack pack{cfg};
  // Drain only the little cell for a while.
  pack.request(BatterySelection::kLittle, Seconds{0.0});
  for (int i = 0; i < 120; ++i) {
    pack.step(Watts{1.0}, Seconds{1.0}, Seconds{0.1 + i});
  }
  const double expected = (pack.big_soc() * 300.0 + pack.little_soc() * 100.0) /
                          400.0;
  EXPECT_NEAR(pack.soc(), expected, 1e-9);
  EXPECT_LT(pack.little_soc(), pack.big_soc());
}

TEST(DualPack, RechargeRestoresBothCells) {
  DualBatteryPack pack{small_pack_config()};
  for (int i = 0; i < 50; ++i) {
    pack.step(Watts{1.0}, Seconds{1.0}, Seconds{static_cast<double>(i)});
  }
  ASSERT_LT(pack.soc(), 1.0);
  pack.recharge();
  EXPECT_NEAR(pack.soc(), 1.0, 1e-9);
}

TEST(DualPack, RestStepIsHarmless) {
  DualBatteryPack pack{small_pack_config()};
  const auto r = pack.step(Watts{0.0}, Seconds{1.0}, Seconds{0.0});
  EXPECT_TRUE(r.demand_met);
  EXPECT_DOUBLE_EQ(r.delivered.value(), 0.0);
}

TEST(DualPack, EnergyRemainingSumsBothCells) {
  DualBatteryPack pack{small_pack_config()};
  const double total = pack.energy_remaining().value();
  const double parts = pack.big_cell().energy_remaining().value() +
                       pack.little_cell().energy_remaining().value();
  EXPECT_NEAR(total, parts, 1e-9);
}

}  // namespace
}  // namespace capman::battery
