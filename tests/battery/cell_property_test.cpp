// Property sweeps over the whole chemistry catalogue: conservation laws and
// monotonicity invariants the cell model must satisfy for every chemistry,
// capacity and load level.
#include <gtest/gtest.h>

#include <tuple>

#include "battery/cell.h"
#include "util/rng.h"

namespace capman::battery {
namespace {

using util::Seconds;
using util::Watts;

class ChemistrySweep : public ::testing::TestWithParam<Chemistry> {};

TEST_P(ChemistrySweep, ChargeNeverCreatedByDrawRestCycles) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 99};
  Cell cell{GetParam(), 1500.0};
  double initial =
      cell.available_charge().value() + cell.bound_charge().value();
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.6)) {
      cell.draw(Watts{rng.uniform(0.1, 2.0)}, Seconds{rng.uniform(0.1, 5.0)});
    } else {
      cell.rest(Seconds{rng.uniform(0.1, 30.0)});
    }
    const double now =
        cell.available_charge().value() + cell.bound_charge().value();
    EXPECT_LE(now, initial + 1e-6);
    initial = std::min(initial, now + 1e-6);
  }
}

TEST_P(ChemistrySweep, RestNeverChangesTotalChargeExceptSelfDischarge) {
  Cell cell{GetParam(), 1000.0};
  cell.draw(Watts{1.0}, Seconds{600.0});
  const double before =
      cell.available_charge().value() + cell.bound_charge().value();
  cell.rest(Seconds{3600.0});
  const double after =
      cell.available_charge().value() + cell.bound_charge().value();
  const double max_leak =
      before * cell.profile().self_discharge_per_day / 24.0 * 1.5;
  EXPECT_LE(before - after, max_leak + 1e-9);
  EXPECT_GE(before - after, -1e-9);
}

TEST_P(ChemistrySweep, OcvMonotoneInFill) {
  Cell cell{GetParam(), 1000.0};
  double prev_v = cell.open_circuit_voltage().value() + 1e-9;
  int guard = 0;
  while (!cell.exhausted() && guard++ < 100000) {
    const auto r = cell.draw(Watts{0.5}, Seconds{10.0});
    if (r.brownout) break;
    const double v = cell.open_circuit_voltage().value();
    EXPECT_LE(v, prev_v + 1e-6);
    prev_v = v;
  }
}

TEST_P(ChemistrySweep, TerminalNeverExceedsOpenCircuit) {
  Cell cell{GetParam(), 1000.0};
  for (double w : {0.2, 0.5, 1.0, 2.0}) {
    const auto r = cell.draw(Watts{w}, Seconds{0.5});
    if (!r.brownout) {
      EXPECT_LT(r.terminal_voltage.value(),
                cell.open_circuit_voltage().value() + 1e-9);
    }
  }
}

TEST_P(ChemistrySweep, LossesAlwaysNonNegative) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 5};
  Cell cell{GetParam(), 800.0};
  for (int i = 0; i < 300; ++i) {
    const auto r =
        cell.draw(Watts{rng.uniform(0.0, 3.0)}, Seconds{rng.uniform(0.05, 2.0)});
    EXPECT_GE(r.losses.value(), 0.0);
    EXPECT_GE(r.delivered.value(), 0.0);
  }
}

TEST_P(ChemistrySweep, DeliveredEnergyBoundedByChemicalBudget) {
  Cell cell{GetParam(), 300.0};
  const double budget = cell.energy_remaining().value();
  double delivered = 0.0;
  int guard = 0;
  while (!cell.exhausted() && guard++ < 300000) {
    const auto r = cell.draw(Watts{0.4}, Seconds{2.0});
    if (r.brownout) break;
    delivered += r.delivered.value();
  }
  EXPECT_LT(delivered, budget * 1.1);
  EXPECT_GT(delivered, 0.25 * budget);  // LCO strands heavily by design
}

TEST_P(ChemistrySweep, ChargeDischargeRoundTripLosesEnergy) {
  // No perpetual motion: a full discharge/charge cycle returns at most the
  // energy that was put in.
  Cell cell{GetParam(), 400.0};
  double out = 0.0;
  int guard = 0;
  while (!cell.exhausted() && guard++ < 200000) {
    const auto r = cell.draw(Watts{0.5}, Seconds{2.0});
    if (r.brownout) break;
    out += r.delivered.value();
  }
  double in = 0.0;
  const double i_amps = 0.4 * cell.capacity_ah();
  guard = 0;
  while (!cell.full() && guard++ < 200000) {
    const double v = cell.open_circuit_voltage().value();
    const double accepted =
        cell.charge(util::Amperes{i_amps}, Seconds{5.0}, 0.95).value();
    in += i_amps * 5.0 * v;  // wall-side energy
    if (accepted <= 0.0) break;
  }
  EXPECT_GT(in, 0.9 * out);
}

INSTANTIATE_TEST_SUITE_P(AllChemistries, ChemistrySweep,
                         ::testing::ValuesIn(all_chemistries()),
                         [](const auto& param_info) {
                           return std::string{to_string(param_info.param)};
                         });

struct LoadCase {
  double watts;
  double dt;
};

class TimestepInvariance
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

// Drawing the same power with different step sizes must agree on the
// energy accounting (the closed-form KiBaM update is exact for constant
// current, so only the current re-solve rate differs).
TEST_P(TimestepInvariance, CoarseAndFineStepsAgree) {
  const double watts = std::get<0>(GetParam());
  const double fine_dt = std::get<1>(GetParam());
  Cell coarse{Chemistry::kNCA, 1000.0};
  Cell fine{Chemistry::kNCA, 1000.0};
  const double horizon = 600.0;
  for (double t = 0.0; t < horizon; t += 10.0) {
    coarse.draw(Watts{watts}, Seconds{10.0});
  }
  for (double t = 0.0; t < horizon; t += fine_dt) {
    fine.draw(Watts{watts}, Seconds{fine_dt});
  }
  EXPECT_NEAR(coarse.soc(), fine.soc(), 0.01);
  EXPECT_NEAR(coarse.available_fill(), fine.available_fill(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimestepInvariance,
    ::testing::Combine(::testing::Values(0.3, 0.8, 1.5),
                       ::testing::Values(0.05, 0.5, 2.0)));

}  // namespace
}  // namespace capman::battery
