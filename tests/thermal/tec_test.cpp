#include "thermal/tec.h"

#include <gtest/gtest.h>

#include "thermal/controller.h"
#include "thermal/phone_thermal.h"

namespace capman::thermal {
namespace {

using util::Amperes;
using util::Celsius;
using util::Seconds;
using util::Watts;

TEST(Tec, ZeroCurrentOnlyConducts) {
  Tec tec;
  const auto q = tec.heat_pumped(Celsius{30.0}, Celsius{40.0}, Amperes{0.0});
  // Pure conduction from hot to cold: negative pumping.
  EXPECT_NEAR(q.value(), -tec.params().conductance_w_per_k * 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      tec.electric_power(Celsius{30.0}, Celsius{40.0}, Amperes{0.0}).value(),
      0.0);
}

TEST(Tec, PumpsHeatAtRatedCurrent) {
  Tec tec;
  const auto q = tec.heat_pumped(Celsius{45.0}, Celsius{45.0},
                                 tec.params().rated_current);
  EXPECT_GT(q.value(), 0.0);
}

TEST(Tec, ElectricPowerIncludesJouleAndSeebeckTerms) {
  Tec tec;
  const double i = 1.0;
  const double dt = 10.0;
  const auto p = tec.electric_power(Celsius{30.0}, Celsius{40.0}, Amperes{i});
  EXPECT_NEAR(p.value(),
              tec.params().seebeck_v_per_k * i * dt +
                  i * i * tec.params().resistance.value(),
              1e-12);
}

TEST(Tec, HeatRejectedIsPumpedPlusElectric) {
  Tec tec;
  const Celsius cold{35.0};
  const Celsius hot{42.0};
  const Amperes i{0.8};
  EXPECT_NEAR(tec.heat_rejected(cold, hot, i).value(),
              tec.heat_pumped(cold, hot, i).value() +
                  tec.electric_power(cold, hot, i).value(),
              1e-12);
}

TEST(Tec, OptimalCurrentMatchesAnalyticForm) {
  Tec tec;
  const Celsius cold{26.85};  // 300 K
  const double expected = tec.params().seebeck_v_per_k * 300.0 /
                          tec.params().resistance.value();
  EXPECT_NEAR(tec.optimal_current(cold).value(), expected, 1e-12);
  // Default parameters are tuned so the rated current ~ 1.0 A (paper Fig. 6
  // peaks near 1.0 A).
  EXPECT_NEAR(expected, 1.0, 0.05);
}

TEST(Tec, DeltaTCurveIsUnimodalWithInteriorMaximum) {
  // Reproduces the shape of paper Fig. 6 (bottom).
  Tec tec;
  const Celsius cold{25.0};
  double best_dt = -1e9;
  double best_i = 0.0;
  double prev = -1e9;
  bool increased = false;
  bool decreased_after_peak = false;
  for (double i = 0.0; i <= 2.2; i += 0.05) {
    const double dt = tec.max_delta_t(cold, Amperes{i}).value();
    if (dt > best_dt) {
      best_dt = dt;
      best_i = i;
    }
    if (dt > prev + 1e-12 && prev != -1e9) increased = true;
    if (dt < prev - 1e-12 && i > best_i) decreased_after_peak = true;
    prev = dt;
  }
  EXPECT_TRUE(increased);
  EXPECT_TRUE(decreased_after_peak);
  EXPECT_NEAR(best_i, tec.optimal_current(cold).value(), 0.06);
  EXPECT_GT(best_dt, 0.0);
}

TEST(Tec, OnOffActuation) {
  Tec tec;
  EXPECT_FALSE(tec.is_on());
  EXPECT_DOUBLE_EQ(tec.operating_current().value(), 0.0);
  tec.turn_on();
  EXPECT_TRUE(tec.is_on());
  EXPECT_DOUBLE_EQ(tec.operating_current().value(),
                   tec.params().rated_current.value());
  tec.turn_off();
  EXPECT_FALSE(tec.is_on());
}

TEST(PhoneThermal, HeatsUpUnderCpuLoad) {
  PhoneThermal phone;
  for (int i = 0; i < 3000; ++i) {
    phone.step(Watts{2.0}, Watts{0.3}, Watts{0.8}, Seconds{1.0});
  }
  EXPECT_GT(phone.cpu_temperature().value(), 40.0);
  EXPECT_GT(phone.cpu_temperature().value(),
            phone.surface_temperature().value());
  EXPECT_GT(phone.surface_temperature().value(), 25.0);
}

TEST(PhoneThermal, TecCoolsTheCpuSpot) {
  PhoneThermal with_tec;
  PhoneThermal without_tec;
  for (int i = 0; i < 3000; ++i) {
    with_tec.tec().turn_on();
    with_tec.step(Watts{2.0}, Watts{0.3}, Watts{0.8}, Seconds{1.0});
    without_tec.step(Watts{2.0}, Watts{0.3}, Watts{0.8}, Seconds{1.0});
  }
  EXPECT_LT(with_tec.cpu_temperature().value(),
            without_tec.cpu_temperature().value() - 1.0);
}

TEST(PhoneThermal, TecDrawsPowerWhenOn) {
  PhoneThermal phone;
  phone.tec().turn_on();
  const auto p = phone.step(Watts{1.0}, Watts{0.2}, Watts{0.5}, Seconds{1.0});
  EXPECT_GT(p.value(), 0.5);  // ~ I^2 R at rated current
  phone.tec().turn_off();
  const auto p_off =
      phone.step(Watts{1.0}, Watts{0.2}, Watts{0.5}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(p_off.value(), 0.0);
}

TEST(PhoneThermal, ResetRestoresAmbient) {
  PhoneThermal phone;
  for (int i = 0; i < 100; ++i) {
    phone.step(Watts{3.0}, Watts{0.5}, Watts{1.0}, Seconds{1.0});
  }
  phone.reset(Celsius{25.0});
  EXPECT_DOUBLE_EQ(phone.cpu_temperature().value(), 25.0);
  EXPECT_FALSE(phone.tec().is_on());
}

TEST(CoolingController, TurnsOnAboveThresholdOffBelowHysteresis) {
  PhoneThermal phone;
  CoolingController ctrl;
  // Force the hot spot above 45 C.
  while (phone.cpu_temperature().value() < 46.0) {
    phone.step(Watts{3.0}, Watts{0.5}, Watts{1.0}, Seconds{5.0});
  }
  EXPECT_TRUE(ctrl.update(phone));
  EXPECT_EQ(ctrl.activation_count(), 1u);
  // Cool the phone well below threshold - hysteresis.
  phone.reset(Celsius{25.0});
  phone.tec().turn_on();  // reset turned it off; restore controller's view
  EXPECT_FALSE(ctrl.update(phone));
  EXPECT_EQ(ctrl.activation_count(), 1u);
}

TEST(CoolingController, HysteresisPreventsChatter) {
  PhoneThermal phone;
  CoolingController ctrl{CoolingControllerConfig{Celsius{45.0},
                                                 util::KelvinDiff{2.0}}};
  // Heat to just above threshold.
  while (phone.cpu_temperature().value() < 45.2) {
    phone.step(Watts{3.0}, Watts{0.5}, Watts{1.0}, Seconds{5.0});
  }
  ASSERT_TRUE(ctrl.update(phone));
  // Cooling to 44 C (inside the hysteresis band) must keep the TEC on.
  phone.reset(Celsius{44.0});
  phone.tec().turn_on();
  EXPECT_TRUE(ctrl.update(phone));
  // Dropping below 43 C turns it off.
  phone.reset(Celsius{42.5});
  phone.tec().turn_on();
  EXPECT_FALSE(ctrl.update(phone));
}

}  // namespace
}  // namespace capman::thermal
