#include "thermal/network.h"

#include <gtest/gtest.h>

namespace capman::thermal {
namespace {

using util::Celsius;
using util::Seconds;
using util::Watts;

TEST(ThermalNetwork, StaysAtAmbientWithoutHeat) {
  ThermalNetwork net;
  const auto node = net.add_node("chip", 5.0, Celsius{25.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{25.0});
  net.add_edge(node, amb, 0.1);
  for (int i = 0; i < 100; ++i) net.step(Seconds{1.0});
  EXPECT_NEAR(net.temperature(node).value(), 25.0, 1e-9);
}

TEST(ThermalNetwork, SteadyStateMatchesAnalyticSolution) {
  // One node, conductance G to ambient, constant power P:
  // steady dT = P / G.
  ThermalNetwork net;
  const auto node = net.add_node("chip", 2.0, Celsius{25.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{25.0});
  net.add_edge(node, amb, 0.25);
  for (int i = 0; i < 5000; ++i) {
    net.inject(node, Watts{1.0});
    net.step(Seconds{1.0});
  }
  EXPECT_NEAR(net.temperature(node).value(), 25.0 + 1.0 / 0.25, 0.01);
}

TEST(ThermalNetwork, TwoNodeSteadyState) {
  // chip -G1- spreader -G2- ambient, P into chip:
  // T_spreader = amb + P/G2; T_chip = T_spreader + P/G1.
  ThermalNetwork net;
  const auto chip = net.add_node("chip", 1.0, Celsius{20.0});
  const auto spreader = net.add_node("spreader", 5.0, Celsius{20.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{20.0});
  net.add_edge(chip, spreader, 0.5);
  net.add_edge(spreader, amb, 0.2);
  for (int i = 0; i < 20000; ++i) {
    net.inject(chip, Watts{2.0});
    net.step(Seconds{1.0});
  }
  EXPECT_NEAR(net.temperature(spreader).value(), 20.0 + 2.0 / 0.2, 0.05);
  EXPECT_NEAR(net.temperature(chip).value(), 20.0 + 10.0 + 2.0 / 0.5, 0.05);
}

TEST(ThermalNetwork, ExponentialRelaxation) {
  // Cooling from 50 C toward 25 C with tau = C/G = 10 s.
  ThermalNetwork net;
  const auto node = net.add_node("chip", 5.0, Celsius{50.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{25.0});
  net.add_edge(node, amb, 0.5);
  net.step(Seconds{10.0});  // one time constant
  const double expected = 25.0 + 25.0 * std::exp(-1.0);
  EXPECT_NEAR(net.temperature(node).value(), expected, 0.3);
}

TEST(ThermalNetwork, NegativeInjectionCools) {
  ThermalNetwork net;
  const auto node = net.add_node("chip", 5.0, Celsius{40.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{40.0});
  net.add_edge(node, amb, 0.01);
  net.inject(node, Watts{-2.0});
  net.step(Seconds{1.0});
  EXPECT_LT(net.temperature(node).value(), 40.0);
}

TEST(ThermalNetwork, InjectionsAccumulateAndClear) {
  ThermalNetwork net;
  const auto node = net.add_node("chip", 1.0, Celsius{0.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{0.0});
  net.add_edge(node, amb, 1e-6);
  net.inject(node, Watts{1.0});
  net.inject(node, Watts{2.0});
  net.step(Seconds{1.0});
  EXPECT_NEAR(net.temperature(node).value(), 3.0, 0.01);
  // Next step without injection barely moves (tiny conductance).
  net.step(Seconds{1.0});
  EXPECT_NEAR(net.temperature(node).value(), 3.0, 0.01);
}

TEST(ThermalNetwork, FixedNodeNeverMoves) {
  ThermalNetwork net;
  const auto node = net.add_node("chip", 1.0, Celsius{80.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{25.0});
  net.add_edge(node, amb, 1.0);
  net.inject(amb, Watts{100.0});  // ignored by fixed nodes
  for (int i = 0; i < 100; ++i) net.step(Seconds{1.0});
  EXPECT_DOUBLE_EQ(net.temperature(amb).value(), 25.0);
}

TEST(ThermalNetwork, EnergyFlowsHotToCold) {
  ThermalNetwork net;
  const auto hot = net.add_node("hot", 10.0, Celsius{60.0});
  const auto cold = net.add_node("cold", 10.0, Celsius{20.0});
  net.add_edge(hot, cold, 0.5);
  net.step(Seconds{5.0});
  EXPECT_LT(net.temperature(hot).value(), 60.0);
  EXPECT_GT(net.temperature(cold).value(), 20.0);
  // Isolated pair conserves energy: temperatures converge to the mean.
  for (int i = 0; i < 500; ++i) net.step(Seconds{1.0});
  EXPECT_NEAR(net.temperature(hot).value(), 40.0, 0.1);
  EXPECT_NEAR(net.temperature(cold).value(), 40.0, 0.1);
}

TEST(ThermalNetwork, StableWithLargeTimestep) {
  // Substepping must keep explicit Euler stable even for dt >> C/G.
  ThermalNetwork net;
  const auto node = net.add_node("chip", 0.5, Celsius{90.0});
  const auto amb = net.add_fixed_node("ambient", Celsius{25.0});
  net.add_edge(node, amb, 5.0);  // tau = 0.1 s
  net.step(Seconds{10.0});       // 100x tau in one call
  EXPECT_NEAR(net.temperature(node).value(), 25.0, 0.5);
  EXPECT_GE(net.temperature(node).value(), 25.0 - 1e-6);  // no overshoot
}

TEST(ThermalNetwork, ResetRestoresTemperature) {
  ThermalNetwork net;
  const auto node = net.add_node("chip", 1.0, Celsius{25.0});
  net.inject(node, Watts{10.0});
  net.step(Seconds{1.0});
  ASSERT_GT(net.temperature(node).value(), 25.0);
  net.reset(Celsius{25.0});
  EXPECT_DOUBLE_EQ(net.temperature(node).value(), 25.0);
}

TEST(ThermalNetwork, NamesAreStored) {
  ThermalNetwork net;
  const auto a = net.add_node("cpu", 1.0, Celsius{25.0});
  EXPECT_EQ(net.node_name(a), "cpu");
}

}  // namespace
}  // namespace capman::thermal
