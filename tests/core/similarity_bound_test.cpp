// Property test for the paper's central theoretical claim (Eq. 10):
// with C_S = 1 and C_A = rho, the fixed-point structural distances bound
// the optimal value differences,
//
//   |V*_u - V*_v| <= delta*_S(u, v) / (1 - rho)
//   |Q*_a - Q*_b| <= delta*_A(a, b) / (1 - rho)
//
// which is what makes the similarity-indexed online scheduler
// O(1/(1-rho))-competitive. We check it on randomized MDP graphs across
// sizes and discount factors against exact value iteration.
#include <gtest/gtest.h>

#include "core/similarity.h"
#include "core/value_iteration.h"
#include "graph_test_util.h"

namespace capman::core {
namespace {

struct BoundCase {
  std::size_t n_states;
  std::size_t n_absorbing;
  double rho;
  std::uint64_t seed;
};

class CompetitivenessBoundTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(CompetitivenessBoundTest, ValueDifferencesBounded) {
  const auto& param = GetParam();
  util::Rng rng{param.seed};
  const auto graph =
      testutil::random_graph(rng, param.n_states, param.n_absorbing);

  ValueIterationConfig vi_cfg;
  vi_cfg.rho = param.rho;
  vi_cfg.epsilon = 1e-12;
  const auto values = solve_values(graph, vi_cfg);
  ASSERT_TRUE(values.converged);

  SimilarityConfig sim_cfg;
  sim_cfg.c_s = 1.0;        // paper: "Let C_S = 1 ..."
  sim_cfg.c_a = param.rho;  // "... and C_A = rho"
  sim_cfg.epsilon = 1e-9;
  sim_cfg.max_iterations = 4000;
  sim_cfg.absorbing_distance = 1.0;
  const auto sim = compute_structural_similarity(graph, sim_cfg);
  ASSERT_TRUE(sim.converged);

  const double scale = 1.0 / (1.0 - param.rho);
  const double slack = 1e-5 * scale;  // convergence-epsilon slack

  for (std::size_t u = 0; u < graph.state_count(); ++u) {
    for (std::size_t v = 0; v < graph.state_count(); ++v) {
      const double gap =
          std::abs(values.state_values[u] - values.state_values[v]);
      EXPECT_LE(gap, sim.state_distance(u, v) * scale + slack)
          << "states " << u << "," << v;
    }
  }
  for (std::size_t a = 0; a < graph.action_count(); ++a) {
    for (std::size_t b = 0; b < graph.action_count(); ++b) {
      const double gap =
          std::abs(values.action_values[a] - values.action_values[b]);
      EXPECT_LE(gap, sim.action_distance(a, b) * scale + slack)
          << "actions " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CompetitivenessBoundTest,
    ::testing::Values(
        BoundCase{4, 1, 0.05, 101},  // the paper's O(1.05) example
        BoundCase{4, 1, 0.50, 102},
        BoundCase{8, 2, 0.30, 103},
        BoundCase{8, 2, 0.70, 104},
        BoundCase{12, 3, 0.50, 105},
        BoundCase{12, 3, 0.90, 106},
        BoundCase{16, 4, 0.60, 107},
        BoundCase{16, 2, 0.80, 108},
        BoundCase{20, 5, 0.40, 109},
        BoundCase{20, 5, 0.95, 110},
        BoundCase{24, 6, 0.25, 111},
        BoundCase{24, 4, 0.85, 112}));

// The bound should be *useful*, not vacuous: for twin states it pins the
// values together exactly.
TEST(CompetitivenessBound, TightForTwinStates) {
  std::vector<StateVertex> states(3);
  for (std::size_t i = 0; i < 3; ++i) states[i].state_id = i;
  ActionVertex a0;
  a0.source = 0;
  a0.action_id = 0;
  a0.transitions.push_back({2, 1.0, 0.4});
  ActionVertex a1;
  a1.source = 1;
  a1.action_id = 1;
  a1.transitions.push_back({2, 1.0, 0.4});
  states[0].actions.push_back(0);
  states[1].actions.push_back(1);
  const auto graph = MdpGraph::from_parts(std::move(states), {a0, a1});

  const double rho = 0.7;
  ValueIterationConfig vi_cfg;
  vi_cfg.rho = rho;
  const auto values = solve_values(graph, vi_cfg);
  SimilarityConfig sim_cfg;
  sim_cfg.c_s = 1.0;
  sim_cfg.c_a = rho;
  sim_cfg.epsilon = 1e-10;
  sim_cfg.max_iterations = 2000;
  const auto sim = compute_structural_similarity(graph, sim_cfg);

  EXPECT_NEAR(values.state_values[0], values.state_values[1], 1e-9);
  EXPECT_NEAR(sim.state_distance(0, 1), 0.0, 1e-6);
}

}  // namespace
}  // namespace capman::core
