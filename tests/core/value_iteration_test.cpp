#include "core/value_iteration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph_test_util.h"

namespace capman::core {
namespace {

TEST(ValueIteration, TwoStateChainAnalytic) {
  // V(s0) = r0 + rho * V(absorbing) = r0.
  const auto graph = testutil::two_state_chain(0.7);
  ValueIterationConfig cfg;
  cfg.rho = 0.9;
  const auto result = solve_values(graph, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.state_values[0], 0.7, 1e-8);
  EXPECT_DOUBLE_EQ(result.state_values[1], 0.0);
  EXPECT_EQ(result.best_action[0], 0u);
  EXPECT_EQ(result.best_action[1], ValueIterationResult::npos);
}

TEST(ValueIteration, SelfLoopGeometricSum) {
  // s0 loops onto itself with reward 1: V = 1 / (1 - rho).
  std::vector<StateVertex> states(1);
  states[0].state_id = 0;
  ActionVertex a;
  a.source = 0;
  a.action_id = 0;
  a.transitions.push_back({0, 1.0, 1.0});
  states[0].actions.push_back(0);
  const auto graph = MdpGraph::from_parts(std::move(states), {a});
  ValueIterationConfig cfg;
  cfg.rho = 0.8;
  const auto result = solve_values(graph, cfg);
  EXPECT_NEAR(result.state_values[0], 1.0 / (1.0 - 0.8), 1e-6);
}

TEST(ValueIteration, PicksBetterAction) {
  std::vector<StateVertex> states(2);
  states[0].state_id = 0;
  states[1].state_id = 1;
  ActionVertex bad;
  bad.source = 0;
  bad.action_id = 0;
  bad.transitions.push_back({1, 1.0, 0.2});
  ActionVertex good;
  good.source = 0;
  good.action_id = 1;
  good.transitions.push_back({1, 1.0, 0.9});
  states[0].actions = {0, 1};
  const auto graph =
      MdpGraph::from_parts(std::move(states), {bad, good});
  const auto result = solve_values(graph, ValueIterationConfig{});
  EXPECT_EQ(result.best_action[0], 1u);
  EXPECT_NEAR(result.state_values[0], 0.9, 1e-8);
  EXPECT_NEAR(result.action_values[0], 0.2, 1e-8);
}

TEST(ValueIteration, StochasticTransitionExpectation) {
  // One action: 0.3 -> absorbing r=1.0, 0.7 -> absorbing r=0.5.
  std::vector<StateVertex> states(3);
  for (std::size_t i = 0; i < 3; ++i) states[i].state_id = i;
  ActionVertex a;
  a.source = 0;
  a.action_id = 0;
  a.transitions.push_back({1, 0.3, 1.0});
  a.transitions.push_back({2, 0.7, 0.5});
  states[0].actions.push_back(0);
  const auto graph = MdpGraph::from_parts(std::move(states), {a});
  const auto result = solve_values(graph, ValueIterationConfig{});
  EXPECT_NEAR(result.state_values[0], 0.3 * 1.0 + 0.7 * 0.5, 1e-8);
}

TEST(ValueIteration, ValuesBoundedByGeometricSeries) {
  util::Rng rng{21};
  for (double rho : {0.3, 0.6, 0.9}) {
    const auto graph = testutil::random_graph(rng, 20, 4);
    ValueIterationConfig cfg;
    cfg.rho = rho;
    const auto result = solve_values(graph, cfg);
    EXPECT_TRUE(result.converged);
    for (double v : result.state_values) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 / (1.0 - rho) + 1e-9);
    }
  }
}

TEST(ValueIteration, BellmanConsistencyAtFixedPoint) {
  util::Rng rng{22};
  const auto graph = testutil::random_graph(rng, 15, 3);
  ValueIterationConfig cfg;
  cfg.rho = 0.7;
  const auto result = solve_values(graph, cfg);
  // Eq. 9: Q(a) == sum p (r + rho V).
  for (std::size_t a = 0; a < graph.action_count(); ++a) {
    double q = 0.0;
    for (const auto& t : graph.action(a).transitions) {
      q += t.probability * (t.reward + cfg.rho * result.state_values[t.to]);
    }
    EXPECT_NEAR(result.action_values[a], q, 1e-6);
  }
  // Eq. 8: V(u) == max_a Q(a).
  for (std::size_t u = 0; u < graph.state_count(); ++u) {
    const auto& actions = graph.state(u).actions;
    if (actions.empty()) {
      EXPECT_DOUBLE_EQ(result.state_values[u], 0.0);
      continue;
    }
    double best = -1.0;
    for (std::size_t a : actions) best = std::max(best, result.action_values[a]);
    EXPECT_NEAR(result.state_values[u], best, 1e-6);
  }
}

TEST(ValueIteration, HigherDiscountRaisesValues) {
  util::Rng rng{23};
  const auto graph = testutil::random_graph(rng, 12, 0);
  ValueIterationConfig lo;
  lo.rho = 0.3;
  ValueIterationConfig hi;
  hi.rho = 0.9;
  const auto v_lo = solve_values(graph, lo);
  const auto v_hi = solve_values(graph, hi);
  for (std::size_t u = 0; u < graph.state_count(); ++u) {
    EXPECT_GE(v_hi.state_values[u], v_lo.state_values[u] - 1e-9);
  }
}

TEST(ValueIteration, IterationCountGrowsWithRho) {
  util::Rng rng{24};
  const auto graph = testutil::random_graph(rng, 12, 0);
  std::size_t prev_iters = 0;
  for (double rho : {0.2, 0.5, 0.8, 0.95}) {
    ValueIterationConfig cfg;
    cfg.rho = rho;
    cfg.epsilon = 1e-8;
    const auto result = solve_values(graph, cfg);
    EXPECT_GE(result.iterations, prev_iters);
    prev_iters = result.iterations;
  }
}

}  // namespace
}  // namespace capman::core
