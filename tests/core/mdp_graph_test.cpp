#include "core/mdp_graph.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace capman::core {
namespace {

using battery::BatterySelection;
using workload::Action;
using workload::Syscall;

Observation make_obs(std::size_t s, std::size_t next, double reward,
                     Syscall kind = Syscall::kCpuBurst,
                     BatterySelection b = BatterySelection::kBig) {
  Observation obs;
  obs.state = s;
  obs.action = DecisionAction{Action{kind, 0}, b};
  obs.next_state = next;
  obs.reward = reward;
  return obs;
}

TEST(MdpGraph, EmptyMdpGivesEmptyGraph) {
  Mdp mdp;
  const auto graph = MdpGraph::from_mdp(mdp, 1);
  EXPECT_EQ(graph.state_count(), 0u);
  EXPECT_EQ(graph.action_count(), 0u);
}

TEST(MdpGraph, BuildsBipartiteStructure) {
  Mdp mdp;
  mdp.observe(make_obs(1, 2, 0.5));
  mdp.observe(make_obs(1, 3, 0.7));
  const auto graph = MdpGraph::from_mdp(mdp, 1);
  ASSERT_EQ(graph.state_count(), 3u);  // states 1, 2, 3
  ASSERT_EQ(graph.action_count(), 1u);
  const auto& av = graph.action(0);
  EXPECT_EQ(graph.state(av.source).state_id, 1u);
  ASSERT_EQ(av.transitions.size(), 2u);
  double p_total = 0.0;
  for (const auto& t : av.transitions) p_total += t.probability;
  EXPECT_NEAR(p_total, 1.0, 1e-12);
}

TEST(MdpGraph, TargetsWithoutActionsAreAbsorbing) {
  Mdp mdp;
  mdp.observe(make_obs(1, 2, 0.5));
  const auto graph = MdpGraph::from_mdp(mdp, 1);
  const std::size_t v2 = graph.vertex_of(2);
  ASSERT_NE(v2, MdpGraph::npos);
  EXPECT_TRUE(graph.state(v2).absorbing());
  EXPECT_FALSE(graph.state(graph.vertex_of(1)).absorbing());
}

TEST(MdpGraph, MinObservationsFiltersRarePairs) {
  Mdp mdp;
  mdp.observe(make_obs(1, 2, 0.5));
  EXPECT_EQ(MdpGraph::from_mdp(mdp, 2).action_count(), 0u);
  mdp.observe(make_obs(1, 2, 0.5));
  EXPECT_EQ(MdpGraph::from_mdp(mdp, 2).action_count(), 1u);
}

TEST(MdpGraph, VertexOfUnknownStateIsNpos) {
  Mdp mdp;
  mdp.observe(make_obs(1, 2, 0.5));
  const auto graph = MdpGraph::from_mdp(mdp, 1);
  EXPECT_EQ(graph.vertex_of(40), MdpGraph::npos);
  EXPECT_EQ(graph.vertex_of(9999), MdpGraph::npos);
}

TEST(MdpGraph, ExpectedRewardIsProbabilityWeighted) {
  Mdp mdp;
  mdp.observe(make_obs(1, 2, 1.0));
  mdp.observe(make_obs(1, 3, 0.0));
  mdp.observe(make_obs(1, 3, 0.0));
  const auto graph = MdpGraph::from_mdp(mdp, 1);
  ASSERT_EQ(graph.action_count(), 1u);
  // P(2)=1/3 with r=1, P(3)=2/3 with r=0.
  EXPECT_NEAR(graph.action(0).expected_reward(), 1.0 / 3.0, 1e-12);
}

TEST(MdpGraph, SeparatesActionsByBatteryChoice) {
  Mdp mdp;
  mdp.observe(make_obs(1, 2, 0.9, Syscall::kCpuBurst, BatterySelection::kBig));
  mdp.observe(
      make_obs(1, 3, 0.4, Syscall::kCpuBurst, BatterySelection::kLittle));
  const auto graph = MdpGraph::from_mdp(mdp, 1);
  EXPECT_EQ(graph.action_count(), 2u);
  EXPECT_EQ(graph.state(graph.vertex_of(1)).actions.size(), 2u);
}

TEST(MdpGraph, OutDegreeStatistics) {
  util::Rng rng{11};
  const auto graph = testutil::random_graph(rng, 10, 2, 4, 3);
  EXPECT_LE(graph.max_action_out_degree(), 3u);
  EXPECT_GE(graph.max_action_out_degree(), 1u);
  EXPECT_LE(graph.max_state_out_degree(), 4u);
}

TEST(MdpGraph, FromPartsPreservesStructure) {
  const auto graph = testutil::two_state_chain(0.5);
  EXPECT_EQ(graph.state_count(), 2u);
  EXPECT_EQ(graph.action_count(), 1u);
  EXPECT_TRUE(graph.state(1).absorbing());
  EXPECT_EQ(graph.vertex_of(0), 0u);
  EXPECT_EQ(graph.vertex_of(1), 1u);
}

}  // namespace
}  // namespace capman::core
