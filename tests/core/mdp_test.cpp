#include "core/mdp.h"

#include <gtest/gtest.h>

#include "core/state.h"

namespace capman::core {
namespace {

using battery::BatterySelection;
using device::CpuState;
using device::DeviceStateVector;
using device::ScreenState;
using device::WifiState;
using workload::Action;
using workload::Syscall;

TEST(CapmanState, IndexRoundTrip) {
  for (std::size_t i = 0; i < state_space_size(); ++i) {
    EXPECT_EQ(CapmanState::from_index(i).index(), i);
  }
}

TEST(CapmanState, SpaceSizeIs48) {
  // 4 CPU x 2 screen x 3 WiFi x 2 battery = 48, the paper's ~50 states.
  EXPECT_EQ(state_space_size(), 48u);
}

TEST(CapmanState, ToStringMentionsBattery) {
  CapmanState s;
  s.battery = BatterySelection::kLittle;
  EXPECT_NE(to_string(s).find("LITTLE"), std::string::npos);
}

TEST(DecisionAction, IndexRoundTrip) {
  for (std::size_t i = 0; i < decision_action_space_size(); ++i) {
    EXPECT_EQ(DecisionAction::from_index(i).index(), i);
  }
}

TEST(DecisionAction, SpaceSizes) {
  // 200 syscall actions x 2 batteries = 400 base actions; x 3 budget
  // levels = 1200 in the full (learn_budget) space.
  EXPECT_EQ(base_decision_action_space_size(), 400u);
  EXPECT_EQ(decision_action_space_size(), 1200u);
}

TEST(DecisionAction, BudgetIndexingIsBudgetMajor) {
  // Level-kFull actions occupy exactly the pre-budget indices [0, 400):
  // that is the bit-identity guarantee for non-learning schedulers.
  const DecisionAction full{Action{Syscall::kCpuBurst, 3},
                            BatterySelection::kBig, BudgetLevel::kFull};
  EXPECT_LT(full.index(), base_decision_action_space_size());
  DecisionAction eco = full;
  eco.budget = BudgetLevel::kEco;
  EXPECT_EQ(eco.index(),
            full.index() + 2 * base_decision_action_space_size());
  EXPECT_NE(to_string(full), to_string(eco));
}

Observation make_obs(std::size_t s, Syscall kind, BatterySelection b,
                     std::size_t next, double reward) {
  Observation obs;
  obs.state = s;
  obs.action = DecisionAction{Action{kind, 0}, b};
  obs.next_state = next;
  obs.reward = reward;
  return obs;
}

TEST(Mdp, StartsEmpty) {
  Mdp mdp;
  EXPECT_EQ(mdp.total_observations(), 0u);
  EXPECT_TRUE(mdp.visited_states().empty());
}

TEST(Mdp, ObserveAccumulatesCounts) {
  Mdp mdp;
  const auto obs =
      make_obs(3, Syscall::kScreenWake, BatterySelection::kLittle, 7, 0.8);
  mdp.observe(obs);
  mdp.observe(obs);
  EXPECT_EQ(mdp.total_observations(), 2u);
  EXPECT_EQ(mdp.count(3, obs.action.index()), 2u);
  EXPECT_EQ(mdp.count(3, obs.action.index(), 7), 2u);
  EXPECT_EQ(mdp.count(3, obs.action.index(), 8), 0u);
}

TEST(Mdp, TransitionDistributionNormalized) {
  Mdp mdp;
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 2, 0.5));
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 2, 0.5));
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 3, 0.5));
  const auto a =
      DecisionAction{Action{Syscall::kCpuBurst, 0}, BatterySelection::kBig};
  const auto dist = mdp.transition_distribution(1, a.index());
  EXPECT_NEAR(dist[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist[3], 1.0 / 3.0, 1e-12);
  double sum = 0.0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Mdp, UnseenPairHasZeroDistribution) {
  Mdp mdp;
  const auto dist = mdp.transition_distribution(0, 0);
  for (double p : dist) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(Mdp, MeanRewardPerTransitionAndPerAction) {
  Mdp mdp;
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 2, 0.4));
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 2, 0.8));
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 3, 1.0));
  const auto a =
      DecisionAction{Action{Syscall::kCpuBurst, 0}, BatterySelection::kBig};
  EXPECT_NEAR(mdp.mean_reward(1, a.index(), 2), 0.6, 1e-12);
  EXPECT_NEAR(mdp.mean_reward(1, a.index(), 3), 1.0, 1e-12);
  EXPECT_NEAR(mdp.mean_reward(1, a.index()), (0.4 + 0.8 + 1.0) / 3.0, 1e-12);
}

TEST(Mdp, VisitedStatesIncludeSourcesAndTargets) {
  Mdp mdp;
  mdp.observe(make_obs(5, Syscall::kAppLaunch, BatterySelection::kBig, 9, 0.5));
  const auto visited = mdp.visited_states();
  ASSERT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], 5u);
  EXPECT_EQ(visited[1], 9u);
}

TEST(Mdp, ObservedActionsRespectsMinCount) {
  Mdp mdp;
  const auto obs =
      make_obs(2, Syscall::kVideoFrame, BatterySelection::kBig, 2, 0.9);
  mdp.observe(obs);
  EXPECT_EQ(mdp.observed_actions(2, 1).size(), 1u);
  EXPECT_TRUE(mdp.observed_actions(2, 2).empty());
  mdp.observe(obs);
  EXPECT_EQ(mdp.observed_actions(2, 2).size(), 1u);
}

TEST(Mdp, ClearResetsEverything) {
  Mdp mdp;
  mdp.observe(make_obs(1, Syscall::kCpuBurst, BatterySelection::kBig, 2, 0.5));
  mdp.clear();
  EXPECT_EQ(mdp.total_observations(), 0u);
  EXPECT_TRUE(mdp.visited_states().empty());
}

TEST(Mdp, BigLittleActionsAreDistinct) {
  const DecisionAction big{Action{Syscall::kCpuBurst, 3},
                           BatterySelection::kBig};
  const DecisionAction little{Action{Syscall::kCpuBurst, 3},
                              BatterySelection::kLittle};
  EXPECT_NE(big.index(), little.index());
  EXPECT_NE(to_string(big), to_string(little));
}

}  // namespace
}  // namespace capman::core
