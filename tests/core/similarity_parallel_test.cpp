// The engine contracts of the parallel/memoized Algorithm 1 (see
// core/similarity.h): sharding across threads and the exact EMD cache are
// bit-identical transformations, the frozen-pair frontier is a bounded
// approximation, and the SimilarityStats accounting always balances.
#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph_test_util.h"

namespace capman::core {
namespace {

SimilarityConfig base_config() {
  SimilarityConfig cfg;
  cfg.c_s = 1.0;
  cfg.c_a = 0.8;
  cfg.epsilon = 1e-6;
  cfg.max_iterations = 500;
  cfg.num_threads = 1;
  cfg.use_emd_cache = false;
  cfg.skip_frozen_pairs = false;
  return cfg;
}

void expect_bit_identical(const math::Matrix& a, const math::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c), b(r, c)) << "entry (" << r << ", " << c << ")";
    }
  }
}

void expect_bit_identical(const SimilarityResult& a,
                          const SimilarityResult& b) {
  expect_bit_identical(a.state_similarity, b.state_similarity);
  expect_bit_identical(a.action_similarity, b.action_similarity);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

double max_abs_diff(const math::Matrix& a, const math::Matrix& b) {
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
    }
  }
  return worst;
}

TEST(SimilarityParallel, ThreadCountDoesNotChangeResults) {
  util::Rng rng{91};
  for (int trial = 0; trial < 3; ++trial) {
    const auto graph = testutil::random_graph(rng, 14, 3);
    SimilarityConfig cfg = base_config();
    const auto serial = compute_structural_similarity(graph, cfg);
    for (const std::size_t threads : {2, 4, 8}) {
      cfg.num_threads = threads;
      const auto parallel = compute_structural_similarity(graph, cfg);
      EXPECT_EQ(parallel.stats.threads_used, threads);
      expect_bit_identical(serial, parallel);
    }
  }
}

TEST(SimilarityParallel, EmdCacheDoesNotChangeResults) {
  util::Rng rng{92};
  for (int trial = 0; trial < 3; ++trial) {
    const auto graph = testutil::random_graph(rng, 14, 3);
    SimilarityConfig cfg = base_config();
    const auto uncached = compute_structural_similarity(graph, cfg);
    cfg.use_emd_cache = true;
    const auto cached = compute_structural_similarity(graph, cfg);
    expect_bit_identical(uncached, cached);
    // The cache must actually fire: rows over absorbing targets are
    // constant after the first sweep.
    EXPECT_GT(cached.stats.action_pairs_cached, 0u);
  }
}

TEST(SimilarityParallel, CacheAndThreadsComposeBitIdentically) {
  util::Rng rng{93};
  const auto graph = testutil::random_graph(rng, 16, 4);
  SimilarityConfig cfg = base_config();
  const auto serial = compute_structural_similarity(graph, cfg);
  cfg.num_threads = 4;
  cfg.use_emd_cache = true;
  const auto engine = compute_structural_similarity(graph, cfg);
  expect_bit_identical(serial, engine);
}

TEST(SimilarityParallel, StatsCountersAreConsistent) {
  util::Rng rng{94};
  const auto graph = testutil::random_graph(rng, 14, 3);
  for (const bool cache : {false, true}) {
    for (const bool skip : {false, true}) {
      for (const std::size_t threads : {1, 3, 8}) {
        SimilarityConfig cfg = base_config();
        cfg.use_emd_cache = cache;
        cfg.skip_frozen_pairs = skip;
        cfg.num_threads = threads;
        const auto result = compute_structural_similarity(graph, cfg);
        EXPECT_TRUE(result.stats.consistent());
        // Totals are (pairs per sweep) * sweeps.
        EXPECT_EQ(result.stats.action_pairs_total % result.iterations, 0u);
        EXPECT_EQ(result.stats.state_pairs_total % result.iterations, 0u);
        EXPECT_EQ(result.stats.iteration_ms.size(), result.iterations);
        if (!cache) {
          EXPECT_EQ(result.stats.action_pairs_cached, 0u);
        }
        if (!skip) {
          EXPECT_EQ(result.stats.action_pairs_skipped, 0u);
          EXPECT_EQ(result.stats.state_pairs_skipped, 0u);
        }
      }
    }
  }
}

TEST(SimilarityParallel, FrozenFrontierIsBoundedApproximation) {
  util::Rng rng{95};
  for (int trial = 0; trial < 3; ++trial) {
    const auto graph = testutil::random_graph(rng, 14, 3);
    SimilarityConfig cfg = base_config();
    cfg.epsilon = 1e-4;
    const auto exact = compute_structural_similarity(graph, cfg);
    cfg.skip_frozen_pairs = true;
    const auto frozen = compute_structural_similarity(graph, cfg);
    // Independent of threads.
    cfg.num_threads = 4;
    const auto frozen4 = compute_structural_similarity(graph, cfg);
    expect_bit_identical(frozen, frozen4);
    // Error vs the exact fixed point is O(threshold * c / (1 - c)) with
    // threshold = epsilon / 4; allow a small constant factor of slack.
    const double bound =
        2.0 * (cfg.epsilon / 4.0) * cfg.c_a / (1.0 - cfg.c_a);
    EXPECT_LE(
        max_abs_diff(exact.state_similarity, frozen.state_similarity),
        bound);
    EXPECT_LE(
        max_abs_diff(exact.action_similarity, frozen.action_similarity),
        bound);
  }
}

TEST(SimilarityParallel, FrozenFrontierSkipsPairsOnConvergingGraph) {
  util::Rng rng{96};
  const auto graph = testutil::random_graph(rng, 16, 4);
  SimilarityConfig cfg = base_config();
  cfg.epsilon = 1e-6;
  cfg.skip_frozen_pairs = true;
  const auto result = compute_structural_similarity(graph, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.stats.action_pairs_skipped +
                result.stats.state_pairs_skipped,
            0u);
}

TEST(SimilarityParallel, EmptyAndTinyGraphsSurviveAllEngineModes) {
  const MdpGraph empty;
  const auto chain = testutil::two_state_chain(0.5);
  SimilarityConfig cfg = base_config();
  cfg.num_threads = 8;
  cfg.use_emd_cache = true;
  cfg.skip_frozen_pairs = true;
  EXPECT_TRUE(compute_structural_similarity(empty, cfg).converged);
  const auto result = compute_structural_similarity(chain, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.state_similarity(0, 0), 1.0);
}

}  // namespace
}  // namespace capman::core
