#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/degradation.h"
#include "core/profiler.h"
#include "core/scheduler.h"

namespace capman::core {
namespace {

using battery::BatterySelection;
using device::CpuState;
using device::DeviceStateVector;
using device::ScreenState;
using device::WifiState;
using util::Joules;
using util::Seconds;
using workload::Action;
using workload::Syscall;

TEST(CapmanConfigValidate, DefaultsValidAndErrorsNameFields) {
  EXPECT_TRUE(CapmanConfig{}.validate().empty());
  CapmanConfig bad;
  bad.rho = 1.0;
  bad.recency_decay = 0.0;
  bad.exploration_floor = 0.9;  // above exploration_initial (0.35)
  const auto errors = bad.validate();
  // rho doubles as the value-iteration discount, so it is reported both
  // directly and through the derived value_iteration config.
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_NE(errors[0].find("rho"), std::string::npos);
  EXPECT_NE(errors[1].find("recency_decay"), std::string::npos);
  EXPECT_NE(errors[2].find("exploration_floor"), std::string::npos);
  EXPECT_NE(errors[3].find("value_iteration: rho"), std::string::npos);
  EXPECT_THROW((CapmanController{bad, 42}), std::invalid_argument);
}

TEST(CapmanConfigValidate, DerivedConfigsCarryTheKnobs) {
  CapmanConfig cfg;
  cfg.c_s = 0.9;
  cfg.c_a = 0.7;
  cfg.epsilon = 0.02;
  cfg.similarity_threads = 3;
  cfg.rho = 0.6;
  const SimilarityConfig sim = cfg.similarity_config();
  EXPECT_DOUBLE_EQ(sim.c_s, 0.9);
  EXPECT_DOUBLE_EQ(sim.c_a, 0.7);
  EXPECT_DOUBLE_EQ(sim.epsilon, 0.02);
  EXPECT_EQ(sim.num_threads, 3u);
  EXPECT_EQ(sim.metrics, nullptr);  // runtime binding stays at call sites
  EXPECT_DOUBLE_EQ(cfg.value_iteration_config().rho, 0.6);
}

TEST(DegradationConfigValidate, EnabledGuardRejectsBadKnobs) {
  DegradationConfig bad;
  bad.enabled = true;
  bad.retry_backoff = 0.5;
  bad.retry_max = Seconds{0.1};  // below retry_initial
  const auto errors = bad.validate();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("retry_backoff"), std::string::npos);
  EXPECT_NE(errors[1].find("retry_max"), std::string::npos);
  EXPECT_THROW(DegradationGuard{bad}, std::invalid_argument);
  // A disabled guard never reads its knobs, so it must not throw: the
  // default-constructed guard path stays bit-identical to a guard-less
  // build even with garbage knobs.
  bad.enabled = false;
  EXPECT_NO_THROW(DegradationGuard{bad});
}

CapmanConfig no_exploration_config() {
  CapmanConfig cfg;
  cfg.exploration_initial = 0.0;
  cfg.exploration_floor = 0.0;
  cfg.min_observations = 1;
  return cfg;
}

DeviceStateVector busy_state() {
  return {CpuState::kC0, ScreenState::kOn, WifiState::kIdle};
}

// Positional-argument convenience over the DecideRequest consultation
// struct, for tests that only care about the battery answer.
BatterySelection decide(OnlineScheduler& sched, const Action& event,
                        const DeviceStateVector& dev,
                        BatterySelection current) {
  DecideRequest req;
  req.event = event;
  req.device = dev;
  req.current = current;
  return sched.decide(req).battery;
}

Observation obs_for(const DeviceStateVector& dev, Syscall kind,
                    BatterySelection b, double reward) {
  Observation obs;
  obs.state = CapmanState{dev, b}.index();
  obs.action = DecisionAction{Action{kind, 0}, b};
  obs.next_state = CapmanState{dev, b}.index();
  obs.reward = reward;
  return obs;
}

TEST(Profiler, RewardIsEfficiency) {
  EXPECT_NEAR(RuntimeProfiler::reward(Joules{9.0}, Joules{1.0}, 0, 10), 0.9,
              1e-12);
  EXPECT_NEAR(RuntimeProfiler::reward(Joules{0.0}, Joules{0.0}, 0, 10), 1.0,
              1e-12);
}

TEST(Profiler, UnmetDemandCrushesReward) {
  const double met = RuntimeProfiler::reward(Joules{9.0}, Joules{1.0}, 0, 10);
  const double unmet =
      RuntimeProfiler::reward(Joules{9.0}, Joules{1.0}, 5, 10);
  EXPECT_LT(unmet, 0.5 * met);
  EXPECT_GE(unmet, 0.0);
}

TEST(Profiler, IntervalLifecycle) {
  RuntimeProfiler profiler;
  EXPECT_FALSE(profiler.interval_open());
  const CapmanState s{busy_state(), BatterySelection::kBig};
  profiler.begin_interval(s, DecisionAction{Action{Syscall::kCpuBurst, 0},
                                            BatterySelection::kBig});
  EXPECT_TRUE(profiler.interval_open());
  profiler.record(Joules{2.0}, Joules{0.5}, true);
  profiler.record(Joules{2.0}, Joules{0.5}, true);
  const CapmanState next{busy_state(), BatterySelection::kBig};
  const auto obs = profiler.close_interval(next);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->state, s.index());
  EXPECT_NEAR(obs->reward, 4.0 / 5.0, 1e-12);
  EXPECT_FALSE(profiler.interval_open());
}

TEST(Profiler, EmptyIntervalYieldsNothing) {
  RuntimeProfiler profiler;
  const CapmanState s{busy_state(), BatterySelection::kBig};
  EXPECT_FALSE(profiler.close_interval(s).has_value());
  profiler.begin_interval(s, DecisionAction{});
  EXPECT_FALSE(profiler.close_interval(s).has_value());
}

TEST(Scheduler, KindPriorRoutesSurgesToLittle) {
  EXPECT_EQ(OnlineScheduler::kind_prior(Syscall::kScreenWake),
            BatterySelection::kLittle);
  EXPECT_EQ(OnlineScheduler::kind_prior(Syscall::kAppLaunch),
            BatterySelection::kLittle);
  EXPECT_EQ(OnlineScheduler::kind_prior(Syscall::kVideoFrame),
            BatterySelection::kBig);
  EXPECT_EQ(OnlineScheduler::kind_prior(Syscall::kScreenSleep),
            BatterySelection::kBig);
}

TEST(Scheduler, FallsBackToPriorWithoutExperience) {
  OnlineScheduler sched{no_exploration_config(), 1};
  sched.recalibrate();
  const auto choice = decide(sched, Action{Syscall::kScreenWake, 0},
                             busy_state(), BatterySelection::kBig);
  EXPECT_EQ(choice, BatterySelection::kLittle);
  EXPECT_EQ(sched.decision_stats().fallback, 1u);
}

TEST(Scheduler, LearnsFromRewards) {
  OnlineScheduler sched{no_exploration_config(), 1};
  const auto dev = busy_state();
  // LITTLE earns much better efficiency than big on CpuBurst in this state.
  for (int i = 0; i < 10; ++i) {
    sched.observe(obs_for(dev, Syscall::kCpuBurst, BatterySelection::kLittle,
                          0.95));
    sched.observe(
        obs_for(dev, Syscall::kCpuBurst, BatterySelection::kBig, 0.40));
  }
  sched.recalibrate();
  // Decision queried from the big-battery state (what the phone is on now).
  const auto choice = decide(sched, Action{Syscall::kCpuBurst, 0}, dev,
                             BatterySelection::kBig);
  EXPECT_EQ(choice, BatterySelection::kLittle);
  EXPECT_GE(sched.decision_stats().exact + sched.decision_stats().transferred,
            1u);
}

TEST(Scheduler, PrefersBigWhenBigEarnsMore) {
  OnlineScheduler sched{no_exploration_config(), 1};
  const auto dev = busy_state();
  for (int i = 0; i < 10; ++i) {
    sched.observe(obs_for(dev, Syscall::kVideoFrame, BatterySelection::kBig,
                          0.95));
    sched.observe(obs_for(dev, Syscall::kVideoFrame,
                          BatterySelection::kLittle, 0.60));
  }
  sched.recalibrate();
  EXPECT_EQ(decide(sched, Action{Syscall::kVideoFrame, 0}, dev,
                   BatterySelection::kBig),
            BatterySelection::kBig);
}

TEST(Scheduler, SimilarityTransferAcrossStates) {
  OnlineScheduler sched{no_exploration_config(), 1};
  const DeviceStateVector seen{CpuState::kC0, ScreenState::kOn,
                               WifiState::kAccess};
  // Experience exists only for `seen`; query a different state.
  for (int i = 0; i < 8; ++i) {
    sched.observe(
        obs_for(seen, Syscall::kNetRecvStart, BatterySelection::kLittle, 0.9));
    sched.observe(
        obs_for(seen, Syscall::kNetRecvStart, BatterySelection::kBig, 0.3));
  }
  sched.recalibrate();
  const DeviceStateVector unseen{CpuState::kC0, ScreenState::kOn,
                                 WifiState::kSend};
  const auto choice = decide(sched, Action{Syscall::kNetRecvStart, 0}, unseen,
                             BatterySelection::kBig);
  EXPECT_EQ(choice, BatterySelection::kLittle);
  EXPECT_GE(sched.decision_stats().transferred, 1u);
}

TEST(Scheduler, ExplorationDecays) {
  CapmanConfig cfg;
  cfg.exploration_initial = 0.5;
  cfg.exploration_decay_per_event = 0.9;
  cfg.exploration_floor = 0.01;
  OnlineScheduler sched{cfg, 7};
  for (int i = 0; i < 200; ++i) {
    decide(sched, Action{Syscall::kCpuBurst, 0}, busy_state(),
           BatterySelection::kBig);
  }
  EXPECT_NEAR(sched.exploration_rate(), 0.01, 1e-9);
  EXPECT_GT(sched.decision_stats().explored, 0u);
}

TEST(Scheduler, BudgetLevelEchoedWithoutLearning) {
  OnlineScheduler sched{no_exploration_config(), 1};
  // Non-learning schedulers allocate only the level-kFull action plane.
  EXPECT_EQ(sched.mdp().action_count(), base_decision_action_space_size());
  DecideRequest req;
  req.event = Action{Syscall::kScreenWake, 0};
  req.device = busy_state();
  req.current = BatterySelection::kBig;
  req.budget = BudgetLevel::kBalanced;
  EXPECT_EQ(sched.decide(req).budget, BudgetLevel::kBalanced);
}

TEST(Scheduler, LearnsBudgetLevelJointly) {
  CapmanConfig cfg = no_exploration_config();
  cfg.learn_budget = true;
  OnlineScheduler sched{cfg, 1};
  EXPECT_EQ(sched.mdp().action_count(), decision_action_space_size());
  const auto dev = busy_state();
  // The eco-budget variant of the big-battery action earns clearly better
  // rewards (the voluntary derate pays off in this regime).
  for (int i = 0; i < 10; ++i) {
    Observation eco =
        obs_for(dev, Syscall::kCpuBurst, BatterySelection::kBig, 0.9);
    eco.action.budget = BudgetLevel::kEco;
    sched.observe(eco);
    sched.observe(
        obs_for(dev, Syscall::kCpuBurst, BatterySelection::kBig, 0.4));
    sched.observe(
        obs_for(dev, Syscall::kCpuBurst, BatterySelection::kLittle, 0.3));
  }
  sched.recalibrate();
  DecideRequest req;
  req.event = Action{Syscall::kCpuBurst, 0};
  req.device = dev;
  req.current = BatterySelection::kBig;
  const DecideResult result = sched.decide(req);
  EXPECT_EQ(result.battery, BatterySelection::kBig);
  EXPECT_EQ(result.budget, BudgetLevel::kEco);
}

TEST(Scheduler, RecalibrationCountsAndTiming) {
  OnlineScheduler sched{no_exploration_config(), 1};
  const double secs = sched.recalibrate();
  EXPECT_GE(secs, 0.0);
  EXPECT_EQ(sched.recalibration_count(), 1u);
}

TEST(Controller, FirstEventUsesPriorAndOpensInterval) {
  CapmanController ctl{no_exploration_config(), 3};
  const auto choice =
      ctl.on_event(Action{Syscall::kScreenWake, 0}, busy_state(),
                   BatterySelection::kBig, Seconds{1.0});
  EXPECT_EQ(choice, BatterySelection::kLittle);
}

TEST(Controller, DwellLimitSuppressesRapidSwitching) {
  CapmanConfig cfg = no_exploration_config();
  cfg.min_switch_dwell = Seconds{1.0};
  CapmanController ctl{cfg, 3};
  const auto first = ctl.on_event(Action{Syscall::kScreenWake, 0},
                                  busy_state(), BatterySelection::kBig,
                                  Seconds{0.0});
  EXPECT_EQ(first, BatterySelection::kLittle);
  // Immediately after, a steady event wants big again, but dwell holds it.
  const auto second = ctl.on_event(Action{Syscall::kVideoFrame, 0},
                                   busy_state(), first, Seconds{0.1});
  EXPECT_EQ(second, first);
  // After the dwell expires the switch is allowed.
  const auto third = ctl.on_event(Action{Syscall::kVideoFrame, 0},
                                  busy_state(), first, Seconds{2.0});
  EXPECT_EQ(third, BatterySelection::kBig);
}

TEST(Controller, EmergencyForcesEcoBudgetWhenLearning) {
  CapmanConfig cfg = no_exploration_config();
  cfg.learn_budget = true;
  CapmanController ctl{cfg, 3};
  EXPECT_EQ(ctl.last_budget_level(), BudgetLevel::kFull);
  ctl.on_event(Action{Syscall::kScreenWake, 0}, busy_state(),
               BatterySelection::kBig, Seconds{1.0}, /*emergency=*/true,
               BudgetLevel::kFull);
  // The comparator tripping is the signal the budget was too optimistic.
  EXPECT_EQ(ctl.last_budget_level(), BudgetLevel::kEco);
}

TEST(Controller, MaintenanceChargesConstantPowerAndRecalibrates) {
  CapmanConfig cfg = no_exploration_config();
  cfg.recalibration_interval = Seconds{5.0};
  CapmanController ctl{cfg, 3};
  EXPECT_NEAR(ctl.maintenance(Seconds{0.0}).value(),
              cfg.maintenance_power.value(), 1e-12);
  EXPECT_EQ(ctl.scheduler().recalibration_count(), 0u);
  ctl.maintenance(Seconds{6.0});
  EXPECT_EQ(ctl.scheduler().recalibration_count(), 1u);
  // Backoff: next recalibration is further out than the first interval.
  ctl.maintenance(Seconds{11.0});
  EXPECT_EQ(ctl.scheduler().recalibration_count(), 1u);
}

TEST(Controller, LearnsAcrossEvents) {
  CapmanConfig cfg = no_exploration_config();
  cfg.min_switch_dwell = Seconds{0.0};
  CapmanController ctl{cfg, 3};
  const auto dev = busy_state();
  // Simulate intervals where LITTLE is efficient on top-bucket bursts
  // (the kind prior already routes those to LITTLE; the rewards confirm).
  BatterySelection current = BatterySelection::kBig;
  for (int i = 0; i < 30; ++i) {
    const auto choice = ctl.on_event(Action{Syscall::kCpuBurst, 9}, dev,
                                     current, Seconds{i * 2.0});
    const double eff = choice == BatterySelection::kLittle ? 0.95 : 0.4;
    ctl.record_step(Joules{eff}, Joules{1.0 - eff}, true);
    current = choice;
    if (i % 10 == 9) ctl.maintenance(Seconds{i * 2.0 + 1.0});
  }
  ctl.maintenance(Seconds{100.0});
  const auto choice = ctl.on_event(Action{Syscall::kCpuBurst, 9}, dev,
                                   BatterySelection::kBig, Seconds{101.0});
  EXPECT_EQ(choice, BatterySelection::kLittle);
}

}  // namespace
}  // namespace capman::core
