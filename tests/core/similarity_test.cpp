#include "core/similarity.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace capman::core {
namespace {

SimilarityConfig tight_config() {
  SimilarityConfig cfg;
  cfg.c_s = 1.0;
  cfg.c_a = 0.8;
  cfg.epsilon = 1e-6;
  cfg.max_iterations = 500;
  return cfg;
}

TEST(Similarity, EmptyGraphConverges) {
  const MdpGraph graph;
  const auto result = compute_structural_similarity(graph, tight_config());
  EXPECT_TRUE(result.converged);
}

TEST(Similarity, SelfSimilarityIsOne) {
  util::Rng rng{31};
  const auto graph = testutil::random_graph(rng, 12, 3);
  const auto result = compute_structural_similarity(graph, tight_config());
  for (std::size_t u = 0; u < graph.state_count(); ++u) {
    EXPECT_DOUBLE_EQ(result.state_similarity(u, u), 1.0);
  }
  for (std::size_t a = 0; a < graph.action_count(); ++a) {
    EXPECT_DOUBLE_EQ(result.action_similarity(a, a), 1.0);
  }
}

TEST(Similarity, MatricesBoundedInUnitInterval) {
  util::Rng rng{32};
  for (int trial = 0; trial < 5; ++trial) {
    const auto graph = testutil::random_graph(rng, 10, 2);
    const auto result = compute_structural_similarity(graph, tight_config());
    EXPECT_TRUE(result.state_similarity.all_in(0.0, 1.0));
    EXPECT_TRUE(result.action_similarity.all_in(0.0, 1.0));
  }
}

TEST(Similarity, SymmetricMatrices) {
  util::Rng rng{33};
  const auto graph = testutil::random_graph(rng, 10, 2);
  const auto result = compute_structural_similarity(graph, tight_config());
  for (std::size_t u = 0; u < graph.state_count(); ++u) {
    for (std::size_t v = 0; v < graph.state_count(); ++v) {
      EXPECT_DOUBLE_EQ(result.state_similarity(u, v),
                       result.state_similarity(v, u));
    }
  }
  for (std::size_t a = 0; a < graph.action_count(); ++a) {
    for (std::size_t b = 0; b < graph.action_count(); ++b) {
      EXPECT_DOUBLE_EQ(result.action_similarity(a, b),
                       result.action_similarity(b, a));
    }
  }
}

TEST(Similarity, AbsorbingBaseCases) {
  // Build: s0 -> s1 (absorbing), s2 absorbing as well.
  std::vector<StateVertex> states(3);
  for (std::size_t i = 0; i < 3; ++i) states[i].state_id = i;
  ActionVertex a;
  a.source = 0;
  a.action_id = 0;
  a.transitions.push_back({1, 1.0, 0.5});
  states[0].actions.push_back(0);
  const auto graph = MdpGraph::from_parts(std::move(states), {a});

  SimilarityConfig cfg = tight_config();
  cfg.absorbing_distance = 0.3;
  const auto result = compute_structural_similarity(graph, cfg);
  // Exactly one absorbing: delta = 1 -> similarity 0.
  EXPECT_DOUBLE_EQ(result.state_similarity(0, 1), 0.0);
  // Both absorbing: similarity = 1 - d_{u,v} = 0.7.
  EXPECT_DOUBLE_EQ(result.state_similarity(1, 2), 0.7);
}

TEST(Similarity, IdenticalTwinStatesAreMaximallySimilar) {
  // Two states with structurally identical single actions into the same
  // absorbing target with equal rewards.
  std::vector<StateVertex> states(3);
  for (std::size_t i = 0; i < 3; ++i) states[i].state_id = i;
  ActionVertex a0;
  a0.source = 0;
  a0.action_id = 0;
  a0.transitions.push_back({2, 1.0, 0.6});
  ActionVertex a1;
  a1.source = 1;
  a1.action_id = 1;
  a1.transitions.push_back({2, 1.0, 0.6});
  states[0].actions.push_back(0);
  states[1].actions.push_back(1);
  const auto graph = MdpGraph::from_parts(std::move(states), {a0, a1});
  const auto result = compute_structural_similarity(graph, tight_config());
  EXPECT_NEAR(result.state_similarity(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(result.action_similarity(0, 1), 1.0, 1e-6);
}

TEST(Similarity, RewardGapLowersActionSimilarity) {
  // Same transition structure, different rewards.
  std::vector<StateVertex> states(3);
  for (std::size_t i = 0; i < 3; ++i) states[i].state_id = i;
  ActionVertex cheap;
  cheap.source = 0;
  cheap.action_id = 0;
  cheap.transitions.push_back({2, 1.0, 0.1});
  ActionVertex rich;
  rich.source = 1;
  rich.action_id = 1;
  rich.transitions.push_back({2, 1.0, 0.9});
  states[0].actions.push_back(0);
  states[1].actions.push_back(1);
  const auto graph =
      MdpGraph::from_parts(std::move(states), {cheap, rich});
  const auto result = compute_structural_similarity(graph, tight_config());
  // delta_A = (1 - c_a) * |0.9 - 0.1| = 0.16 -> sigma_A = 0.84.
  EXPECT_NEAR(result.action_similarity(0, 1), 1.0 - 0.2 * 0.8, 1e-6);
  EXPECT_LT(result.state_similarity(0, 1), 1.0);
}

TEST(Similarity, DivergentTargetsLowerSimilarity) {
  // a0 -> absorbing A; a1 -> absorbing B; absorbing distance 1.
  std::vector<StateVertex> states(4);
  for (std::size_t i = 0; i < 4; ++i) states[i].state_id = i;
  ActionVertex a0;
  a0.source = 0;
  a0.action_id = 0;
  a0.transitions.push_back({2, 1.0, 0.5});
  ActionVertex a1;
  a1.source = 1;
  a1.action_id = 1;
  a1.transitions.push_back({3, 1.0, 0.5});
  states[0].actions.push_back(0);
  states[1].actions.push_back(1);
  const auto graph = MdpGraph::from_parts(std::move(states), {a0, a1});
  SimilarityConfig cfg = tight_config();
  cfg.absorbing_distance = 1.0;
  const auto result = compute_structural_similarity(graph, cfg);
  // delta_EMD between point masses on A and B = d(A,B) = 1
  // -> sigma_A = 1 - c_a = 0.2.
  EXPECT_NEAR(result.action_similarity(0, 1), 1.0 - cfg.c_a, 1e-6);
}

TEST(Similarity, ConvergesWithinIterationBudget) {
  util::Rng rng{34};
  const auto graph = testutil::random_graph(rng, 16, 4);
  const auto result = compute_structural_similarity(graph, tight_config());
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_LT(result.iterations, 500u);
}

TEST(Similarity, HigherCaNeedsMoreIterationsOnAverage) {
  // The contraction factor is C_A; iterations grow as it approaches 1.
  // (This is the mechanism behind the paper's Fig. 16.) Per-graph the count
  // is noisy, so compare averages over several random graphs.
  util::Rng rng{35};
  double iters_low = 0.0;
  double iters_high = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto graph = testutil::random_graph(rng, 14, 3);
    SimilarityConfig low = tight_config();
    low.c_a = 0.3;
    SimilarityConfig high = tight_config();
    high.c_a = 0.9;
    iters_low += static_cast<double>(
        compute_structural_similarity(graph, low).iterations);
    iters_high += static_cast<double>(
        compute_structural_similarity(graph, high).iterations);
  }
  EXPECT_GT(iters_high, iters_low);
}

TEST(Similarity, DistanceAccessorsAreComplements) {
  util::Rng rng{36};
  const auto graph = testutil::random_graph(rng, 8, 2);
  const auto result = compute_structural_similarity(graph, tight_config());
  EXPECT_NEAR(result.state_distance(0, 1),
              1.0 - result.state_similarity(0, 1), 1e-12);
  if (graph.action_count() >= 2) {
    EXPECT_NEAR(result.action_distance(0, 1),
                1.0 - result.action_similarity(0, 1), 1e-12);
  }
}

}  // namespace
}  // namespace capman::core
