// PowerBudgetArbiter: config validation (field-named messages), budget
// derivation from battery/thermal headroom, corecap-row selection, grant
// monotonicity in the budget, cap methods, and the zero-headroom /
// single-consumer edge cases.
#include "core/power_budget.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "device/phone.h"
#include "thermal/tec_consumer.h"

namespace capman::core {
namespace {

// -------------------------------------------------------- validation ---

void expect_single_error(const PowerBudgetArbiterConfig& config,
                         const std::string& expected) {
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u) << "for message: " << expected;
  EXPECT_EQ(errors.front(), expected);
}

TEST(PowerBudgetArbiterConfig, DefaultsValidate) {
  EXPECT_TRUE(PowerBudgetArbiterConfig{}.validate().empty());
}

TEST(PowerBudgetArbiterConfig, EveryFieldHasANamedMessage) {
  PowerBudgetArbiterConfig config;
  config.base_budget_mw = util::Milliwatts{0.0};
  config.min_budget_mw =
      util::Milliwatts{-1.0};  // keep <= base so only its own rule fires
  {
    const auto errors = config.validate();
    ASSERT_EQ(errors.size(), 2u);
    EXPECT_EQ(errors[0], "base_budget_mw must be > 0");
    EXPECT_EQ(errors[1], "min_budget_mw must be > 0 and <= base_budget_mw");
  }
  config = {};
  config.min_budget_mw = config.base_budget_mw + util::Milliwatts{1.0};
  expect_single_error(config,
                      "min_budget_mw must be > 0 and <= base_budget_mw");
  config = {};
  config.soc_floor = -0.1;  // keeps the knee rule satisfied
  expect_single_error(config, "soc_floor must be in [0, 1)");
  config = {};
  config.soc_knee = config.soc_floor;
  expect_single_error(config, "soc_knee must be in (soc_floor, 1]");
  config = {};
  config.rail_min_v = 0.0;
  expect_single_error(config, "rail_min_v must be > 0");
  config = {};
  config.nominal_v = config.rail_min_v;
  expect_single_error(config, "nominal_v must be > rail_min_v");
  config = {};
  config.rebudget_trigger_v = config.rail_min_v - 0.1;
  expect_single_error(config, "rebudget_trigger_v must be >= rail_min_v");
  config = {};
  config.min_rebudget_gap_s = 0.0;
  expect_single_error(config, "min_rebudget_gap_s must be > 0");
  config = {};
  config.supercap_margin_fill = 0.0;
  expect_single_error(config, "supercap_margin_fill must be in (0, 1]");
  config = {};
  config.skin_soft_c = config.skin_hard_c;
  expect_single_error(config, "skin_soft_c must be < skin_hard_c");
  config = {};
  config.cell_soft_c = config.cell_hard_c;
  expect_single_error(config, "cell_soft_c must be < cell_hard_c");
  config = {};
  config.static_margin = 0.0;
  expect_single_error(config, "static_margin must be in (0, 1]");
  config = {};
  config.cooling_priority_hotspot_c = 0.0;
  expect_single_error(config, "cooling_priority_hotspot_c must be > 0");
  config = {};
  config.level_fraction = {util::Ratio{0.6}, util::Ratio{0.8},
                           util::Ratio{1.0}};  // increasing: invalid
  expect_single_error(
      config, "level_fraction values must be in (0, 1] and non-increasing");
}

TEST(PowerBudgetArbiterConfig, CorecapTableRules) {
  PowerBudgetArbiterConfig config;
  config.corecaps.clear();
  expect_single_error(config, "corecaps must not be empty");

  config = {};
  config.corecaps[1].budget_mw = config.corecaps[0].budget_mw;
  {
    // The flattened row also makes both of row 1's splits overflow it.
    const auto errors = config.validate();
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_EQ(errors[0],
              "corecaps[1].budget_mw must be > 0 and strictly increasing");
    EXPECT_EQ(errors[1],
              "corecaps[1].cpu_priority caps must sum to <= budget_mw");
    EXPECT_EQ(errors[2],
              "corecaps[1].cooling_priority caps must sum to <= budget_mw");
  }

  config = {};
  config.corecaps[0].cpu_priority.cpu_mw = util::Milliwatts{-1.0};
  expect_single_error(config,
                      "corecaps[0].cpu_priority caps must be >= 0");

  config = {};  // last row: no later row to trip the monotonicity rule
  config.corecaps[5].cooling_priority.tec_mw = config.corecaps[5].budget_mw;
  expect_single_error(
      config, "corecaps[5].cooling_priority caps must sum to <= budget_mw");

  config = {};
  config.corecaps[3].cpu_priority = config.corecaps[1].cpu_priority;
  {
    const auto errors = config.validate();
    // The dip breaks monotonicity at row 3 and (vs row 3) at row 4.
    ASSERT_FALSE(errors.empty());
    EXPECT_EQ(errors.front(),
              "corecaps[3].cpu_priority caps must be non-decreasing across "
              "rows");
  }
}

TEST(PowerBudgetArbiter, ConstructorThrowsListingEveryError) {
  PowerBudgetArbiterConfig config;
  config.base_budget_mw = util::Milliwatts{0.0};
  config.static_margin = 2.0;
  try {
    PowerBudgetArbiter arbiter{config};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("base_budget_mw must be > 0"), std::string::npos);
    EXPECT_NE(what.find("static_margin must be in (0, 1]"),
              std::string::npos);
  }
}

// -------------------------------------------------------- derivation ---

BudgetInputs healthy_inputs() {
  BudgetInputs in;
  in.big_soc = 1.0;
  in.little_soc = 1.0;
  in.active = battery::BatterySelection::kBig;
  in.rail_v = 3.9;
  in.supercap_fill = 1.0;
  in.skin_c = 26.0;
  in.cell_c = 26.0;
  in.hotspot_c = 26.0;
  return in;
}

TEST(PowerBudgetArbiter, FullHeadroomYieldsBaseBudget) {
  const PowerBudgetArbiter arbiter{PowerBudgetArbiterConfig{}};
  EXPECT_DOUBLE_EQ(arbiter.derive_budget_mw(healthy_inputs()).raw(),
                   arbiter.config().base_budget_mw.raw());
}

TEST(PowerBudgetArbiter, TightestConstraintRules) {
  const PowerBudgetArbiter arbiter{PowerBudgetArbiterConfig{}};
  const auto& config = arbiter.config();

  // Active-cell SoC at the floor zeroes the headroom regardless of the
  // other (healthy) factors; the floor keeps the budget alive.
  BudgetInputs in = healthy_inputs();
  in.big_soc = config.soc_floor;
  EXPECT_DOUBLE_EQ(arbiter.derive_budget_mw(in).raw(),
                   config.min_budget_mw.raw());

  // ... but only the *active* cell's SoC matters.
  in.active = battery::BatterySelection::kLittle;
  EXPECT_DOUBLE_EQ(arbiter.derive_budget_mw(in).raw(),
                   config.base_budget_mw.raw());

  // Skin at the hard limit also floors the budget.
  in = healthy_inputs();
  in.skin_c = config.skin_hard_c;
  EXPECT_DOUBLE_EQ(arbiter.derive_budget_mw(in).raw(),
                   config.min_budget_mw.raw());

  // Halfway between soft and hard derates to half the base.
  in.skin_c = (config.skin_soft_c + config.skin_hard_c) / 2.0;
  EXPECT_NEAR(arbiter.derive_budget_mw(in).raw(),
              config.base_budget_mw.raw() / 2.0, 1e-9);
}

TEST(PowerBudgetArbiter, StaticMethodIgnoresRailVoltage) {
  PowerBudgetArbiterConfig relax;
  relax.cap_method = CapMethod::kRelax;
  PowerBudgetArbiterConfig fixed = relax;
  fixed.cap_method = CapMethod::kStatic;
  const PowerBudgetArbiter relax_arbiter{relax};
  const PowerBudgetArbiter static_arbiter{fixed};

  BudgetInputs sag = healthy_inputs();
  sag.rail_v = (relax.rail_min_v + relax.nominal_v) / 2.0;
  EXPECT_LT(relax_arbiter.derive_budget_mw(sag).raw(),
            relax.base_budget_mw.raw());  // relax sees the sag
  EXPECT_DOUBLE_EQ(static_arbiter.derive_budget_mw(sag).raw(),
                   fixed.base_budget_mw.raw());  // static cannot read the rail
}

// ------------------------------------------------------------ grants ---

/// The full consumer rig the engine wires up, built on the Nexus models.
struct Rig {
  Rig()
      : phone(device::nexus_profile()),
        cpu(phone.cpu()),
        screen(phone.screen()),
        wifi(phone.wifi()),
        tec(tec_model) {}

  device::PhoneModel phone;
  thermal::Tec tec_model;
  device::CpuPowerConsumer cpu;
  device::ScreenPowerConsumer screen;
  device::WifiPowerConsumer wifi;
  thermal::TecPowerConsumer tec;
  std::array<device::PowerConsumer*, device::kConsumerKindCount> consumers{
      &cpu, &screen, &wifi, &tec};
};

TEST(PowerBudgetArbiter, GrantsAreMonotoneInTheBudget) {
  double previous = -1.0;
  // Ascending base budgets sweep across every corecap row boundary.
  for (double base : {600.0, 1000.0, 1400.0, 1800.0, 2300.0, 2800.0, 3200.0,
                      3600.0, 4000.0, 4400.0, 4900.0, 5400.0}) {
    PowerBudgetArbiterConfig config;
    config.base_budget_mw = util::Milliwatts{base};
    config.min_budget_mw = util::Milliwatts{std::min(900.0, base)};
    Rig rig;
    PowerBudgetArbiter arbiter{config};
    const BudgetGrant grant =
        arbiter.rebudget(healthy_inputs(), BudgetLevel::kFull, rig.consumers);
    EXPECT_GE(grant.granted_mw.raw(), previous) << "base " << base;
    EXPECT_DOUBLE_EQ(grant.effective_mw.raw(), base);
    previous = grant.granted_mw.raw();
  }
}

TEST(PowerBudgetArbiter, GrantFitsEffectiveBudgetAboveTheFloors) {
  Rig rig;
  PowerBudgetArbiter arbiter{PowerBudgetArbiterConfig{}};
  const BudgetGrant grant =
      arbiter.rebudget(healthy_inputs(), BudgetLevel::kFull, rig.consumers);
  EXPECT_LE(grant.granted_mw.raw(), grant.effective_mw.raw() + 1e-9);
  EXPECT_GT(grant.granted_mw.raw(), 0.0);
  for (std::size_t kind = 0; kind < device::kConsumerKindCount; ++kind) {
    EXPECT_GE(grant.by_kind[kind].raw(), 0.0);
  }
}

TEST(PowerBudgetArbiter, ZeroHeadroomGrantsTheFloors) {
  PowerBudgetArbiterConfig config;
  config.min_budget_mw =
      util::Milliwatts{1.0};  // the trim has nothing to work with
  Rig rig;
  PowerBudgetArbiter arbiter{config};
  BudgetInputs in = healthy_inputs();
  in.skin_c = config.skin_hard_c + 5.0;
  const BudgetGrant grant =
      arbiter.rebudget(in, BudgetLevel::kEco, rig.consumers);
  // Every consumer is pinned at its capability floor; the grant honestly
  // reports more than the (unachievable) effective budget.
  EXPECT_DOUBLE_EQ(
      grant.by_kind[static_cast<std::size_t>(device::ConsumerKind::kCpu)]
          .raw(),
      rig.cpu.capability().min_draw_mw.raw());
  EXPECT_DOUBLE_EQ(
      grant.by_kind[static_cast<std::size_t>(device::ConsumerKind::kScreen)]
          .raw(),
      rig.screen.capability().min_draw_mw.raw());
  EXPECT_DOUBLE_EQ(
      grant.by_kind[static_cast<std::size_t>(device::ConsumerKind::kWifi)]
          .raw(),
      rig.wifi.capability().min_draw_mw.raw());
  EXPECT_DOUBLE_EQ(
      grant.by_kind[static_cast<std::size_t>(device::ConsumerKind::kTec)]
          .raw(),
      0.0);
  EXPECT_GT(grant.granted_mw.raw(), grant.effective_mw.raw());
  EXPECT_FALSE(rig.tec.allows_on());
}

TEST(PowerBudgetArbiter, SingleConsumerSpanLeavesOthersAlone) {
  Rig rig;
  PowerBudgetArbiter arbiter{PowerBudgetArbiterConfig{}};
  const double wifi_before = rig.wifi.granted_mw().raw();
  std::array<device::PowerConsumer*, 1> only_cpu{&rig.cpu};
  const BudgetGrant grant =
      arbiter.rebudget(healthy_inputs(), BudgetLevel::kFull, only_cpu);
  EXPECT_GT(grant.granted_mw.raw(), 0.0);
  EXPECT_DOUBLE_EQ(
      grant.granted_mw.raw(),
      grant.by_kind[static_cast<std::size_t>(device::ConsumerKind::kCpu)]
          .raw());
  // Consumers outside the span keep their previous caps.
  EXPECT_DOUBLE_EQ(rig.wifi.granted_mw().raw(), wifi_before);
}

TEST(PowerBudgetArbiter, LevelFractionsScaleTheGrant) {
  const PowerBudgetArbiterConfig config;
  std::array<double, kBudgetLevelCount> effective{};
  for (std::size_t level = 0; level < kBudgetLevelCount; ++level) {
    Rig rig;
    PowerBudgetArbiter arbiter{config};
    const BudgetGrant grant = arbiter.rebudget(
        healthy_inputs(), static_cast<BudgetLevel>(level), rig.consumers);
    effective[level] = grant.effective_mw.raw();
    EXPECT_DOUBLE_EQ(
        grant.effective_mw.raw(),
        (config.base_budget_mw * config.level_fraction[level]).raw());
  }
  EXPECT_GT(effective[0], effective[1]);
  EXPECT_GT(effective[1], effective[2]);
}

TEST(PowerBudgetArbiter, StaticMarginShavesEveryBudget) {
  PowerBudgetArbiterConfig config;
  config.cap_method = CapMethod::kStatic;
  Rig rig;
  PowerBudgetArbiter arbiter{config};
  const BudgetGrant grant =
      arbiter.rebudget(healthy_inputs(), BudgetLevel::kFull, rig.consumers);
  EXPECT_DOUBLE_EQ(grant.effective_mw.raw(),
                   config.base_budget_mw.raw() * config.static_margin);
}

TEST(PowerBudgetArbiter, CoolingPriorityFundsTheTec) {
  Rig rig;
  PowerBudgetArbiter arbiter{PowerBudgetArbiterConfig{}};
  BudgetInputs hot = healthy_inputs();
  hot.hotspot_c = arbiter.config().cooling_priority_hotspot_c + 2.0;
  const BudgetGrant grant =
      arbiter.rebudget(hot, BudgetLevel::kFull, rig.consumers);
  EXPECT_TRUE(grant.cooling_priority);
  // The cooling-priority split funds the TEC's full reference draw, so
  // the engine will let the cooler run.
  EXPECT_TRUE(rig.tec.allows_on());

  // Back below the threshold the CPU-priority split starves the TEC.
  const BudgetGrant cool =
      arbiter.rebudget(healthy_inputs(), BudgetLevel::kFull, rig.consumers);
  EXPECT_FALSE(cool.cooling_priority);
  EXPECT_LT(
      cool.by_kind[static_cast<std::size_t>(device::ConsumerKind::kTec)]
          .raw(),
      grant.by_kind[static_cast<std::size_t>(device::ConsumerKind::kTec)]
          .raw());
  EXPECT_FALSE(rig.tec.allows_on());
}

TEST(PowerBudgetArbiter, CountersTrackRebudgets) {
  Rig rig;
  PowerBudgetArbiter arbiter{PowerBudgetArbiterConfig{}};
  EXPECT_EQ(arbiter.rebudget_count(), 0u);
  arbiter.rebudget(healthy_inputs(), BudgetLevel::kFull, rig.consumers);
  arbiter.note_voltage_trigger();
  arbiter.rebudget(healthy_inputs(), BudgetLevel::kEco, rig.consumers);
  EXPECT_EQ(arbiter.rebudget_count(), 2u);
  EXPECT_EQ(arbiter.voltage_trigger_count(), 1u);
  EXPECT_EQ(arbiter.last_grant().level, BudgetLevel::kEco);
}

TEST(CapMethodNames, RoundTrip) {
  EXPECT_STREQ(to_string(CapMethod::kRelax), "relax");
  EXPECT_STREQ(to_string(CapMethod::kStatic), "static");
}

}  // namespace
}  // namespace capman::core
