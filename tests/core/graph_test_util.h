// Shared helpers for building synthetic MDP graphs in core tests.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mdp_graph.h"
#include "util/rng.h"

namespace capman::core::testutil {

/// A random MDP graph with `n_states` states (the last `n_absorbing` of
/// which are absorbing), 1..max_actions actions per non-absorbing state and
/// 1..max_fanout transitions per action (probabilities normalized, rewards
/// uniform in [0,1]).
inline MdpGraph random_graph(util::Rng& rng, std::size_t n_states,
                             std::size_t n_absorbing,
                             std::size_t max_actions = 3,
                             std::size_t max_fanout = 3) {
  std::vector<StateVertex> states(n_states);
  std::vector<ActionVertex> actions;
  for (std::size_t s = 0; s < n_states; ++s) {
    states[s].state_id = s;
    if (s + n_absorbing >= n_states) continue;  // absorbing
    const std::size_t n_act = 1 + rng.uniform_index(max_actions);
    for (std::size_t a = 0; a < n_act; ++a) {
      ActionVertex av;
      av.source = s;
      av.action_id = actions.size() % decision_action_space_size();
      const std::size_t fanout = 1 + rng.uniform_index(max_fanout);
      double total = 0.0;
      for (std::size_t t = 0; t < fanout; ++t) {
        TransitionEdge e;
        e.to = rng.uniform_index(n_states);
        e.probability = rng.uniform(0.1, 1.0);
        e.reward = rng.uniform();
        total += e.probability;
        av.transitions.push_back(e);
      }
      for (auto& e : av.transitions) e.probability /= total;
      states[s].actions.push_back(actions.size());
      actions.push_back(std::move(av));
    }
  }
  return MdpGraph::from_parts(std::move(states), std::move(actions));
}

/// A tiny deterministic two-state chain: s0 --a0(r=r0)--> s1 (absorbing).
inline MdpGraph two_state_chain(double r0) {
  std::vector<StateVertex> states(2);
  states[0].state_id = 0;
  states[1].state_id = 1;
  ActionVertex a;
  a.source = 0;
  a.action_id = 0;
  a.transitions.push_back({1, 1.0, r0});
  states[0].actions.push_back(0);
  std::vector<ActionVertex> actions{a};
  return MdpGraph::from_parts(std::move(states), std::move(actions));
}

}  // namespace capman::core::testutil
