// Example: active cooling with the TEC under the 45 C threshold controller.
//
// Runs the hottest workload (Geekbench) twice - with the TEC enabled and
// with only the passive cooling plate - and prints the hot-spot trajectory,
// the TEC duty cycle and what the cooling costs in battery service time.
// Demonstrates: thermal::PhoneThermal, thermal::CoolingController,
// sim::ExperimentRunner configuration knobs.
#include <iostream>

#include "sim/experiment.h"
#include "util/table.h"

using namespace capman;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 42;
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_geekbench()->generate(util::Seconds{600.0}, seed);

  std::cout << "Active cooling demo: Geekbench on " << phone.profile().name
            << ", CAPMAN scheduling, 45 C hot-spot threshold\n";

  struct Run {
    std::string label;
    sim::SimResult result;
  };
  std::vector<Run> runs;
  for (bool tec : {true, false}) {
    sim::RunnerOptions options;
    options.seed = seed;
    options.config.enable_tec = tec;
    const sim::ExperimentRunner runner{phone, options};
    runs.push_back({tec ? "TEC @ 45C threshold" : "cooling plate only",
                    runner.run(trace, sim::PolicyKind::kCapman)});
  }

  util::TextTable table({"configuration", "service [min]", "avg hotspot [C]",
                         "max hotspot [C]", "time above 45C [%]",
                         "TEC duty [%]", "TEC energy [J]"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    table.add_row(run.label,
                  {r.service_time_s / 60.0, r.avg_cpu_temp_c, r.max_cpu_temp_c,
                   r.cpu_temp_series.fraction_above(45.0) * 100.0,
                   r.tec_on_fraction * 100.0, r.tec_energy_j},
                  1);
  }
  table.print(std::cout);

  // A coarse ASCII sparkline of the first 30 minutes of hot-spot readings.
  std::cout << "\nhot-spot trajectory (first 30 min, '.'<40C  '-'<44C  "
               "'*'<46C  '#'>=46C):\n";
  for (const auto& run : runs) {
    std::cout << "  " << (run.label + std::string(22, ' ')).substr(0, 22)
              << " ";
    const auto& series = run.result.cpu_temp_series;
    for (std::size_t i = 0; i < series.size() && series.time_at(i) < 1800.0;
         i += 15) {
      const double v = series.value_at(i);
      std::cout << (v < 40.0 ? '.' : v < 44.0 ? '-' : v < 46.0 ? '*' : '#');
    }
    std::cout << '\n';
  }
  std::cout << "\nThe TEC holds the hot spot at the threshold at the price of "
               "battery energy;\nthe threshold controller only pays that "
               "price when the workload actually runs hot.\n";
  return 0;
}
