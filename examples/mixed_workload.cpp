// Example: the paper's headline scenario - skewed mixed workloads.
//
// Sweeps the eta-Static mix (fraction of PCMark-style segments vs
// Video-style segments) and compares CAPMAN against the Dual baseline and
// the original single-battery phone (Practice). This is where big.LITTLE
// battery scheduling roughly doubles service time.
// Demonstrates: workload::make_eta_static, sim::ExperimentRunner.
#include <iostream>

#include "sim/experiment.h"
#include "util/table.h"

using namespace capman;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 42;
  const device::PhoneModel phone{device::nexus_profile()};

  std::cout << "Skewed mixed workloads: eta-Static sweep on "
            << phone.profile().name << "\n"
            << "(eta = fraction of CPU-intensive PCMark segments)\n\n";

  util::TextTable table({"eta", "CAPMAN [min]", "Dual [min]",
                         "Practice [min]", "CAPMAN vs Dual [%]",
                         "CAPMAN vs Practice [%]"});
  sim::RunnerOptions options;
  options.seed = seed;
  const sim::ExperimentRunner runner{phone, options};
  for (double eta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto trace =
        workload::make_eta_static(eta)->generate(util::Seconds{600.0}, seed);

    const double t_capman =
        runner.run(trace, sim::PolicyKind::kCapman).service_time_s / 60.0;
    const double t_dual =
        runner.run(trace, sim::PolicyKind::kDual).service_time_s / 60.0;
    const double t_practice =
        runner.run(trace, sim::PolicyKind::kPractice).service_time_s / 60.0;

    table.add_row(util::TextTable::format(eta, 1),
                  {t_capman, t_dual, t_practice,
                   sim::improvement_pct(t_capman, t_dual),
                   sim::improvement_pct(t_capman, t_practice)},
                  1);
  }
  table.print(std::cout);
  std::cout << "\nPaper reference (Fig. 12d-f): CAPMAN extends service time "
               "by +76% / +105% / +114%\nover the original phone on the "
               "three mixed workloads - roughly doubling it.\n";
  return 0;
}
