// Quickstart: run one discharge cycle of the Video workload under CAPMAN
// and every baseline, and print the service-time comparison the paper's
// Fig. 12(c) reports.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [workload] [seed]
// where workload is one of: geekbench pcmark video eta20 eta50 eta80
#include <iostream>
#include <memory>
#include <string>

#include "sim/experiment.h"
#include "util/table.h"

using namespace capman;

namespace {

std::unique_ptr<workload::WorkloadGenerator> pick_workload(
    const std::string& name) {
  if (name == "geekbench") return workload::make_geekbench();
  if (name == "pcmark") return workload::make_pcmark();
  if (name == "eta20") return workload::make_eta_static(0.2);
  if (name == "eta50") return workload::make_eta_static(0.5);
  if (name == "eta80") return workload::make_eta_static(0.8);
  return workload::make_video();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "video";
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 42;

  const auto generator = pick_workload(workload_name);
  const device::PhoneModel phone{device::nexus_profile()};
  const workload::Trace trace =
      generator->generate(util::Seconds{600.0}, seed);

  std::cout << "CAPMAN quickstart\n"
            << "  workload: " << trace.name() << " (seed " << seed << ")\n"
            << "  phone:    " << phone.profile().name << "\n"
            << "  demand:   "
            << util::to_milliwatts(trace.average_power(phone))
            << " mW average\n\n";

  sim::RunnerOptions options;
  options.seed = seed;
  const sim::ExperimentRunner runner{phone, options};
  const sim::ComparisonResult results = runner.compare(trace);

  const sim::SimResult& practice = results.at(sim::PolicyKind::kPractice);
  util::TextTable table({"policy", "service time [min]", "vs Practice [%]",
                         "avg power [mW]", "switches", "max temp [C]",
                         "TEC on [%]"});
  for (const auto& [kind, r] : results.entries()) {
    table.add_row(r.policy,
                  {r.service_time_s / 60.0,
                   sim::improvement_pct(r.service_time_s,
                                        practice.service_time_s),
                   r.avg_power_w * 1000.0, static_cast<double>(r.switch_count),
                   r.max_cpu_temp_c, r.tec_on_fraction * 100.0});
  }
  table.print(std::cout);
  std::cout << "\nService time = how long one battery charge lasts under the "
               "workload.\n";
  return 0;
}
