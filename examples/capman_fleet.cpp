// capman_fleet: run a heterogeneous device fleet and print the population
// aggregates (docs/FLEET.md).
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/capman_fleet [--devices N] [--seed S] [--threads T]
//                                 [--shards K] [--policies dual,heuristic]
//                                 [--fault-fraction F] [--json]
//                                 [--checkpoint-dir DIR] [--resume]
//
// Defaults simulate 1000 sub-scale devices (coarse dt, small cells — see
// the fleet preset below) under the Dual and Heuristic policies and print
// one row per policy plus the lifetime percentiles. --json dumps the full
// deterministic fleet/* metrics snapshot instead.
//
// Exit-2 usage contract (locked by the fleet_usage_error CTest gate):
// unknown flags and unparseable values print usage to stderr and exit 2;
// --help prints the same usage to stdout and exits 0.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/fleet.h"
#include "util/parse.h"
#include "util/table.h"

using namespace capman;

namespace {

struct Options {
  std::size_t devices = 1000;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t seed = 42;
  double fault_fraction = 0.0;
  double budget_mw = 0.0;
  std::string cap_method = "relax";
  bool health = false;
  std::vector<sim::PolicyKind> policies{sim::PolicyKind::kDual,
                                        sim::PolicyKind::kHeuristic};
  bool json = false;
  std::string checkpoint_dir;       // empty = checkpointing off
  std::size_t checkpoint_every = 8; // completed shards per write
  bool resume = false;
  std::size_t crash_after = 0;      // test hook: SIGKILL after N shards
  std::string flight_out;           // fleet flight-recorder JSONL path
};

void usage(std::ostream& out) {
  out << "usage: capman_fleet [--devices N] [--seed S] [--threads T] "
         "[--shards K]\n"
         "                    [--policies dual,heuristic] "
         "[--fault-fraction F] [--json]\n"
         "                    [--budget-mw B] [--cap-method relax|static] "
         "[--health]\n"
         "                    [--checkpoint-dir DIR] [--checkpoint-every N] "
         "[--resume]\n"
         "                    [--crash-after N] [--flight-out PATH]\n";
}

bool parse_policies(const std::string& list,
                    std::vector<sim::PolicyKind>& out) {
  out.clear();
  std::istringstream stream{list};
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token == "oracle") {
      out.push_back(sim::PolicyKind::kOracle);
    } else if (token == "capman") {
      out.push_back(sim::PolicyKind::kCapman);
    } else if (token == "dual") {
      out.push_back(sim::PolicyKind::kDual);
    } else if (token == "heuristic") {
      out.push_back(sim::PolicyKind::kHeuristic);
    } else if (token == "practice") {
      out.push_back(sim::PolicyKind::kPractice);
    } else {
      std::cerr << "unknown policy '" << token
                << "' (expected oracle,capman,dual,heuristic,practice)\n";
      return false;
    }
  }
  return !out.empty();
}

enum class ParseOutcome { kRun, kHelp, kError };

ParseOutcome parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    // Strict value parsing: a flag with a missing or malformed value is
    // the same usage error as an unknown flag (exit 2, never terminate).
    const auto u64_value = [&](std::size_t& out) {
      const std::string token = value();
      const auto parsed = util::parse_u64(token);
      if (!parsed) {
        std::cerr << "invalid value '" << token << "' for " << arg << "\n";
        return false;
      }
      out = static_cast<std::size_t>(*parsed);
      return true;
    };
    const auto double_value = [&](double& out) {
      const std::string token = value();
      const auto parsed = util::parse_double(token);
      if (!parsed) {
        std::cerr << "invalid value '" << token << "' for " << arg << "\n";
        return false;
      }
      out = *parsed;
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      return ParseOutcome::kHelp;
    }
    if (arg == "--devices") {
      if (!u64_value(options.devices)) return ParseOutcome::kError;
    } else if (arg == "--shards") {
      if (!u64_value(options.shards)) return ParseOutcome::kError;
    } else if (arg == "--threads") {
      if (!u64_value(options.threads)) return ParseOutcome::kError;
    } else if (arg == "--seed") {
      std::size_t seed = 0;
      if (!u64_value(seed)) return ParseOutcome::kError;
      options.seed = seed;
    } else if (arg == "--fault-fraction") {
      if (!double_value(options.fault_fraction)) return ParseOutcome::kError;
    } else if (arg == "--budget-mw") {
      if (!double_value(options.budget_mw)) return ParseOutcome::kError;
    } else if (arg == "--cap-method") {
      options.cap_method = value();
      if (options.cap_method != "relax" && options.cap_method != "static") {
        std::cerr << "unknown cap method '" << options.cap_method
                  << "' (expected relax or static)\n";
        return ParseOutcome::kError;
      }
    } else if (arg == "--policies") {
      if (!parse_policies(value(), options.policies)) {
        return ParseOutcome::kError;
      }
    } else if (arg == "--health") {
      options.health = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = value();
      if (options.checkpoint_dir.empty()) {
        std::cerr << "--checkpoint-dir needs a directory\n";
        return ParseOutcome::kError;
      }
    } else if (arg == "--checkpoint-every") {
      if (!u64_value(options.checkpoint_every)) return ParseOutcome::kError;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--crash-after") {
      if (!u64_value(options.crash_after)) return ParseOutcome::kError;
    } else if (arg == "--flight-out") {
      options.flight_out = value();
      if (options.flight_out.empty()) {
        std::cerr << "--flight-out needs a path\n";
        return ParseOutcome::kError;
      }
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return ParseOutcome::kError;
    }
  }
  return ParseOutcome::kRun;
}

// The sub-scale fleet preset shared with bench_fleet_scaling: ~20
// simulated minutes per discharge at dt = 0.25 s, so 1000 devices finish
// in a couple of wall-clock seconds.
sim::FleetConfig fleet_config(const Options& options) {
  sim::FleetConfig config;
  config.device_count = options.devices;
  config.shard_count = options.shards;
  config.threads = options.threads;
  config.seed = options.seed;
  config.policies = options.policies;
  config.base.dt = util::Seconds{0.25};
  config.base.max_duration = util::hours(2.0);
  config.base.record_series = false;
  config.population.big_capacity_mah_lo = 500.0;
  config.population.big_capacity_mah_hi = 800.0;
  config.population.little_capacity_mah_lo = 200.0;
  config.population.little_capacity_mah_hi = 350.0;
  config.population.trace_horizon = util::Seconds{120.0};
  config.population.fault_fraction = options.fault_fraction;
  if (options.fault_fraction > 0.0) {
    // A mild actuator fault template: occasional stuck switches.
    config.population.fault_template.stuck_rate_per_min = 0.5;
  }
  if (options.health) {
    // Per-device health watchdogs; alert counts land in the policy
    // aggregates and the fleet/<policy>/alerts/* counters.
    config.health.enabled = true;
  }
  if (options.budget_mw > 0.0) {
    config.base.budget.enabled = true;
    config.base.budget.base_budget_mw = util::Milliwatts{options.budget_mw};
    config.base.budget.cap_method = options.cap_method == "static"
                                        ? core::CapMethod::kStatic
                                        : core::CapMethod::kRelax;
    config.capman.learn_budget = true;
  }
  config.checkpoint.directory = options.checkpoint_dir;
  config.checkpoint.every_shards = options.checkpoint_every;
  config.checkpoint.resume = options.resume;
  config.crash_after_shards = options.crash_after;
  if (!options.flight_out.empty()) {
    config.recorder.enabled = true;
    config.recorder.dump_path = options.flight_out;
    config.recorder.dump_at_end = true;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  switch (parse_args(argc, argv, options)) {
    case ParseOutcome::kHelp:
      usage(std::cout);
      return 0;
    case ParseOutcome::kError:
      usage(std::cerr);
      return 2;
    case ParseOutcome::kRun:
      break;
  }

  sim::FleetResult result;
  try {
    const sim::FleetRunner runner{fleet_config(options)};
    result = runner.run();
  } catch (const std::exception& error) {
    // Config rejections and resume refusals (fingerprint mismatch) are
    // operational errors, not usage errors: exit 1, no usage text.
    std::cerr << "capman_fleet: " << error.what() << "\n";
    return 1;
  }

  // Durability summary on stderr (never stdout: --json output must stay
  // byte-identical between a resumed and an uninterrupted run, and the
  // operational numbers here legitimately differ).
  if (result.checkpoint.enabled) {
    std::cerr << "checkpoint: wrote " << result.checkpoint.writes
              << " file(s), last " << result.checkpoint.bytes_last_write
              << " bytes";
    if (result.checkpoint.resumed) {
      std::cerr << ", resumed " << result.checkpoint.resumed_shards
                << " shard(s)";
    }
    if (result.checkpoint.frames_discarded > 0) {
      std::cerr << ", discarded " << result.checkpoint.frames_discarded
                << " torn frame(s)";
    }
    std::cerr << "\n";
  }
  if (result.quarantined_devices > 0) {
    std::cerr << "supervisor: quarantined " << result.quarantined_devices
              << " device(s) after " << result.quarantine_retries
              << " retry attempt(s)\n";
  }

  if (options.json) {
    result.metrics.write_json(std::cout);
    std::cout << "\n";
    return 0;
  }

  std::cout << "CAPMAN fleet\n"
            << "  devices: " << result.device_count << "  shards: "
            << result.shard_count << "  threads: " << result.threads
            << "  seed: " << result.seed << "\n"
            << "  engine steps: " << result.total_engine_steps << "\n\n";

  util::TextTable table({"policy", "mean life [s]", "p50", "p90", "p99",
                         "brownout [%]", "switches/dev", "mean Tmax [C]",
                         "faulty"});
  for (const auto& aggregate : result.policies) {
    table.add_row(sim::to_string(aggregate.kind),
                  {aggregate.mean_lifetime_s(),
                   aggregate.lifetime_s_sketch.quantile(0.5),
                   aggregate.lifetime_s_sketch.quantile(0.9),
                   aggregate.lifetime_s_sketch.quantile(0.99),
                   100.0 * aggregate.brownout_fraction(),
                   aggregate.mean_switches(), aggregate.mean_max_temp_c(),
                   static_cast<double>(aggregate.faulty_devices)});
  }
  table.print(std::cout);
  if (result.health_enabled) {
    std::cout << "\nhealth alerts (obs/health.h, summed over the fleet):\n";
    util::TextTable alerts({"policy", "thermal", "starved", "thrash",
                            "guard", "tte-low", "total"});
    for (const auto& aggregate : result.policies) {
      const auto& a = aggregate.health_alerts;
      alerts.add_row(sim::to_string(aggregate.kind),
                     {static_cast<double>(a[0]), static_cast<double>(a[1]),
                      static_cast<double>(a[2]), static_cast<double>(a[3]),
                      static_cast<double>(a[4]),
                      static_cast<double>(aggregate.health_alert_total())},
                     0);
    }
    alerts.print(std::cout);
  }
  return 0;
}
