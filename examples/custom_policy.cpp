// Example: extending the library with your own battery scheduling policy.
//
// Implements a tiny "RoundRobin" policy against the policy::BatteryPolicy
// interface and races it against CAPMAN on the Video workload. This is the
// template for experimenting with new scheduling ideas on the same
// simulated hardware CAPMAN runs on.
#include <iostream>

#include "policy/capman_policy.h"
#include "policy/policy.h"
#include "sim/experiment.h"
#include "util/table.h"

using namespace capman;

namespace {

// A deliberately naive policy: alternate batteries every N events,
// ignoring what the workload is doing. Good for calibrating how much of
// CAPMAN's win comes from *informed* switching rather than switching
// per se.
class RoundRobinPolicy final : public policy::BatteryPolicy {
 public:
  explicit RoundRobinPolicy(int period_events = 10)
      : period_(period_events) {}

  [[nodiscard]] std::string name() const override { return "RoundRobin"; }

  battery::BatterySelection on_event(const policy::PolicyContext& context,
                                     const workload::Action&) override {
    // Respect serviceability: never pick an empty cell.
    if (context.little_soc < 0.05) return battery::BatterySelection::kBig;
    if (context.big_soc < 0.05) return battery::BatterySelection::kLittle;
    if (++events_ % period_ == 0) {
      flip_ = !flip_;
    }
    return flip_ ? battery::BatterySelection::kLittle
                 : battery::BatterySelection::kBig;
  }

 private:
  int period_;
  int events_ = 0;
  bool flip_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 42;
  const device::PhoneModel phone{device::nexus_profile()};
  const auto trace =
      workload::make_video()->generate(util::Seconds{600.0}, seed);

  std::cout << "Custom policy demo: RoundRobin vs CAPMAN vs Dual on "
            << trace.name() << "\n\n";

  sim::RunnerOptions options;
  options.seed = seed;
  const sim::ExperimentRunner runner{phone, options};

  util::TextTable table({"policy", "service [min]", "switches",
                         "energy efficiency [%]", "stranded big SoC"});
  auto report = [&](policy::BatteryPolicy& policy) {
    const auto r = runner.run(trace, policy);
    table.add_row(r.policy,
                  {r.service_time_s / 60.0,
                   static_cast<double>(r.switch_count),
                   r.efficiency() * 100.0, r.end_big_soc},
                  1);
  };

  RoundRobinPolicy round_robin{10};
  report(round_robin);
  auto capman = runner.build_policy(sim::PolicyKind::kCapman);
  report(*capman);
  auto dual = runner.build_policy(sim::PolicyKind::kDual);
  report(*dual);

  table.print(std::cout);
  std::cout << "\nUninformed switching moves energy between the cells but "
               "routes surges onto\nthe wrong chemistry half the time; "
               "CAPMAN's learned routing is what matters.\n";
  return 0;
}
