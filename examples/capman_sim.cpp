// capman_sim: command-line driver for the simulator.
//
//   capman_sim [--workload NAME | --trace FILE.csv] [--policy NAME]
//              [--phone nexus|honor|lenovo] [--seed N] [--no-tec]
//              [--fault-stuck RATE] [--dump-trace FILE.csv] [--csv PREFIX]
//
// Runs one discharge cycle and prints the result summary. --trace replays
// a recorded trace (see workload/trace_io.h for the CSV schema);
// --dump-trace writes the generated workload out for editing/replay;
// --csv dumps the SoC/power/temperature series.
#include <cstring>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "util/table.h"
#include "util/csv.h"
#include "workload/trace_io.h"

using namespace capman;

namespace {

void usage() {
  std::cout <<
      "usage: capman_sim [options]\n"
      "  --workload NAME   geekbench|pcmark|video|localvideo|idle|\n"
      "                    eta20|eta50|eta80|toggle60|toggle10 (default video)\n"
      "  --trace FILE      replay a recorded trace CSV instead\n"
      "  --policy NAME     oracle|capman|dual|heuristic|practice|all\n"
      "                    (default all)\n"
      "  --phone NAME      nexus|honor|lenovo (default nexus)\n"
      "  --seed N          workload/policy seed (default 42)\n"
      "  --no-tec          disable the thermoelectric cooler\n"
      "  --fault-stuck R   inject stuck-comparator episodes at R per minute\n"
      "                    (30-90 s each; see sim/faults.h)\n"
      "  --dump-trace FILE write the generated trace as CSV and exit\n"
      "  --csv PREFIX      dump result series as PREFIX_<policy>.csv\n";
}

std::unique_ptr<workload::WorkloadGenerator> generator_by_name(
    const std::string& name) {
  if (name == "geekbench") return workload::make_geekbench();
  if (name == "pcmark") return workload::make_pcmark();
  if (name == "video") return workload::make_video();
  if (name == "localvideo") return workload::make_local_video();
  if (name == "idle") return workload::make_idle_screen_on();
  if (name == "eta20") return workload::make_eta_static(0.2);
  if (name == "eta50") return workload::make_eta_static(0.5);
  if (name == "eta80") return workload::make_eta_static(0.8);
  if (name == "toggle60") return workload::make_screen_toggle(util::Seconds{60.0});
  if (name == "toggle10") return workload::make_screen_toggle(util::Seconds{10.0});
  return nullptr;
}

device::PhoneProfile phone_by_name(const std::string& name) {
  if (name == "honor") return device::honor_profile();
  if (name == "lenovo") return device::lenovo_profile();
  return device::nexus_profile();
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "video";
  std::string trace_path;
  std::string policy_name = "all";
  std::string phone_name = "nexus";
  std::string dump_path;
  std::string csv_prefix;
  std::uint64_t seed = 42;
  bool tec = true;
  double fault_stuck_rate = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    if (arg == "--workload") workload_name = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--policy") policy_name = next();
    else if (arg == "--phone") phone_name = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--no-tec") tec = false;
    else if (arg == "--fault-stuck") fault_stuck_rate = std::stod(next());
    else if (arg == "--dump-trace") dump_path = next();
    else if (arg == "--csv") csv_prefix = next();
    else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  workload::Trace trace;
  if (!trace_path.empty()) {
    trace = workload::load_trace_csv(trace_path, 600.0);
  } else {
    auto generator = generator_by_name(workload_name);
    if (generator == nullptr) {
      std::cerr << "unknown workload '" << workload_name << "'\n";
      usage();
      return 1;
    }
    trace = generator->generate(util::Seconds{600.0}, seed);
  }
  if (!dump_path.empty()) {
    workload::save_trace_csv(trace, dump_path);
    std::cout << "wrote " << trace.events().size() << " events to "
              << dump_path << "\n";
    return 0;
  }

  const device::PhoneModel phone{phone_by_name(phone_name)};
  sim::RunnerOptions options;
  options.seed = seed;
  options.config.enable_tec = tec;
  if (fault_stuck_rate > 0.0) {
    sim::FaultPlanConfig plan;
    plan.seed = seed;
    plan.stuck_rate_per_min = fault_stuck_rate;
    plan.stuck_min_duration = util::Seconds{30.0};
    plan.stuck_max_duration = util::Seconds{90.0};
    options.faults = plan;
  }

  std::vector<sim::PolicyKind> kinds;
  if (policy_name == "all") {
    kinds = sim::all_policy_kinds();
  } else {
    for (auto kind : sim::all_policy_kinds()) {
      std::string lowered{sim::to_string(kind)};
      for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
      if (lowered == policy_name) kinds.push_back(kind);
    }
    if (kinds.empty()) {
      std::cerr << "unknown policy '" << policy_name << "'\n";
      return 1;
    }
  }

  std::cout << "workload " << trace.name() << " on " << phone.profile().name
            << " (seed " << seed << ", TEC " << (tec ? "on" : "off");
  if (fault_stuck_rate > 0.0) {
    std::cout << ", stuck-comparator rate " << fault_stuck_rate << "/min";
  }
  std::cout << ")\n\n";
  util::TextTable table({"policy", "service [min]", "avg power [mW]",
                         "switches", "max hotspot [C]", "TEC on [%]",
                         "efficiency [%]"});
  const sim::ExperimentRunner runner{phone, options};
  util::TextTable fault_table({"policy", "stuck [s]", "dropped req",
                               "detected", "fallbacks", "retries"});
  for (auto kind : kinds) {
    const auto r = runner.run(trace, kind);
    if (fault_stuck_rate > 0.0) {
      fault_table.add_row(
          r.policy,
          {r.faults.stuck_time_s,
           static_cast<double>(r.faults.dropped_requests),
           static_cast<double>(r.faults.detected_switch_failures),
           static_cast<double>(r.faults.fallback_episodes),
           static_cast<double>(r.faults.fallback_retries)},
          1);
    }
    table.add_row(r.policy,
                  {r.service_time_s / 60.0, r.avg_power_w * 1000.0,
                   static_cast<double>(r.switch_count), r.max_cpu_temp_c,
                   r.tec_on_fraction * 100.0, r.efficiency() * 100.0},
                  1);
    if (!csv_prefix.empty()) {
      util::CsvWriter out{csv_prefix + "_" + r.policy + ".csv"};
      out.header({"t_s", "soc", "power_w", "cpu_temp_c"});
      for (std::size_t i = 0; i < r.soc_series.size(); ++i) {
        out.row({r.soc_series.time_at(i), r.soc_series.value_at(i),
                 r.power_series.value_at(i), r.cpu_temp_series.value_at(i)});
      }
    }
  }
  table.print(std::cout);
  if (fault_stuck_rate > 0.0) {
    std::cout << "\nfault telemetry (sim/faults.h):\n";
    fault_table.print(std::cout);
  }
  return 0;
}
