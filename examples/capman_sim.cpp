// capman_sim: command-line driver for the simulator.
//
//   capman_sim [--workload NAME | --trace FILE.csv] [--policy NAME]
//              [--phone nexus|honor|lenovo] [--seed N] [--no-tec]
//              [--dump-trace FILE.csv] [--csv PREFIX]
//
// Runs one discharge cycle and prints the result summary. --trace replays
// a recorded trace (see workload/trace_io.h for the CSV schema);
// --dump-trace writes the generated workload out for editing/replay;
// --csv dumps the SoC/power/temperature series.
#include <cstring>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "util/table.h"
#include "util/csv.h"
#include "workload/trace_io.h"

using namespace capman;

namespace {

void usage() {
  std::cout <<
      "usage: capman_sim [options]\n"
      "  --workload NAME   geekbench|pcmark|video|localvideo|idle|\n"
      "                    eta20|eta50|eta80|toggle60|toggle10 (default video)\n"
      "  --trace FILE      replay a recorded trace CSV instead\n"
      "  --policy NAME     oracle|capman|dual|heuristic|practice|all\n"
      "                    (default all)\n"
      "  --phone NAME      nexus|honor|lenovo (default nexus)\n"
      "  --seed N          workload/policy seed (default 42)\n"
      "  --no-tec          disable the thermoelectric cooler\n"
      "  --dump-trace FILE write the generated trace as CSV and exit\n"
      "  --csv PREFIX      dump result series as PREFIX_<policy>.csv\n";
}

std::unique_ptr<workload::WorkloadGenerator> generator_by_name(
    const std::string& name) {
  if (name == "geekbench") return workload::make_geekbench();
  if (name == "pcmark") return workload::make_pcmark();
  if (name == "video") return workload::make_video();
  if (name == "localvideo") return workload::make_local_video();
  if (name == "idle") return workload::make_idle_screen_on();
  if (name == "eta20") return workload::make_eta_static(0.2);
  if (name == "eta50") return workload::make_eta_static(0.5);
  if (name == "eta80") return workload::make_eta_static(0.8);
  if (name == "toggle60") return workload::make_screen_toggle(util::Seconds{60.0});
  if (name == "toggle10") return workload::make_screen_toggle(util::Seconds{10.0});
  return nullptr;
}

device::PhoneProfile phone_by_name(const std::string& name) {
  if (name == "honor") return device::honor_profile();
  if (name == "lenovo") return device::lenovo_profile();
  return device::nexus_profile();
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "video";
  std::string trace_path;
  std::string policy_name = "all";
  std::string phone_name = "nexus";
  std::string dump_path;
  std::string csv_prefix;
  std::uint64_t seed = 42;
  bool tec = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    if (arg == "--workload") workload_name = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--policy") policy_name = next();
    else if (arg == "--phone") phone_name = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--no-tec") tec = false;
    else if (arg == "--dump-trace") dump_path = next();
    else if (arg == "--csv") csv_prefix = next();
    else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  workload::Trace trace;
  if (!trace_path.empty()) {
    trace = workload::load_trace_csv(trace_path, 600.0);
  } else {
    auto generator = generator_by_name(workload_name);
    if (generator == nullptr) {
      std::cerr << "unknown workload '" << workload_name << "'\n";
      usage();
      return 1;
    }
    trace = generator->generate(util::Seconds{600.0}, seed);
  }
  if (!dump_path.empty()) {
    workload::save_trace_csv(trace, dump_path);
    std::cout << "wrote " << trace.events().size() << " events to "
              << dump_path << "\n";
    return 0;
  }

  const device::PhoneModel phone{phone_by_name(phone_name)};
  sim::SimConfig config;
  config.enable_tec = tec;

  std::vector<sim::PolicyKind> kinds;
  if (policy_name == "all") {
    kinds = sim::all_policy_kinds();
  } else {
    for (auto kind : sim::all_policy_kinds()) {
      std::string lowered{sim::to_string(kind)};
      for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
      if (lowered == policy_name) kinds.push_back(kind);
    }
    if (kinds.empty()) {
      std::cerr << "unknown policy '" << policy_name << "'\n";
      return 1;
    }
  }

  std::cout << "workload " << trace.name() << " on " << phone.profile().name
            << " (seed " << seed << ", TEC " << (tec ? "on" : "off")
            << ")\n\n";
  util::TextTable table({"policy", "service [min]", "avg power [mW]",
                         "switches", "max hotspot [C]", "TEC on [%]",
                         "efficiency [%]"});
  sim::SimEngine engine{config};
  for (auto kind : kinds) {
    auto policy = sim::make_policy(kind, seed);
    const auto r = engine.run(trace, *policy, phone);
    table.add_row(r.policy,
                  {r.service_time_s / 60.0, r.avg_power_w * 1000.0,
                   static_cast<double>(r.switch_count), r.max_cpu_temp_c,
                   r.tec_on_fraction * 100.0, r.efficiency() * 100.0},
                  1);
    if (!csv_prefix.empty()) {
      util::CsvWriter out{csv_prefix + "_" + r.policy + ".csv"};
      out.header({"t_s", "soc", "power_w", "cpu_temp_c"});
      for (std::size_t i = 0; i < r.soc_series.size(); ++i) {
        out.row({r.soc_series.time_at(i), r.soc_series.value_at(i),
                 r.power_series.value_at(i), r.cpu_temp_series.value_at(i)});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
