// capman_sim: command-line driver for the simulator.
//
//   capman_sim [--workload NAME | --trace FILE.csv] [--policy NAME]
//              [--phone nexus|honor|lenovo] [--seed N] [--no-tec]
//              [--fault-stuck RATE] [--dump-trace FILE.csv] [--csv PREFIX]
//              [--metrics-out F] [--trace-out F] [--spans-out F]
//              [--verbose-spans] [--timing-metrics] [--threads N]
//              [--max-minutes M]
//
// Runs one discharge cycle and prints the result summary. --trace replays
// a recorded trace (see workload/trace_io.h for the CSV schema);
// --dump-trace writes the generated workload out for editing/replay;
// --csv dumps the SoC/power/temperature series. The telemetry flags
// (src/obs) write the end-of-run metrics snapshot, the per-decision JSONL
// trace, and the Chrome trace-event span profile (open in Perfetto); when
// several policies run, the policy name is inserted before the extension
// so runs never clobber each other.
// Exit-2 usage contract (locked by the sim_usage_error CTest gate):
// unknown flags and unparseable or unrecognized values print usage to
// stderr and exit 2; --help prints the same usage to stdout and exits 0.
#include <cstring>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "util/parse.h"
#include "util/table.h"
#include "util/csv.h"
#include "workload/trace_io.h"

using namespace capman;

namespace {

void usage(std::ostream& out) {
  out <<
      "usage: capman_sim [options]\n"
      "  --workload NAME   geekbench|pcmark|video|localvideo|idle|\n"
      "                    eta20|eta50|eta80|toggle60|toggle10 (default video)\n"
      "  --trace FILE      replay a recorded trace CSV instead\n"
      "  --policy NAME     oracle|capman|dual|heuristic|practice|all\n"
      "                    (default all)\n"
      "  --phone NAME      nexus|honor|lenovo (default nexus)\n"
      "  --seed N          workload/policy seed (default 42)\n"
      "  --no-tec          disable the thermoelectric cooler\n"
      "  --fault-stuck R   inject stuck-comparator episodes at R per minute\n"
      "                    (30-90 s each; see sim/faults.h)\n"
      "  --budget-mw B     enable the power-budget arbiter with a base\n"
      "                    budget of B mW (core/power_budget.h); CAPMAN\n"
      "                    additionally learns the budget level jointly\n"
      "  --cap-method M    relax (voltage comparator, rebudget on sag) or\n"
      "                    static (worst-case margin); default relax\n"
      "  --dump-trace FILE write the generated trace as CSV and exit\n"
      "  --csv PREFIX      dump result series as PREFIX_<policy>.csv\n"
      "  --metrics-out F   write the end-of-run metrics snapshot as JSON\n"
      "  --trace-out F     write one JSONL record per scheduler decision\n"
      "  --spans-out F     write a Chrome trace-event span profile\n"
      "                    (chrome://tracing or https://ui.perfetto.dev)\n"
      "  --verbose-spans   add per-EMD-solve spans to the profile\n"
      "  --timing-metrics  publish wall-clock timings into the registry\n"
      "                    (nondeterministic across runs)\n"
      "  --sample-period S sample soc/power/temps every S sim-seconds into\n"
      "                    bounded ring buffers (obs/timeseries.h)\n"
      "  --sample-csv F    write the sampled history as wide CSV\n"
      "                    (implies --sample-period 2 unless given)\n"
      "  --openmetrics-out F  write the end-of-run snapshot in\n"
      "                    Prometheus/OpenMetrics text format\n"
      "  --flight-out F    arm the flight recorder; dump the event ring as\n"
      "                    JSONL to F on alert/exception triggers\n"
      "  --flight-at-end   additionally dump the ring at end of run\n"
      "  --health          run the health watchdogs (obs/health.h):\n"
      "                    thermal runaway, budget starvation, switch\n"
      "                    thrash, guard engaged, time-to-empty\n"
      "  --alerts-out F    write fired health alerts as JSONL (implies\n"
      "                    --health)\n"
      "  --threads N       similarity solver threads (default auto)\n"
      "  --max-minutes M   workload length in minutes (default 10)\n";
}

/// telemetry.json -> telemetry_CAPMAN.json when several policies run, so
/// per-policy output files never clobber each other.
std::string with_policy_suffix(const std::string& path,
                               const std::string& policy, bool multiple) {
  if (path.empty() || !multiple) return path;
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "_" + policy;
  }
  return path.substr(0, dot) + "_" + policy + path.substr(dot);
}

std::unique_ptr<workload::WorkloadGenerator> generator_by_name(
    const std::string& name) {
  if (name == "geekbench") return workload::make_geekbench();
  if (name == "pcmark") return workload::make_pcmark();
  if (name == "video") return workload::make_video();
  if (name == "localvideo") return workload::make_local_video();
  if (name == "idle") return workload::make_idle_screen_on();
  if (name == "eta20") return workload::make_eta_static(0.2);
  if (name == "eta50") return workload::make_eta_static(0.5);
  if (name == "eta80") return workload::make_eta_static(0.8);
  if (name == "toggle60") return workload::make_screen_toggle(util::Seconds{60.0});
  if (name == "toggle10") return workload::make_screen_toggle(util::Seconds{10.0});
  return nullptr;
}

device::PhoneProfile phone_by_name(const std::string& name) {
  if (name == "honor") return device::honor_profile();
  if (name == "lenovo") return device::lenovo_profile();
  return device::nexus_profile();
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "video";
  std::string trace_path;
  std::string policy_name = "all";
  std::string phone_name = "nexus";
  std::string dump_path;
  std::string csv_prefix;
  std::uint64_t seed = 42;
  bool tec = true;
  double fault_stuck_rate = 0.0;
  double budget_mw = 0.0;
  std::string cap_method = "relax";
  std::string metrics_out;
  std::string trace_out;
  std::string spans_out;
  bool verbose_spans = false;
  bool timing_metrics = false;
  double sample_period_s = 0.0;
  std::string sample_csv;
  std::string openmetrics_out;
  std::string flight_out;
  bool flight_at_end = false;
  bool health = false;
  std::string alerts_out;
  std::size_t threads = 0;
  double max_minutes = 10.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    // Strict value parsing (util/parse.h): a malformed numeric value is a
    // usage error (exit 2), never a std::stoull terminate backtrace.
    auto u64_next = [&](std::uint64_t& out) {
      const std::string token = next();
      const auto parsed = util::parse_u64(token);
      if (parsed) out = *parsed;
      else std::cerr << "invalid value '" << token << "' for " << arg << "\n";
      return parsed.has_value();
    };
    auto double_next = [&](double& out) {
      const std::string token = next();
      const auto parsed = util::parse_double(token);
      if (parsed) out = *parsed;
      else std::cerr << "invalid value '" << token << "' for " << arg << "\n";
      return parsed.has_value();
    };
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--workload") workload_name = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--policy") policy_name = next();
    else if (arg == "--phone") phone_name = next();
    else if (arg == "--seed") ok = u64_next(seed);
    else if (arg == "--no-tec") tec = false;
    else if (arg == "--fault-stuck") ok = double_next(fault_stuck_rate);
    else if (arg == "--budget-mw") ok = double_next(budget_mw);
    else if (arg == "--cap-method") cap_method = next();
    else if (arg == "--dump-trace") dump_path = next();
    else if (arg == "--csv") csv_prefix = next();
    else if (arg == "--metrics-out") metrics_out = next();
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--spans-out") spans_out = next();
    else if (arg == "--verbose-spans") verbose_spans = true;
    else if (arg == "--timing-metrics") timing_metrics = true;
    else if (arg == "--sample-period") ok = double_next(sample_period_s);
    else if (arg == "--sample-csv") sample_csv = next();
    else if (arg == "--openmetrics-out") openmetrics_out = next();
    else if (arg == "--flight-out") flight_out = next();
    else if (arg == "--flight-at-end") flight_at_end = true;
    else if (arg == "--health") health = true;
    else if (arg == "--alerts-out") alerts_out = next();
    else if (arg == "--threads") {
      std::uint64_t value = 0;
      ok = u64_next(value);
      threads = static_cast<std::size_t>(value);
    } else if (arg == "--max-minutes") ok = double_next(max_minutes);
    else {
      std::cerr << "unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
    if (!ok) {
      usage(std::cerr);
      return 2;
    }
  }

  const double trace_seconds = max_minutes * 60.0;
  workload::Trace trace;
  if (!trace_path.empty()) {
    trace = workload::load_trace_csv(trace_path, trace_seconds);
  } else {
    auto generator = generator_by_name(workload_name);
    if (generator == nullptr) {
      std::cerr << "unknown workload '" << workload_name << "'\n";
      usage(std::cerr);
      return 2;
    }
    trace = generator->generate(util::Seconds{trace_seconds}, seed);
  }
  if (!dump_path.empty()) {
    workload::save_trace_csv(trace, dump_path);
    std::cout << "wrote " << trace.events().size() << " events to "
              << dump_path << "\n";
    return 0;
  }

  const device::PhoneModel phone{phone_by_name(phone_name)};
  sim::RunnerOptions options;
  options.seed = seed;
  options.config.enable_tec = tec;
  options.capman.similarity_threads = threads;
  options.config.telemetry.verbose_spans = verbose_spans;
  options.config.telemetry.timing_metrics = timing_metrics;
  if (sample_period_s > 0.0 || !sample_csv.empty()) {
    options.config.telemetry.sampler.enabled = true;
    if (sample_period_s > 0.0) {
      options.config.telemetry.sampler.period_s = sample_period_s;
    }
  }
  if (!flight_out.empty()) {
    options.config.telemetry.recorder.enabled = true;
    options.config.telemetry.recorder.dump_at_end = flight_at_end;
  } else if (flight_at_end) {
    std::cerr << "--flight-at-end requires --flight-out\n";
    return 1;
  }
  if (health || !alerts_out.empty()) {
    options.config.telemetry.health.enabled = true;
  }
  if (fault_stuck_rate > 0.0) {
    sim::FaultPlanConfig plan;
    plan.seed = seed;
    plan.stuck_rate_per_min = fault_stuck_rate;
    plan.stuck_min_duration = util::Seconds{30.0};
    plan.stuck_max_duration = util::Seconds{90.0};
    options.faults = plan;
  }
  if (cap_method != "relax" && cap_method != "static") {
    std::cerr << "unknown cap method '" << cap_method << "'\n";
    usage(std::cerr);
    return 2;
  }
  if (budget_mw > 0.0) {
    options.config.budget.enabled = true;
    options.config.budget.base_budget_mw = util::Milliwatts{budget_mw};
    options.config.budget.cap_method = cap_method == "static"
                                           ? core::CapMethod::kStatic
                                           : core::CapMethod::kRelax;
    // With an arbiter present, CAPMAN learns the budget level jointly
    // with the battery selection.
    options.capman.learn_budget = true;
  }

  std::vector<sim::PolicyKind> kinds;
  if (policy_name == "all") {
    kinds = sim::all_policy_kinds();
  } else {
    for (auto kind : sim::all_policy_kinds()) {
      std::string lowered{sim::to_string(kind)};
      for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
      if (lowered == policy_name) kinds.push_back(kind);
    }
    if (kinds.empty()) {
      std::cerr << "unknown policy '" << policy_name << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  std::cout << "workload " << trace.name() << " on " << phone.profile().name
            << " (seed " << seed << ", TEC " << (tec ? "on" : "off");
  if (fault_stuck_rate > 0.0) {
    std::cout << ", stuck-comparator rate " << fault_stuck_rate << "/min";
  }
  std::cout << ")\n\n";
  util::TextTable table({"policy", "service [min]", "avg power [mW]",
                         "switches", "max hotspot [C]", "TEC on [%]",
                         "efficiency [%]"});
  util::TextTable fault_table({"policy", "stuck [s]", "dropped req",
                               "detected", "fallbacks", "retries"});
  util::TextTable health_table({"policy", "thermal", "starved", "thrash",
                                "guard", "tte-low", "total"});
  const bool health_on = health || !alerts_out.empty();
  const bool multi = kinds.size() > 1;
  for (auto kind : kinds) {
    // One runner per policy so telemetry output files can carry the
    // policy name when several race on the same trace.
    sim::RunnerOptions policy_options = options;
    const std::string policy{sim::to_string(kind)};
    policy_options.config.telemetry.metrics_json_path =
        with_policy_suffix(metrics_out, policy, multi);
    policy_options.config.telemetry.decision_trace_path =
        with_policy_suffix(trace_out, policy, multi);
    policy_options.config.telemetry.spans_path =
        with_policy_suffix(spans_out, policy, multi);
    policy_options.config.telemetry.openmetrics_path =
        with_policy_suffix(openmetrics_out, policy, multi);
    policy_options.config.telemetry.sampler.csv_path =
        with_policy_suffix(sample_csv, policy, multi);
    policy_options.config.telemetry.recorder.dump_path =
        with_policy_suffix(flight_out, policy, multi);
    policy_options.config.telemetry.health.alerts_path =
        with_policy_suffix(alerts_out, policy, multi);
    const sim::ExperimentRunner runner{phone, policy_options};
    const auto r = runner.run(trace, kind);
    if (fault_stuck_rate > 0.0) {
      fault_table.add_row(
          r.policy,
          {r.faults.stuck_time_s,
           static_cast<double>(r.faults.dropped_requests),
           static_cast<double>(r.faults.detected_switch_failures),
           static_cast<double>(r.faults.fallback_episodes),
           static_cast<double>(r.faults.fallback_retries)},
          1);
    }
    table.add_row(r.policy,
                  {r.service_time_s / 60.0, r.avg_power_w * 1000.0,
                   static_cast<double>(r.switch_count), r.max_cpu_temp_c,
                   r.tec_on_fraction * 100.0, r.efficiency() * 100.0},
                  1);
    if (health_on) {
      const auto& alerts = r.health.alerts;
      health_table.add_row(
          r.policy,
          {static_cast<double>(alerts[0]), static_cast<double>(alerts[1]),
           static_cast<double>(alerts[2]), static_cast<double>(alerts[3]),
           static_cast<double>(alerts[4]),
           static_cast<double>(r.health.total_alerts())},
          0);
    }
    if (!csv_prefix.empty()) {
      util::CsvWriter out{csv_prefix + "_" + r.policy + ".csv"};
      out.header({"t_s", "soc", "power_w", "cpu_temp_c"});
      for (std::size_t i = 0; i < r.soc_series.size(); ++i) {
        out.row({r.soc_series.time_at(i), r.soc_series.value_at(i),
                 r.power_series.value_at(i), r.cpu_temp_series.value_at(i)});
      }
    }
  }
  table.print(std::cout);
  if (fault_stuck_rate > 0.0) {
    std::cout << "\nfault telemetry (sim/faults.h):\n";
    fault_table.print(std::cout);
  }
  if (health_on) {
    std::cout << "\nhealth alerts (obs/health.h):\n";
    health_table.print(std::cout);
  }
  return 0;
}
