#!/usr/bin/env bash
# Style check: clang-format --dry-run over src/, tests/, bench/ and
# examples/ against the repo-root .clang-format. Advisory for now — run by
# scripts/check_all.sh but deliberately NOT registered as a CTest gate
# (the tree predates the profile; see DESIGN.md §11). Run manually with:
#
#   scripts/check_format.sh            # check only
#   scripts/check_format.sh --fix      # rewrite files in place
#
# Exits 77 (CTest SKIP_RETURN_CODE convention) when clang-format is not
# installed.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-}"

fmt="$(command -v clang-format || true)"
if [ -z "$fmt" ]; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 77
fi

mapfile -t files < <(find "$repo_root/src" "$repo_root/tests" \
                          "$repo_root/bench" "$repo_root/examples" \
                          \( -name '*.cpp' -o -name '*.h' \) | sort)

if [ "$mode" = "--fix" ]; then
  "$fmt" -i --style=file "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

if ! "$fmt" --dry-run --Werror --style=file "${files[@]}" 2>/dev/null; then
  echo "check_format: formatting drift detected" \
       "(scripts/check_format.sh --fix to apply)" >&2
  exit 1
fi
echo "check_format: clean (${#files[@]} files)"
