#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over every
# src/**/*.cpp translation unit. Wired into CTest as `clang_tidy_check`;
# run manually with:
#
#   scripts/check_tidy.sh [build-dir]      # default: build
#
# Needs a compile_commands.json in the build directory (the top-level
# CMakeLists exports one). Exits 77 — the CTest SKIP_RETURN_CODE — when
# clang-tidy is not installed, so environments without clang tooling skip
# instead of fail.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
  echo "check_tidy: clang-tidy not found; skipping" >&2
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "check_tidy: $build_dir/compile_commands.json missing;" \
       "configure with cmake first" >&2
  exit 1
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)
echo "check_tidy: linting ${#sources[@]} translation units"

jobs="$(nproc 2>/dev/null || echo 4)"
status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet || status=1

if [ "$status" -ne 0 ]; then
  echo "check_tidy: clang-tidy reported findings" >&2
  exit 1
fi
echo "check_tidy: clean"
