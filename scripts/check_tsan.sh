#!/usr/bin/env bash
# Builds the concurrency-sensitive suites under ThreadSanitizer
# (-DCAPMAN_TSAN=ON) and runs them: the metrics registry (lock-free
# counters under concurrent writers), the logger (atomic level + mutexed
# sink), and the sharded similarity solver (ThreadPool workers publishing
# into shared rows). Wired into CTest as the `tsan_smoke` test; run
# manually with:
#
#   scripts/check_tsan.sh [build-dir]      # default: build-tsan
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" -DCAPMAN_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build_dir" -j \
      --target obs_metrics_test util_logging_test \
               core_similarity_parallel_test >/dev/null

export TSAN_OPTIONS=halt_on_error=1

"$build_dir/tests/obs_metrics_test" --gtest_brief=1
"$build_dir/tests/util_logging_test" --gtest_brief=1
"$build_dir/tests/core_similarity_parallel_test" --gtest_brief=1

echo "check_tsan: thread-sanitized telemetry/concurrency suites passed"
