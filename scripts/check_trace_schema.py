#!/usr/bin/env python3
"""Validate the telemetry artifacts capman_sim emits (src/obs).

Runs one CAPMAN discharge cycle with every sink enabled, then checks:
  * the decision trace is JSONL with every schema field present and
    correctly typed on every record (this file is the schema's source of
    truth — tests/obs/decision_trace_test.cpp pins the serialised form),
  * the span profile is a loadable Chrome trace-event file: one JSON
    object with a traceEvents array, process/thread metadata for both
    timelines, and at least two distinct ThreadPool worker tracks,
  * the metrics snapshot is valid JSON whose histograms carry
    len(bounds)+1 buckets that sum to the observation count.

Wired into CTest as `trace_schema_check`; run manually with:

    scripts/check_trace_schema.py [path/to/capman_sim]
"""

import json
import math
import subprocess
import sys
import tempfile
from pathlib import Path

# field name -> allowed JSON types (None means JSON null is allowed)
DECISION_SCHEMA = {
    "seq": (int,),
    "t_s": (int, float),
    "policy": (str,),
    "event": (str,),
    "param": (int,),
    "emergency": (bool,),
    "cpu": (str,),
    "screen": (str,),
    "wifi": (str,),
    "active": (str,),
    "chosen": (str,),
    "source": (str, None),
    "matched_state": (int, None),
    "q_big": (int, float, None),
    "q_little": (int, float, None),
    "switch_requested": (bool,),
    "switch_accepted": (bool,),
    "switch_pending": (bool,),
    "guard_fallback": (bool,),
    "fault_stuck": (bool,),
    "big_soc": (int, float),
    "little_soc": (int, float),
    "hotspot_c": (int, float),
    "demand_w": (int, float),
}

SOURCES = {"exact", "transferred", "fallback", "explored"}


def fail(msg):
    print(f"check_trace_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_type(rec, key, value):
    allowed = DECISION_SCHEMA[key]
    if value is None:
        if None not in allowed:
            fail(f"record {rec.get('seq')}: {key} is null but must not be")
        return
    types = tuple(t for t in allowed if t is not None)
    # bool is a subclass of int in Python; don't let booleans satisfy
    # numeric fields or ints satisfy boolean fields.
    if isinstance(value, bool) != (bool in types):
        fail(f"record {rec.get('seq')}: {key} has type {type(value).__name__}")
    if not isinstance(value, types):
        fail(f"record {rec.get('seq')}: {key} has type {type(value).__name__}")


def check_decisions(path):
    n = 0
    last_seq = -1
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            missing = DECISION_SCHEMA.keys() - rec.keys()
            extra = rec.keys() - DECISION_SCHEMA.keys()
            if missing:
                fail(f"record {rec.get('seq')}: missing fields {sorted(missing)}")
            if extra:
                fail(f"record {rec.get('seq')}: unknown fields {sorted(extra)}")
            for key, value in rec.items():
                check_type(rec, key, value)
            if rec["source"] is not None and rec["source"] not in SOURCES:
                fail(f"record {rec['seq']}: bad source {rec['source']!r}")
            if rec["seq"] != last_seq + 1:
                fail(f"seq gap: {last_seq} -> {rec['seq']}")
            last_seq = rec["seq"]
            n += 1
    if n == 0:
        fail("decision trace is empty")
    return n


def check_spans(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("spans file has no traceEvents array")

    process_names = {}
    thread_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            process_names[e["pid"]] = e["args"]["name"]
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]
    if process_names.get(1) != "compute (wall-clock)":
        fail(f"pid 1 metadata missing/wrong: {process_names}")
    if process_names.get(2) != "simulation time":
        fail(f"pid 2 metadata missing/wrong: {process_names}")
    for track in ("decisions", "switch transients", "fault episodes"):
        if track not in thread_names.values():
            fail(f"sim track {track!r} not announced")

    pool_tids = set()
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph not in ("X", "i", "C"):
            fail(f"unexpected phase {ph!r}")
        if e.get("pid") not in (1, 2):
            fail(f"unexpected pid {e.get('pid')}")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            fail(f"bad ts {ts!r} on {e.get('name')}")
        if ph == "X" and not isinstance(e.get("dur"), (int, float)):
            fail(f"complete event {e.get('name')} lacks dur")
        if ph == "C" and "value" not in e.get("args", {}):
            fail(f"counter event {e.get('name')} lacks args.value")
        if (e.get("pid"), e.get("tid")) not in thread_names and e.get("pid") == 1:
            fail(f"event on unannounced wall track tid {e.get('tid')}")
        if e.get("cat") == "threadpool":
            pool_tids.add(e["tid"])
    if len(pool_tids) < 2:
        fail(
            "expected >=2 distinct ThreadPool worker tracks, got "
            f"{sorted(pool_tids)} (was --threads >= 2 passed?)"
        )
    return len(events), len(pool_tids)


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"metrics snapshot lacks {section!r}")
    if not doc["counters"]:
        fail("metrics snapshot has no counters")
    for name, h in doc["histograms"].items():
        if len(h["buckets"]) != len(h["bounds"]) + 1:
            fail(f"histogram {name}: {len(h['buckets'])} buckets for "
                 f"{len(h['bounds'])} bounds")
        if sum(h["buckets"]) != h["count"]:
            fail(f"histogram {name}: buckets sum != count")
    return len(doc["counters"])


def main():
    binary = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("examples/capman_sim")
    if not binary.exists():
        fail(f"capman_sim binary not found at {binary}")

    with tempfile.TemporaryDirectory(prefix="capman_trace_") as tmp:
        tmp = Path(tmp)
        decisions = tmp / "decisions.jsonl"
        spans = tmp / "spans.json"
        metrics = tmp / "metrics.json"
        cmd = [
            str(binary),
            "--policy", "capman",
            "--workload", "video",
            "--seed", "42",
            "--max-minutes", "10",
            "--threads", "2",  # so the span profile shows >=2 pool tracks
            "--trace-out", str(decisions),
            "--spans-out", str(spans),
            "--metrics-out", str(metrics),
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)

        n_dec = check_decisions(decisions)
        n_ev, n_pool = check_spans(spans)
        n_ctr = check_metrics(metrics)

    print(
        f"check_trace_schema: OK ({n_dec} decision records, {n_ev} trace "
        f"events on {n_pool} pool tracks, {n_ctr} counters)"
    )


if __name__ == "__main__":
    main()
