#!/usr/bin/env python3
"""Validate the telemetry artifacts capman_sim emits (src/obs).

Runs one CAPMAN discharge cycle with every sink enabled, then checks:
  * the decision trace is JSONL with every schema field present and
    correctly typed on every record (this file is the schema's source of
    truth — tests/obs/decision_trace_test.cpp pins the serialised form),
  * the span profile is a loadable Chrome trace-event file: one JSON
    object with a traceEvents array, process/thread metadata for both
    timelines, and at least two distinct ThreadPool worker tracks,
  * the metrics snapshot is valid JSON whose histograms carry
    len(bounds)+1 buckets that sum to the observation count.

A second pass runs a stuck-comparator fault cycle with the health
monitor and flight recorder armed (obs/health.h, obs/flight_recorder.h)
and checks:
  * the alert stream is JSONL matching ALERT_SCHEMA exactly, with a
    known rule slug, strictly increasing seq and non-decreasing time,
  * the flight-recorder dump is JSONL matching FLIGHT_SCHEMA exactly:
    consecutive dump ids from 0, each dump headed by a kind="trigger"
    record whose value equals the number of ring records that follow it,
    ring records in strictly increasing seq order and every kind known,
  * the run actually fired at least one alert and produced at least one
    dump (a fault run that stays silent means the watchdogs regressed),
  * the metrics snapshot of a health-enabled run carries the health/*
    counters HealthStats::publish is contracted to emit.

Every artifact is also checked for *unknown top-level keys*: a key the
schema does not list fails the run, so silently-added output fields force
a schema (and doc) update here first.

A fourth pass (only when a capman_fleet path is given) runs a small
checkpointed fleet campaign with the fleet flight recorder armed and
checks the dump carries schema-valid kind="checkpoint" records — the
write cadence plus the final full write (sim/fleet.cpp, docs/FLEET.md
"Checkpoint & resume").

Wired into CTest as `trace_schema_check`; run manually with:

    scripts/check_trace_schema.py [path/to/capman_sim [path/to/capman_fleet]]
    scripts/check_trace_schema.py --self-test   # fixture accept/reject run
"""

import json
import math
import subprocess
import sys
import tempfile
from pathlib import Path

# field name -> allowed JSON types (None means JSON null is allowed)
DECISION_SCHEMA = {
    "seq": (int,),
    "t_s": (int, float),
    "policy": (str,),
    "event": (str,),
    "param": (int,),
    "emergency": (bool,),
    "cpu": (str,),
    "screen": (str,),
    "wifi": (str,),
    "active": (str,),
    "chosen": (str,),
    "source": (str, None),
    "matched_state": (int, None),
    "q_big": (int, float, None),
    "q_little": (int, float, None),
    "switch_requested": (bool,),
    "switch_accepted": (bool,),
    "switch_pending": (bool,),
    "guard_fallback": (bool,),
    "fault_stuck": (bool,),
    "big_soc": (int, float),
    "little_soc": (int, float),
    "hotspot_c": (int, float),
    "demand_w": (int, float),
    "budget_level": (int,),
    "granted_mw": (int, float),
}

# core::BudgetLevel: 0 = full, 1 = balanced, 2 = eco.
BUDGET_LEVELS = {0, 1, 2}

# Metric keys the PowerBudgetArbiter must publish when enabled.
ARBITER_COUNTERS = {
    "arbiter/rebudgets",
    "arbiter/voltage_triggers",
    "arbiter/cooling_rebudgets",
    "arbiter/throttled_steps",
    "arbiter/tec_vetoes",
}
ARBITER_GAUGES = {
    "arbiter/budget_mw",
    "arbiter/granted_mw",
    "arbiter/min_granted_mw",
    "arbiter/shed_j",
    "arbiter/avg_budget_mw",
}

SOURCES = {"exact", "transferred", "fallback", "explored"}

# Flight-recorder dump records (obs/flight_recorder.cpp write_json_line);
# tests/obs pins the serialised form, this is the field/type contract.
FLIGHT_SCHEMA = {
    "dump": (int,),
    "seq": (int,),
    "t_s": (int, float),
    "kind": (str,),
    "what": (str,),
    "detail": (str,),
    "value": (int, float),
}
FLIGHT_KINDS = {"trigger", "decision", "switch", "budget", "fault", "guard",
                "alert", "engine", "checkpoint"}

# kind="checkpoint" records (fleet durability, sim/fleet.cpp): the what
# names the operation, detail carries the checkpoint path, value is the
# shard count involved (resumed / persisted / total).
CHECKPOINT_WHATS = {"load", "write", "final"}

# Health alert records (obs/health.cpp write_json_line).
ALERT_SCHEMA = {
    "seq": (int,),
    "t_s": (int, float),
    "rule": (str,),
    "value": (int, float),
    "threshold": (int, float),
    "detail": (str,),
}
ALERT_RULES = {"thermal_runaway", "budget_starvation", "switch_thrash",
               "guard_engaged", "time_to_empty"}

# Metric keys a health-enabled run must publish (HealthStats::publish).
HEALTH_COUNTERS = {"health/evaluations", "health/alerts_total"}

# Exhaustive top-level keys of each artifact; anything else is a failure.
SPANS_TOP_LEVEL = {"traceEvents"}
METRICS_TOP_LEVEL = {"counters", "gauges", "histograms"}


def fail(msg):
    print(f"check_trace_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_type(rec, key, value):
    allowed = DECISION_SCHEMA[key]
    if value is None:
        if None not in allowed:
            fail(f"record {rec.get('seq')}: {key} is null but must not be")
        return
    types = tuple(t for t in allowed if t is not None)
    # bool is a subclass of int in Python; don't let booleans satisfy
    # numeric fields or ints satisfy boolean fields.
    if isinstance(value, bool) != (bool in types):
        fail(f"record {rec.get('seq')}: {key} has type {type(value).__name__}")
    if not isinstance(value, types):
        fail(f"record {rec.get('seq')}: {key} has type {type(value).__name__}")


def check_record(schema, rec, label):
    """Exact-field, typed validation of one JSONL record against `schema`."""
    missing = schema.keys() - rec.keys()
    extra = rec.keys() - schema.keys()
    if missing:
        fail(f"{label}: missing fields {sorted(missing)}")
    if extra:
        fail(f"{label}: unknown fields {sorted(extra)}")
    for key, value in rec.items():
        allowed = schema[key]
        if value is None:
            if None not in allowed:
                fail(f"{label}: {key} is null but must not be")
            continue
        types = tuple(t for t in allowed if t is not None)
        if isinstance(value, bool) != (bool in types):
            fail(f"{label}: {key} has type {type(value).__name__}")
        if not isinstance(value, types):
            fail(f"{label}: {key} has type {type(value).__name__}")


def check_flight(path):
    """Validate a flight-recorder JSONL dump file; returns (#records, #dumps)."""
    n = 0
    last_dump = -1
    dump_header_value = 0  # ring size the current dump's trigger promised
    dump_records = 0       # ring records seen in the current dump so far
    last_seq = -1
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            label = f"flight record {rec.get('dump')}/{rec.get('seq')}"
            check_record(FLIGHT_SCHEMA, rec, label)
            if rec["kind"] not in FLIGHT_KINDS:
                fail(f"{label}: unknown kind {rec['kind']!r}")
            if not math.isfinite(rec["t_s"]) or rec["t_s"] < 0:
                fail(f"{label}: bad t_s {rec['t_s']!r}")
            if rec["kind"] == "checkpoint":
                if rec["what"] not in CHECKPOINT_WHATS:
                    fail(f"{label}: unknown checkpoint op {rec['what']!r}")
                if not rec["detail"].startswith("path="):
                    fail(f"{label}: checkpoint detail lacks path= "
                         f"({rec['detail']!r})")
                if rec["value"] < 0 or rec["value"] != int(rec["value"]):
                    fail(f"{label}: checkpoint value must be a shard count, "
                         f"got {rec['value']!r}")
            if rec["kind"] == "trigger":
                # A new dump begins. Close out the previous one first.
                if last_dump >= 0 and dump_records != dump_header_value:
                    fail(f"dump {last_dump}: trigger promised "
                         f"{dump_header_value} ring records, got {dump_records}")
                if rec["dump"] != last_dump + 1:
                    fail(f"{label}: dump ids must be consecutive from 0 "
                         f"({last_dump} -> {rec['dump']})")
                last_dump = rec["dump"]
                dump_header_value = int(rec["value"])
                if dump_header_value <= 0:
                    fail(f"{label}: trigger with empty ring")
                dump_records = 0
                last_seq = -1
            else:
                if last_dump < 0:
                    fail(f"{label}: ring record before any trigger header")
                if rec["dump"] != last_dump:
                    fail(f"{label}: ring record tagged dump {rec['dump']} "
                         f"inside dump {last_dump}")
                if rec["seq"] <= last_seq:
                    fail(f"{label}: ring seq not increasing "
                         f"({last_seq} -> {rec['seq']})")
                last_seq = rec["seq"]
                dump_records += 1
            n += 1
    if n == 0:
        fail("flight dump is empty")
    if dump_records != dump_header_value:
        fail(f"dump {last_dump}: trigger promised {dump_header_value} "
             f"ring records, got {dump_records}")
    return n, last_dump + 1


def check_alerts(path):
    """Validate a health-alert JSONL stream; returns (#alerts, rules seen)."""
    n = 0
    last_seq = -1
    last_t = -1.0
    rules = set()
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            label = f"alert {rec.get('seq')}"
            check_record(ALERT_SCHEMA, rec, label)
            if rec["rule"] not in ALERT_RULES:
                fail(f"{label}: unknown rule {rec['rule']!r}")
            if rec["seq"] != last_seq + 1:
                fail(f"alert seq gap: {last_seq} -> {rec['seq']}")
            if not math.isfinite(rec["t_s"]) or rec["t_s"] < last_t:
                fail(f"{label}: time went backwards "
                     f"({last_t} -> {rec['t_s']})")
            if not math.isfinite(rec["value"]) or \
                    not math.isfinite(rec["threshold"]):
                fail(f"{label}: non-finite value/threshold")
            last_seq = rec["seq"]
            last_t = rec["t_s"]
            rules.add(rec["rule"])
            n += 1
    if n == 0:
        fail("alert stream is empty")
    return n, rules


def check_decisions(path):
    n = 0
    last_seq = -1
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            missing = DECISION_SCHEMA.keys() - rec.keys()
            extra = rec.keys() - DECISION_SCHEMA.keys()
            if missing:
                fail(f"record {rec.get('seq')}: missing fields {sorted(missing)}")
            if extra:
                fail(f"record {rec.get('seq')}: unknown fields {sorted(extra)}")
            for key, value in rec.items():
                check_type(rec, key, value)
            if rec["source"] is not None and rec["source"] not in SOURCES:
                fail(f"record {rec['seq']}: bad source {rec['source']!r}")
            if rec["budget_level"] not in BUDGET_LEVELS:
                fail(f"record {rec['seq']}: bad budget_level "
                     f"{rec['budget_level']!r}")
            if rec["seq"] != last_seq + 1:
                fail(f"seq gap: {last_seq} -> {rec['seq']}")
            last_seq = rec["seq"]
            n += 1
    if n == 0:
        fail("decision trace is empty")
    return n


def check_spans(path):
    with open(path) as f:
        doc = json.load(f)
    unknown = doc.keys() - SPANS_TOP_LEVEL
    if unknown:
        fail(f"spans file has unknown top-level keys {sorted(unknown)}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("spans file has no traceEvents array")

    process_names = {}
    thread_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            process_names[e["pid"]] = e["args"]["name"]
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]
    if process_names.get(1) != "compute (wall-clock)":
        fail(f"pid 1 metadata missing/wrong: {process_names}")
    if process_names.get(2) != "simulation time":
        fail(f"pid 2 metadata missing/wrong: {process_names}")
    for track in ("decisions", "switch transients", "fault episodes"):
        if track not in thread_names.values():
            fail(f"sim track {track!r} not announced")

    pool_tids = set()
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph not in ("X", "i", "C"):
            fail(f"unexpected phase {ph!r}")
        if e.get("pid") not in (1, 2):
            fail(f"unexpected pid {e.get('pid')}")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            fail(f"bad ts {ts!r} on {e.get('name')}")
        if ph == "X" and not isinstance(e.get("dur"), (int, float)):
            fail(f"complete event {e.get('name')} lacks dur")
        if ph == "C" and "value" not in e.get("args", {}):
            fail(f"counter event {e.get('name')} lacks args.value")
        if (e.get("pid"), e.get("tid")) not in thread_names and e.get("pid") == 1:
            fail(f"event on unannounced wall track tid {e.get('tid')}")
        if e.get("cat") == "threadpool":
            pool_tids.add(e["tid"])
    if len(pool_tids) < 2:
        fail(
            "expected >=2 distinct ThreadPool worker tracks, got "
            f"{sorted(pool_tids)} (was --threads >= 2 passed?)"
        )
    return len(events), len(pool_tids)


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    unknown = doc.keys() - METRICS_TOP_LEVEL
    if unknown:
        fail(f"metrics snapshot has unknown top-level keys {sorted(unknown)}")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"metrics snapshot lacks {section!r}")
    if not doc["counters"]:
        fail("metrics snapshot has no counters")
    for name, h in doc["histograms"].items():
        if len(h["buckets"]) != len(h["bounds"]) + 1:
            fail(f"histogram {name}: {len(h['buckets'])} buckets for "
                 f"{len(h['bounds'])} bounds")
        if sum(h["buckets"]) != h["count"]:
            fail(f"histogram {name}: buckets sum != count")
    return len(doc["counters"])


def _valid_decision_record(seq=0):
    return {
        "seq": seq, "t_s": 0.5 * seq, "policy": "CAPMAN", "event": "launch",
        "param": 3, "emergency": False, "cpu": "idle", "screen": "on",
        "wifi": "off", "active": "big", "chosen": "little",
        "source": "exact", "matched_state": 7, "q_big": -1.25,
        "q_little": -0.5, "switch_requested": True, "switch_accepted": True,
        "switch_pending": False, "guard_fallback": False,
        "fault_stuck": False, "big_soc": 0.9, "little_soc": 0.8,
        "hotspot_c": 38.5, "demand_w": 1.5, "budget_level": 0,
        "granted_mw": 3450.0,
    }


def _valid_spans_doc():
    meta = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "compute (wall-clock)"}},
        {"ph": "M", "name": "process_name", "pid": 2, "tid": 0,
         "args": {"name": "simulation time"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 100,
         "args": {"name": "pool-0"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 101,
         "args": {"name": "pool-1"}},
        {"ph": "M", "name": "thread_name", "pid": 2, "tid": 1,
         "args": {"name": "decisions"}},
        {"ph": "M", "name": "thread_name", "pid": 2, "tid": 2,
         "args": {"name": "switch transients"}},
        {"ph": "M", "name": "thread_name", "pid": 2, "tid": 3,
         "args": {"name": "fault episodes"}},
    ]
    work = [
        {"ph": "X", "name": "chunk", "cat": "threadpool", "pid": 1,
         "tid": 100, "ts": 0.0, "dur": 5.0},
        {"ph": "X", "name": "chunk", "cat": "threadpool", "pid": 1,
         "tid": 101, "ts": 1.0, "dur": 4.0},
    ]
    return {"traceEvents": meta + work}


def _valid_metrics_doc():
    return {
        "counters": {"engine/consults": 3},
        "gauges": {"similarity/threads": 2.0},
        "histograms": {
            "similarity/sweep_ms": {"bounds": [1.0, 10.0],
                                    "buckets": [2, 1, 0], "count": 3},
        },
    }


def _valid_flight_records():
    """Two dumps: a 3-record ring then a 1-record ring."""
    return [
        {"dump": 0, "seq": 10, "t_s": 120.0, "kind": "trigger",
         "what": "alert:switch_thrash", "detail": "", "value": 3},
        {"dump": 0, "seq": 3, "t_s": 60.5, "kind": "budget",
         "what": "rebudget", "detail": "level=1", "value": 3450.0},
        {"dump": 0, "seq": 7, "t_s": 90.0, "kind": "switch",
         "what": "latched", "detail": "", "value": 1},
        {"dump": 0, "seq": 8, "t_s": 95.0, "kind": "checkpoint",
         "what": "write", "detail": "path=/tmp/fleet.ckpt", "value": 4},
        {"dump": 1, "seq": 20, "t_s": 300.0, "kind": "trigger",
         "what": "end-of-run", "detail": "", "value": 1},
        {"dump": 1, "seq": 15, "t_s": 200.0, "kind": "fault",
         "what": "stuck-enter", "detail": "", "value": 1},
    ]


def _valid_alert_records():
    return [
        {"seq": 0, "t_s": 100.0, "rule": "switch_thrash", "value": 14.2,
         "threshold": 12.0, "detail": "14.2 switches/min"},
        {"seq": 1, "t_s": 140.0, "rule": "guard_engaged", "value": 1.0,
         "threshold": 1.0, "detail": "degradation guard fallback"},
    ]


def self_test():
    """Fixture accept/reject run (CTest: trace_schema_selftest).

    Every checker must accept its minimal valid artifact and reject the
    seeded mutations — including the unknown-top-level-key path.
    """
    def expect(label, fn, should_pass):
        try:
            fn()
            ok = True
        except SystemExit:
            ok = False
        if ok != should_pass:
            print(f"check_trace_schema self-test: FAIL: {label} "
                  f"{'passed' if ok else 'failed'} unexpectedly",
                  file=sys.stderr)
            sys.exit(1)
        print(f"  ok: {label} {'accepted' if should_pass else 'rejected'}")

    with tempfile.TemporaryDirectory(prefix="capman_schema_fix_") as tmp:
        tmp = Path(tmp)

        def write_jsonl(name, records):
            path = tmp / name
            path.write_text("".join(json.dumps(r) + "\n" for r in records))
            return path

        def write_doc(name, doc):
            path = tmp / name
            path.write_text(json.dumps(doc))
            return path

        good = write_jsonl("good.jsonl", [_valid_decision_record(i)
                                          for i in range(3)])
        expect("valid decision trace", lambda: check_decisions(good), True)

        extra_rec = _valid_decision_record()
        extra_rec["debug_note"] = "?"
        bad = write_jsonl("extra_field.jsonl", [extra_rec])
        expect("decision record with unknown field",
               lambda: check_decisions(bad), False)

        missing_rec = _valid_decision_record()
        del missing_rec["chosen"]
        bad = write_jsonl("missing_field.jsonl", [missing_rec])
        expect("decision record with missing field",
               lambda: check_decisions(bad), False)

        bad_level_rec = _valid_decision_record()
        bad_level_rec["budget_level"] = 5
        bad = write_jsonl("bad_budget_level.jsonl", [bad_level_rec])
        expect("decision record with out-of-range budget_level",
               lambda: check_decisions(bad), False)

        good = write_doc("spans.json", _valid_spans_doc())
        expect("valid span profile", lambda: check_spans(good), True)

        extra_doc = _valid_spans_doc()
        extra_doc["metadata"] = {"tool": "???"}
        bad = write_doc("spans_extra.json", extra_doc)
        expect("span profile with unknown top-level key",
               lambda: check_spans(bad), False)

        good = write_doc("metrics.json", _valid_metrics_doc())
        expect("valid metrics snapshot", lambda: check_metrics(good), True)

        extra_doc = _valid_metrics_doc()
        extra_doc["timings"] = {}
        bad = write_doc("metrics_extra.json", extra_doc)
        expect("metrics snapshot with unknown top-level key",
               lambda: check_metrics(bad), False)

        broken_doc = _valid_metrics_doc()
        broken_doc["histograms"]["similarity/sweep_ms"]["buckets"] = [1, 1, 0]
        bad = write_doc("metrics_buckets.json", broken_doc)
        expect("metrics histogram with inconsistent buckets",
               lambda: check_metrics(bad), False)

        good = write_jsonl("flight.jsonl", _valid_flight_records())
        expect("valid flight dump", lambda: check_flight(good), True)

        recs = _valid_flight_records()
        recs[1]["kind"] = "mystery"
        bad = write_jsonl("flight_kind.jsonl", recs)
        expect("flight record with unknown kind",
               lambda: check_flight(bad), False)

        recs = _valid_flight_records()
        recs[4]["dump"] = 5
        recs[5]["dump"] = 5
        bad = write_jsonl("flight_dumpgap.jsonl", recs)
        expect("flight dump ids not consecutive",
               lambda: check_flight(bad), False)

        recs = _valid_flight_records()
        recs[0]["value"] = 5  # trigger promises 5 ring records, file has 3
        bad = write_jsonl("flight_count.jsonl", recs)
        expect("flight trigger/ring count mismatch",
               lambda: check_flight(bad), False)

        bad = write_jsonl("flight_headless.jsonl",
                          _valid_flight_records()[1:3])
        expect("flight ring records without a trigger header",
               lambda: check_flight(bad), False)

        recs = _valid_flight_records()
        recs[2]["extra"] = 1
        bad = write_jsonl("flight_extra.jsonl", recs)
        expect("flight record with unknown field",
               lambda: check_flight(bad), False)

        recs = _valid_flight_records()
        recs[3]["what"] = "compact"
        bad = write_jsonl("flight_ckpt_op.jsonl", recs)
        expect("checkpoint record with unknown op",
               lambda: check_flight(bad), False)

        recs = _valid_flight_records()
        recs[3]["detail"] = "shard=4"
        bad = write_jsonl("flight_ckpt_detail.jsonl", recs)
        expect("checkpoint record without a path",
               lambda: check_flight(bad), False)

        recs = _valid_flight_records()
        recs[3]["value"] = 2.5
        bad = write_jsonl("flight_ckpt_value.jsonl", recs)
        expect("checkpoint record with fractional shard count",
               lambda: check_flight(bad), False)

        good = write_jsonl("alerts.jsonl", _valid_alert_records())
        expect("valid alert stream", lambda: check_alerts(good), True)

        recs = _valid_alert_records()
        recs[0]["rule"] = "phase_of_moon"
        bad = write_jsonl("alerts_rule.jsonl", recs)
        expect("alert with unknown rule", lambda: check_alerts(bad), False)

        recs = _valid_alert_records()
        recs[1]["seq"] = 5
        bad = write_jsonl("alerts_gap.jsonl", recs)
        expect("alert seq gap", lambda: check_alerts(bad), False)

        recs = _valid_alert_records()
        del recs[0]["threshold"]
        bad = write_jsonl("alerts_missing.jsonl", recs)
        expect("alert with missing field", lambda: check_alerts(bad), False)

    print("check_trace_schema: self-test OK")


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        self_test()
        return
    binary = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("examples/capman_sim")
    if not binary.exists():
        fail(f"capman_sim binary not found at {binary}")
    fleet_binary = Path(sys.argv[2]) if len(sys.argv) > 2 else None
    if fleet_binary is not None and not fleet_binary.exists():
        fail(f"capman_fleet binary not found at {fleet_binary}")

    with tempfile.TemporaryDirectory(prefix="capman_trace_") as tmp:
        tmp = Path(tmp)
        decisions = tmp / "decisions.jsonl"
        spans = tmp / "spans.json"
        metrics = tmp / "metrics.json"
        cmd = [
            str(binary),
            "--policy", "capman",
            "--workload", "video",
            "--seed", "42",
            "--max-minutes", "10",
            "--threads", "2",  # so the span profile shows >=2 pool tracks
            "--trace-out", str(decisions),
            "--spans-out", str(spans),
            "--metrics-out", str(metrics),
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)

        n_dec = check_decisions(decisions)
        n_ev, n_pool = check_spans(spans)
        n_ctr = check_metrics(metrics)

        # Second run with the power-budget arbiter enabled: the decision
        # trace must still satisfy the schema and the metrics snapshot must
        # carry every arbiter/* key the arbiter is contracted to publish.
        b_decisions = tmp / "decisions_budget.jsonl"
        b_metrics = tmp / "metrics_budget.json"
        cmd = [
            str(binary),
            "--policy", "capman",
            "--workload", "video",
            "--seed", "42",
            "--max-minutes", "10",
            "--budget-mw", "4000",
            "--trace-out", str(b_decisions),
            "--metrics-out", str(b_metrics),
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        n_bdec = check_decisions(b_decisions)
        with open(b_metrics) as f:
            doc = json.load(f)
        missing = ARBITER_COUNTERS - doc["counters"].keys()
        if missing:
            fail(f"arbiter run lacks counters {sorted(missing)}")
        missing = ARBITER_GAUGES - doc["gauges"].keys()
        if missing:
            fail(f"arbiter run lacks gauges {sorted(missing)}")
        if doc["counters"]["arbiter/rebudgets"] <= 0:
            fail("arbiter run recorded no rebudgets")
        granted_seen = False
        with open(b_decisions) as f:
            for line in f:
                if json.loads(line)["granted_mw"] > 0:
                    granted_seen = True
                    break
        if not granted_seen:
            fail("arbiter run never recorded a granted budget")

        # Third run: stuck-comparator faults with the watchdogs armed. The
        # fault must make the health monitor fire (thrash/guard alerts) and
        # the alert must trigger a schema-valid flight-recorder dump.
        flight = tmp / "flight.jsonl"
        alerts = tmp / "alerts.jsonl"
        h_metrics = tmp / "metrics_health.json"
        cmd = [
            str(binary),
            "--policy", "capman",
            "--workload", "video",
            "--seed", "42",
            "--max-minutes", "30",
            "--fault-stuck", "2",
            "--health",
            "--alerts-out", str(alerts),
            "--flight-out", str(flight),
            "--flight-at-end",
            "--metrics-out", str(h_metrics),
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        n_alerts, rules = check_alerts(alerts)
        n_flight, n_dumps = check_flight(flight)
        with open(h_metrics) as f:
            doc = json.load(f)
        missing = HEALTH_COUNTERS - doc["counters"].keys()
        if missing:
            fail(f"health run lacks counters {sorted(missing)}")
        if doc["counters"]["health/alerts_total"] != n_alerts:
            fail(f"health/alerts_total {doc['counters']['health/alerts_total']}"
                 f" != {n_alerts} alert records")

        # Fourth pass (optional): a checkpointed fleet campaign must dump
        # schema-valid checkpoint events — the periodic writes plus the
        # final full write.
        n_ckpt = 0
        if fleet_binary is not None:
            fleet_flight = tmp / "fleet_flight.jsonl"
            ckpt_dir = tmp / "ckpt"
            ckpt_dir.mkdir()
            cmd = [
                str(fleet_binary),
                "--devices", "40",
                "--shards", "4",
                "--threads", "2",
                "--checkpoint-dir", str(ckpt_dir),
                "--checkpoint-every", "2",
                "--flight-out", str(fleet_flight),
            ]
            subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            check_flight(fleet_flight)
            ops = set()
            with open(fleet_flight) as f:
                for line in f:
                    rec = json.loads(line)
                    if rec["kind"] == "checkpoint":
                        ops.add(rec["what"])
                        n_ckpt += 1
            if "write" not in ops or "final" not in ops:
                fail(f"fleet flight dump lacks checkpoint write/final events "
                     f"(saw {sorted(ops)})")

    print(
        f"check_trace_schema: OK ({n_dec} decision records, {n_ev} trace "
        f"events on {n_pool} pool tracks, {n_ctr} counters; arbiter run "
        f"{n_bdec} records; fault run {n_alerts} alerts "
        f"({', '.join(sorted(rules))}), {n_flight} flight records in "
        f"{n_dumps} dumps; fleet run {n_ckpt} checkpoint events)"
    )


if __name__ == "__main__":
    main()
