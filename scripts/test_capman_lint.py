#!/usr/bin/env python3
"""Self-test for scripts/capman_lint.py.

Pytest-style test functions over synthetic fixture trees: every rule has at
least one positive fixture (a seeded violation the linter must catch) and
one negative fixture (clean or suppressed code it must stay quiet on).
Runs standalone (`python3 scripts/test_capman_lint.py`) or under pytest;
wired into CTest as `capman_lint_selftest`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
os.environ["CAPMAN_LINT_NO_LIBCLANG"] = "1"  # pin the regex backend

import capman_lint as cl  # noqa: E402

LINT = Path(__file__).resolve().parent / "capman_lint.py"


def lint_tree(files: dict[str, str], rules: str) -> list[cl.Finding]:
    """Write `files` (relpath -> contents) into a temp root and lint it."""
    with tempfile.TemporaryDirectory(prefix="capman_lint_fix_") as tmp:
        root = Path(tmp)
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        findings, _ = cl.run_lint(root, [root / "src"],
                                  cl._parse_rule_list(rules))
        return findings


def rules_hit(findings: list[cl.Finding]) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# L1 determinism

def test_l1_positive_rand_and_wall_clock():
    findings = lint_tree({
        "src/core/bad.cpp": (
            "#include <cstdlib>\n"
            "int draw() { return std::rand(); }\n"
            "double now() {\n"
            "  return std::chrono::steady_clock::now().time_since_epoch()"
            ".count();\n"
            "}\n"),
    }, "L1")
    assert rules_hit(findings) == {"determinism"}, findings
    assert len(findings) == 2, findings
    assert findings[0].line == 2


def test_l1_positive_random_header():
    findings = lint_tree({
        "src/policy/bad.cpp": "#include <random>\nstd::mt19937 gen;\n",
    }, "L1")
    assert len(findings) == 2, findings  # the include and the engine


def test_l1_negative_outside_scope_and_suppressed():
    findings = lint_tree({
        # util/ is outside the determinism scope (it IS the RNG home).
        "src/util/rng_impl.cpp": "int f() { return std::rand(); }\n",
        # Declared instrumentation is fine.
        "src/core/timed.cpp": (
            "void f() {\n"
            "  // capman-lint: allow(determinism)\n"
            "  auto t = std::chrono::steady_clock::now();\n"
            "  (void)t;\n"
            "}\n"),
        # Randomness through the project RNG is the sanctioned path.
        "src/core/good.cpp": (
            "#include \"util/rng.h\"\n"
            "double f(capman::util::Rng& rng) { return rng.uniform(); }\n"),
    }, "L1")
    assert findings == [], findings


def test_l1_negative_identifier_containing_rand():
    findings = lint_tree({
        "src/core/ok.cpp": ("int operand(int x) { return x; }\n"
                            "int g() { return operand(3); }\n"),
    }, "L1")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L2 ordered-output

def test_l2_positive_unordered_iteration_into_csv():
    src = (
        "#include <unordered_map>\n"
        "struct CsvWriter { void write_row(int, int); };\n"
        "struct Emitter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  void dump(CsvWriter& csv) {\n"
        "    for (const auto& [k, v] : cells_) {\n"
        "      csv.write_row(k, v);\n"
        "    }\n"
        "  }\n"
        "};\n")
    findings = lint_tree({"src/obs/emit.cpp": src}, "L2")
    assert rules_hit(findings) == {"ordered-output"}, findings
    assert findings[0].line == 6, findings


def test_l2_negative_suppressed_sorted_or_not_output():
    suppressed = (
        "#include <unordered_map>\n"
        "struct CsvWriter { void write_row(int, int); };\n"
        "struct Emitter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  void dump(CsvWriter& csv) {\n"
        "    // capman-lint: allow(ordered-output)\n"
        "    for (const auto& [k, v] : cells_) {\n"
        "      csv.write_row(k, v);\n"
        "    }\n"
        "  }\n"
        "};\n")
    sorted_first = (
        "#include <algorithm>\n"
        "#include <unordered_map>\n"
        "#include <vector>\n"
        "struct CsvWriter { void write_row(int, int); };\n"
        "struct Emitter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  void dump(CsvWriter& csv) {\n"
        "    std::vector<std::pair<int, int>> rows(cells_.begin(),"
        " cells_.end());\n"
        "    std::sort(rows.begin(), rows.end());\n"
        "    for (const auto& [k, v] : rows) csv.write_row(k, v);\n"
        "  }\n"
        "};\n")
    not_output = (
        "#include <unordered_map>\n"
        "struct Counter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  int total() {\n"
        "    int sum = 0;\n"
        "    for (const auto& [k, v] : cells_) sum += v;\n"
        "    return sum;\n"
        "  }\n"
        "};\n")
    findings = lint_tree({
        "src/obs/suppressed.cpp": suppressed,
        "src/obs/sorted.cpp": sorted_first,
        "src/obs/counter.cpp": not_output,
    }, "L2")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L3 config-validate

def test_l3_positive_missing_validate():
    findings = lint_tree({
        "src/core/foo.h": "struct FooConfig { int x = 1; };\n",
    }, "L3")
    assert rules_hit(findings) == {"config-validate"}, findings
    assert "declares no" in findings[0].message


def test_l3_positive_unreachable_validate():
    findings = lint_tree({
        "src/core/foo.h": (
            "#include <string>\n#include <vector>\n"
            "struct FooConfig {\n"
            "  int x = 1;\n"
            "  [[nodiscard]] std::vector<std::string> validate() const;\n"
            "};\n"),
        "src/core/foo.cpp": (
            "#include \"core/foo.h\"\n"
            "std::vector<std::string> FooConfig::validate() const {"
            " return {}; }\n"),
    }, "L3")
    assert len(findings) == 1, findings
    assert "unreachable" in findings[0].message


def test_l3_negative_validated_from_ctor_and_chained():
    # BarConfig is validated by the owning engine ctor; FooConfig is nested
    # and validated from BarConfig::validate() — both reachable.
    findings = lint_tree({
        "src/core/foo.h": (
            "#include <string>\n#include <vector>\n"
            "struct FooConfig {\n"
            "  int x = 1;\n"
            "  [[nodiscard]] std::vector<std::string> validate() const;\n"
            "};\n"
            "struct BarConfig {\n"
            "  FooConfig foo{};\n"
            "  [[nodiscard]] std::vector<std::string> validate() const;\n"
            "};\n"
            "class Engine {\n"
            " public:\n"
            "  explicit Engine(const BarConfig& config);\n"
            " private:\n"
            "  BarConfig config_;\n"
            "};\n"),
        "src/core/foo.cpp": (
            "#include \"core/foo.h\"\n"
            "std::vector<std::string> FooConfig::validate() const {"
            " return {}; }\n"
            "std::vector<std::string> BarConfig::validate() const {\n"
            "  return foo.validate();\n"
            "}\n"
            "Engine::Engine(const BarConfig& config) : config_(config) {\n"
            "  auto errors = config_.validate();\n"
            "  (void)errors;\n"
            "}\n"),
    }, "L3")
    assert findings == [], findings


def test_l3_negative_suppressed_struct():
    findings = lint_tree({
        "src/core/foo.h": (
            "// capman-lint: allow(config-validate)\n"
            "struct LegacyConfig { int x = 1; };\n"),
    }, "L3")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L4 float-compare

def test_l4_positive_literal_and_declared_double():
    findings = lint_tree({
        "src/core/cmp.cpp": (
            "bool f(double x) { return x == 1.0; }\n"
            "bool g(double lhs, double rhs) { return lhs != rhs; }\n"),
    }, "L4")
    assert rules_hit(findings) == {"float-compare"}, findings
    assert [f.line for f in findings] == [1, 2], findings


def test_l4_negative_ints_suppression_and_shadowing():
    findings = lint_tree({
        "src/core/ok.cpp": (
            "#include <cstddef>\n"
            "double v = 1.0;\n"                      # file-scope double v
            "bool f(std::size_t u, std::size_t n) {\n"
            "  for (std::size_t v = 0; v < n; ++v) {\n"
            "    if (u == v) return true;\n"         # nearest decl: size_t
            "  }\n"
            "  return false;\n"
            "}\n"
            "bool g(double x) {\n"
            "  return x == 0.0;  // capman-lint: allow(float-compare)\n"
            "}\n"
            "bool h(const int* p) { return p != nullptr; }\n"),
        # tests/ are exempt by rule definition (paths under src only are
        # linted here, so place the file under src and allow-file it).
        "src/core/exempt.cpp": (
            "// capman-lint: allow-file(float-compare)\n"
            "bool t(double x) { return x == 2.5; }\n"),
    }, "L4")
    assert findings == [], findings


def test_l4_negative_string_and_comment_contents():
    findings = lint_tree({
        "src/core/strings.cpp": (
            "#include <string>\n"
            "// not flagged: x == 1.0 in a comment\n"
            "bool f(const std::string& s) { return s == \"pi == 3.14\"; }\n"
            "double tick = 20'000.0;  // digit separator must not break "
            "the lexer\n"
            "bool g(int a) { return a == 3; }\n"),
    }, "L4")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L5 header-hygiene

def _have_compiler() -> bool:
    return cl.find_compiler(None) is not None


def test_l5_positive_non_self_contained_header():
    if not _have_compiler():
        print("  (skipped: no C++ compiler)")
        return
    findings = lint_tree({
        # Uses std::vector without including <vector>: a TU with only this
        # include must fail.
        "src/core/broken.h": ("#pragma once\n"
                              "inline std::vector<int> make() {"
                              " return {}; }\n"),
    }, "L5")
    assert rules_hit(findings) == {"header-hygiene"}, findings
    assert "self-contained" in findings[0].message


def test_l5_negative_self_contained_and_suppressed():
    if not _have_compiler():
        print("  (skipped: no C++ compiler)")
        return
    findings = lint_tree({
        "src/core/good.h": ("#pragma once\n"
                            "#include <vector>\n"
                            "inline std::vector<int> make() {"
                            " return {}; }\n"),
        "src/core/x_macros.h": ("// capman-lint: allow-file(header-hygiene)\n"
                                "FOO(undefined_macro)\n"),
    }, "L5")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# CLI surface

def test_cli_json_output_and_exit_codes():
    with tempfile.TemporaryDirectory(prefix="capman_lint_cli_") as tmp:
        root = Path(tmp)
        bad = root / "src" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.cpp").write_text("int f() { return std::rand(); }\n")
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root), "--rules",
             "L1,L4", "--json"],
            capture_output=True, text=True)
        assert proc.returncode == cl.EXIT_FINDINGS, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"determinism": 1}, doc
        assert doc["findings"][0]["path"] == "src/core/bad.cpp"
        assert doc["findings"][0]["lnum"] == "L1"

        (bad / "bad.cpp").write_text("int f() { return 4; }\n")
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root), "--rules",
             "L1,L4"], capture_output=True, text=True)
        assert proc.returncode == cl.EXIT_CLEAN, proc.stdout

        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root), "--rules",
             "no-such-rule"], capture_output=True, text=True)
        assert proc.returncode == cl.EXIT_USAGE


def test_suppression_parsing():
    sf = cl.SourceFile(Path("x.cpp"), "x.cpp", (
        "int a;  // capman-lint: allow(determinism, float-compare)\n"
        "// capman-lint: allow(ordered-output)\n"
        "int b;\n"
        "// capman-lint: allow-file(header-hygiene)\n"))
    assert sf.allowed("determinism", 1)
    assert sf.allowed("float-compare", 1)
    assert not sf.allowed("determinism", 2)
    assert sf.allowed("ordered-output", 3)  # bare comment covers next line
    assert sf.allowed("header-hygiene", 999)  # file-wide


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as exc:
            failures += 1
            print(f"FAIL {name}: {exc}")
    print(f"test_capman_lint: {len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
