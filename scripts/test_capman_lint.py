#!/usr/bin/env python3
"""Self-test for scripts/capman_lint.py.

Pytest-style test functions over synthetic fixture trees: every rule has at
least one positive fixture (a seeded violation the linter must catch) and
one negative fixture (clean or suppressed code it must stay quiet on).
Runs standalone (`python3 scripts/test_capman_lint.py`) or under pytest;
wired into CTest as `capman_lint_selftest`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
os.environ["CAPMAN_LINT_NO_LIBCLANG"] = "1"  # pin the regex backend

import capman_lint as cl  # noqa: E402

LINT = Path(__file__).resolve().parent / "capman_lint.py"


def lint_tree(files: dict[str, str], rules: str) -> list[cl.Finding]:
    """Write `files` (relpath -> contents) into a temp root and lint it."""
    with tempfile.TemporaryDirectory(prefix="capman_lint_fix_") as tmp:
        root = Path(tmp)
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        findings, _ = cl.run_lint(root, [root / "src"],
                                  cl._parse_rule_list(rules))
        return findings


def rules_hit(findings: list[cl.Finding]) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# L1 determinism

def test_l1_positive_rand_and_wall_clock():
    findings = lint_tree({
        "src/core/bad.cpp": (
            "#include <cstdlib>\n"
            "int draw() { return std::rand(); }\n"
            "double now() {\n"
            "  return std::chrono::steady_clock::now().time_since_epoch()"
            ".count();\n"
            "}\n"),
    }, "L1")
    assert rules_hit(findings) == {"determinism"}, findings
    assert len(findings) == 2, findings
    assert findings[0].line == 2


def test_l1_positive_random_header():
    findings = lint_tree({
        "src/policy/bad.cpp": "#include <random>\nstd::mt19937 gen;\n",
    }, "L1")
    assert len(findings) == 2, findings  # the include and the engine


def test_l1_negative_outside_scope_and_suppressed():
    findings = lint_tree({
        # util/ is outside the determinism scope (it IS the RNG home).
        "src/util/rng_impl.cpp": "int f() { return std::rand(); }\n",
        # Declared instrumentation is fine.
        "src/core/timed.cpp": (
            "void f() {\n"
            "  // capman-lint: allow(determinism)\n"
            "  auto t = std::chrono::steady_clock::now();\n"
            "  (void)t;\n"
            "}\n"),
        # Randomness through the project RNG is the sanctioned path.
        "src/core/good.cpp": (
            "#include \"util/rng.h\"\n"
            "double f(capman::util::Rng& rng) { return rng.uniform(); }\n"),
    }, "L1")
    assert findings == [], findings


def test_l1_negative_identifier_containing_rand():
    findings = lint_tree({
        "src/core/ok.cpp": ("int operand(int x) { return x; }\n"
                            "int g() { return operand(3); }\n"),
    }, "L1")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L2 ordered-output

def test_l2_positive_unordered_iteration_into_csv():
    src = (
        "#include <unordered_map>\n"
        "struct CsvWriter { void write_row(int, int); };\n"
        "struct Emitter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  void dump(CsvWriter& csv) {\n"
        "    for (const auto& [k, v] : cells_) {\n"
        "      csv.write_row(k, v);\n"
        "    }\n"
        "  }\n"
        "};\n")
    findings = lint_tree({"src/obs/emit.cpp": src}, "L2")
    assert rules_hit(findings) == {"ordered-output"}, findings
    assert findings[0].line == 6, findings


def test_l2_negative_suppressed_sorted_or_not_output():
    suppressed = (
        "#include <unordered_map>\n"
        "struct CsvWriter { void write_row(int, int); };\n"
        "struct Emitter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  void dump(CsvWriter& csv) {\n"
        "    // capman-lint: allow(ordered-output)\n"
        "    for (const auto& [k, v] : cells_) {\n"
        "      csv.write_row(k, v);\n"
        "    }\n"
        "  }\n"
        "};\n")
    sorted_first = (
        "#include <algorithm>\n"
        "#include <unordered_map>\n"
        "#include <vector>\n"
        "struct CsvWriter { void write_row(int, int); };\n"
        "struct Emitter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  void dump(CsvWriter& csv) {\n"
        "    std::vector<std::pair<int, int>> rows(cells_.begin(),"
        " cells_.end());\n"
        "    std::sort(rows.begin(), rows.end());\n"
        "    for (const auto& [k, v] : rows) csv.write_row(k, v);\n"
        "  }\n"
        "};\n")
    not_output = (
        "#include <unordered_map>\n"
        "struct Counter {\n"
        "  std::unordered_map<int, int> cells_;\n"
        "  int total() {\n"
        "    int sum = 0;\n"
        "    for (const auto& [k, v] : cells_) sum += v;\n"
        "    return sum;\n"
        "  }\n"
        "};\n")
    findings = lint_tree({
        "src/obs/suppressed.cpp": suppressed,
        "src/obs/sorted.cpp": sorted_first,
        "src/obs/counter.cpp": not_output,
    }, "L2")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L3 config-validate

def test_l3_positive_missing_validate():
    findings = lint_tree({
        "src/core/foo.h": "struct FooConfig { int x = 1; };\n",
    }, "L3")
    assert rules_hit(findings) == {"config-validate"}, findings
    assert "declares no" in findings[0].message


def test_l3_positive_unreachable_validate():
    findings = lint_tree({
        "src/core/foo.h": (
            "#include <string>\n#include <vector>\n"
            "struct FooConfig {\n"
            "  int x = 1;\n"
            "  [[nodiscard]] std::vector<std::string> validate() const;\n"
            "};\n"),
        "src/core/foo.cpp": (
            "#include \"core/foo.h\"\n"
            "std::vector<std::string> FooConfig::validate() const {"
            " return {}; }\n"),
    }, "L3")
    assert len(findings) == 1, findings
    assert "unreachable" in findings[0].message


def test_l3_negative_validated_from_ctor_and_chained():
    # BarConfig is validated by the owning engine ctor; FooConfig is nested
    # and validated from BarConfig::validate() — both reachable.
    findings = lint_tree({
        "src/core/foo.h": (
            "#include <string>\n#include <vector>\n"
            "struct FooConfig {\n"
            "  int x = 1;\n"
            "  [[nodiscard]] std::vector<std::string> validate() const;\n"
            "};\n"
            "struct BarConfig {\n"
            "  FooConfig foo{};\n"
            "  [[nodiscard]] std::vector<std::string> validate() const;\n"
            "};\n"
            "class Engine {\n"
            " public:\n"
            "  explicit Engine(const BarConfig& config);\n"
            " private:\n"
            "  BarConfig config_;\n"
            "};\n"),
        "src/core/foo.cpp": (
            "#include \"core/foo.h\"\n"
            "std::vector<std::string> FooConfig::validate() const {"
            " return {}; }\n"
            "std::vector<std::string> BarConfig::validate() const {\n"
            "  return foo.validate();\n"
            "}\n"
            "Engine::Engine(const BarConfig& config) : config_(config) {\n"
            "  auto errors = config_.validate();\n"
            "  (void)errors;\n"
            "}\n"),
    }, "L3")
    assert findings == [], findings


def test_l3_negative_suppressed_struct():
    findings = lint_tree({
        "src/core/foo.h": (
            "// capman-lint: allow(config-validate)\n"
            "struct LegacyConfig { int x = 1; };\n"),
    }, "L3")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L4 float-compare

def test_l4_positive_literal_and_declared_double():
    findings = lint_tree({
        "src/core/cmp.cpp": (
            "bool f(double x) { return x == 1.0; }\n"
            "bool g(double lhs, double rhs) { return lhs != rhs; }\n"),
    }, "L4")
    assert rules_hit(findings) == {"float-compare"}, findings
    assert [f.line for f in findings] == [1, 2], findings


def test_l4_negative_ints_suppression_and_shadowing():
    findings = lint_tree({
        "src/core/ok.cpp": (
            "#include <cstddef>\n"
            "double v = 1.0;\n"                      # file-scope double v
            "bool f(std::size_t u, std::size_t n) {\n"
            "  for (std::size_t v = 0; v < n; ++v) {\n"
            "    if (u == v) return true;\n"         # nearest decl: size_t
            "  }\n"
            "  return false;\n"
            "}\n"
            "bool g(double x) {\n"
            "  return x == 0.0;  // capman-lint: allow(float-compare)\n"
            "}\n"
            "bool h(const int* p) { return p != nullptr; }\n"),
        # tests/ are exempt by rule definition (paths under src only are
        # linted here, so place the file under src and allow-file it).
        "src/core/exempt.cpp": (
            "// capman-lint: allow-file(float-compare)\n"
            "bool t(double x) { return x == 2.5; }\n"),
    }, "L4")
    assert findings == [], findings


def test_l4_negative_string_and_comment_contents():
    findings = lint_tree({
        "src/core/strings.cpp": (
            "#include <string>\n"
            "// not flagged: x == 1.0 in a comment\n"
            "bool f(const std::string& s) { return s == \"pi == 3.14\"; }\n"
            "double tick = 20'000.0;  // digit separator must not break "
            "the lexer\n"
            "bool g(int a) { return a == 3; }\n"),
    }, "L4")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L5 header-hygiene

def _have_compiler() -> bool:
    return cl.find_compiler(None) is not None


def test_l5_positive_non_self_contained_header():
    if not _have_compiler():
        print("  (skipped: no C++ compiler)")
        return
    findings = lint_tree({
        # Uses std::vector without including <vector>: a TU with only this
        # include must fail.
        "src/core/broken.h": ("#pragma once\n"
                              "inline std::vector<int> make() {"
                              " return {}; }\n"),
    }, "L5")
    assert rules_hit(findings) == {"header-hygiene"}, findings
    assert "self-contained" in findings[0].message


def test_l5_negative_self_contained_and_suppressed():
    if not _have_compiler():
        print("  (skipped: no C++ compiler)")
        return
    findings = lint_tree({
        "src/core/good.h": ("#pragma once\n"
                            "#include <vector>\n"
                            "inline std::vector<int> make() {"
                            " return {}; }\n"),
        "src/core/x_macros.h": ("// capman-lint: allow-file(header-hygiene)\n"
                                "FOO(undefined_macro)\n"),
    }, "L5")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L6 unit-safety

def test_l6_positive_raw_double_field_and_param():
    findings = lint_tree({
        "src/core/budget.h": (
            "#pragma once\n"
            "struct BudgetConfig {\n"
            "  double base_budget_mw = 4500.0;\n"
            "  int settle_us = 250;\n"
            "};\n"),
    }, "L6")
    assert rules_hit(findings) == {"unit-safety"}, findings
    assert [f.line for f in findings] == [3, 4], findings
    assert "util::Milliwatts" in findings[0].message
    assert "util::MicroSeconds" in findings[1].message


def test_l6_positive_all_suffixes_and_integer_types():
    findings = lint_tree({
        "src/thermal/t.h": ("#pragma once\n"
                            "struct T {\n"
                            "  float trip_mc = 0.0f;\n"
                            "  std::int64_t drained_mj = 0;\n"
                            "  unsigned int duty_pct = 50;\n"
                            "};\n"),
    }, "L6")
    assert len(findings) == 3, findings


def test_l6_negative_strong_types_and_out_of_scope():
    findings = lint_tree({
        # Strong types are the sanctioned spelling.
        "src/core/good.h": (
            "#pragma once\n"
            "#include \"util/units.h\"\n"
            "struct GoodConfig {\n"
            "  util::Milliwatts base_budget_mw{4500.0};\n"
            "  util::MicroSeconds settle_us{250};\n"
            "};\n"),
        # Suffix mid-name is a slope/denominator, not a bare quantity.
        "src/device/slope.h": (
            "#pragma once\n"
            "struct Slope { double gamma_mw_per_util = 6.04; };\n"),
        # util/ and obs/ are outside the L6 surface (quantization knobs
        # there are deliberate raw doubles).
        "src/obs/quant.h": ("#pragma once\n"
                            "struct Q { double quantum_mw = 1.0; };\n"),
        # .cpp files are out of scope: L6 polices declared surfaces.
        "src/core/impl.cpp": "static double local_mw = 3.0;\n",
        # Function declarations name a return convention, not a field.
        "src/core/fn.h": ("#pragma once\n"
                          "double derive_budget_mw(int level);\n"),
    }, "L6")
    assert findings == [], findings


def test_l6_negative_suppressed():
    findings = lint_tree({
        "src/battery/cal.h": (
            "#pragma once\n"
            "struct Cal {\n"
            "  // capman-lint: allow(unit-safety, vendor ABI mirrors a "
            "packed register file)\n"
            "  double shunt_mw = 0.0;\n"
            "};\n"),
    }, "L6")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L7 thread-safety

def test_l7_positive_raw_mutex_and_lock_guard():
    findings = lint_tree({
        "src/obs/reg.h": ("#pragma once\n"
                          "#include <mutex>\n"
                          "class Reg {\n"
                          "  std::mutex mu_;\n"
                          "  int hits_ = 0;\n"
                          "};\n"),
        "src/obs/reg.cpp": ("#include <mutex>\n"
                            "void f(std::mutex& m) {\n"
                            "  const std::lock_guard<std::mutex> lock(m);\n"
                            "}\n"),
    }, "L7")
    assert rules_hit(findings) == {"thread-safety"}, findings
    assert len(findings) >= 2, findings


def test_l7_positive_unannotated_util_mutex_owner():
    findings = lint_tree({
        "src/obs/reg.h": ("#pragma once\n"
                          "#include \"util/thread_annotations.h\"\n"
                          "class Reg {\n"
                          "  util::Mutex mu_;\n"
                          "  int hits_ = 0;\n"  # nothing GUARDED_BY
                          "};\n"),
    }, "L7")
    assert rules_hit(findings) == {"thread-safety"}, findings
    assert "CAPMAN_GUARDED_BY" in findings[0].message


def test_l7_negative_annotated_owner_and_wrapper_home():
    findings = lint_tree({
        "src/obs/reg.h": (
            "#pragma once\n"
            "#include \"util/thread_annotations.h\"\n"
            "class Reg {\n"
            "  mutable util::Mutex mu_;\n"
            "  int hits_ CAPMAN_GUARDED_BY(mu_) = 0;\n"
            "};\n"),
        # The wrapper header itself is the one sanctioned std::mutex home.
        "src/util/thread_annotations.h": (
            "#pragma once\n"
            "#include <mutex>\n"
            "namespace capman::util {\n"
            "class Mutex { std::mutex mu_; };\n"
            "}\n"),
    }, "L7")
    assert findings == [], findings


def test_l7_negative_suppressed_raw_mutex():
    findings = lint_tree({
        "src/util/ffi.h": (
            "#pragma once\n"
            "#include <mutex>\n"
            "struct Ffi {\n"
            "  // capman-lint: allow(thread-safety, handed to a C callback "
            "that takes std::mutex*)\n"
            "  std::mutex raw_;\n"
            "};\n"),
    }, "L7")
    assert findings == [], findings


# ---------------------------------------------------------------------------
# L8 raw-unit

def test_l8_positive_undeclared_escape():
    findings = lint_tree({
        "src/core/x.cpp": (
            "#include \"util/units.h\"\n"
            "double f(util::Milliwatts m) { return m.raw(); }\n"),
    }, "L8")
    assert rules_hit(findings) == {"raw-unit"}, findings
    assert "undeclared" in findings[0].message


def test_l8_positive_suppression_without_reason():
    findings = lint_tree({
        "src/core/x.cpp": (
            "#include \"util/units.h\"\n"
            "// capman-lint: allow(raw-unit)\n"
            "double f(util::Milliwatts m) { return m.raw(); }\n"),
    }, "L8")
    assert len(findings) == 1, findings
    assert "no reason" in findings[0].message


def test_l8_negative_same_line_and_preceding_line_reasons():
    findings = lint_tree({
        "src/core/x.cpp": (
            "#include \"util/units.h\"\n"
            "double f(util::Milliwatts m) {\n"
            "  return m.raw();  // capman-lint: allow(raw-unit, CSV export "
            "boundary)\n"
            "}\n"
            "double g(util::Milliwatts m) {\n"
            "  // capman-lint: allow(raw-unit, fed to std::min over "
            "doubles)\n"
            "  return m.raw();\n"
            "}\n"),
    }, "L8")
    assert findings == [], findings


def test_l8_negative_outside_src_and_no_escape():
    findings = lint_tree({
        "src/core/clean.cpp": (
            "#include \"util/units.h\"\n"
            "util::Milliwatts f(util::Milliwatts m) { return m; }\n"),
    }, "L8")
    assert findings == [], findings
    # tests/ and bench/ are outside the L8 surface entirely.
    assert cl.check_raw_unit(cl.SourceFile(
        Path("t.cpp"), "tests/core/t.cpp",
        "double f(util::Milliwatts m) { return m.raw(); }\n")) == []


# ---------------------------------------------------------------------------
# Suppression grammar

def test_suppression_unknown_slug_is_a_finding():
    findings = lint_tree({
        "src/core/x.cpp": (
            "// capman-lint: allow(raw-units, off by one letter)\n"
            "int f() { return 0; }\n"),
    }, "L1")  # reported regardless of the rule selection
    assert rules_hit(findings) == {"bad-suppression"}, findings
    assert "raw-units" in findings[0].message


def test_suppression_reason_only_is_a_finding():
    findings = lint_tree({
        "src/core/x.cpp": (
            "// capman-lint: allow(because I said so)\n"
            "int f() { return 0; }\n"),
    }, "L4")
    assert rules_hit(findings) == {"bad-suppression"}, findings


def test_suppression_same_line_does_not_leak_to_next_line():
    sf = cl.SourceFile(Path("x.cpp"), "src/core/x.cpp", (
        "int a = 0;  // capman-lint: allow(determinism)\n"
        "int b = 0;\n"))
    assert sf.allowed("determinism", 1)
    assert not sf.allowed("determinism", 2)


def test_suppression_multi_rule_with_reason():
    sf = cl.SourceFile(Path("x.cpp"), "src/core/x.cpp", (
        "// capman-lint: allow(determinism, float-compare, shared sentinel "
        "check)\n"
        "int a = 0;\n"))
    assert sf.allowed("determinism", 2)
    assert sf.allowed("float-compare", 2)
    assert sf.allow_reason("float-compare", 2) == "shared sentinel check"
    assert sf.bad_suppressions == []


# ---------------------------------------------------------------------------
# Lexer / L1 false-positive regressions

def test_l1_negative_member_calls_named_like_libc():
    findings = lint_tree({
        "src/core/ok.cpp": (
            "#include \"sim/engine.h\"\n"
            "double f(capman::sim::Engine& engine) {"
            " return engine.clock(); }\n"
            "double g(Rig& rig) { return rig.rand(42); }\n"
            "double h(Clock* clk) { return clk->time(nullptr); }\n"
            "double k(Clock& c) { return c.clock(); }\n"),
    }, "L1")
    assert findings == [], findings


def test_lexer_backslash_continued_line_comment():
    # The continuation swallows the second physical line: the rand() call
    # there is comment text, not code.
    sf = cl.SourceFile(Path("x.cpp"), "src/core/x.cpp", (
        "// a comment that continues \\\n"
        "rand();\n"
        "int live = 1;\n"))
    assert "rand" not in sf.code
    assert "live" in sf.code


# ---------------------------------------------------------------------------
# compile_commands.json consumption

def test_compile_commands_include_extraction():
    with tempfile.TemporaryDirectory(prefix="capman_lint_ccj_") as tmp:
        db = Path(tmp) / "compile_commands.json"
        db.write_text(json.dumps([
            {"directory": tmp,
             "command": "g++ -Isrc -isystem vendor/include -I deps/gtest "
                        "-c src/a.cpp",
             "file": "src/a.cpp"},
            {"directory": tmp,
             "command": f"g++ -I{tmp}/src -c src/b.cpp",  # dup after resolve
             "file": "src/b.cpp"},
        ]))
        incs = cl.load_compile_includes(db)
        assert incs == [str(Path(tmp, "src").resolve()),
                        str(Path(tmp, "vendor/include").resolve()),
                        str(Path(tmp, "deps/gtest").resolve())], incs
    assert cl.load_compile_includes(Path("/no/such/file.json")) == []


# ---------------------------------------------------------------------------
# CLI surface

def test_cli_json_output_and_exit_codes():
    with tempfile.TemporaryDirectory(prefix="capman_lint_cli_") as tmp:
        root = Path(tmp)
        bad = root / "src" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.cpp").write_text("int f() { return std::rand(); }\n")
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root), "--rules",
             "L1,L4", "--json"],
            capture_output=True, text=True)
        assert proc.returncode == cl.EXIT_FINDINGS, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"determinism": 1}, doc
        assert doc["findings"][0]["path"] == "src/core/bad.cpp"
        assert doc["findings"][0]["lnum"] == "L1"

        (bad / "bad.cpp").write_text("int f() { return 4; }\n")
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root), "--rules",
             "L1,L4"], capture_output=True, text=True)
        assert proc.returncode == cl.EXIT_CLEAN, proc.stdout

        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root), "--rules",
             "no-such-rule"], capture_output=True, text=True)
        assert proc.returncode == cl.EXIT_USAGE


def test_suppression_parsing():
    sf = cl.SourceFile(Path("x.cpp"), "x.cpp", (
        "int a;  // capman-lint: allow(determinism, float-compare)\n"
        "// capman-lint: allow(ordered-output)\n"
        "int b;\n"
        "// capman-lint: allow-file(header-hygiene)\n"))
    assert sf.allowed("determinism", 1)
    assert sf.allowed("float-compare", 1)
    assert not sf.allowed("determinism", 2)
    assert sf.allowed("ordered-output", 3)  # bare comment covers next line
    assert sf.allowed("header-hygiene", 999)  # file-wide


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as exc:
            failures += 1
            print(f"FAIL {name}: {exc}")
    print(f"test_capman_lint: {len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
