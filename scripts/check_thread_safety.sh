#!/usr/bin/env bash
# Clang thread-safety analysis over the whole src/ tree: every TU is
# parsed with -Wthread-safety promoted to an error, so a CAPMAN_GUARDED_BY
# member accessed without its util::Mutex held fails this gate. The
# annotations (src/util/thread_annotations.h) compile away under GCC, so
# this check needs clang++ — absent, it exits 77 (the CTest skip code),
# and capman-lint L7 remains the compiler-independent backstop. Wired
# into CTest as the `thread_safety_check` test; run manually with:
#
#   scripts/check_thread_safety.sh [clang++]
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cxx="${1:-clang++}"

if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "check_thread_safety: $cxx not found; skipping" >&2
  exit 77
fi
if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
  echo "check_thread_safety: $cxx is not clang; skipping" >&2
  exit 77
fi

status=0
while IFS= read -r tu; do
  if ! "$cxx" -std=c++20 -I"$repo_root/src" -fsyntax-only \
       -Wthread-safety -Werror=thread-safety "$tu"; then
    status=1
  fi
done < <(find "$repo_root/src" -name '*.cpp' | sort)

if [ "$status" -ne 0 ]; then
  echo "check_thread_safety: -Wthread-safety violations found" >&2
  exit 1
fi
echo "check_thread_safety: src/ clean under clang -Wthread-safety"
