#!/usr/bin/env bash
# Docs drift gates, wired into CTest as the `docs_check` test; run
# manually with scripts/check_docs.sh. Two checks:
#
#  1. Every bench/bench_*.cpp target must be mentioned (as its target
#     name, e.g. `bench_fig06_tec`) in the EXPERIMENTS.md reproduction
#     guide.
#  2. docs/FLEET.md must exist, be linked from README.md, and document
#     every public type of the FleetRunner API (each struct/class/enum
#     name declared in src/sim/fleet.h must appear in the doc) — so the
#     operator guide fails the build when the API drifts.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
guide="$repo_root/EXPERIMENTS.md"

if [[ ! -f "$guide" ]]; then
  echo "check_docs: $guide not found" >&2
  exit 1
fi

missing=0
for src in "$repo_root"/bench/bench_*.cpp; do
  target="$(basename "$src" .cpp)"
  if ! grep -q "$target" "$guide"; then
    echo "check_docs: $target (bench/$(basename "$src")) is not documented in EXPERIMENTS.md" >&2
    missing=$((missing + 1))
  fi
done

# --- FLEET.md stays in lockstep with the public FleetRunner API ---------
fleet_doc="$repo_root/docs/FLEET.md"
fleet_header="$repo_root/src/sim/fleet.h"

if [[ ! -f "$fleet_doc" ]]; then
  echo "check_docs: docs/FLEET.md not found (the FleetRunner operator guide is mandatory)" >&2
  missing=$((missing + 1))
else
  if ! grep -q "docs/FLEET.md" "$repo_root/README.md"; then
    echo "check_docs: README.md does not link docs/FLEET.md" >&2
    missing=$((missing + 1))
  fi
  # Every public type declared in fleet.h must appear in FLEET.md.
  while IFS= read -r symbol; do
    if ! grep -q "$symbol" "$fleet_doc"; then
      echo "check_docs: fleet API type '$symbol' (src/sim/fleet.h) is not documented in docs/FLEET.md" >&2
      missing=$((missing + 1))
    fi
  done < <(sed -n -E 's/^(struct|class|enum class) ([A-Za-z0-9_]+).*/\2/p' \
             "$fleet_header" | sort -u)
  # Same drift gate for the checkpoint layer (the "Checkpoint & resume"
  # section of FLEET.md documents the durability API).
  ckpt_header="$repo_root/src/sim/checkpoint.h"
  while IFS= read -r symbol; do
    if ! grep -q "$symbol" "$fleet_doc"; then
      echo "check_docs: checkpoint API type '$symbol' (src/sim/checkpoint.h) is not documented in docs/FLEET.md" >&2
      missing=$((missing + 1))
    fi
  done < <(sed -n -E 's/^(struct|class|enum class) ([A-Za-z0-9_]+).*/\2/p' \
             "$ckpt_header" | sort -u)
fi

if [[ $missing -gt 0 ]]; then
  echo "check_docs: $missing doc drift problem(s); update EXPERIMENTS.md / docs/FLEET.md" >&2
  exit 1
fi
echo "check_docs: every bench target is documented and docs/FLEET.md covers the fleet API"
