#!/usr/bin/env bash
# Fails when a benchmark binary is missing from the per-figure reproduction
# guide: every bench/bench_*.cpp target must be mentioned (as its target
# name, e.g. `bench_fig06_tec`) in EXPERIMENTS.md. Wired into CTest as the
# `docs_check` test; run manually with scripts/check_docs.sh.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
guide="$repo_root/EXPERIMENTS.md"

if [[ ! -f "$guide" ]]; then
  echo "check_docs: $guide not found" >&2
  exit 1
fi

missing=0
for src in "$repo_root"/bench/bench_*.cpp; do
  target="$(basename "$src" .cpp)"
  if ! grep -q "$target" "$guide"; then
    echo "check_docs: $target (bench/$(basename "$src")) is not documented in EXPERIMENTS.md" >&2
    missing=$((missing + 1))
  fi
done

if [[ $missing -gt 0 ]]; then
  echo "check_docs: $missing undocumented benchmark target(s); add a section to EXPERIMENTS.md" >&2
  exit 1
fi
echo "check_docs: every bench target is documented in EXPERIMENTS.md"
