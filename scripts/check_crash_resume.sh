#!/usr/bin/env bash
# Crash-resume gate: SIGKILL a fleet campaign mid-run, resume it, and
# require the resumed --json output to be byte-identical to an
# uninterrupted run — across more than one thread/shard layout — then
# corrupt the checkpoint tail and require resume to roll back to the
# last valid frame instead of crashing. Usage:
#
#   scripts/check_crash_resume.sh [path-to-capman_fleet]
#
# Registered as the crash_resume_check CTest gate and run by
# check_all.sh (full mode). The environment hook CAPMAN_CRASH_AFTER_SHARDS
# injects the crash into the stock binary (sim::FleetConfig::
# crash_after_shards carries the same knob for in-process tests).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
fleet="${1:-$repo_root/build/examples/capman_fleet}"

if [[ ! -x "$fleet" ]]; then
  echo "check_crash_resume: $fleet not built; run cmake --build first" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

devices=80
failures=0

fail() {
  echo "check_crash_resume: FAIL: $*" >&2
  failures=$((failures + 1))
}

# Two thread/shard layouts: resumes must be layout-robust, and the
# reference for a given shard count is thread-count invariant.
for combo in "8 2" "5 1"; do
  read -r shards threads <<<"$combo"
  label="shards=$shards threads=$threads"
  ref_dir="$workdir/ref-$shards-$threads"
  crash_dir="$workdir/crash-$shards-$threads"
  mkdir -p "$ref_dir" "$crash_dir"

  # Uninterrupted reference (checkpointing ON, so the snapshot carries
  # the same checkpoint/* keys the resumed run will).
  if ! "$fleet" --devices "$devices" --shards "$shards" \
       --threads "$threads" --checkpoint-dir "$ref_dir" \
       --checkpoint-every 2 --json \
       >"$workdir/ref.json" 2>/dev/null; then
    fail "$label: reference run failed"
    continue
  fi

  # Crash mid-campaign: the run must die by SIGKILL (exit 137), leaving
  # a partial checkpoint behind.
  CAPMAN_CRASH_AFTER_SHARDS=3 "$fleet" --devices "$devices" \
      --shards "$shards" --threads "$threads" \
      --checkpoint-dir "$crash_dir" --checkpoint-every 2 --json \
      >/dev/null 2>&1
  status=$?
  if [[ "$status" -ne 137 ]]; then
    fail "$label: crash run exited $status, expected 137 (SIGKILL)"
    continue
  fi
  if [[ ! -s "$crash_dir/fleet.ckpt" ]]; then
    fail "$label: no checkpoint file left behind by the crashed run"
    continue
  fi

  # Resume and require byte-identity; the stderr summary must prove the
  # checkpoint was actually used (a silent cold start would also match).
  if ! "$fleet" --devices "$devices" --shards "$shards" \
       --threads "$threads" --checkpoint-dir "$crash_dir" \
       --checkpoint-every 2 --resume --json \
       >"$workdir/resumed.json" 2>"$workdir/resumed.err"; then
    fail "$label: resume run failed"
    continue
  fi
  if ! grep -q "resumed" "$workdir/resumed.err"; then
    fail "$label: resume did not restore any shards (stderr: \
$(cat "$workdir/resumed.err"))"
    continue
  fi
  if ! cmp -s "$workdir/ref.json" "$workdir/resumed.json"; then
    fail "$label: resumed --json differs from the uninterrupted run"
    continue
  fi
  echo "check_crash_resume: $label OK (crash 137, resume byte-identical)"

  # Torn tail: chop bytes off the checkpoint; resume must roll back to
  # the last valid frame (stderr reports the discard) and still finish
  # byte-identical.
  size=$(wc -c <"$crash_dir/fleet.ckpt")
  truncate -s $((size - 13)) "$crash_dir/fleet.ckpt"
  if ! "$fleet" --devices "$devices" --shards "$shards" \
       --threads "$threads" --checkpoint-dir "$crash_dir" \
       --checkpoint-every 2 --resume --json \
       >"$workdir/torn.json" 2>"$workdir/torn.err"; then
    fail "$label: resume from a truncated checkpoint crashed"
    continue
  fi
  if ! grep -q "discarded" "$workdir/torn.err"; then
    fail "$label: truncated resume did not report a discarded frame"
    continue
  fi
  if ! cmp -s "$workdir/ref.json" "$workdir/torn.json"; then
    fail "$label: truncated-checkpoint resume differs from reference"
    continue
  fi

  # Corrupt tail: flip bytes inside the last frame; same requirement.
  crash2_dir="$workdir/corrupt-$shards-$threads"
  mkdir -p "$crash2_dir"
  CAPMAN_CRASH_AFTER_SHARDS=3 "$fleet" --devices "$devices" \
      --shards "$shards" --threads "$threads" \
      --checkpoint-dir "$crash2_dir" --checkpoint-every 2 --json \
      >/dev/null 2>&1
  size=$(wc -c <"$crash2_dir/fleet.ckpt")
  printf 'XXXX' | dd of="$crash2_dir/fleet.ckpt" bs=1 \
      seek=$((size - 8)) conv=notrunc 2>/dev/null
  if ! "$fleet" --devices "$devices" --shards "$shards" \
       --threads "$threads" --checkpoint-dir "$crash2_dir" \
       --checkpoint-every 2 --resume --json \
       >"$workdir/corrupt.json" 2>/dev/null; then
    fail "$label: resume from a corrupted checkpoint crashed"
    continue
  fi
  if ! cmp -s "$workdir/ref.json" "$workdir/corrupt.json"; then
    fail "$label: corrupted-checkpoint resume differs from reference"
    continue
  fi
  echo "check_crash_resume: $label OK (torn + corrupt tails rolled back)"
done

# Mismatched config refusal: resuming with a different seed must refuse
# (exit 1 with the fingerprint message), not silently merge foreign state.
refuse_dir="$workdir/refuse"
mkdir -p "$refuse_dir"
CAPMAN_CRASH_AFTER_SHARDS=3 "$fleet" --devices "$devices" --shards 8 \
    --threads 2 --checkpoint-dir "$refuse_dir" --checkpoint-every 2 \
    --json >/dev/null 2>&1
"$fleet" --devices "$devices" --shards 8 --threads 2 --seed 7 \
    --checkpoint-dir "$refuse_dir" --checkpoint-every 2 --resume --json \
    >/dev/null 2>"$workdir/refuse.err"
status=$?
if [[ "$status" -ne 1 ]] || ! grep -q "fingerprint mismatch" \
    "$workdir/refuse.err"; then
  fail "mismatched-config resume exited $status without refusing"
else
  echo "check_crash_resume: fingerprint-mismatch refusal OK"
fi

if [[ "$failures" -ne 0 ]]; then
  echo "check_crash_resume: $failures case(s) FAILED" >&2
  exit 1
fi
echo "check_crash_resume: all cases passed"
