#!/usr/bin/env python3
"""Diff BENCH_<name>.json bench artifacts against the committed baseline.

Every bench binary writes a headline-number artifact when run with
`--json` (bench/bench_common.h, class BenchJson):

    {"name": "<bench>", "seed": N, "metrics": {"key": value, ...}}

The committed baselines live in bench/baselines/<name>.json. This script
compares each artifact's metrics against its baseline:

  * deterministic metrics (counts, ratios, deviations produced by the
    fixed-seed simulation) must match to a relative tolerance of 1e-9 —
    a drift here means the simulation's behaviour changed and either the
    change is a bug or the baseline must be consciously regenerated;
  * metrics listed in NOISY (wall-clock-derived speedups, throughput,
    overhead percentages) are reported but never gated — they depend on
    the machine the bench ran on;
  * a baseline metric missing from the artifact is a failure (a bench
    silently stopped reporting a headline number);
  * an artifact metric missing from the baseline is a warning (regenerate
    the baseline to start gating it).

Regenerate a baseline after an intentional behaviour change with:

    ./build/bench/bench_<name> [--smoke] --json
    cp BENCH_<name>.json bench/baselines/<name>.json

(fleet_scaling's baseline is generated in --smoke mode — the artifact
records curve_devices, so a full-mode artifact diffs loudly rather than
silently.)

Usage:
    scripts/check_bench_regress.py [--baseline-dir DIR] [--artifact-dir DIR]
                                   [name ...]   # default: every baseline
    scripts/check_bench_regress.py --self-test  # fixture accept/reject run
"""

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO_ROOT / "bench" / "baselines"

# Relative tolerance for deterministic metrics. The simulation is
# bit-deterministic for a fixed seed and the artifact serialises through
# to_chars round-trippably, so anything beyond ULP noise is a real change.
REL_TOL = 1e-9

# (bench name, metric key) pairs that are machine-dependent by
# construction: reported for the record, never gated.
NOISY = {
    ("similarity_scaling", "speedup_x4_96"),
    ("fleet_scaling", "devices_per_sec_best"),
    ("fleet_scaling", "checkpoint_overhead_pct"),
    ("obs_overhead", "overhead_decisions_pct"),
    ("obs_overhead", "overhead_time_dim_pct"),
}


def load(path: Path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    for key in ("name", "seed", "metrics"):
        if key not in doc:
            raise ValueError(f"{path}: missing top-level key '{key}'")
    if not isinstance(doc["metrics"], dict):
        raise ValueError(f"{path}: 'metrics' is not an object")
    return doc


def close(a: float, b: float) -> bool:
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) <= REL_TOL * scale


def check_one(name: str, baseline_path: Path, artifact_path: Path) -> list:
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    try:
        baseline = load(baseline_path)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        return [f"{name}: cannot load baseline: {err}"]
    try:
        artifact = load(artifact_path)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        return [f"{name}: cannot load artifact: {err}"]

    if artifact["name"] != baseline["name"]:
        failures.append(
            f"{name}: artifact name '{artifact['name']}' != baseline "
            f"'{baseline['name']}'"
        )
    if artifact["seed"] != baseline["seed"]:
        failures.append(
            f"{name}: artifact seed {artifact['seed']} != baseline seed "
            f"{baseline['seed']} (deterministic metrics are only comparable "
            "at the same seed)"
        )
        return failures

    base_metrics = baseline["metrics"]
    art_metrics = artifact["metrics"]
    for key, expected in base_metrics.items():
        if key not in art_metrics:
            failures.append(f"{name}: metric '{key}' missing from artifact")
            continue
        actual = art_metrics[key]
        if (name, key) in NOISY:
            print(f"  [noisy] {name}.{key}: {actual} (baseline {expected}, "
                  "not gated)")
            continue
        if not close(float(expected), float(actual)):
            failures.append(
                f"{name}: metric '{key}' = {actual}, baseline {expected} "
                f"(rel tol {REL_TOL})"
            )
    for key in art_metrics:
        if key not in base_metrics:
            print(f"  [warn] {name}: new metric '{key}' not in baseline — "
                  "regenerate bench/baselines to gate it")
    return failures


def run(baseline_dir: Path, artifact_dir: Path, names: list) -> int:
    if not names:
        names = sorted(p.stem for p in baseline_dir.glob("*.json"))
    if not names:
        print(f"error: no baselines under {baseline_dir}", file=sys.stderr)
        return 2
    all_failures = []
    for name in names:
        baseline_path = baseline_dir / f"{name}.json"
        artifact_path = artifact_dir / f"BENCH_{name}.json"
        failures = check_one(name, baseline_path, artifact_path)
        status = "FAIL" if failures else "ok"
        print(f"  {name}: {status}")
        all_failures.extend(failures)
    for failure in all_failures:
        print(f"FAIL: {failure}")
    if not all_failures:
        print(f"check_bench_regress: {len(names)} artifact(s) match baseline")
    return 1 if all_failures else 0


# ---------------------------------------------------------------------------
# --self-test: fixture accept/reject matrix (no bench binaries needed).
# ---------------------------------------------------------------------------

def write_doc(path: Path, name: str, seed: int, metrics: dict) -> None:
    path.write_text(
        json.dumps({"name": name, "seed": seed, "metrics": metrics}) + "\n",
        encoding="utf-8",
    )


def self_test() -> int:
    cases_failed = 0

    def expect(label: str, got: int, want: int) -> None:
        nonlocal cases_failed
        if got != want:
            print(f"SELF-TEST FAIL: {label}: exit {got}, expected {want}")
            cases_failed += 1
        else:
            print(f"  self-test ok: {label}")

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "baselines"
        art = Path(tmp) / "artifacts"
        base.mkdir()
        art.mkdir()

        metrics = {"count": 7409.0, "ratio": 0.330437200253697}
        write_doc(base / "demo.json", "demo", 42, metrics)

        # 1. Identical artifact passes.
        write_doc(art / "BENCH_demo.json", "demo", 42, dict(metrics))
        expect("identical artifact", run(base, art, ["demo"]), 0)

        # 2. A perturbed deterministic metric fails.
        write_doc(art / "BENCH_demo.json", "demo", 42,
                  {"count": 7410.0, "ratio": metrics["ratio"]})
        expect("perturbed metric", run(base, art, ["demo"]), 1)

        # 3. A missing baseline metric fails.
        write_doc(art / "BENCH_demo.json", "demo", 42, {"count": 7409.0})
        expect("missing metric", run(base, art, ["demo"]), 1)

        # 4. A seed mismatch fails (values are not comparable).
        write_doc(art / "BENCH_demo.json", "demo", 43, dict(metrics))
        expect("seed mismatch", run(base, art, ["demo"]), 1)

        # 5. A noisy metric may drift freely.
        write_doc(base / "obs_overhead.json", "obs_overhead", 42,
                  {"decisions": 7409.0, "overhead_decisions_pct": 4.3})
        write_doc(art / "BENCH_obs_overhead.json", "obs_overhead", 42,
                  {"decisions": 7409.0, "overhead_decisions_pct": 9.9})
        expect("noisy metric drift", run(base, art, ["obs_overhead"]), 0)

        # 6. An extra artifact metric warns but passes.
        write_doc(art / "BENCH_demo.json", "demo", 42,
                  {**metrics, "new_metric": 1.0})
        expect("extra metric", run(base, art, ["demo"]), 0)

        # 7. A missing artifact file fails.
        (art / "BENCH_demo.json").unlink()
        expect("missing artifact file", run(base, art, ["demo"]), 1)

    if cases_failed:
        print(f"check_bench_regress --self-test: {cases_failed} case(s) FAILED")
        return 1
    print("check_bench_regress --self-test: all cases passed")
    return 0


def main(argv: list) -> int:
    baseline_dir = DEFAULT_BASELINE_DIR
    artifact_dir = Path.cwd()
    names = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--self-test":
            return self_test()
        if arg == "--baseline-dir":
            i += 1
            if i >= len(argv):
                print("error: --baseline-dir requires a value", file=sys.stderr)
                return 2
            baseline_dir = Path(argv[i])
        elif arg == "--artifact-dir":
            i += 1
            if i >= len(argv):
                print("error: --artifact-dir requires a value", file=sys.stderr)
                return 2
            artifact_dir = Path(argv[i])
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            names.append(arg)
        i += 1
    return run(baseline_dir, artifact_dir, names)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
