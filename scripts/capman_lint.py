#!/usr/bin/env python3
"""capman-lint: project-invariant static analyzer for the CAPMAN tree.

Generic tools (clang-tidy, -Werror) cannot see CAPMAN's *project*
invariants: bit-identical determinism across thread counts, ordered
artifact emission, validated configs before any engine run. This linter
enforces them on every build:

  L1 determinism       no std::rand/random_device/<random>/wall-clock use
                       in src/core, src/sim, src/math, src/policy — all
                       randomness flows through util::Rng, all time through
                       the engine clock. (Wall-clock *instrumentation* is
                       allowed with an explicit suppression.)
  L2 ordered-output    no iteration over unordered_map/unordered_set in a
                       function that writes SimResult / obs sinks /
                       CSV/JSONL emitters unless the body sorts or carries
                       a suppression (unordered iteration order would leak
                       into artifacts downstream tools diff).
  L3 config-validate   every struct named *Config declares validate(), and
                       every validate() is reachable from
                       SimConfig::validate() or an owning constructor.
  L4 float-compare     no ==/!= between floating-point expressions outside
                       tests/ without a suppression (exact-sentinel
                       comparisons are legal but must be declared).
  L5 header-hygiene    every public header under src/*/ is self-contained:
                       a generated one-line TU per header must compile.
  L6 unit-safety       headers under src/{core,device,thermal,battery} may
                       not declare raw arithmetic params/fields whose names
                       carry a unit suffix (*_mw, *_mj, *_mc, *_us, *_pct);
                       those surfaces must use the util::units strong types
                       (util::Milliwatts, util::Millijoules, ...).
  L7 thread-safety     classes under src/ that own a mutex must use the
                       annotated util::Mutex and carry CAPMAN_GUARDED_BY on
                       the state it protects; raw std::mutex /
                       std::lock_guard / std::scoped_lock / std::unique_lock
                       are banned outside util/thread_annotations.h (they
                       are invisible to clang -Wthread-safety).
  L8 raw-unit          every `.raw()` strong-type escape under src/ must be
                       declared: capman-lint: allow(raw-unit, <reason>) on
                       the same line or the line directly above.

Suppressions (per rule, narrowest-scope-wins):

    some_code();  // capman-lint: allow(determinism)
    // capman-lint: allow(float-compare)   <- suppresses the next line
    // capman-lint: allow(raw-unit, gauges export plain doubles)
    // capman-lint: allow-file(ordered-output)

The first token inside allow(...) must be a known rule slug or L-number
(more rules may follow, comma-separated); anything after the last rule
token is the free-text reason. An unknown first token is itself a finding
(bad-suppression): a typoed slug must not silently disable nothing.
L8/raw-unit REQUIRES a non-empty reason.

Rules are addressed by slug or by their L-number (L1..L8). Exit codes:
0 clean, 1 findings, 2 usage error, 77 skipped (needed tooling absent —
CTest's SKIP_RETURN_CODE).

Usage:
    scripts/capman_lint.py [paths...] [--rules L1,L4] [--json]
                           [--compiler g++] [--list-rules]
                           [--compile-commands build/compile_commands.json]

When a compile_commands.json is given (or auto-discovered at
<root>/build/compile_commands.json), its include directories are fed to
the header-hygiene compiles and the libclang parse so vendored include
paths resolve exactly as the real build sees them.

Backend: uses libclang for the float-compare rule when python bindings are
importable (precise binary-operator detection); otherwise — including this
repo's reference container — a comment/string-aware regex engine that the
self-test (scripts/test_capman_lint.py) pins down rule by rule.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_SKIP = 77  # matches the CTest SKIP_RETURN_CODE convention

RULES = {
    "L1": "determinism",
    "L2": "ordered-output",
    "L3": "config-validate",
    "L4": "float-compare",
    "L5": "header-hygiene",
    "L6": "unit-safety",
    "L7": "thread-safety",
    "L8": "raw-unit",
}
SLUGS = {slug: lnum for lnum, slug in RULES.items()}

# Directories (relative to the repo root) whose code must be deterministic.
DETERMINISM_DIRS = ("src/core", "src/sim", "src/math", "src/policy")

# Banned tokens for L1 with human-readable reasons.
DETERMINISM_BANNED = [
    # The bare-call alternatives exclude member/scope access (`rig.rand(`,
    # `engine.clock()`, `clk->time(...)`) via the [.>:] lookbehind: a
    # method named like the libc function is the project's own API, not a
    # wall-clock or libc-rand call.
    (re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:.>])rand\s*\("),
     "C library rand(); draw through util::Rng instead"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed util::Rng explicitly"),
    (re.compile(r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"uniform_(int|real)_distribution|normal_distribution|"
                r"bernoulli_distribution|discrete_distribution)\b"),
     "<random> engines bypass util::Rng (and its split()/replay contract)"),
    (re.compile(r"#\s*include\s*<random>"),
     "<random> is banned here; all randomness flows through util::Rng"),
    (re.compile(r"\bstd::time\b|(?<![\w:.>])time\s*\(\s*(NULL|nullptr|0|&)"),
     "wall-clock time(2); simulation time comes from the engine clock"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
                r"(?<![\w:.>])clock\s*\(\s*\)"),
     "wall-clock syscall; simulation time comes from the engine clock"),
    (re.compile(r"\bstd::chrono::(system_clock|steady_clock|"
                r"high_resolution_clock)\b"),
     "std::chrono clock read; allowed only as declared instrumentation "
     "(suppress with capman-lint: allow(determinism))"),
    (re.compile(r"\b(localtime|gmtime|strftime|ctime)\s*\("),
     "calendar-time call; deterministic code has no wall-clock access"),
]

# A function body counts as "output-writing" for L2 when it touches any of
# these: the run artifact struct, the obs sinks, or file/CSV/JSON emission.
OUTPUT_MARKERS = re.compile(
    r"\b(SimResult|DecisionSink|DecisionRecord|MetricsSnapshot|CsvWriter|"
    r"write_row|append_line|to_json|write_json|jsonl|ofstream|fprintf|"
    r"snapshot\s*\()")
SORT_MARKERS = re.compile(r"\b(std::)?(stable_)?sort\b|\bsorted_\w*\b")

FLOAT_LITERAL = re.compile(r"(\b\d+\.\d*(e[+-]?\d+)?\b|(?<!\w)\.\d+\b|"
                           r"\b\d+e[+-]?\d+\b)", re.IGNORECASE)
# Expression fragments that are floating-point by project convention: the
# util::units Quantity types expose double value(), and the Strong escape
# hatch raw() is double on the hot (Milliwatts/Ratio) surfaces.
FLOAT_CALLS = re.compile(r"\.value\(\)|\.raw\(\)|\bgauge_or\s*\(|"
                         r"\bstd::(fabs|abs|"
                         r"floor|ceil|round|fmod|sqrt|exp|log|pow)\s*\(")

ALLOW_RE = re.compile(r"capman-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"capman-lint:\s*allow-file\(([^)]*)\)")


@dataclass
class Finding:
    rule: str          # slug, e.g. "determinism"
    path: str          # repo-relative path
    line: int          # 1-based
    message: str
    snippet: str = ""

    def to_dict(self):
        return {"rule": self.rule, "lnum": SLUGS.get(self.rule, ""),
                "path": self.path, "line": self.line,
                "message": self.message, "snippet": self.snippet}

    def render(self):
        lnum = SLUGS.get(self.rule, "?")
        loc = f"{self.path}:{self.line}"
        out = f"{loc}: [{lnum}/{self.rule}] {self.message}"
        if self.snippet:
            out += f"\n    | {self.snippet.strip()}"
        return out


# ---------------------------------------------------------------------------
# Lexing: blank out comments and strings while preserving offsets, and keep
# the comment text separately (suppressions live there).

def split_code_comments(text: str) -> tuple[str, str]:
    """Return (code, comments), same length as text, newlines preserved.

    In `code`, comment and string/char-literal contents are replaced by
    spaces; in `comments`, everything except comment text is blank.
    """
    n = len(text)
    code = list(text)
    comments = [c if c == "\n" else " " for c in text]
    i = 0
    state = None  # None | 'line' | 'block' | 'str' | 'chr' | 'raw'
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                code[i] = code[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                code[i] = code[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if i > 0 and text[i - 1] == "R" and (i < 2 or
                                                    not text[i - 2].isalnum()):
                    m = re.match(r'"([^(\s\\]{0,16})\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw"
                        i += 1
                        continue
                state = "str"
                i += 1
                continue
            if c == "'":
                # C++14 digit separators (20'000, 0xFF'FF) are not char
                # literals: an apostrophe between alphanumerics is skipped.
                if i > 0 and text[i - 1].isalnum() and nxt.isalnum():
                    i += 1
                    continue
                state = "chr"
                i += 1
                continue
            i += 1
            continue
        if state == "line":
            if c == "\\" and nxt == "\n":
                # Backslash-continued line comment: the comment swallows
                # the next physical line too (the continuation byte itself
                # stays comment text so suppressions keep their line).
                code[i] = " "
                comments[i] = c
                i += 2
                continue
            if c == "\n":
                state = None
            else:
                code[i] = " "
                comments[i] = c
            i += 1
            continue
        if state == "block":
            if c == "*" and nxt == "/":
                code[i] = code[i + 1] = " "
                state = None
                i += 2
                continue
            if c != "\n":
                code[i] = " "
                comments[i] = c
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                for j in range(len(raw_delim)):
                    if text[i + j] != "\n":
                        code[i + j] = " "
                i += len(raw_delim)
                state = None
                continue
            if c != "\n":
                code[i] = " "
            i += 1
            continue
        # state in ('str', 'chr')
        if c == "\\":
            code[i] = " "
            if i + 1 < n and text[i + 1] != "\n":
                code[i + 1] = " "
            i += 2
            continue
        if (state == "str" and c == '"') or (state == "chr" and c == "'"):
            state = None
            i += 1
            continue
        if c != "\n":
            code[i] = " "
        i += 1
    return "".join(code), "".join(comments)


class SourceFile:
    """One parsed source file: blanked code, comments, suppressions."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.code, self.comments = split_code_comments(text)
        self.code_lines = self.code.splitlines()
        self.text_lines = text.splitlines()
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}
        self.line_reasons: dict[int, dict[str, str]] = {}
        self.bad_suppressions: list[tuple[int, str]] = []
        self._scan_suppressions()

    def _scan_suppressions(self):
        for lineno, comment in enumerate(self.comments.splitlines(), 1):
            for m in ALLOW_FILE_RE.finditer(comment):
                rules, _reason, bad = _parse_allow(m.group(1))
                if bad is not None:
                    self.bad_suppressions.append((lineno, bad))
                self.file_allows.update(rules)
            for m in ALLOW_RE.finditer(comment):
                rules, reason, bad = _parse_allow(m.group(1))
                if bad is not None:
                    self.bad_suppressions.append((lineno, bad))
                covered = [lineno]
                # A comment alone on its line covers the next line of code.
                code_line = (self.code_lines[lineno - 1]
                             if lineno - 1 < len(self.code_lines) else "")
                if not code_line.strip():
                    covered.append(lineno + 1)
                for ln in covered:
                    self.line_allows.setdefault(ln, set()).update(rules)
                    for rule in rules:
                        self.line_reasons.setdefault(ln, {})[rule] = reason

    def allowed(self, rule: str, line: int) -> bool:
        return (rule in self.file_allows or
                rule in self.line_allows.get(line, set()))

    def allow_reason(self, rule: str, line: int) -> str:
        return self.line_reasons.get(line, {}).get(rule, "")

    def line_of_offset(self, offset: int) -> int:
        return self.text.count("\n", 0, offset) + 1

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.text_lines):
            return self.text_lines[line - 1]
        return ""


def _parse_rule_list(raw: str) -> set[str]:
    out = set()
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        out.add(RULES.get(token.upper(), token))
    return out


def _parse_allow(raw: str) -> tuple[set[str], str, str | None]:
    """Parse the inside of allow(...): leading rule tokens, then a reason.

    Returns (rules, reason, bad_token). Tokens are read left to right;
    each that names a known rule (slug or L-number) selects it, and the
    first token that does not ends the rule list — it and everything after
    it form the free-text reason. A reason with no preceding valid rule
    token is a bad suppression (bad_token is that first token).
    """
    tokens = [t.strip() for t in raw.split(",")]
    rules: set[str] = set()
    reason = ""
    bad: str | None = None
    for i, token in enumerate(tokens):
        if not token:
            continue
        slug = RULES.get(token.upper()) or (token if token in SLUGS else None)
        if slug is None:
            if rules:
                reason = ", ".join(tokens[i:]).strip()
            else:
                bad = token
            break
        rules.add(slug)
    return rules, reason, bad


# ---------------------------------------------------------------------------
# A lightweight block parser: maps every {...} region to its kind (function,
# struct/class, namespace) and name, so rules can reason per function body
# and per struct body without a real C++ frontend.

@dataclass
class Block:
    kind: str          # 'function' | 'struct' | 'namespace' | 'other'
    name: str          # unqualified name ('' when unknown)
    qualifier: str     # 'Type' for 'Type::method' definitions, else ''
    owner: str         # innermost enclosing struct/class name, else ''
    start: int         # offset of the opening brace
    end: int           # offset one past the closing brace
    line: int          # 1-based line of the opening brace

    @property
    def is_ctor(self) -> bool:
        if self.kind != "function":
            return False
        return (self.qualifier and self.name == self.qualifier.split("::")[-1]
                ) or (self.owner != "" and self.name == self.owner)


_SIG_FUNC = re.compile(
    r"([A-Za-z_~][\w:<>,\s&*~]*?)\s*\(", re.DOTALL)
_SIG_STRUCT = re.compile(r"\b(?:struct|class)\s+([A-Za-z_]\w*)[^;{]*$")
_SIG_NS = re.compile(r"\bnamespace\s+([\w:]+)?\s*$")


def parse_blocks(sf: SourceFile) -> list[Block]:
    code = sf.code
    blocks: list[Block] = []
    stack: list[tuple[Block | None, int]] = []  # (block|init-brace, boundary)
    boundary = 0  # start of the current "signature" text
    i = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c in ";":
            boundary = i + 1
        elif c == "{":
            if _is_initializer_brace(code, i):
                # `= {...}`, `{...}` member init, braced call args: not a
                # block — keep accumulating the same signature across it.
                stack.append((None, boundary))
            else:
                sig = " ".join(code[boundary:i].split())
                block = _classify(sig, [b for b, _ in stack if b])
                block.start = i
                block.line = sf.line_of_offset(i)
                stack.append((block, boundary))
            boundary = i + 1
        elif c == "}":
            if stack:
                block, saved_boundary = stack.pop()
                if block is None:
                    boundary = saved_boundary  # initializer: resume signature
                else:
                    block.end = i + 1
                    blocks.append(block)
                    boundary = i + 1
            else:
                boundary = i + 1
        i += 1
    blocks.sort(key=lambda b: b.start)
    return blocks


def _is_initializer_brace(code: str, i: int) -> bool:
    j = i - 1
    while j >= 0 and code[j] in " \t\n":
        j -= 1
    if j < 0:
        return False
    if code[j] in "=,(<[":
        return True
    # `return {...};` / identifier{...} uniform init (but not `struct X {`).
    tail = code[max(0, j - 8):j + 1]
    if tail.endswith("return"):
        return True
    return False


def _classify(sig: str, stack: list[Block]) -> Block:
    owner = ""
    for b in reversed(stack):
        if b.kind == "struct":
            owner = b.name
            break
    m = _SIG_NS.search(sig)
    if m:
        return Block("namespace", m.group(1) or "", "", owner, 0, 0, 0)
    m = _SIG_STRUCT.search(sig)
    if m:
        return Block("struct", m.group(1), "", owner, 0, 0, 0)
    # Function-like: something(...) [const] [noexcept] [: init-list]. The
    # parameter list is the FIRST paren group (later groups belong to the
    # constructor initializer list).
    paren = sig.find("(")
    if paren != -1:
        head = sig[:paren].rstrip()
        m = re.search(r"([A-Za-z_~]\w*)\s*$", head)
        if m and m.group(1) not in ("if", "while", "for", "switch", "catch",
                                    "return", "sizeof", "alignof",
                                    "decltype", "noexcept"):
            name = m.group(1)
            qual = ""
            qm = re.search(r"([A-Za-z_]\w*(?:<[^<>]*>)?(?:::[A-Za-z_]\w*"
                           r"(?:<[^<>]*>)?)*)::~?" + re.escape(name) +
                           r"\s*$", head)
            if qm:
                qual = qm.group(1)
            return Block("function", name, qual, owner, 0, 0, 0)
    return Block("other", "", "", owner, 0, 0, 0)




# ---------------------------------------------------------------------------
# Rule L1: determinism

def check_determinism(sf: SourceFile) -> list[Finding]:
    findings = []
    if not sf.rel.startswith(DETERMINISM_DIRS):
        return findings
    for lineno, line in enumerate(sf.code_lines, 1):
        # Includes are blanked of strings but '#include <random>' survives.
        for pattern, reason in DETERMINISM_BANNED:
            m = pattern.search(line)
            if not m:
                continue
            if sf.allowed("determinism", lineno):
                continue
            findings.append(Finding(
                "determinism", sf.rel, lineno,
                f"nondeterministic call `{m.group(0).strip()}`: {reason}",
                sf.snippet(lineno)))
            break
    return findings


# ---------------------------------------------------------------------------
# Rule L2: ordered-output

RANGE_FOR = re.compile(r"\bfor\s*\(([^();]*?):\s*([^()]*?)\)")
UNORDERED_INLINE = re.compile(r"\bunordered_(map|set)\b")


def collect_unordered_decls(files: list[SourceFile]) -> set[str]:
    """Names of variables/members declared as unordered containers."""
    names = set()
    decl = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
    for sf in files:
        for m in decl.finditer(sf.code):
            close = _match_template(sf.code, m.end() - 1)
            if close == -1:
                continue
            rest = sf.code[close + 1:close + 120]
            nm = re.match(r"[&\s]*([A-Za-z_]\w*)", rest)
            if nm:
                names.add(nm.group(1))
    return names


def _match_template(s: str, open_angle: int) -> int:
    depth = 0
    for i in range(open_angle, min(len(s), open_angle + 2000)):
        if s[i] == "<":
            depth += 1
        elif s[i] == ">":
            depth -= 1
            if depth == 0:
                return i
    return -1


def check_ordered_output(sf: SourceFile, blocks: list[Block],
                         unordered_names: set[str]) -> list[Finding]:
    findings = []
    for block in blocks:
        if block.kind != "function":
            continue
        body = sf.code[block.start:block.end]
        if not OUTPUT_MARKERS.search(body):
            continue
        for m in RANGE_FOR.finditer(body):
            seq = m.group(2).strip()
            is_unordered = bool(UNORDERED_INLINE.search(seq))
            if not is_unordered:
                tail = re.search(r"([A-Za-z_]\w*)\s*(\(\s*\))?\s*$", seq)
                is_unordered = bool(tail) and tail.group(1) in unordered_names
            if not is_unordered:
                continue
            lineno = sf.line_of_offset(block.start + m.start())
            if sf.allowed("ordered-output", lineno):
                continue
            if SORT_MARKERS.search(body):
                continue  # the function establishes an order somewhere
            findings.append(Finding(
                "ordered-output", sf.rel, lineno,
                f"iteration over unordered container `{seq}` in an "
                f"output-writing function ({block.name or 'anonymous'}); "
                "sort first or declare capman-lint: allow(ordered-output)",
                sf.snippet(lineno)))
    return findings


# ---------------------------------------------------------------------------
# Rule L3: config-validate

VALIDATE_DECL = re.compile(r"\bvalidate\s*\(\s*\)\s*const")
VALIDATE_CALL = re.compile(r"([A-Za-z_][\w.\->()]*?)\s*(?:\.|->)\s*"
                           r"validate\s*\(\s*\)")


def check_config_validate(files: list[SourceFile],
                          blocks_by_file: dict[str, list[Block]]
                          ) -> list[Finding]:
    findings = []
    # Pass 1: every *Config struct in a header must declare validate().
    config_structs: dict[str, tuple[SourceFile, Block]] = {}
    for sf in files:
        if not sf.rel.endswith(".h"):
            continue
        for block in blocks_by_file[sf.rel]:
            if block.kind == "struct" and block.name.endswith("Config") \
                    and len(block.name) > len("Config"):
                config_structs[block.name] = (sf, block)
    resolver = _ConfigDeclResolver(files, config_structs)
    for name, (sf, block) in sorted(config_structs.items()):
        body = sf.code[block.start:block.end]
        if VALIDATE_DECL.search(body):
            continue
        if sf.allowed("config-validate", block.line):
            continue
        findings.append(Finding(
            "config-validate", sf.rel, block.line,
            f"struct {name} declares no `validate() const`; every *Config "
            "must be validatable before an engine run",
            sf.snippet(block.line)))

    # Pass 2: reachability. Roots are constructor bodies; closure follows
    # the validate() bodies of configs already proven reachable.
    ctor_calls: set[str] = set()
    validate_calls: dict[str, set[str]] = {}
    for sf in files:
        for block in blocks_by_file[sf.rel]:
            if block.kind != "function":
                continue
            body = sf.code[block.start:block.end]
            called = _resolve_validate_calls(body, sf.rel, resolver)
            if not called:
                continue
            if block.is_ctor:
                ctor_calls.update(called)
            if block.name == "validate":
                owner = block.qualifier.split("::")[-1] if block.qualifier \
                    else block.owner
                if owner in config_structs:
                    validate_calls.setdefault(owner, set()).update(called)
    reachable: set[str] = set()
    frontier = {t for t in ctor_calls if t in config_structs}
    while frontier:
        t = frontier.pop()
        if t in reachable:
            continue
        reachable.add(t)
        frontier.update(v for v in validate_calls.get(t, ())
                        if v in config_structs)
    for name, (sf, block) in sorted(config_structs.items()):
        body = sf.code[block.start:block.end]
        if not VALIDATE_DECL.search(body):
            continue  # already reported above
        if name in reachable:
            continue
        if sf.allowed("config-validate", block.line):
            continue
        findings.append(Finding(
            "config-validate", sf.rel, block.line,
            f"{name}::validate() is unreachable: no constructor or "
            "validated config ever calls it (wire it into "
            "SimConfig::validate() or the owning ctor)",
            sf.snippet(block.line)))
    return findings


class _ConfigDeclResolver:
    """Resolve a validate() receiver name to its *Config type(s).

    Member names repeat across classes (`config_` is declared with six
    different Config types), so declarations are scoped per file and a call
    site only sees decls from its own file plus its direct `#include "..."`
    headers. Names invisible through that scope fall back to the global
    union (permissive, never silently unresolved).
    """

    def __init__(self, files: list[SourceFile], config_structs):
        names = "|".join(re.escape(n) for n in config_structs) \
            or r"\w+Config"
        var_re = re.compile(r"\b(" + names + r")\b(?:\s*[&*])?\s+"
                            r"([A-Za-z_]\w*)\s*(?:[;={),]|$)", re.MULTILINE)
        func_re = re.compile(r"\b(" + names + r")\b\s+([A-Za-z_]\w*)\s*\(")
        self._vars: dict[str, dict[str, set[str]]] = {}
        self._funcs: dict[str, dict[str, set[str]]] = {}
        self._includes: dict[str, list[str]] = {}
        self._global_vars: dict[str, set[str]] = {}
        self._global_funcs: dict[str, set[str]] = {}
        rels = [sf.rel for sf in files]
        for sf in files:
            vmap: dict[str, set[str]] = {}
            fmap: dict[str, set[str]] = {}
            for m in var_re.finditer(sf.code):
                vmap.setdefault(m.group(2), set()).add(m.group(1))
                self._global_vars.setdefault(m.group(2),
                                             set()).add(m.group(1))
            for m in func_re.finditer(sf.code):
                fmap.setdefault(m.group(2), set()).add(m.group(1))
                self._global_funcs.setdefault(m.group(2),
                                              set()).add(m.group(1))
            self._vars[sf.rel] = vmap
            self._funcs[sf.rel] = fmap
            incs = []
            for inc in re.findall(r'#\s*include\s*"([^"]+)"', sf.text):
                incs += [rel for rel in rels if rel.endswith(inc)]
            self._includes[sf.rel] = incs

    def resolve(self, rel: str, name: str, is_func: bool) -> set[str]:
        maps = self._funcs if is_func else self._vars
        out: set[str] = set()
        for scope in [rel] + self._includes.get(rel, []):
            out |= maps.get(scope, {}).get(name, set())
        if not out:
            fallback = self._global_funcs if is_func else self._global_vars
            out = fallback.get(name, set())
        return out


def _resolve_validate_calls(body: str, rel: str,
                            resolver: _ConfigDeclResolver) -> set[str]:
    called = set()
    for m in VALIDATE_CALL.finditer(body):
        chain = re.split(r"\.|->", m.group(1))
        leaf = chain[-1].strip()
        if leaf.endswith("()"):
            called |= resolver.resolve(rel, leaf[:-2].strip(), True)
        else:
            called |= resolver.resolve(rel, leaf, False)
    return called


# ---------------------------------------------------------------------------
# Rule L4: float-compare

CMP_RE = re.compile(r"(?<![<>=!&|+\-*/%^])(==|!=)(?!=)")


TYPED_DECL = re.compile(
    r"\b(double|float|(?:std::)?size_t|(?:unsigned\s+|signed\s+)?"
    r"(?:int|long|short|char)|(?:std::)?u?int(?:8|16|32|64)_t|bool|auto)"
    r"(?:\s*[&*])?\s+([A-Za-z_]\w*)\b")


def collect_typed_decls(sf: SourceFile) -> dict[str, list[tuple[int, bool]]]:
    """Per identifier: (offset, is_float) of every declaration in the file.

    Shadowing is real (`double v` at file scope, `size_t v` in a loop), so
    the *nearest preceding* declaration types an identifier, not the union.
    """
    decls: dict[str, list[tuple[int, bool]]] = {}
    for m in TYPED_DECL.finditer(sf.code):
        is_float = m.group(1) in ("double", "float")
        decls.setdefault(m.group(2), []).append((m.start(), is_float))
    return decls


def check_float_compare(sf: SourceFile) -> list[Finding]:
    if "/tests/" in f"/{sf.rel}" or sf.rel.startswith("tests/"):
        return []
    findings = []
    decls = collect_typed_decls(sf)
    line_starts = [0]
    for line in sf.code_lines:
        line_starts.append(line_starts[-1] + len(line) + 1)

    def leaf_is_float(expr: str, line_end: int) -> bool:
        m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
        if not m:
            return False
        before = [is_f for off, is_f in decls.get(m.group(1), ())
                  if off < line_end]
        return bool(before) and before[-1]

    def is_floaty(expr: str, line_end: int) -> bool:
        if FLOAT_LITERAL.search(expr) or FLOAT_CALLS.search(expr):
            return True
        # Only the *leaf* of a member chain types the operand: `a.size()`
        # ends in a call, `stats.total_ms` ends in an identifier.
        return leaf_is_float(expr, line_end)

    for lineno, line in enumerate(sf.code_lines, 1):
        if "operator" in line or line.lstrip().startswith("#"):
            continue
        for m in CMP_RE.finditer(line):
            left = _operand_left(line[:m.start()])
            right = _operand_right(line[m.end():])
            if "nullptr" in (left, right):
                continue
            line_end = line_starts[lineno]
            if not (is_floaty(left, line_end) or is_floaty(right, line_end)):
                continue
            if sf.allowed("float-compare", lineno):
                continue
            findings.append(Finding(
                "float-compare", sf.rel, lineno,
                f"floating-point `{m.group(1)}` between `{left.strip()}` "
                f"and `{right.strip()}`; compare against a tolerance or "
                "declare capman-lint: allow(float-compare)",
                sf.snippet(lineno)))
            break  # one finding per line is enough
    return findings


def _operand_left(s: str) -> str:
    """The expression ending at the comparison operator (paren-balanced)."""
    depth = 0
    out = []
    for i in range(len(s) - 1, -1, -1):
        c = s[i]
        if c in ")]":
            depth += 1
        elif c in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0:
            if c in ";,?{}!|&=":
                break
            if c == ":" and not (i > 0 and s[i - 1] == ":") and \
                    not (i + 1 < len(s) and s[i + 1] == ":"):
                break
        out.append(c)
    return "".join(reversed(out)).strip()


def _operand_right(s: str) -> str:
    """The expression starting after the comparison operator."""
    depth = 0
    out = []
    for i, c in enumerate(s):
        if c in "([":
            depth += 1
        elif c in ")]":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0:
            if c in ";,?{}!|&=":
                break
            if c == ":" and not (i > 0 and s[i - 1] == ":") and \
                    not (i + 1 < len(s) and s[i + 1] == ":"):
                break
        out.append(c)
    return "".join(out).strip()


def libclang_float_compare(sf: SourceFile, include_dir: Path,
                           extra_includes: list[str] | None = None):
    """Precise L4 via libclang when the bindings are importable.

    Returns a findings list, or None when libclang is unusable (the caller
    falls back to the regex engine).
    """
    if os.environ.get("CAPMAN_LINT_NO_LIBCLANG"):
        return None
    try:
        from clang import cindex  # type: ignore
        index = cindex.Index.create()
        args = ["-std=c++20", f"-I{include_dir}"]
        args += [f"-I{inc}" for inc in (extra_includes or [])]
        tu = index.parse(str(sf.path), args=args)
        findings = []
        for node in tu.cursor.walk_preorder():
            if node.kind != cindex.CursorKind.BINARY_OPERATOR:
                continue
            if node.location.file is None or \
                    Path(node.location.file.name) != sf.path:
                continue
            tokens = [t.spelling for t in node.get_tokens()]
            if "==" not in tokens and "!=" not in tokens:
                continue
            kids = list(node.get_children())
            if len(kids) == 2 and any(
                    k.type.get_canonical().spelling in
                    ("float", "double", "long double") for k in kids):
                lineno = node.location.line
                if not sf.allowed("float-compare", lineno):
                    findings.append(Finding(
                        "float-compare", sf.rel, lineno,
                        "floating-point equality comparison (libclang); "
                        "compare against a tolerance or declare "
                        "capman-lint: allow(float-compare)",
                        sf.snippet(lineno)))
        return findings
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Rule L5: header-hygiene

def find_compiler(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += [os.environ.get("CXX"), "c++", "g++", "clang++"]
    for cand in candidates:
        if not cand:
            continue
        try:
            subprocess.run([cand, "--version"], capture_output=True,
                           check=True)
            return cand
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def check_header_hygiene(root: Path, headers: list[SourceFile],
                         compiler: str,
                         extra_includes: list[str] | None = None
                         ) -> list[Finding]:
    findings = []
    include_flags = [f"-I{root / 'src'}"]
    include_flags += [f"-I{inc}" for inc in (extra_includes or [])]

    def compile_one(sf: SourceFile):
        if sf.allowed("header-hygiene", 1):
            return None
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cpp", prefix="capman_hdr_",
                delete=False) as tu:
            rel_to_src = Path(sf.rel).relative_to("src").as_posix()
            tu.write(f'#include "{rel_to_src}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, "-std=c++20", *include_flags,
                 "-fsyntax-only", "-Wall", "-Wextra", tu_path],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = next((ln for ln in proc.stderr.splitlines()
                              if "error:" in ln), proc.stderr.strip()[:200])
                return Finding(
                    "header-hygiene", sf.rel, 1,
                    "header is not self-contained (a TU with only this "
                    f"#include fails to compile): {first.strip()}")
            return None
        finally:
            os.unlink(tu_path)

    workers = min(len(headers), os.cpu_count() or 2) or 1
    with concurrent.futures.ThreadPoolExecutor(workers) as pool:
        for result in pool.map(compile_one, headers):
            if result:
                findings.append(result)
    return findings


# ---------------------------------------------------------------------------
# Rule L6: unit-safety

# Public surfaces that must trade in util::units strong types.
UNIT_SAFETY_DIRS = ("src/core", "src/device", "src/thermal", "src/battery")

# A raw arithmetic declaration whose identifier ends in a unit suffix. The
# suffix must terminate the name (gamma_mw_per_util carries mW *per* a
# denominator — a genuine double slope, not a power), and the `(?!\s*\()`
# lookahead skips function declarations (derive_budget_mw(...) names its
# return convention, the return type itself is what L6 polices).
UNIT_SUFFIXES = ("mw", "mj", "mc", "us", "pct")
UNIT_DECL = re.compile(
    r"\b(double|float|(?:unsigned\s+|signed\s+)?(?:int|long(?:\s+long)?|"
    r"short)|(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t)"
    r"(?:\s*[&*])?\s+([A-Za-z_]\w*_(?:" + "|".join(UNIT_SUFFIXES) +
    r"))\b(?!\s*\()")

UNIT_TYPE_HINTS = {
    "mw": "util::Milliwatts",
    "mj": "util::Millijoules",
    "mc": "util::MilliCelsius",
    "us": "util::MicroSeconds",
    "pct": "util::Ratio",
}


def check_unit_safety(sf: SourceFile) -> list[Finding]:
    if not sf.rel.endswith((".h", ".hpp")):
        return []
    if not sf.rel.startswith(UNIT_SAFETY_DIRS):
        return []
    findings = []
    for m in UNIT_DECL.finditer(sf.code):
        lineno = sf.line_of_offset(m.start())
        if sf.allowed("unit-safety", lineno):
            continue
        name = m.group(2)
        suffix = name.rsplit("_", 1)[-1]
        hint = UNIT_TYPE_HINTS.get(suffix, "a util::units strong type")
        findings.append(Finding(
            "unit-safety", sf.rel, lineno,
            f"`{m.group(1)} {name}` declares a unit-suffixed surface with a "
            f"raw arithmetic type; use {hint} so mixed-unit arithmetic "
            "fails to compile",
            sf.snippet(lineno)))
    return findings


# ---------------------------------------------------------------------------
# Rule L7: thread-safety

# The annotated wrapper lives here; it is the one file allowed to own a
# raw std::mutex (it *is* the capability).
THREAD_ANNOTATIONS_HEADER = "src/util/thread_annotations.h"

RAW_LOCK_USE = re.compile(
    r"\bstd::(?:recursive_)?mutex\b|"
    r"\bstd::(?:scoped_lock|lock_guard|unique_lock)\b")
MUTEX_MEMBER = re.compile(
    r"\b(?:(?:util::)?Mutex|std::(?:recursive_)?mutex)\s+"
    r"([A-Za-z_]\w*)\s*;")
GUARD_MACRO = re.compile(r"\bCAPMAN_(?:PT_)?GUARDED_BY\s*\(|"
                         r"\bCAPMAN_REQUIRES\s*\(")


def check_thread_safety(sf: SourceFile, blocks: list[Block]) -> list[Finding]:
    if not sf.rel.startswith("src/") or sf.rel == THREAD_ANNOTATIONS_HEADER:
        return []
    findings = []
    # (a) Raw standard mutexes / lock RAII are invisible to clang's
    # -Wthread-safety pass; the util wrappers are drop-in replacements.
    for lineno, line in enumerate(sf.code_lines, 1):
        m = RAW_LOCK_USE.search(line)
        if not m:
            continue
        if sf.allowed("thread-safety", lineno):
            continue
        findings.append(Finding(
            "thread-safety", sf.rel, lineno,
            f"`{m.group(0)}` is unannotated and invisible to clang "
            "-Wthread-safety; use util::Mutex / util::MutexLock "
            "(src/util/thread_annotations.h)",
            sf.snippet(lineno)))
    # (b) A class that owns a mutex must say what the mutex protects:
    # at least one member carries CAPMAN_GUARDED_BY (or the class is
    # explicitly suppressed at the mutex member).
    for block in blocks:
        if block.kind != "struct":
            continue
        body = sf.code[block.start:block.end]
        for m in MUTEX_MEMBER.finditer(body):
            lineno = sf.line_of_offset(block.start + m.start())
            if sf.allowed("thread-safety", lineno):
                continue
            if GUARD_MACRO.search(body):
                continue
            findings.append(Finding(
                "thread-safety", sf.rel, lineno,
                f"class {block.name or '(anonymous)'} owns mutex "
                f"`{m.group(1)}` but no member carries CAPMAN_GUARDED_BY; "
                "annotate the guarded state so -Wthread-safety can check "
                "every access",
                sf.snippet(lineno)))
    return findings


# ---------------------------------------------------------------------------
# Rule L8: raw-unit

RAW_ESCAPE = re.compile(r"\.\s*raw\s*\(\s*\)")


def check_raw_unit(sf: SourceFile) -> list[Finding]:
    if not sf.rel.startswith("src/"):
        return []
    findings = []
    for lineno, line in enumerate(sf.code_lines, 1):
        if not RAW_ESCAPE.search(line):
            continue
        if sf.allowed("raw-unit", lineno):
            if sf.allow_reason("raw-unit", lineno) or \
                    "raw-unit" in sf.file_allows:
                continue
            findings.append(Finding(
                "raw-unit", sf.rel, lineno,
                ".raw() suppression has no reason; write "
                "capman-lint: allow(raw-unit, <why the raw value is safe>)",
                sf.snippet(lineno)))
            continue
        findings.append(Finding(
            "raw-unit", sf.rel, lineno,
            "undeclared strong-type escape `.raw()`; declare "
            "capman-lint: allow(raw-unit, <reason>) on this line or the "
            "line above",
            sf.snippet(lineno)))
    return findings


def check_suppression_syntax(sf: SourceFile) -> list[Finding]:
    """Typoed allow() slugs fail loudly under every rule selection."""
    findings = []
    for lineno, token in sf.bad_suppressions:
        findings.append(Finding(
            "bad-suppression", sf.rel, lineno,
            f"unknown rule `{token}` in capman-lint suppression; known "
            f"rules: {', '.join(sorted(SLUGS))} (a reason must follow a "
            "valid rule token, not replace it)",
            sf.snippet(lineno)))
    return findings


# ---------------------------------------------------------------------------
# compile_commands.json consumption

def load_compile_includes(path: Path) -> list[str]:
    """Extract the -I/-isystem include directories the real build uses."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    includes: list[str] = []
    seen = set()
    for entry in entries:
        command = entry.get("command")
        if command is None:
            command = " ".join(entry.get("arguments", []))
        directory = entry.get("directory", ".")
        tokens = command.split()
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            inc = None
            if tok in ("-I", "-isystem") and i + 1 < len(tokens):
                inc = tokens[i + 1]
                i += 1
            elif tok.startswith("-I"):
                inc = tok[2:]
            elif tok.startswith("-isystem"):
                inc = tok[len("-isystem"):]
            if inc:
                resolved = str((Path(directory) / inc).resolve())
                if resolved not in seen:
                    seen.add(resolved)
                    includes.append(resolved)
            i += 1
    return includes


# ---------------------------------------------------------------------------
# Driver

def load_files(root: Path, paths: list[Path]) -> list[SourceFile]:
    files = []
    seen = set()
    for base in paths:
        candidates = ([base] if base.is_file() else
                      sorted(base.rglob("*.h")) + sorted(base.rglob("*.cpp")))
        for path in candidates:
            if path.suffix not in (".h", ".cpp", ".cc", ".hpp"):
                continue
            rel = path.resolve().relative_to(root.resolve()).as_posix()
            if rel in seen or "/build" in f"/{rel}":
                continue
            seen.add(rel)
            files.append(SourceFile(path, rel,
                                    path.read_text(encoding="utf-8")))
    return files


def run_lint(root: Path, paths: list[Path], rules: set[str],
             compiler: str | None = None,
             extra_includes: list[str] | None = None
             ) -> tuple[list[Finding], list[str]]:
    """Run the selected rules; returns (findings, skipped-rule slugs)."""
    files = load_files(root, paths)
    findings: list[Finding] = []
    skipped: list[str] = []
    blocks_by_file = {sf.rel: parse_blocks(sf) for sf in files}

    # Bad suppressions are reported under every rule selection: a typoed
    # slug silently disables nothing, which is exactly the failure mode a
    # suppression grammar must make loud.
    for sf in files:
        findings += check_suppression_syntax(sf)

    if "determinism" in rules:
        for sf in files:
            findings += check_determinism(sf)
    if "ordered-output" in rules:
        unordered = collect_unordered_decls(files)
        for sf in files:
            findings += check_ordered_output(sf, blocks_by_file[sf.rel],
                                             unordered)
    if "config-validate" in rules:
        findings += check_config_validate(files, blocks_by_file)
    if "float-compare" in rules:
        for sf in files:
            clang_findings = libclang_float_compare(sf, root / "src",
                                                    extra_includes)
            findings += (clang_findings if clang_findings is not None
                         else check_float_compare(sf))
    if "header-hygiene" in rules:
        headers = [sf for sf in files if sf.rel.endswith(".h") and
                   sf.rel.startswith("src/")]
        cxx = find_compiler(compiler)
        if cxx is None:
            skipped.append("header-hygiene")
        elif headers:
            findings += check_header_hygiene(root, headers, cxx,
                                             extra_includes)
    if "unit-safety" in rules:
        for sf in files:
            findings += check_unit_safety(sf)
    if "thread-safety" in rules:
        for sf in files:
            findings += check_thread_safety(sf, blocks_by_file[sf.rel])
    if "raw-unit" in rules:
        for sf in files:
            findings += check_raw_unit(sf)

    # Nested blocks can surface the same site twice; keep one per location.
    unique = {}
    for f in findings:
        unique.setdefault((f.rule, f.path, f.line), f)
    findings = sorted(unique.values(),
                      key=lambda f: (f.path, f.line, f.rule))
    return findings, skipped


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="capman-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories (default: <root>/src)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root (default: the linter's repo)")
    parser.add_argument("--rules", default="all",
                        help="comma list of rules (L1..L8 or slugs)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    parser.add_argument("--compiler", default=None,
                        help="C++ compiler for header-hygiene (L5)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json whose include dirs feed "
                        "the L5 compiles and the libclang parse (default: "
                        "<root>/build/compile_commands.json when present)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for lnum, slug in RULES.items():
            print(f"{lnum}  {slug}")
        return EXIT_CLEAN

    if args.rules == "all":
        rules = set(RULES.values())
    else:
        rules = _parse_rule_list(args.rules)
        unknown = rules - set(RULES.values())
        if unknown:
            print(f"capman-lint: unknown rule(s): {sorted(unknown)}",
                  file=sys.stderr)
            return EXIT_USAGE

    root = args.root.resolve()
    paths = [Path(p) for p in args.paths] or [root / "src"]
    for p in paths:
        if not p.exists():
            print(f"capman-lint: no such path: {p}", file=sys.stderr)
            return EXIT_USAGE

    compile_db = args.compile_commands
    if compile_db is None:
        default_db = root / "build" / "compile_commands.json"
        if default_db.is_file():
            compile_db = default_db
    elif not compile_db.is_file():
        print(f"capman-lint: no such compile db: {compile_db}",
              file=sys.stderr)
        return EXIT_USAGE
    extra_includes = load_compile_includes(compile_db) if compile_db else []

    findings, skipped = run_lint(root, paths, rules, args.compiler,
                                 extra_includes)

    if args.json:
        print(json.dumps({
            "findings": [f.to_dict() for f in findings],
            "counts": {slug: sum(1 for f in findings if f.rule == slug)
                       for slug in sorted({f.rule for f in findings})},
            "skipped_rules": skipped,
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        for slug in skipped:
            print(f"capman-lint: rule {SLUGS[slug]}/{slug} skipped "
                  "(no C++ compiler found)", file=sys.stderr)
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"capman-lint: {status}", file=sys.stderr)

    if findings:
        return EXIT_FINDINGS
    if skipped and rules == {"header-hygiene"}:
        return EXIT_SKIP
    return EXIT_CLEAN


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe; exit quietly with
        # the findings status unknowable — treat as usage-level failure.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(EXIT_USAGE)
