#!/usr/bin/env bash
# Builds the unit-arithmetic-hot suites under UndefinedBehaviorSanitizer
# alone (-DCAPMAN_UBSAN=ON — no ASan, so the run is fast enough to gate
# every build) and executes them: the util::units strong types, the
# power-budget arbiter, the PowerConsumer shaping path, and the battery
# charger energy accounting. These are the surfaces the strong-typed
# units migration touched — signed overflow, float-cast overflow, or an
# invalid enum load introduced there would surface here first. Wired into
# CTest as the `ubsan_smoke` test; run manually with:
#
#   scripts/check_ubsan.sh [build-dir]     # default: build-ubsan
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ubsan}"

cmake -B "$build_dir" -S "$repo_root" -DCAPMAN_UBSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build_dir" -j \
      --target util_units_test core_power_budget_test \
               device_power_consumer_test battery_charger_test >/dev/null

export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1

"$build_dir/tests/util_units_test" --gtest_brief=1
"$build_dir/tests/core_power_budget_test" --gtest_brief=1
"$build_dir/tests/device_power_consumer_test" --gtest_brief=1
"$build_dir/tests/battery_charger_test" --gtest_brief=1

echo "check_ubsan: UBSan unit-arithmetic suites passed"
