#!/usr/bin/env bash
# Builds the actuator-path test suites under AddressSanitizer + UBSan
# (-DCAPMAN_SANITIZE=ON) and runs the fast fault-injection / switch-
# facility / degradation-guard tests under them. Wired into CTest as the
# `sanitize_smoke` test; run manually with:
#
#   scripts/check_asan.sh [build-dir]      # default: build-asan
#
# The full-discharge-cycle tests are excluded — minutes each under ASan —
# but FaultInjection.FullChaosSmoke (a capped run with every fault knob
# on) keeps the whole engine+injector path covered.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" -DCAPMAN_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build_dir" -j \
      --target sim_faults_test battery_switcher_supercap_test >/dev/null

filter='FaultPlan.*:FaultySwitchFacility.*:SensorChannel.*:DegradationGuard.*'
filter="$filter:FaultInjection.FullChaosSmoke"
export ASAN_OPTIONS=detect_leaks=1
export UBSAN_OPTIONS=print_stacktrace=1

"$build_dir/tests/sim_faults_test" --gtest_filter="$filter" \
    --gtest_brief=1
"$build_dir/tests/battery_switcher_supercap_test" --gtest_brief=1

echo "check_asan: sanitized fault/switch suites passed"
