#!/usr/bin/env bash
# One-shot QA pipeline: every repository check in sequence with a summary
# table. Usage:
#
#   scripts/check_all.sh [--fast] [build-dir]       # default: build
#
# --fast runs only the checks that need no compilation — docs, format,
# every capman-lint rule except L5, the lint/schema self-tests — which
# finishes in seconds and is the right pre-commit loop. The full run adds
# the sanitizer rebuilds (asan/ubsan/tsan), clang-tidy, header hygiene,
# thread-safety, the fleet smoke, and the crash-resume smoke.
#
# Checks that need missing tooling (clang-tidy, clang-format) report SKIP
# rather than FAIL — the same exit-77 convention the CTest registrations
# use. Exits non-zero iff at least one check FAILed.
set -u

fast=0
if [ "${1:-}" = "--fast" ]; then
  fast=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

names=()
results=()
times=()
failures=0

run_check() {
  # run_check <name> <command...>
  local name="$1"
  shift
  local start end status
  echo "==> $name"
  start=$(date +%s)
  "$@"
  status=$?
  end=$(date +%s)
  names+=("$name")
  times+=("$((end - start))s")
  if [ "$status" -eq 0 ]; then
    results+=("PASS")
  elif [ "$status" -eq 77 ]; then
    results+=("SKIP")
  else
    results+=("FAIL")
    failures=$((failures + 1))
  fi
}

run_check docs            "$repo_root/scripts/check_docs.sh"
run_check format          "$repo_root/scripts/check_format.sh"
run_check capman-lint     python3 "$repo_root/scripts/capman_lint.py" \
                          --root "$repo_root" \
                          --rules L1,L2,L3,L4,L6,L7,L8
run_check lint-selftest   python3 "$repo_root/scripts/test_capman_lint.py"
run_check schema-selftest python3 \
                          "$repo_root/scripts/check_trace_schema.py" \
                          --self-test

if [ "$fast" -eq 0 ]; then
  run_check headers         python3 "$repo_root/scripts/capman_lint.py" \
                            --root "$repo_root" --rules L5
  run_check clang-tidy      "$repo_root/scripts/check_tidy.sh" "$build_dir"
  run_check thread-safety   "$repo_root/scripts/check_thread_safety.sh"
  run_check asan            "$repo_root/scripts/check_asan.sh"
  run_check ubsan           "$repo_root/scripts/check_ubsan.sh"
  run_check tsan            "$repo_root/scripts/check_tsan.sh"

  # Small-fleet smoke: the FleetRunner bit-identity contract on 10^3
  # devices (bench_fleet_scaling --smoke; exit 77 = constrained machine).
  fleet_smoke() {
    local bench="$build_dir/bench/bench_fleet_scaling"
    if [[ ! -x "$bench" ]]; then
      echo "fleet-smoke: $bench not built; run cmake --build $build_dir" \
           "first" >&2
      return 1
    fi
    "$bench" --smoke
  }
  run_check fleet-smoke     fleet_smoke

  # Crash-resume smoke: SIGKILL a checkpointed fleet campaign, resume,
  # require byte-identical --json; torn/corrupt tails must roll back
  # (scripts/check_crash_resume.sh, the crash_resume_check CTest gate).
  crash_resume_smoke() {
    local fleet="$build_dir/examples/capman_fleet"
    if [[ ! -x "$fleet" ]]; then
      echo "crash-resume: $fleet not built; run cmake --build $build_dir" \
           "first" >&2
      return 1
    fi
    "$repo_root/scripts/check_crash_resume.sh" "$fleet"
  }
  run_check crash-resume    crash_resume_smoke
fi

echo
echo "================ check_all summary ================"
printf '%-18s %-6s %s\n' "check" "result" "time"
printf '%-18s %-6s %s\n' "-----" "------" "----"
for i in "${!names[@]}"; do
  printf '%-18s %-6s %s\n' "${names[$i]}" "${results[$i]}" "${times[$i]}"
done
echo "==================================================="

if [ "$failures" -ne 0 ]; then
  echo "check_all: $failures check(s) FAILED" >&2
  exit 1
fi
echo "check_all: all checks passed (or skipped for missing tooling)"
