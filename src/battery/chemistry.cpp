#include "battery/chemistry.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace capman::battery {

namespace {

// Calibration notes (see DESIGN.md §6):
//  * usable_capacity_factor gives big chemistries (LCO/NCA) ~11-25% more
//    usable energy per labeled mAh than the LITTLE ones — this drives the
//    paper's "NCA +24% on Video" and the sparse-toggle advantage.
//  * surge_resistance/tau give big chemistries a deep slow V-edge (large D1
//    loss on every power step) and LITTLE ones a shallow fast dip — this
//    drives "LMO +14.3% on bursty idle".
//  * self_discharge penalizes LMO/NCA lifetime-1-star chemistries on
//    multi-day sparse workloads (toggle advantage decay, Fig. 2b).
//  * efficiency curves are mild and monotone-ish; the big chemistries peak
//    at moderate C-rates and roll off past 1C, the LITTLE ones stay flat to
//    high C.

const std::array<ChemistryProfile, 6> kCatalogue = {{
    {Chemistry::kLCO,
     "LCO",
     "LiCoO2",
     {2, 3, 2, 4, 2},
     /*nominal_voltage_v=*/3.90,
     /*voltage_swing_v=*/0.80,
     /*cutoff_voltage_v=*/3.00,
     /*series_resistance_ohm_at_1ah=*/1.45,
     /*surge_resistance_ohm_at_1ah=*/0.50,
     /*surge_tau_s=*/6.0,
     /*kibam_c=*/0.30,
     /*kibam_k_per_s=*/0.0005,
     /*usable_capacity_factor=*/1.25,
     /*self_discharge_per_day=*/0.004,
     /*max_c_rate=*/1.0,
     {{0.02, 0.98}, {0.10, 0.97}, {0.30, 0.95}, {0.60, 0.87}, {1.00, 0.74},
      {2.00, 0.52}}},
    {Chemistry::kNCA,
     "NCA",
     "LiNiCoAlO2",
     {3, 1, 3, 4, 2},
     /*nominal_voltage_v=*/3.65,
     /*voltage_swing_v=*/0.90,
     /*cutoff_voltage_v=*/3.00,
     /*series_resistance_ohm_at_1ah=*/0.85,
     /*surge_resistance_ohm_at_1ah=*/0.40,
     /*surge_tau_s=*/5.0,
     /*kibam_c=*/0.38,
     /*kibam_k_per_s=*/0.0035,
     /*usable_capacity_factor=*/1.55,
     /*self_discharge_per_day=*/0.006,
     /*max_c_rate=*/2.0,
     // The 0.07-0.12C band is deliberately inefficient: calibrated so that
     // at equal labeled capacity LMO outlasts NCA on screen-on-idle
     // (~0.09C with housekeeping bursts, paper Fig. 2a) while NCA keeps its
     // advantage on steady video (~0.2C) and on sparse toggles (~0.02C).
     {{0.02, 0.98}, {0.07, 0.96}, {0.12, 0.52}, {0.16, 0.95}, {0.30, 0.97},
      {0.60, 0.90}, {1.00, 0.78}, {2.00, 0.58}}},
    {Chemistry::kLMO,
     "LMO",
     "LiMn2O4",
     {3, 1, 4, 3, 3},
     /*nominal_voltage_v=*/3.80,
     /*voltage_swing_v=*/0.70,
     /*cutoff_voltage_v=*/3.00,
     /*series_resistance_ohm_at_1ah=*/0.110,
     /*surge_resistance_ohm_at_1ah=*/0.12,
     /*surge_tau_s=*/0.8,
     /*kibam_c=*/0.62,
     /*kibam_k_per_s=*/0.0060,
     /*usable_capacity_factor=*/1.12,
     /*self_discharge_per_day=*/0.050,
     /*max_c_rate=*/10.0,
     {{0.02, 0.93}, {0.10, 0.92}, {0.30, 0.89}, {0.60, 0.87}, {1.00, 0.86},
      {2.00, 0.84}}},
    {Chemistry::kNMC,
     "NMC",
     "LiNiMnCoO2",
     {4, 4, 4, 3, 3},
     /*nominal_voltage_v=*/3.70,
     /*voltage_swing_v=*/0.75,
     /*cutoff_voltage_v=*/3.00,
     /*series_resistance_ohm_at_1ah=*/0.120,
     /*surge_resistance_ohm_at_1ah=*/0.16,
     /*surge_tau_s=*/1.0,
     /*kibam_c=*/0.58,
     /*kibam_k_per_s=*/0.0050,
     /*usable_capacity_factor=*/1.12,
     /*self_discharge_per_day=*/0.010,
     /*max_c_rate=*/8.0,
     {{0.02, 0.96}, {0.10, 0.94}, {0.30, 0.93}, {0.60, 0.91}, {1.00, 0.89},
      {2.00, 0.84}}},
    {Chemistry::kLFP,
     "LFP",
     "LiFePO4",
     {2, 4, 4, 2, 5},
     /*nominal_voltage_v=*/3.25,
     /*voltage_swing_v=*/0.35,
     /*cutoff_voltage_v=*/2.50,
     /*series_resistance_ohm_at_1ah=*/0.090,
     /*surge_resistance_ohm_at_1ah=*/0.10,
     /*surge_tau_s=*/0.7,
     /*kibam_c=*/0.68,
     /*kibam_k_per_s=*/0.0070,
     /*usable_capacity_factor=*/1.00,
     /*self_discharge_per_day=*/0.008,
     /*max_c_rate=*/12.0,
     {{0.02, 0.96}, {0.10, 0.95}, {0.30, 0.94}, {0.60, 0.93}, {1.00, 0.92},
      {2.00, 0.89}}},
    {Chemistry::kLTO,
     "LTO",
     "LiTi5O12",
     {1, 5, 5, 1, 5},
     /*nominal_voltage_v=*/2.40,
     /*voltage_swing_v=*/0.45,
     /*cutoff_voltage_v=*/1.80,
     /*series_resistance_ohm_at_1ah=*/0.070,
     /*surge_resistance_ohm_at_1ah=*/0.07,
     /*surge_tau_s=*/0.5,
     /*kibam_c=*/0.78,
     /*kibam_k_per_s=*/0.0100,
     /*usable_capacity_factor=*/0.88,
     /*self_discharge_per_day=*/0.005,
     /*max_c_rate=*/20.0,
     {{0.02, 0.97}, {0.10, 0.96}, {0.30, 0.96}, {0.60, 0.95}, {1.00, 0.94},
      {2.00, 0.92}}},
}};

}  // namespace

const ChemistryProfile& chemistry_profile(Chemistry chemistry) {
  for (const auto& profile : kCatalogue) {
    if (profile.chemistry == chemistry) return profile;
  }
  assert(false && "unknown chemistry");
  return kCatalogue.front();
}

const std::vector<Chemistry>& all_chemistries() {
  static const std::vector<Chemistry> kAll = {
      Chemistry::kLCO, Chemistry::kNCA, Chemistry::kLMO,
      Chemistry::kNMC, Chemistry::kLFP, Chemistry::kLTO};
  return kAll;
}

BatteryClass classify(const ChemistryProfile& profile) {
  return profile.stars.energy_density > profile.stars.discharge_rate
             ? BatteryClass::kBig
             : BatteryClass::kLittle;
}

double delivery_efficiency(const ChemistryProfile& profile, double c_rate) {
  const auto& curve = profile.efficiency_curve;
  assert(!curve.empty());
  if (c_rate <= curve.front().c_rate) return curve.front().efficiency;
  if (c_rate >= curve.back().c_rate) return curve.back().efficiency;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (c_rate <= curve[i].c_rate) {
      const double t = (c_rate - curve[i - 1].c_rate) /
                       (curve[i].c_rate - curve[i - 1].c_rate);
      return curve[i - 1].efficiency +
             t * (curve[i].efficiency - curve[i - 1].efficiency);
    }
  }
  return curve.back().efficiency;
}

std::string_view to_string(Chemistry chemistry) {
  return chemistry_profile(chemistry).name;
}

std::string_view to_string(BatteryClass cls) {
  return cls == BatteryClass::kBig ? "big" : "LITTLE";
}

}  // namespace capman::battery
