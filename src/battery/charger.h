// CC-CV charger for cells and big.LITTLE packs.
//
// The paper scopes its evaluation to "one discharge cycle, i.e., duration
// between two device charges"; this module closes the loop so multi-cycle
// experiments (and charge-time questions for heterogeneous packs) can be
// run on the same simulated cells. Standard constant-current /
// constant-voltage profile: charge at a fixed C-rate until the terminal
// voltage reaches the CV setpoint, then taper until the current falls
// below the cutoff.
#pragma once

#include <string>
#include <vector>

#include "battery/cell.h"
#include "battery/pack.h"
#include "util/units.h"

namespace capman::battery {

struct ChargerConfig {
  double cc_c_rate = 0.7;          // constant-current phase, in C
  double cv_headroom_v = 0.05;     // CV setpoint = full-charge OCV - this
  double cutoff_c_rate = 0.05;     // taper ends below this C-rate
  double efficiency = 0.95;        // wall-to-cell charge efficiency

  /// Human-readable configuration errors; empty means valid. Checked by
  /// the Charger constructor (throws std::invalid_argument).
  [[nodiscard]] std::vector<std::string> validate() const;
};

struct ChargeStepResult {
  util::Amperes current;   // current pushed into the cell this step
  util::Joules accepted;   // chemical energy stored
  util::Joules losses;     // charger + cell losses (heat)
  bool done = false;       // taper finished (cell considered full)
};

class Charger {
 public:
  explicit Charger(const ChargerConfig& config = {});

  /// Advance one charging step on a single cell.
  ChargeStepResult step(Cell& cell, util::Seconds dt) const;

  /// Charge a cell until done; returns the wall-clock charging time.
  util::Seconds charge_fully(Cell& cell, util::Seconds dt) const;

  /// Charge both cells of a pack (sequentially, LITTLE first - it is the
  /// surge reserve you want back soonest). Returns total charging time.
  util::Seconds charge_fully(DualBatteryPack& pack, util::Seconds dt) const;

  [[nodiscard]] const ChargerConfig& config() const { return config_; }

 private:
  ChargerConfig config_;
};

}  // namespace capman::battery
