// Single-cell battery simulator.
//
// Combines three classic models so that every phenomenon the paper's
// motivation section measures on physical cells emerges from the same code
// path the scheduler exercises:
//
//  * Kinetic Battery Model (KiBaM, two-well): rate-capacity effect (heavy
//    sustained draw strands bound charge) and charge recovery at rest.
//  * Equivalent circuit: OCV(state-of-charge) + series resistance R0 +
//    first-order RC surge overpotential -> the V-edge voltage dip/recovery
//    of paper Fig. 3, with I^2*R and overpotential losses turning into heat.
//  * Chemistry-calibrated coulombic delivery efficiency vs C-rate
//    (battery/chemistry.h) for the steady-state differences of Fig. 2.
//
// All losses are reported as heat so the thermal network (src/thermal) sees
// exactly the energy the battery wastes.
#pragma once

#include "battery/chemistry.h"
#include "util/units.h"

namespace capman::battery {

class Cell {
 public:
  /// A cell of `chemistry` with the given labeled capacity, fully charged.
  Cell(Chemistry chemistry, double labeled_capacity_mah);

  struct DrawResult {
    util::Joules delivered;       // energy delivered to the load
    util::Joules losses;          // energy wasted (heat)
    util::Watts heat;             // losses / dt
    util::Volts terminal_voltage; // under load at end of step
    util::Amperes current;        // load current during the step
    bool brownout = false;        // demand could not be met this step
  };

  /// Supply `load` for `dt`. If the cell cannot sustain the load (voltage
  /// sag below cutoff, C-rate limit, or empty available well) the result is
  /// a brownout with zero delivery; the caller (pack) may fall back to the
  /// sibling cell. A zero/negative load is a rest step (recovery +
  /// self-discharge only).
  DrawResult draw(util::Watts load, util::Seconds dt);

  /// Convenience: rest for dt.
  void rest(util::Seconds dt) { (void)draw(util::Watts{0.0}, dt); }

  // --- Telemetry ---
  /// Total state of charge (available + bound wells) in [0, 1].
  [[nodiscard]] double soc() const;
  /// Fill level of the available well in [0, 1]; this is what the terminal
  /// voltage tracks, so it dips under load and recovers at rest.
  [[nodiscard]] double available_fill() const;
  [[nodiscard]] util::Volts open_circuit_voltage() const;
  /// Quasi-static terminal voltage the cell would show under `load` now.
  [[nodiscard]] util::Volts terminal_voltage(util::Watts load) const;
  /// True once the cell can no longer power anything (charge exhausted).
  [[nodiscard]] bool exhausted() const;
  /// Whether the cell could sustain `load` right now without brownout,
  /// with a safety margin (a rail within `voltage_margin` of cutoff or a
  /// current within 10% of the C-rate limit is not considered serviceable;
  /// the comparator needs headroom to latch).
  [[nodiscard]] bool can_supply(util::Watts load,
                                util::Volts voltage_margin = util::Volts{
                                    0.08}) const;
  /// Remaining chemical energy (both wells, at current OCV).
  [[nodiscard]] util::Joules energy_remaining() const;
  /// Charge stranded in the bound well when delivery stops (rate-capacity
  /// penalty observable at end of discharge).
  [[nodiscard]] util::Coulombs bound_charge() const;
  [[nodiscard]] util::Coulombs available_charge() const;

  [[nodiscard]] const ChemistryProfile& profile() const { return *profile_; }
  [[nodiscard]] double capacity_ah() const { return labeled_capacity_ah_; }
  [[nodiscard]] util::Volts surge_overpotential() const {
    return util::Volts{v_rc_};
  }
  [[nodiscard]] util::Ohms series_resistance() const {
    return util::Ohms{r0_};
  }

  /// Push charging current into the cell for dt (charge enters the
  /// available well and redistributes). Returns the coulombs accepted
  /// (less than current*dt*efficiency when the cell tops out).
  util::Coulombs charge(util::Amperes current, util::Seconds dt,
                        double efficiency = 1.0);

  /// True when the cell holds (nearly) its full charge.
  [[nodiscard]] bool full() const;

  /// Reset to full charge (fresh discharge cycle).
  void recharge();

 private:
  /// Closed-form KiBaM update for constant well current `i_amps` over dt.
  void kibam_step(double i_amps, double dt_s);
  [[nodiscard]] double ocv_at(double fill) const;
  /// Load current solving P = (V_eff - I*R0) * I; negative if infeasible.
  [[nodiscard]] double solve_current(double v_eff, double load_w) const;

  const ChemistryProfile* profile_;
  double labeled_capacity_ah_;
  double full_charge_c_;  // coulombs when full (label * usable factor)
  double y1_;             // available well, coulombs
  double y2_;             // bound well, coulombs
  // Surge overpotential (V-edge): v_rc = R1 * max(I - I_ref, 0) where
  // I_ref is a slow EWMA of the load current (time constant = the
  // chemistry's surge tau). A load step spikes the overpotential by
  // R1 * dI; under steady load I_ref catches up and the dip relaxes ("the
  // voltage first quickly drops, then rises up at a relative lower
  // level"); at rest it vanishes. Big chemistries (large R1, slow tau) pay
  // a large D1 area on every power step; LITTLE ones barely notice.
  double v_rc_ = 0.0;     // surge overpotential, volts
  double i_ref_ = 0.0;    // slow reference current, amps
  double r0_;             // series resistance, ohms
  double r1_;             // surge resistance, ohms
};

}  // namespace capman::battery
