#include "battery/vedge.h"

#include <algorithm>
#include <cassert>

namespace capman::battery {

VEdgeAreas analyze_vedge(const util::TimeSeries& voltage, double load_start,
                         double load_end) {
  assert(load_end > load_start);
  VEdgeAreas areas{};
  const std::size_t n = voltage.size();
  if (n < 4) return areas;

  // V0: mean over the pre-load window.
  util::RunningStats pre;
  for (std::size_t i = 0; i < n && voltage.time_at(i) < load_start; ++i) {
    pre.add(voltage.value_at(i));
  }
  areas.v0 = pre.count() > 0 ? pre.mean() : voltage.value_at(0);

  // V_rec: mean over the last quarter of the post-load window.
  const double t_last = voltage.time_at(n - 1);
  const double tail_start = load_end + 0.75 * (t_last - load_end);
  util::RunningStats tail;
  double v_rel = areas.v0;
  double v_min = areas.v0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = voltage.time_at(i);
    const double v = voltage.value_at(i);
    if (t >= tail_start) tail.add(v);
    if (t <= load_end) v_rel = v;
    if (t >= load_start && t <= load_end) v_min = std::min(v_min, v);
  }
  areas.v_recovered = tail.count() > 0 ? tail.mean() : v_rel;
  areas.v_min = v_min;

  // Integrate D1 over the load period and D3 over the recovery period.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double t0 = voltage.time_at(i);
    const double t1 = voltage.time_at(i + 1);
    const double vmid = 0.5 * (voltage.value_at(i) + voltage.value_at(i + 1));
    const double dt = t1 - t0;
    if (t0 >= load_start && t1 <= load_end) {
      areas.d1_vs += std::max(areas.v_recovered - vmid, 0.0) * dt;
    } else if (t0 >= load_end) {
      areas.d3_vs += (vmid - v_rel) * dt;
    }
  }
  areas.d2_vs = std::max(areas.v0 - areas.v_recovered, 0.0) *
                (load_end - load_start);
  return areas;
}

}  // namespace capman::battery
