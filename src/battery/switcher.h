// The battery switch facility of paper Section III-E / Fig. 9-11.
//
// Hardware being simulated: an LM339AD comparator driving two MOS tubes
// from a 20 kHz oscillator. The comparator raises to 3.5 V to select the
// big battery and drops to 0.3 V to select LITTLE; each signal flip is one
// switch event, costs a fixed energy loss, injects heat, and takes one
// oscillator-quantized latency (millisecond scale) before the new cell
// carries the load.
//
// The class is an open base: request/advance and the latency draw are
// virtual so a decorator (sim::FaultySwitchFacility) can model a degraded
// board — stuck comparator, latency jitter, transient request failures,
// supercapacitor droop — while the pack and the policies keep talking to
// the same interface.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace capman::battery {

enum class BatterySelection { kBig, kLittle };

inline const char* to_string(BatterySelection sel) {
  return sel == BatterySelection::kBig ? "big" : "LITTLE";
}

struct SwitchFacilityConfig {
  util::Seconds latency = util::milliseconds(1.0);  // actuation delay
  util::Joules switch_loss = util::Joules{0.05};    // per flip
  double oscillator_hz = 20'000.0;                  // paper: 20 kHz clock
  util::Volts high_level = util::Volts{3.5};        // comparator "big"
  util::Volts low_level = util::Volts{0.3};         // comparator "LITTLE"

  /// Human-readable configuration errors; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

class SwitchFacility {
 public:
  explicit SwitchFacility(const SwitchFacilityConfig& config,
                          BatterySelection initial = BatterySelection::kBig);
  virtual ~SwitchFacility() = default;

  /// Request a battery at simulation time `now`. A request equal to the
  /// current (or already pending) selection is a no-op. Returns true if a
  /// switch was initiated.
  virtual bool request(BatterySelection target, util::Seconds now);

  /// Advance to time `now`; completes a pending switch whose latency has
  /// elapsed. Returns the energy lost to switching during this advance
  /// (0 when no switch completed).
  virtual util::Joules advance(util::Seconds now);

  /// Fraction of the supercapacitor's surge ride-through the electrical
  /// path currently supports. Ideal hardware always reports 1.0; fault
  /// decorators derate it while a droop episode is active.
  [[nodiscard]] virtual double surge_ride_through(util::Seconds /*now*/) const {
    return 1.0;
  }

  /// The cell currently carrying the load.
  [[nodiscard]] BatterySelection active() const { return active_; }
  /// The selection that will be active once any pending switch completes.
  [[nodiscard]] BatterySelection target() const;
  [[nodiscard]] bool switch_pending() const { return pending_.has_value(); }

  /// Comparator output voltage for the current selection (Fig. 9 signal).
  [[nodiscard]] util::Volts signal_level() const;

  [[nodiscard]] std::size_t switch_count() const { return switch_count_; }
  [[nodiscard]] util::Joules total_switch_loss() const {
    return util::Joules{total_loss_j_};
  }

  [[nodiscard]] const SwitchFacilityConfig& config() const { return config_; }

 protected:
  /// Actuation latency of a switch initiated at `now`, before oscillator
  /// quantization. The ideal board always takes the configured latency;
  /// fault decorators add jitter/spikes per flip.
  virtual util::Seconds switch_latency(util::Seconds now);

 private:
  struct PendingSwitch {
    BatterySelection target;
    util::Seconds complete_at;
    util::Seconds initiated_at;  // request time, for the transient span
  };

  SwitchFacilityConfig config_;
  BatterySelection active_;
  std::optional<PendingSwitch> pending_;
  std::size_t switch_count_ = 0;
  double total_loss_j_ = 0.0;
};

}  // namespace capman::battery
