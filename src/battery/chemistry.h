// Chemistry catalogue for the six Li-ion families of paper Table I, with
// the star ratings the paper reports (cost efficiency / lifetime / discharge
// rate / energy density, plus the safety axis of Fig. 4) and the physical
// parameters our cell simulator needs.
//
// Physical parameters are *calibrated*, not measured: the paper's cells are
// physical hardware we do not have, so each chemistry is parameterized to
// reproduce the paper's observed orderings (Fig. 1/2: LMO outlasts NCA on
// bursty-idle, NCA outlasts LMO on steady video and on sparse toggles with
// an advantage that decays as toggle frequency rises). EXPERIMENTS.md
// records the calibration targets next to the measured outcomes.
#pragma once

#include <string_view>
#include <vector>

#include "util/units.h"

namespace capman::battery {

enum class Chemistry { kLCO, kNCA, kLMO, kNMC, kLFP, kLTO };

/// Paper Section II: big = high energy density / low discharge rate;
/// LITTLE = high discharge rate / low energy density.
enum class BatteryClass { kBig, kLittle };

/// 1-5 stars, straight from Table I (safety from the Fig. 4 radar axes).
struct StarRating {
  int cost_efficiency = 0;
  int lifetime = 0;
  int discharge_rate = 0;
  int energy_density = 0;
  int safety = 0;
};

/// One point of the steady-state delivery-efficiency curve: at discharge
/// rate `c_rate` (multiples of rated capacity per hour) the cell delivers
/// fraction `efficiency` of the drawn charge to the load; the rest is lost
/// as heat. Piecewise-linear between points, clamped outside.
struct EfficiencyPoint {
  double c_rate;
  double efficiency;
};

struct ChemistryProfile {
  Chemistry chemistry;
  std::string_view name;     // e.g. "NCA"
  std::string_view formula;  // e.g. "LiNiCoAlO2"
  StarRating stars;

  // --- Electrical ---
  double nominal_voltage_v;   // OCV plateau at 50% available charge
  double voltage_swing_v;     // OCV span across the SoC window
  double cutoff_voltage_v;    // terminal voltage at which the cell cuts off
  double series_resistance_ohm_at_1ah;  // R0, scaled inversely with capacity

  // Surge transient (the V-edge of paper Fig. 3): a first-order RC
  // overpotential. Big chemistries have a deep, slow dip (large D1);
  // LITTLE chemistries a shallow, fast one.
  double surge_resistance_ohm_at_1ah;  // R1
  double surge_tau_s;                  // RC time constant

  // --- Kinetic battery model (two-well) ---
  double kibam_c;        // fraction of charge in the available well
  double kibam_k_per_s;  // well-exchange rate constant

  // --- Capacity & losses ---
  // Usable energy per labeled amp-hour differs across chemistries (depth of
  // discharge, plateau voltage, packaging); this factor scales the stored
  // charge relative to the label.
  double usable_capacity_factor;
  double self_discharge_per_day;  // fraction of remaining charge per day
  double max_c_rate;              // sustained discharge limit

  std::vector<EfficiencyPoint> efficiency_curve;
};

/// Catalogue lookup (static storage, valid for program lifetime).
const ChemistryProfile& chemistry_profile(Chemistry chemistry);

/// All six catalogued chemistries, Table I order.
const std::vector<Chemistry>& all_chemistries();

/// Paper's classification rule: a chemistry whose energy-density rating
/// exceeds its discharge-rate rating is a big battery; otherwise LITTLE.
/// Reproduces the Result column of Table I exactly.
BatteryClass classify(const ChemistryProfile& profile);

/// Steady-state delivery efficiency at the given C-rate (piecewise linear).
double delivery_efficiency(const ChemistryProfile& profile, double c_rate);

std::string_view to_string(Chemistry chemistry);
std::string_view to_string(BatteryClass cls);

}  // namespace capman::battery
