// V-edge analysis (paper Section II, Fig. 3, after Xu et al., NSDI'13).
//
// When a power demand arrives, the battery terminal voltage dips sharply,
// then — once the demand ends — recovers to a level below the initial
// voltage. The paper reads three areas off this curve:
//   D1: the transient dip below the eventually-recovered level while the
//       load is applied (the surge loss a LITTLE battery minimizes),
//   D2: the permanent drop (unavoidable consumption),
//   D3: the recovery gained after release (what a big battery maximizes).
// The power-saving potential of scheduling the right battery is D3 - D1.
//
// Operational definitions used here (the paper gives only the picture):
//   V0     = mean voltage over the pre-load window,
//   V_rel  = voltage at the moment the load is released,
//   V_rec  = mean voltage over the tail of the post-load window,
//   D1     = integral over the load period of max(V_rec - V(t), 0) dt,
//   D2     = (V0 - V_rec) * load duration,
//   D3     = integral over the post period of (V(t) - V_rel) dt.
#pragma once

#include "util/stats.h"
#include "util/units.h"

namespace capman::battery {

struct VEdgeAreas {
  double d1_vs = 0.0;  // volt-seconds
  double d2_vs = 0.0;
  double d3_vs = 0.0;
  double v0 = 0.0;
  double v_min = 0.0;
  double v_recovered = 0.0;
  /// The paper's "potential power saving we seek": D3 - D1.
  [[nodiscard]] double saving_potential_vs() const { return d3_vs - d1_vs; }
};

/// Analyze a voltage trace around one load step.
/// `load_start`/`load_end` delimit the demand pulse; samples after
/// `load_end` up to the series end form the recovery window.
VEdgeAreas analyze_vedge(const util::TimeSeries& voltage, double load_start,
                         double load_end);

}  // namespace capman::battery
