#include "battery/switcher.h"

#include <cmath>

namespace capman::battery {

SwitchFacility::SwitchFacility(const SwitchFacilityConfig& config,
                               BatterySelection initial)
    : config_(config), active_(initial) {}

BatterySelection SwitchFacility::target() const {
  return pending_ ? pending_->target : active_;
}

bool SwitchFacility::request(BatterySelection target, util::Seconds now) {
  if (target == this->target()) return false;
  if (pending_ && pending_->target != active_ && target == active_) {
    // Cancel an in-flight switch back to the currently active cell.
    pending_.reset();
    return false;
  }
  // Quantize the completion time to the oscillator clock, then add latency.
  const double tick = 1.0 / config_.oscillator_hz;
  const double quantized =
      std::ceil(now.value() / tick) * tick + config_.latency.value();
  pending_ = PendingSwitch{target, util::Seconds{quantized}};
  return true;
}

util::Joules SwitchFacility::advance(util::Seconds now) {
  if (!pending_ || now < pending_->complete_at) return util::Joules{0.0};
  active_ = pending_->target;
  pending_.reset();
  ++switch_count_;
  total_loss_j_ += config_.switch_loss.value();
  return config_.switch_loss;
}

util::Volts SwitchFacility::signal_level() const {
  return active_ == BatterySelection::kBig ? config_.high_level
                                           : config_.low_level;
}

}  // namespace capman::battery
