#include "battery/switcher.h"

#include <cmath>
#include <string>

#include "obs/spans.h"

namespace capman::battery {

std::vector<std::string> SwitchFacilityConfig::validate() const {
  std::vector<std::string> errors;
  if (!(latency.value() >= 0.0)) {
    errors.push_back("latency (switch latency) must be >= 0");
  }
  if (!(switch_loss.value() >= 0.0)) {
    errors.push_back("switch_loss (per-switch loss) must be >= 0");
  }
  if (!(oscillator_hz > 0.0)) {
    errors.push_back("oscillator_hz (oscillator frequency) must be > 0");
  }
  if (!(high_level.value() > low_level.value())) {
    errors.push_back(
        "high_level must exceed low_level (big vs LITTLE must be "
        "distinguishable by the comparator)");
  }
  return errors;
}

SwitchFacility::SwitchFacility(const SwitchFacilityConfig& config,
                               BatterySelection initial)
    : config_(config), active_(initial) {}

BatterySelection SwitchFacility::target() const {
  return pending_ ? pending_->target : active_;
}

util::Seconds SwitchFacility::switch_latency(util::Seconds /*now*/) {
  return config_.latency;
}

bool SwitchFacility::request(BatterySelection target, util::Seconds now) {
  if (target == this->target()) return false;
  if (pending_ && pending_->target != active_ && target == active_) {
    // Cancel an in-flight switch back to the currently active cell.
    pending_.reset();
    return false;
  }
  // Quantize the completion time to the oscillator clock, then add latency.
  const double tick = 1.0 / config_.oscillator_hz;
  const double quantized =
      std::ceil(now.value() / tick) * tick + switch_latency(now).value();
  pending_ = PendingSwitch{target, util::Seconds{quantized}, now};
  return true;
}

util::Joules SwitchFacility::advance(util::Seconds now) {
  if (!pending_ || now < pending_->complete_at) return util::Joules{0.0};
  // One span per completed transient on the simulation-time actuator
  // track: request time -> comparator latch (Fig. 10's switching window).
  if (auto* profiler = obs::SpanProfiler::current()) {
    profiler->sim_complete(
        pending_->target == BatterySelection::kBig ? "switch->big"
                                                   : "switch->LITTLE",
        "actuator", obs::SpanProfiler::kActuatorTrack,
        pending_->initiated_at.value(),
        pending_->complete_at.value() - pending_->initiated_at.value());
  }
  active_ = pending_->target;
  pending_.reset();
  ++switch_count_;
  total_loss_j_ += config_.switch_loss.value();
  return config_.switch_loss;
}

util::Volts SwitchFacility::signal_level() const {
  return active_ == BatterySelection::kBig ? config_.high_level
                                           : config_.low_level;
}

}  // namespace capman::battery
