#include "battery/cell.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace capman::battery {

namespace {
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
// Below this fraction of full charge the cell counts as exhausted.
constexpr double kExhaustedFraction = 0.005;
}  // namespace

Cell::Cell(Chemistry chemistry, double labeled_capacity_mah)
    : profile_(&chemistry_profile(chemistry)),
      labeled_capacity_ah_(labeled_capacity_mah / 1000.0) {
  assert(labeled_capacity_mah > 0.0);
  full_charge_c_ =
      labeled_capacity_ah_ * kSecondsPerHour * profile_->usable_capacity_factor;
  y1_ = profile_->kibam_c * full_charge_c_;
  y2_ = (1.0 - profile_->kibam_c) * full_charge_c_;
  r0_ = profile_->series_resistance_ohm_at_1ah / labeled_capacity_ah_;
  r1_ = profile_->surge_resistance_ohm_at_1ah / labeled_capacity_ah_;
}

util::Coulombs Cell::charge(util::Amperes current, util::Seconds dt,
                            double efficiency) {
  assert(efficiency > 0.0 && efficiency <= 1.0);
  if (current.value() <= 0.0) return util::Coulombs{0.0};
  const double offered = current.value() * dt.value() * efficiency;
  const double room = full_charge_c_ - (y1_ + y2_);
  const double accepted = std::clamp(offered, 0.0, std::max(room, 0.0));
  // Charge enters the available well; the well exchange moves it onward.
  y1_ += accepted;
  kibam_step(0.0, dt.value());
  // Charging resets the discharge surge state.
  v_rc_ = 0.0;
  i_ref_ = 0.0;
  return util::Coulombs{accepted};
}

bool Cell::full() const { return soc() >= 0.995; }

void Cell::recharge() {
  y1_ = profile_->kibam_c * full_charge_c_;
  y2_ = (1.0 - profile_->kibam_c) * full_charge_c_;
  v_rc_ = 0.0;
  i_ref_ = 0.0;
}

double Cell::soc() const {
  return std::max(0.0, (y1_ + y2_) / full_charge_c_);
}

double Cell::available_fill() const {
  return std::clamp(y1_ / (profile_->kibam_c * full_charge_c_), 0.0, 1.0);
}

double Cell::ocv_at(double fill) const {
  // Linear plateau plus a steep exponential droop near empty; both features
  // of real Li-ion discharge curves that matter here (steady voltage while
  // charged, sharp sag that triggers cutoff near depletion).
  const double swing = profile_->voltage_swing_v;
  return profile_->nominal_voltage_v + swing * (fill - 0.5) -
         0.6 * swing * std::exp(-10.0 * fill);
}

util::Volts Cell::open_circuit_voltage() const {
  return util::Volts{ocv_at(available_fill())};
}

double Cell::solve_current(double v_eff, double load_w) const {
  const double disc = v_eff * v_eff - 4.0 * r0_ * load_w;
  if (disc < 0.0) return -1.0;
  return (v_eff - std::sqrt(disc)) / (2.0 * r0_);
}

util::Volts Cell::terminal_voltage(util::Watts load) const {
  const double v_eff = ocv_at(available_fill()) - v_rc_;
  if (load.value() <= 0.0) return util::Volts{v_eff};
  const double i = solve_current(v_eff, load.value());
  if (i < 0.0) return util::Volts{0.0};
  return util::Volts{v_eff - i * r0_};
}

bool Cell::exhausted() const {
  return (y1_ + y2_) < kExhaustedFraction * full_charge_c_ || y1_ <= 0.0;
}

bool Cell::can_supply(util::Watts load, util::Volts voltage_margin) const {
  if (exhausted()) return false;
  if (load.value() <= 0.0) return true;
  const double v_eff = ocv_at(available_fill()) - v_rc_;
  const double i = solve_current(v_eff, load.value());
  if (i < 0.0) return false;
  if (v_eff - i * r0_ < profile_->cutoff_voltage_v + voltage_margin.value()) {
    return false;
  }
  const double c_rate = i / labeled_capacity_ah_;
  return c_rate <= 0.9 * profile_->max_c_rate;
}

util::Joules Cell::energy_remaining() const {
  // Price the remaining charge at the *mean* OCV it will be released at
  // (linear plateau from the current fill down to empty), not the current
  // OCV - otherwise every coulomb drawn "devalues" the whole reservoir and
  // marginal-cost comparisons (the Oracle baseline) get distorted.
  const double fill = available_fill();
  const double mean_ocv = profile_->nominal_voltage_v +
                          profile_->voltage_swing_v * (0.5 * fill - 0.5);
  return util::Joules{std::max(0.0, (y1_ + y2_) * mean_ocv)};
}

util::Coulombs Cell::bound_charge() const { return util::Coulombs{std::max(0.0, y2_)}; }
util::Coulombs Cell::available_charge() const {
  return util::Coulombs{std::max(0.0, y1_)};
}

void Cell::kibam_step(double i_amps, double dt_s) {
  const double k = profile_->kibam_k_per_s;
  const double c = profile_->kibam_c;
  const double y0 = y1_ + y2_;
  const double e = std::exp(-k * dt_s);
  const double kdt = k * dt_s;
  const double y1_next = y1_ * e + (y0 * k * c - i_amps) * (1.0 - e) / k -
                         i_amps * c * (kdt - 1.0 + e) / k;
  const double y2_next = y2_ * e + y0 * (1.0 - c) * (1.0 - e) -
                         i_amps * (1.0 - c) * (kdt - 1.0 + e) / k;
  y1_ = y1_next;
  y2_ = std::max(0.0, y2_next);
}

Cell::DrawResult Cell::draw(util::Watts load, util::Seconds dt) {
  DrawResult result{};
  const double dt_s = dt.value();
  assert(dt_s > 0.0);

  // Self-discharge applies in every step, loaded or not.
  const double leak =
      (profile_->self_discharge_per_day / kSecondsPerDay) * dt_s;
  const double leaked_charge = (y1_ + y2_) * leak;
  y1_ *= (1.0 - leak);
  y2_ *= (1.0 - leak);
  result.losses = util::Joules{leaked_charge * ocv_at(available_fill())};

  const double alpha = 1.0 - std::exp(-dt_s / profile_->surge_tau_s);
  if (load.value() <= 0.0 || exhausted()) {
    // Rest: wells redistribute (recovery), the overpotential relaxes.
    kibam_step(0.0, dt_s);
    i_ref_ *= 1.0 - alpha;
    v_rc_ = 0.0;
    result.terminal_voltage = open_circuit_voltage();
    result.heat = result.losses / dt;
    result.brownout = load.value() > 0.0;  // loaded but exhausted
    return result;
  }

  const double v_eff = ocv_at(available_fill()) - v_rc_;
  const double i = solve_current(v_eff, load.value());
  const double v_terminal = i >= 0.0 ? v_eff - i * r0_ : 0.0;
  const double c_rate = i >= 0.0 ? i / labeled_capacity_ah_ : 0.0;
  if (i < 0.0 || v_terminal < profile_->cutoff_voltage_v ||
      c_rate > profile_->max_c_rate) {
    // Brownout: demand not met. The wells rest, but the overpotential only
    // relaxes with its time constant - the load keeps hammering the sagged
    // rail, so there is no instant recovery.
    kibam_step(0.0, dt_s);
    v_rc_ *= 1.0 - alpha;
    result.brownout = true;
    result.terminal_voltage = util::Volts{v_terminal};
    result.heat = result.losses / dt;
    return result;
  }

  // Coulombic delivery efficiency: drawing I at the terminals consumes
  // I/eta from the wells; the shortfall is heat.
  const double eta = delivery_efficiency(*profile_, c_rate);
  const double well_current = i / eta;
  const double charge_needed = well_current * dt_s;
  if (charge_needed > y1_) {
    // Available well cannot cover the step: brownout (the pack may switch;
    // at rest the bound well will refill y1).
    kibam_step(0.0, dt_s);
    v_rc_ *= 1.0 - alpha;
    result.brownout = true;
    result.terminal_voltage = util::Volts{v_terminal};
    result.heat = result.losses / dt;
    return result;
  }

  const double ocv = ocv_at(available_fill());
  kibam_step(well_current, dt_s);
  // V-edge dynamics: the reference current trails the load current, so a
  // step spikes the overpotential by R1 * dI and the dip then relaxes as
  // the reference catches up. The dissipated area is the D1 loss of Fig. 3.
  i_ref_ += alpha * (i - i_ref_);
  v_rc_ = std::min(r1_ * std::max(i - i_ref_, 0.0), 0.45 * ocv);

  result.delivered = load * dt;
  // Chemical energy released = OCV * charge drawn from wells; everything
  // beyond the delivered energy is loss (I^2 R0 + surge overpotential +
  // coulombic inefficiency).
  const double chemical = ocv * charge_needed;
  result.losses += util::Joules{std::max(0.0, chemical - result.delivered.value())};
  result.heat = result.losses / dt;
  result.terminal_voltage = util::Volts{v_terminal};
  result.current = util::Amperes{i};
  return result;
}

}  // namespace capman::battery
