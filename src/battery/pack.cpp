#include "battery/pack.h"

#include <algorithm>
#include <cmath>

namespace capman::battery {

// ---- SingleBatteryPack --------------------------------------------------

SingleBatteryPack::SingleBatteryPack(Chemistry chemistry,
                                     double labeled_capacity_mah)
    : cell_(chemistry, labeled_capacity_mah) {}

void SingleBatteryPack::request(BatterySelection /*target*/,
                                util::Seconds /*now*/) {}

util::Seconds SingleBatteryPack::activation_time(BatterySelection sel) const {
  return sel == BatterySelection::kBig ? util::Seconds{active_time_s_}
                                       : util::Seconds{0.0};
}

PackStepResult SingleBatteryPack::step(util::Watts load, util::Seconds dt,
                                       util::Seconds /*now*/) {
  PackStepResult result{};
  const auto draw = cell_.draw(load, dt);
  result.delivered = draw.delivered;
  result.losses = draw.losses;
  result.heat = draw.heat;
  result.demand_met = !draw.brownout;
  result.exhausted = cell_.exhausted();
  result.rail_voltage = draw.terminal_voltage;
  if (load.value() > 0.0) active_time_s_ += dt.value();
  return result;
}

// ---- DualBatteryPack ----------------------------------------------------

std::vector<std::string> DualPackConfig::validate() const {
  std::vector<std::string> errors;
  if (!(big_capacity_mah > 0.0)) {
    errors.push_back("big_capacity_mah must be > 0");
  }
  if (!(little_capacity_mah > 0.0)) {
    errors.push_back("little_capacity_mah must be > 0");
  }
  if (!(supercap_capacitance.value() > 0.0)) {
    errors.push_back("supercap_capacitance must be > 0");
  }
  if (!(supercap_voltage.value() > 0.0)) {
    errors.push_back("supercap_voltage must be > 0");
  }
  if (!(supercap_esr.value() >= 0.0)) {
    errors.push_back("supercap_esr must be >= 0");
  }
  if (!(baseline_tau.value() > 0.0)) {
    errors.push_back("baseline_tau must be > 0");
  }
  for (auto& error : switch_config.validate()) {
    errors.push_back("switch_config: " + error);
  }
  return errors;
}

DualBatteryPack::DualBatteryPack(const DualPackConfig& config)
    : DualBatteryPack(config, nullptr) {}

DualBatteryPack::DualBatteryPack(const DualPackConfig& config,
                                 std::unique_ptr<SwitchFacility> switcher)
    : config_(config),
      big_(config.big_chemistry, config.big_capacity_mah),
      little_(config.little_chemistry, config.little_capacity_mah),
      switch_(switcher != nullptr
                  ? std::move(switcher)
                  : std::make_unique<SwitchFacility>(config.switch_config,
                                                     BatterySelection::kBig)),
      supercap_(config.supercap_capacitance, config.supercap_voltage,
                config.supercap_esr) {}

void DualBatteryPack::request(BatterySelection target, util::Seconds now) {
  // Comparator-side validation: the switch will not latch onto a rail that
  // is already collapsed under the present load (the LM339 compares rail
  // voltages, so a dead or sagging cell never wins the comparison). There
  // is deliberately NO autonomous mid-interval fallback: if the selected
  // cell sags later, the phone stutters until the scheduler reacts - that
  // is exactly the failure mode bad scheduling produces on the prototype.
  Cell& cell = cell_for(target);
  if (!cell.can_supply(util::Watts{last_load_w_})) return;
  switch_->request(target, now);
}

bool DualBatteryPack::exhausted() const {
  return big_.exhausted() && little_.exhausted();
}

double DualBatteryPack::soc() const {
  const double big_cap = big_.capacity_ah();
  const double little_cap = little_.capacity_ah();
  return (big_.soc() * big_cap + little_.soc() * little_cap) /
         (big_cap + little_cap);
}

util::Seconds DualBatteryPack::activation_time(BatterySelection sel) const {
  return sel == BatterySelection::kBig ? util::Seconds{active_time_big_s_}
                                       : util::Seconds{active_time_little_s_};
}

util::Joules DualBatteryPack::energy_remaining() const {
  return big_.energy_remaining() + little_.energy_remaining();
}

void DualBatteryPack::recharge() {
  big_.recharge();
  little_.recharge();
  baseline_w_ = 0.0;
}

Cell::DrawResult DualBatteryPack::draw_from(BatterySelection sel,
                                            util::Watts load,
                                            util::Seconds dt,
                                            util::Seconds now) {
  if (sel == BatterySelection::kLittle) {
    // The supercapacitor shaves surges above the smoothed baseline so the
    // LITTLE rail stays stable (paper Fig. 10). A drooping electrical path
    // (switch transient under fault injection) raises the effective
    // baseline toward the load, so only `ride` of the surge is shaved.
    double base_w = baseline_w_;
    const double ride = switch_->surge_ride_through(now);
    if (ride < 1.0) {
      base_w += (1.0 - ride) * std::max(0.0, load.value() - base_w);
    }
    const util::Watts cell_load =
        supercap_.filter(load, util::Watts{base_w}, dt);
    auto draw = little_.draw(cell_load, dt);
    if (!draw.brownout) {
      // The load saw its full power even though the cell supplied less.
      draw.delivered = load * dt;
    }
    return draw;
  }
  return big_.draw(load, dt);
}

PackStepResult DualBatteryPack::step(util::Watts load, util::Seconds dt,
                                     util::Seconds now) {
  PackStepResult result{};
  last_load_w_ = load.value();
  // A completing switch does not dissipate instantly; its loss becomes a
  // debt drained from the newly active cell as a parasitic load over the
  // following steps (energy conservation: "frequently switching batteries
  // may cause additional energy loss").
  switch_debt_j_ += switch_->advance(now).value();

  // Track the smoothed load baseline for the supercap filter.
  const double alpha = 1.0 - std::exp(-dt.value() / config_.baseline_tau.value());
  baseline_w_ += alpha * (load.value() - baseline_w_);

  const double parasitic_w =
      std::min(kSwitchDrainWatts, switch_debt_j_ / dt.value());
  const util::Watts effective = load + util::Watts{parasitic_w};

  const BatterySelection sel = switch_->active();
  auto draw = draw_from(sel, effective, dt, now);

  const double parasitic_j = draw.brownout ? 0.0 : parasitic_w * dt.value();
  if (!draw.brownout) switch_debt_j_ -= parasitic_j;
  result.delivered = util::Joules{draw.delivered.value() - parasitic_j};
  result.losses = draw.losses + util::Joules{parasitic_j};
  result.heat = result.losses / dt;
  result.demand_met = !draw.brownout;
  result.exhausted = exhausted();
  result.supplied_by = sel;
  result.rail_voltage = draw.terminal_voltage;
  if (load.value() > 0.0 && !draw.brownout) {
    if (sel == BatterySelection::kBig) {
      active_time_big_s_ += dt.value();
    } else {
      active_time_little_s_ += dt.value();
    }
  }
  return result;
}

}  // namespace capman::battery
