#include "battery/charger.h"

#include <algorithm>
#include <stdexcept>

namespace capman::battery {

std::vector<std::string> ChargerConfig::validate() const {
  std::vector<std::string> errors;
  if (!(cc_c_rate > 0.0)) {
    errors.push_back("cc_c_rate must be > 0");
  }
  if (!(cv_headroom_v >= 0.0)) {
    errors.push_back("cv_headroom_v must be >= 0");
  }
  if (!(cutoff_c_rate > 0.0 && cutoff_c_rate < cc_c_rate)) {
    errors.push_back("cutoff_c_rate must be in (0, cc_c_rate)");
  }
  if (!(efficiency > 0.0 && efficiency <= 1.0)) {
    errors.push_back("efficiency must be in (0, 1]");
  }
  return errors;
}

Charger::Charger(const ChargerConfig& config) : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid ChargerConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

ChargeStepResult Charger::step(Cell& cell, util::Seconds dt) const {
  ChargeStepResult result{};
  if (cell.full()) {
    result.done = true;
    return result;
  }
  // CC phase at the configured C-rate; in the top band the current tapers
  // linearly to the cutoff (the CV tail, approximated on state of charge
  // because the cell's OCV curve is deliberately coarse).
  const double soc = cell.soc();
  double c_rate = config_.cc_c_rate;
  constexpr double kTaperStartSoc = 0.85;
  if (soc > kTaperStartSoc) {
    const double frac =
        std::clamp((0.995 - soc) / (0.995 - kTaperStartSoc), 0.0, 1.0);
    c_rate = std::max(config_.cutoff_c_rate, config_.cc_c_rate * frac);
  }
  const util::Amperes current{c_rate * cell.capacity_ah()};
  const auto accepted = cell.charge(current, dt, config_.efficiency);

  const util::Volts v_now = cell.open_circuit_voltage();
  result.current = current;
  result.accepted = accepted * v_now;  // cell-side energy, Q * V
  const util::Joules drawn = current * dt * v_now;  // wall-side energy
  result.losses = std::max(util::Joules{0.0}, drawn - result.accepted);
  result.done = cell.full();
  return result;
}

util::Seconds Charger::charge_fully(Cell& cell, util::Seconds dt) const {
  double t = 0.0;
  const double guard_s = 48.0 * 3600.0;
  while (t < guard_s) {
    const auto r = step(cell, dt);
    t += dt.value();
    if (r.done) break;
  }
  return util::Seconds{t};
}

util::Seconds Charger::charge_fully(DualBatteryPack& pack,
                                    util::Seconds dt) const {
  const auto t_little = charge_fully(pack.little_cell_mut(), dt);
  const auto t_big = charge_fully(pack.big_cell_mut(), dt);
  return t_little + t_big;
}

}  // namespace capman::battery
