// Battery pack abstractions.
//
// PowerSource is the single interface the simulator and every scheduling
// policy see. Two implementations:
//  * SingleBatteryPack — the paper's "Practice" baseline (the original
//    phone: one cell of the full capacity).
//  * DualBatteryPack — the paper's big.LITTLE prototype: big cell + LITTLE
//    cell behind the comparator switch facility, with a supercapacitor
//    smoothing the LITTLE rail.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "battery/cell.h"
#include "battery/supercap.h"
#include "battery/switcher.h"
#include "util/units.h"

namespace capman::battery {

struct PackStepResult {
  util::Joules delivered;
  util::Joules losses;
  util::Watts heat;          // battery heat this step (losses / dt)
  bool demand_met = true;    // false = brownout on every available cell
  bool exhausted = false;    // no cell can ever supply again
  BatterySelection supplied_by = BatterySelection::kBig;
  util::Volts rail_voltage;
};

class PowerSource {
 public:
  virtual ~PowerSource() = default;

  /// Supply `load` for `dt` ending at simulation time `now`.
  virtual PackStepResult step(util::Watts load, util::Seconds dt,
                              util::Seconds now) = 0;

  /// Ask the pack to route load to `target` (no-op for single packs).
  virtual void request(BatterySelection target, util::Seconds now) = 0;

  [[nodiscard]] virtual bool exhausted() const = 0;
  /// Combined state of charge in [0,1] (charge-weighted across cells).
  [[nodiscard]] virtual double soc() const = 0;
  [[nodiscard]] virtual double big_soc() const = 0;
  [[nodiscard]] virtual double little_soc() const = 0;
  [[nodiscard]] virtual BatterySelection active() const = 0;
  /// Cumulative seconds each selection carried the load (paper Fig. 14's
  /// big/LITTLE activation-time ratio).
  [[nodiscard]] virtual util::Seconds activation_time(
      BatterySelection sel) const = 0;
  [[nodiscard]] virtual std::size_t switch_count() const = 0;
  [[nodiscard]] virtual util::Joules energy_remaining() const = 0;
  virtual void recharge() = 0;
};

/// The original-phone baseline: one cell holds the whole labeled capacity.
class SingleBatteryPack final : public PowerSource {
 public:
  SingleBatteryPack(Chemistry chemistry, double labeled_capacity_mah);

  PackStepResult step(util::Watts load, util::Seconds dt,
                      util::Seconds now) override;
  void request(BatterySelection target, util::Seconds now) override;
  [[nodiscard]] bool exhausted() const override { return cell_.exhausted(); }
  [[nodiscard]] double soc() const override { return cell_.soc(); }
  [[nodiscard]] double big_soc() const override { return cell_.soc(); }
  [[nodiscard]] double little_soc() const override { return 0.0; }
  [[nodiscard]] BatterySelection active() const override {
    return BatterySelection::kBig;
  }
  [[nodiscard]] util::Seconds activation_time(
      BatterySelection sel) const override;
  [[nodiscard]] std::size_t switch_count() const override { return 0; }
  [[nodiscard]] util::Joules energy_remaining() const override {
    return cell_.energy_remaining();
  }
  void recharge() override { cell_.recharge(); }

  [[nodiscard]] const Cell& cell() const { return cell_; }

 private:
  Cell cell_;
  double active_time_s_ = 0.0;
};

struct DualPackConfig {
  Chemistry big_chemistry = Chemistry::kNCA;
  double big_capacity_mah = 1700.0;
  Chemistry little_chemistry = Chemistry::kLMO;
  double little_capacity_mah = 800.0;
  SwitchFacilityConfig switch_config{};
  // Supercapacitor on the LITTLE rail (paper Fig. 10).
  util::Farads supercap_capacitance = util::Farads{2.0};
  util::Volts supercap_voltage = util::Volts{4.2};
  util::Ohms supercap_esr = util::Ohms{0.02};
  // EWMA time constant for the smoothed baseline the supercap maintains.
  util::Seconds baseline_tau = util::Seconds{2.0};

  /// Human-readable configuration errors; empty means valid. Covers the
  /// nested switch-facility config ("switch_config: " prefix);
  /// sim::SimConfig::validate() aggregates these under "pack_config.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// big.LITTLE pack: the CAPMAN prototype hardware.
class DualBatteryPack final : public PowerSource {
 public:
  explicit DualBatteryPack(const DualPackConfig& config = {});
  /// Inject a custom switch facility (e.g. a fault-decorated board from
  /// sim::FaultySwitchFacility). The pack routes every actuation through
  /// the facility's virtual interface and never learns which faults, if
  /// any, are active. A null `switcher` falls back to the ideal facility.
  DualBatteryPack(const DualPackConfig& config,
                  std::unique_ptr<SwitchFacility> switcher);

  PackStepResult step(util::Watts load, util::Seconds dt,
                      util::Seconds now) override;
  void request(BatterySelection target, util::Seconds now) override;
  [[nodiscard]] bool exhausted() const override;
  [[nodiscard]] double soc() const override;
  [[nodiscard]] double big_soc() const override { return big_.soc(); }
  [[nodiscard]] double little_soc() const override { return little_.soc(); }
  [[nodiscard]] BatterySelection active() const override {
    return switch_->active();
  }
  [[nodiscard]] util::Seconds activation_time(
      BatterySelection sel) const override;
  [[nodiscard]] std::size_t switch_count() const override {
    return switch_->switch_count();
  }
  [[nodiscard]] util::Joules energy_remaining() const override;
  void recharge() override;

  /// Whether the comparator-side validation in request() would accept a
  /// switch to `target` under the load the pack saw last step. Exposed so
  /// policy-level watchdogs (core::DegradationGuard) can tell a protection
  /// refusal — a drained target rail, rejected by design — from an
  /// actuator fault.
  [[nodiscard]] bool would_accept(BatterySelection target) const {
    const Cell& cell = target == BatterySelection::kBig ? big_ : little_;
    return cell.can_supply(util::Watts{last_load_w_});
  }

  /// Switch-loss energy not yet drained from the cells (telemetry).
  [[nodiscard]] util::Joules switch_debt() const {
    return util::Joules{switch_debt_j_};
  }

  [[nodiscard]] const Cell& big_cell() const { return big_; }
  [[nodiscard]] const Cell& little_cell() const { return little_; }
  /// Mutable cell access for charging (battery::Charger).
  [[nodiscard]] Cell& big_cell_mut() { return big_; }
  [[nodiscard]] Cell& little_cell_mut() { return little_; }
  [[nodiscard]] const SwitchFacility& switch_facility() const {
    return *switch_;
  }
  [[nodiscard]] const Supercapacitor& supercap() const { return supercap_; }

 private:
  Cell& cell_for(BatterySelection sel) {
    return sel == BatterySelection::kBig ? big_ : little_;
  }
  /// Draw from one specific cell, applying the supercap filter on LITTLE.
  Cell::DrawResult draw_from(BatterySelection sel, util::Watts load,
                             util::Seconds dt, util::Seconds now);

  // Maximum rate at which accumulated switch losses drain the active cell.
  static constexpr double kSwitchDrainWatts = 0.25;

  DualPackConfig config_;
  Cell big_;
  Cell little_;
  std::unique_ptr<SwitchFacility> switch_;
  Supercapacitor supercap_;
  double baseline_w_ = 0.0;  // EWMA of recent load for the supercap filter
  double last_load_w_ = 0.0;  // load seen last step (for request validation)
  double switch_debt_j_ = 0.0;  // completed-switch losses not yet drained
  double active_time_big_s_ = 0.0;
  double active_time_little_s_ = 0.0;
};

}  // namespace capman::battery
