#include "battery/supercap.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace capman::battery {

Supercapacitor::Supercapacitor(util::Farads capacitance,
                               util::Volts rated_voltage, util::Ohms esr)
    : capacity_j_(0.5 * capacitance.value() * rated_voltage.value() *
                  rated_voltage.value()),
      stored_j_(capacity_j_),
      esr_ohm_(esr.value()),
      rated_voltage_v_(rated_voltage.value()) {
  assert(capacity_j_ > 0.0);
}

util::Volts Supercapacitor::voltage() const {
  // E = C V^2 / 2 -> V proportional to sqrt(E/E_full).
  return util::Volts{rated_voltage_v_ * std::sqrt(stored_j_ / capacity_j_)};
}

util::Watts Supercapacitor::filter(util::Watts load, util::Watts baseline,
                                   util::Seconds dt) {
  const double dt_s = dt.value();
  const double surplus_w = load.value() - baseline.value();
  if (surplus_w > 0.0) {
    // Serve the surge from the capacitor as far as the stored energy allows.
    const double wanted_j = surplus_w * dt_s;
    const double usable_j = std::max(0.0, stored_j_ - 0.05 * capacity_j_);
    const double supplied_j = std::min(wanted_j, usable_j);
    // ESR loss proportional to the square of the drawn power fraction.
    const double v = std::max(voltage().value(), 0.5);
    const double i = supplied_j / dt_s / v;
    const double esr_loss_j = i * i * esr_ohm_ * dt_s;
    stored_j_ -= supplied_j + esr_loss_j;
    losses_j_ += esr_loss_j;
    return util::Watts{load.value() - supplied_j / dt_s};
  }
  // Calm period: recharge the capacitor from the cell, bounded so the cell
  // never sees more than the baseline.
  const double headroom_w = -surplus_w;
  const double deficit_j = capacity_j_ - stored_j_;
  const double recharge_j = std::min(deficit_j, headroom_w * dt_s);
  stored_j_ += recharge_j;
  return util::Watts{load.value() + recharge_j / dt_s};
}

}  // namespace capman::battery
