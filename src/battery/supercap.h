// Supercapacitor rail filter (paper Fig. 10: "we installed a supercapacitor
// to boost and filter the LITTLE output, such that CAPMAN can have a
// reliable power supply").
//
// Modeled as an energy buffer with ESR: upward load steps are served from
// the capacitor first (shaving the surge the cell sees), and the capacitor
// recharges from the cell during calm periods at a bounded rate.
#pragma once

#include "util/units.h"

namespace capman::battery {

class Supercapacitor {
 public:
  Supercapacitor(util::Farads capacitance, util::Volts rated_voltage,
                 util::Ohms esr);

  /// Split an instantaneous load between the capacitor and the cell:
  /// given the requested load and the smoothed baseline the cell should
  /// see, discharge the cap to cover (load - baseline) when positive, and
  /// absorb recharge power up to `recharge_limit` when load is below
  /// baseline. Returns the power the *cell* must supply this step.
  util::Watts filter(util::Watts load, util::Watts baseline,
                     util::Seconds dt);

  [[nodiscard]] util::Joules stored() const { return util::Joules{stored_j_}; }
  [[nodiscard]] util::Joules capacity() const { return util::Joules{capacity_j_}; }
  [[nodiscard]] double fill() const { return stored_j_ / capacity_j_; }
  /// Total energy dissipated in the ESR so far.
  [[nodiscard]] util::Joules losses() const { return util::Joules{losses_j_}; }
  [[nodiscard]] util::Volts voltage() const;

 private:
  double capacity_j_;
  double stored_j_;
  double esr_ohm_;
  double rated_voltage_v_;
  double losses_j_ = 0.0;
};

}  // namespace capman::battery
