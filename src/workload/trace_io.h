// Trace serialization: save generated traces and load recorded ones.
//
// The paper evaluates on "real world workloads and traces"; this module is
// the interchange point — a trace is a CSV of
//   time_s, syscall, param_bucket, cpu_state, utilization, freq_index,
//   screen_state, brightness, wifi_state, packet_rate
// so traces captured on real devices (e.g. via systrace + power rails) can
// be replayed through the simulator, and synthetic traces can be inspected
// or edited by hand.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace capman::workload {

/// Writes `trace` as CSV (with header). Throws std::runtime_error on I/O
/// failure when given a path.
void save_trace_csv(const Trace& trace, std::ostream& out);
void save_trace_csv(const Trace& trace, const std::string& path);

/// Parses a trace from CSV. Throws std::runtime_error on malformed input
/// (unknown state names, unsorted timestamps, missing fields).
Trace load_trace_csv(std::istream& in, std::string name, double horizon_s);
Trace load_trace_csv(const std::string& path, double horizon_s);

// Name <-> enum helpers (exact strings used in the CSV format).
const char* cpu_state_name(device::CpuState s);
const char* screen_state_name(device::ScreenState s);
const char* wifi_state_name(device::WifiState s);
device::CpuState parse_cpu_state(const std::string& name);
device::ScreenState parse_screen_state(const std::string& name);
device::WifiState parse_wifi_state(const std::string& name);
Syscall parse_syscall(const std::string& name);

}  // namespace capman::workload
