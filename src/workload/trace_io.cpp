#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.h"

namespace capman::workload {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is{line};
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

[[noreturn]] void bad_field(const std::string& what, const std::string& got) {
  throw std::runtime_error("load_trace_csv: bad " + what + ": '" + got + "'");
}

}  // namespace

const char* cpu_state_name(device::CpuState s) {
  switch (s) {
    case device::CpuState::kSleep: return "sleep";
    case device::CpuState::kC2: return "c2";
    case device::CpuState::kC1: return "c1";
    case device::CpuState::kC0: return "c0";
  }
  return "?";
}

const char* screen_state_name(device::ScreenState s) {
  return s == device::ScreenState::kOff ? "off" : "on";
}

const char* wifi_state_name(device::WifiState s) {
  switch (s) {
    case device::WifiState::kIdle: return "idle";
    case device::WifiState::kAccess: return "access";
    case device::WifiState::kSend: return "send";
  }
  return "?";
}

device::CpuState parse_cpu_state(const std::string& name) {
  if (name == "sleep") return device::CpuState::kSleep;
  if (name == "c2") return device::CpuState::kC2;
  if (name == "c1") return device::CpuState::kC1;
  if (name == "c0") return device::CpuState::kC0;
  bad_field("cpu_state", name);
}

device::ScreenState parse_screen_state(const std::string& name) {
  if (name == "off") return device::ScreenState::kOff;
  if (name == "on") return device::ScreenState::kOn;
  bad_field("screen_state", name);
}

device::WifiState parse_wifi_state(const std::string& name) {
  if (name == "idle") return device::WifiState::kIdle;
  if (name == "access") return device::WifiState::kAccess;
  if (name == "send") return device::WifiState::kSend;
  bad_field("wifi_state", name);
}

Syscall parse_syscall(const std::string& name) {
  for (std::size_t k = 0; k < kSyscallCount; ++k) {
    const auto kind = static_cast<Syscall>(k);
    if (name == to_string(kind)) return kind;
  }
  bad_field("syscall", name);
}

void save_trace_csv(const Trace& trace, std::ostream& out) {
  util::CsvWriter csv{out};
  csv.header({"time_s", "syscall", "param_bucket", "cpu_state", "utilization",
              "freq_index", "screen_state", "brightness", "wifi_state",
              "packet_rate"});
  for (const auto& e : trace.events()) {
    csv.cell(e.time_s)
        .cell(std::string_view{to_string(e.action.kind)})
        .cell(static_cast<std::size_t>(e.action.param_bucket))
        .cell(std::string_view{cpu_state_name(e.demand.cpu)})
        .cell(e.demand.utilization)
        .cell(e.demand.freq_index)
        .cell(std::string_view{screen_state_name(e.demand.screen)})
        .cell(e.demand.brightness)
        .cell(std::string_view{wifi_state_name(e.demand.wifi)})
        .cell(e.demand.packet_rate);
    csv.end_row();
  }
}

void save_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("save_trace_csv: cannot open " + path);
  save_trace_csv(trace, out);
}

Trace load_trace_csv(std::istream& in, std::string name, double horizon_s) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_trace_csv: empty input");
  }
  TraceBuilder tb{std::move(name)};
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != 10) {
      throw std::runtime_error("load_trace_csv: line " +
                               std::to_string(line_no) + ": expected 10 "
                               "fields, got " +
                               std::to_string(fields.size()));
    }
    const double time_s = std::stod(fields[0]);
    if (time_s < tb.last_time()) {
      throw std::runtime_error("load_trace_csv: line " +
                               std::to_string(line_no) +
                               ": timestamps not sorted");
    }
    Action action{parse_syscall(fields[1]),
                  static_cast<std::uint8_t>(
                      std::min<unsigned long>(std::stoul(fields[2]),
                                              kParamBuckets - 1))};
    device::DeviceDemand demand;
    demand.cpu = parse_cpu_state(fields[3]);
    demand.utilization = std::stod(fields[4]);
    demand.freq_index = std::stoul(fields[5]);
    demand.screen = parse_screen_state(fields[6]);
    demand.brightness = std::stod(fields[7]);
    demand.wifi = parse_wifi_state(fields[8]);
    demand.packet_rate = std::stod(fields[9]);
    tb.add(time_s, action, demand);
  }
  if (tb.size() == 0) {
    throw std::runtime_error("load_trace_csv: no events");
  }
  return std::move(tb).build(std::max(horizon_s, tb.last_time() + 1e-3));
}

Trace load_trace_csv(const std::string& path, double horizon_s) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("load_trace_csv: cannot open " + path);
  // Use the file name (without directories) as the trace name.
  const auto slash = path.find_last_of('/');
  return load_trace_csv(
      in, slash == std::string::npos ? path : path.substr(slash + 1),
      horizon_s);
}

}  // namespace capman::workload
