// Workload generators reproducing the paper's benchmark suite (Section V):
//
//   * Geekbench  — resource intensive, "always fulfills the system
//                  utilization", easy-to-predict power profile.
//   * PCMark     — CPU intensive with occasional user interactions and a
//                  mid-run pattern change.
//   * Video      — stable playback: moderate steady draw plus periodic
//                  network buffering bursts.
//   * eta-Static — mixed batch: fraction eta of PCMark-style segments,
//                  1-eta of Video-style segments, with skewed (Pareto)
//                  segment lengths.
//   * ScreenToggle — the Fig. 2(b) motivation workload: wake/sleep cycles
//                  at a configurable period.
//   * IdleScreenOn — the Fig. 2(a) "keep the phone on and idle" workload:
//                  screen on, deep CPU idle, periodic sync-daemon bursts.
//
// Generators are deterministic given (duration, seed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/units.h"
#include "workload/trace.h"

namespace capman::workload {

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Generate a trace pattern spanning `horizon`; the simulator loops it.
  [[nodiscard]] virtual Trace generate(util::Seconds horizon,
                                       std::uint64_t seed) const = 0;
};

std::unique_ptr<WorkloadGenerator> make_geekbench();
std::unique_ptr<WorkloadGenerator> make_pcmark();
std::unique_ptr<WorkloadGenerator> make_video();
/// Local video playback (paper Section II motivation: "the phone plays some
/// videos"): pure decode + screen, no network buffering bursts.
std::unique_ptr<WorkloadGenerator> make_local_video();
/// eta in [0,1]: fraction of PCMark-style segments (paper's eta-Static).
std::unique_ptr<WorkloadGenerator> make_eta_static(double eta);
/// Toggle the phone on/off with the given period; the screen stays on for
/// `on_fraction` of each period.
std::unique_ptr<WorkloadGenerator> make_screen_toggle(util::Seconds period,
                                                      double on_fraction = 0.05);
std::unique_ptr<WorkloadGenerator> make_idle_screen_on();

/// The six workloads of the paper's Fig. 12/13/14:
/// Geekbench, PCMark, Video, eta-20%, eta-50%, eta-80%.
std::vector<std::unique_ptr<WorkloadGenerator>> paper_suite();

}  // namespace capman::workload
