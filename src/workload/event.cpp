#include "workload/event.h"

#include <algorithm>

namespace capman::workload {

const char* to_string(Syscall s) {
  switch (s) {
    case Syscall::kScreenWake: return "screen_wake";
    case Syscall::kScreenSleep: return "screen_sleep";
    case Syscall::kAppLaunch: return "app_launch";
    case Syscall::kAppExit: return "app_exit";
    case Syscall::kCpuBurst: return "cpu_burst";
    case Syscall::kCpuIdle: return "cpu_idle";
    case Syscall::kFreqScale: return "freq_scale";
    case Syscall::kNetRecvStart: return "net_recv_start";
    case Syscall::kNetRecvStop: return "net_recv_stop";
    case Syscall::kNetSendStart: return "net_send_start";
    case Syscall::kNetSendStop: return "net_send_stop";
    case Syscall::kVideoFrame: return "video_frame";
    case Syscall::kSyncDaemon: return "sync_daemon";
    case Syscall::kUserTouch: return "user_touch";
    case Syscall::kBinderCall: return "binder_call";
    case Syscall::kGpsPoll: return "gps_poll";
    case Syscall::kAudioStart: return "audio_start";
    case Syscall::kAudioStop: return "audio_stop";
    case Syscall::kVibrate: return "vibrate";
    case Syscall::kTimerTick: return "timer_tick";
  }
  return "?";
}

std::string to_string(const Action& a) {
  return std::string{to_string(a.kind)} + "#" + std::to_string(a.param_bucket);
}

std::uint8_t bucket_param(double value, double max) {
  if (max <= 0.0) return 0;
  const double f = std::clamp(value / max, 0.0, 1.0);
  const auto b = static_cast<std::size_t>(f * kParamBuckets);
  return static_cast<std::uint8_t>(std::min(b, kParamBuckets - 1));
}

}  // namespace capman::workload
