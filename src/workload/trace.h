// A trace is a time-ordered sequence of (action, device-demand) events; the
// demand holds until the next event. Traces repeat (loop) when a discharge
// cycle outlives the generated horizon.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "device/phone.h"
#include "util/units.h"
#include "workload/event.h"

namespace capman::workload {

struct TraceEvent {
  double time_s = 0.0;
  Action action;
  device::DeviceDemand demand;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::vector<TraceEvent> events, double horizon_s);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] double horizon_s() const { return horizon_s_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Average demanded device power under `phone`, for sizing experiments.
  [[nodiscard]] util::Watts average_power(
      const device::PhoneModel& phone) const;

 private:
  std::string name_;
  std::vector<TraceEvent> events_;
  double horizon_s_ = 0.0;
};

/// Incremental builder keeping events time-ordered.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::string name) : name_(std::move(name)) {}

  /// Appends an event; `time_s` must be non-decreasing.
  void add(double time_s, Action action, const device::DeviceDemand& demand);

  [[nodiscard]] double last_time() const {
    return events_.empty() ? 0.0 : events_.back().time_s;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  Trace build(double horizon_s) &&;

 private:
  std::string name_;
  std::vector<TraceEvent> events_;
};

/// A cursor that replays a trace, looping past the horizon. The simulator
/// polls `demand_at`/`actions_between` as it advances.
class TraceCursor {
 public:
  explicit TraceCursor(const Trace& trace);

  /// Demand in force at absolute time t (trace loops past its horizon).
  [[nodiscard]] const device::DeviceDemand& demand_at(double t) const;

  /// The last action fired at or before time t (what the profiler records).
  [[nodiscard]] const Action& action_at(double t) const;

  /// Advance to time t and report whether a new event fired since the last
  /// call (the MDP observes transitions on events).
  bool advance(double t);

  /// Absolute time of the next event strictly after t (looping).
  [[nodiscard]] double next_event_time(double t) const;

 private:
  [[nodiscard]] std::size_t index_for(double t) const;

  const Trace* trace_;
  std::size_t last_index_ = static_cast<std::size_t>(-1);
  std::size_t last_loop_ = static_cast<std::size_t>(-1);
};

}  // namespace capman::workload
