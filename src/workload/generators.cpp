#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace capman::workload {

namespace {

using device::CpuState;
using device::DeviceDemand;
using device::ScreenState;
using device::WifiState;

DeviceDemand sleep_demand() {
  DeviceDemand d;
  d.cpu = CpuState::kSleep;
  d.screen = ScreenState::kOff;
  d.wifi = WifiState::kIdle;
  return d;
}

DeviceDemand idle_on_demand(double brightness = 180.0) {
  DeviceDemand d;
  d.cpu = CpuState::kC2;
  d.screen = ScreenState::kOn;
  d.brightness = brightness;
  d.wifi = WifiState::kIdle;
  return d;
}

DeviceDemand busy_demand(double util, std::size_t freq, double brightness,
                         WifiState wifi = WifiState::kIdle,
                         double rate = 0.0) {
  DeviceDemand d;
  d.cpu = CpuState::kC0;
  d.utilization = util;
  d.freq_index = freq;
  d.screen = ScreenState::kOn;
  d.brightness = brightness;
  d.wifi = wifi;
  d.packet_rate = rate;
  return d;
}

// --- Geekbench ----------------------------------------------------------

class GeekbenchGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "Geekbench"; }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0x6eeb};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kAppLaunch, 9}, busy_demand(100.0, 2, 200.0));
    double t = 0.0;
    while (t < horizon.value()) {
      // Alternating compute phases: integer/FP/memory sections differ a
      // little in achievable utilization but the system stays saturated.
      const double phase = rng.uniform(20.0, 40.0);
      t += phase;
      if (t + 1.0 >= horizon.value()) break;
      // Section boundary: the harness loads the next workload section and
      // uploads partial scores - a short whole-SoC spike on top of the
      // saturated baseline.
      const double rate = rng.uniform(200.0, 400.0);
      tb.add(t, {Syscall::kAppLaunch, bucket_param(rate, 400.0)},
             busy_demand(100.0, 2, 200.0, WifiState::kAccess, rate));
      t += rng.uniform(0.4, 0.8);
      const double util = rng.uniform(92.0, 100.0);
      tb.add(std::min(t, horizon.value() - 1e-3), {Syscall::kCpuBurst, 9},
             busy_demand(util, 2, 200.0));
    }
    return std::move(tb).build(horizon.value());
  }
};

// --- PCMark ---------------------------------------------------------------

// Emits one PCMark-style segment starting at t; returns the end time.
// `interaction_rate` scales how often the user pokes the phone (the paper
// modified PCMark "with occasional user interactions").
double emit_pcmark_segment(TraceBuilder& tb, util::Rng& rng, double t,
                           double limit, double interaction_rate) {
  // Work block: sustained CPU at high-but-variable utilization.
  const double util = rng.uniform(60.0, 90.0);
  const auto freq = static_cast<std::size_t>(rng.uniform_index(2) + 1);
  tb.add(t, {Syscall::kCpuBurst, bucket_param(util, 100.0)},
         busy_demand(util, freq, 190.0));
  t += std::min(rng.pareto(4.0, 1.6), 30.0);
  if (t >= limit) return limit;

  if (rng.chance(0.5 * interaction_rate)) {
    // User interaction: short full-power surge (touch -> render burst).
    tb.add(t, {Syscall::kUserTouch, 9}, busy_demand(100.0, 2, 230.0));
    t += rng.uniform(0.3, 1.0);
    if (t >= limit) return limit;
  }
  if (rng.chance(0.25)) {
    // Occasional content fetch over WiFi.
    const double rate = rng.uniform(80.0, 300.0);
    tb.add(t, {Syscall::kNetRecvStart, bucket_param(rate, 400.0)},
           busy_demand(50.0, 1, 190.0, WifiState::kAccess, rate));
    t += rng.uniform(1.0, 4.0);
    if (t >= limit) return limit;
    tb.add(t, {Syscall::kNetRecvStop, 0}, busy_demand(50.0, 1, 190.0));
    t += rng.uniform(0.5, 1.5);
    if (t >= limit) return limit;
  }
  // Think time: shallow idle.
  DeviceDemand idle = idle_on_demand(170.0);
  idle.cpu = CpuState::kC1;
  tb.add(t, {Syscall::kCpuIdle, 2}, idle);
  t += std::min(rng.pareto(1.0, 1.4), 8.0);
  return t;
}

class PCMarkGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "PCMark"; }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0x9c4a};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kAppLaunch, 8}, busy_demand(100.0, 2, 190.0));
    double t = 1.0;
    while (t < horizon.value()) {
      // Pattern change halfway through: interactions double (the workload
      // the paper uses "to test CAPMAN behavior when software pattern
      // changes").
      const double rate = t < 0.5 * horizon.value() ? 1.0 : 2.0;
      t = emit_pcmark_segment(tb, rng, t, horizon.value(), rate);
    }
    return std::move(tb).build(horizon.value());
  }
};

// --- Video ----------------------------------------------------------------

double emit_video_segment(TraceBuilder& tb, util::Rng& rng, double t,
                          double limit) {
  // Steady decode between buffer refills.
  const double util = rng.uniform(25.0, 35.0);
  tb.add(t, {Syscall::kVideoFrame, 3}, busy_demand(util, 0, 200.0));
  t += rng.uniform(4.0, 8.0);
  if (t >= limit) return limit;
  // Buffering burst: brief high-rate download + decode spike (the whole
  // SoC wakes: radio at full rate, CPU boosted to decode ahead).
  const double rate = rng.uniform(300.0, 500.0);
  tb.add(t, {Syscall::kNetRecvStart, bucket_param(rate, 500.0)},
         busy_demand(95.0, 2, 200.0, WifiState::kAccess, rate));
  t += rng.uniform(0.8, 1.6);
  if (t >= limit) return limit;
  tb.add(t, {Syscall::kNetRecvStop, 0}, busy_demand(30.0, 0, 200.0));
  t += 0.2;
  return t;
}

class VideoGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "Video"; }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0x71de0};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kAppLaunch, 6}, busy_demand(80.0, 1, 200.0));
    double t = 1.5;
    while (t < horizon.value()) {
      t = emit_video_segment(tb, rng, t, horizon.value());
    }
    return std::move(tb).build(horizon.value());
  }
};

// --- LocalVideo -------------------------------------------------------------

class LocalVideoGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "LocalVideo"; }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0x10ca1};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kAppLaunch, 4}, busy_demand(45.0, 0, 255.0));
    double t = 1.0;
    while (t < horizon.value()) {
      // Pure decode from storage: steady moderate draw, no radio.
      const double util = rng.uniform(40.0, 50.0);
      tb.add(t, {Syscall::kVideoFrame, 3}, busy_demand(util, 0, 255.0));
      t += rng.uniform(8.0, 15.0);
    }
    return std::move(tb).build(horizon.value());
  }
};

// --- eta-Static -------------------------------------------------------------

class EtaStaticGenerator final : public WorkloadGenerator {
 public:
  explicit EtaStaticGenerator(double eta) : eta_(std::clamp(eta, 0.0, 1.0)) {}

  [[nodiscard]] std::string name() const override {
    return "eta-" + std::to_string(static_cast<int>(eta_ * 100.0)) + "%";
  }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0xe7a5};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kAppLaunch, 7}, busy_demand(90.0, 1, 190.0));
    double t = 1.0;
    while (t < horizon.value()) {
      // Skewed segment lengths: many short bursts, a few long stretches
      // (paper Section III: "arrivals of software demands are frequent
      // with a skewed distribution").
      const double seg_end =
          std::min(t + std::min(rng.pareto(8.0, 1.3), 120.0), horizon.value());
      if (rng.uniform() < eta_) {
        while (t < seg_end) t = emit_pcmark_segment(tb, rng, t, seg_end, 1.5);
      } else {
        while (t < seg_end) t = emit_video_segment(tb, rng, t, seg_end);
      }
      t = seg_end;
    }
    return std::move(tb).build(horizon.value());
  }

 private:
  double eta_;
};

// --- ScreenToggle -----------------------------------------------------------

class ScreenToggleGenerator final : public WorkloadGenerator {
 public:
  ScreenToggleGenerator(util::Seconds period, double on_fraction)
      : period_s_(period.value()),
        on_fraction_(std::clamp(on_fraction, 0.05, 0.9)) {}

  [[nodiscard]] std::string name() const override {
    if (period_s_ >= 60.0) {
      return "Toggle-" + std::to_string(static_cast<int>(period_s_ / 60.0)) +
             "min";
    }
    return "Toggle-" + std::to_string(static_cast<int>(period_s_)) + "s";
  }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0x70661e};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kScreenSleep, 0}, sleep_demand());
    double t = 0.25 * period_s_;
    const double wake_surge_s = 0.6;
    while (t + period_s_ * on_fraction_ < horizon.value()) {
      // Wake: the short power surge the paper's V-edge analysis studies
      // (boot at the mid frequency; the governor ramps later).
      tb.add(t, {Syscall::kScreenWake, 9}, busy_demand(100.0, 1, 200.0));
      const double settle = t + wake_surge_s;
      const double off_at = t + std::max(period_s_ * on_fraction_,
                                         wake_surge_s + 0.05);
      if (settle < off_at) {
        // Settled on-screen period (user glances at the phone).
        DeviceDemand on = idle_on_demand(190.0);
        on.cpu = CpuState::kC1;
        tb.add(settle, {Syscall::kCpuIdle, 1}, on);
      }
      tb.add(off_at, {Syscall::kScreenSleep, 0}, sleep_demand());
      t += std::max(period_s_ * rng.uniform(0.95, 1.05), off_at - t + 0.1);
    }
    return std::move(tb).build(horizon.value());
  }

 private:
  double period_s_;
  double on_fraction_;
};

// --- IdleScreenOn -----------------------------------------------------------

class IdleScreenOnGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "IdleScreenOn"; }

  [[nodiscard]] Trace generate(util::Seconds horizon,
                               std::uint64_t seed) const override {
    util::Rng rng{seed ^ 0x1d1e};
    TraceBuilder tb{name()};
    tb.add(0.0, {Syscall::kScreenWake, 3}, idle_on_demand());
    double t = 2.0;
    while (t < horizon.value()) {
      // Periodic housekeeping: sync daemons wake the CPU and WiFi briefly.
      // These small frequent surges are why the LITTLE chemistry wins this
      // workload in the paper's Fig. 2(a).
      const double gap = rng.uniform(6.0, 10.0);
      t += gap;
      if (t >= horizon.value()) break;
      const double rate = rng.uniform(100.0, 200.0);
      tb.add(t, {Syscall::kSyncDaemon, bucket_param(rate, 400.0)},
             busy_demand(70.0, 1, 180.0, WifiState::kAccess, rate));
      t += rng.uniform(0.4, 0.8);
      if (t >= horizon.value()) break;
      tb.add(t, {Syscall::kTimerTick, 0}, idle_on_demand());
    }
    return std::move(tb).build(horizon.value());
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_geekbench() {
  return std::make_unique<GeekbenchGenerator>();
}
std::unique_ptr<WorkloadGenerator> make_pcmark() {
  return std::make_unique<PCMarkGenerator>();
}
std::unique_ptr<WorkloadGenerator> make_video() {
  return std::make_unique<VideoGenerator>();
}
std::unique_ptr<WorkloadGenerator> make_local_video() {
  return std::make_unique<LocalVideoGenerator>();
}
std::unique_ptr<WorkloadGenerator> make_eta_static(double eta) {
  return std::make_unique<EtaStaticGenerator>(eta);
}
std::unique_ptr<WorkloadGenerator> make_screen_toggle(util::Seconds period,
                                                      double on_fraction) {
  return std::make_unique<ScreenToggleGenerator>(period, on_fraction);
}
std::unique_ptr<WorkloadGenerator> make_idle_screen_on() {
  return std::make_unique<IdleScreenOnGenerator>();
}

std::vector<std::unique_ptr<WorkloadGenerator>> paper_suite() {
  std::vector<std::unique_ptr<WorkloadGenerator>> suite;
  suite.push_back(make_geekbench());
  suite.push_back(make_pcmark());
  suite.push_back(make_video());
  suite.push_back(make_eta_static(0.2));
  suite.push_back(make_eta_static(0.5));
  suite.push_back(make_eta_static(0.8));
  return suite;
}

}  // namespace capman::workload
