#include "workload/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace capman::workload {

Trace::Trace(std::string name, std::vector<TraceEvent> events,
             double horizon_s)
    : name_(std::move(name)),
      events_(std::move(events)),
      horizon_s_(horizon_s) {
  assert(std::is_sorted(events_.begin(), events_.end(),
                        [](const TraceEvent& a, const TraceEvent& b) {
                          return a.time_s < b.time_s;
                        }));
  assert(horizon_s_ > 0.0);
}

util::Watts Trace::average_power(const device::PhoneModel& phone) const {
  if (events_.empty()) return util::Watts{0.0};
  double energy = 0.0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const double t0 = events_[i].time_s;
    const double t1 = i + 1 < events_.size() ? events_[i + 1].time_s : horizon_s_;
    energy += phone.power(events_[i].demand).total().value() * (t1 - t0);
  }
  return util::Watts{energy / horizon_s_};
}

void TraceBuilder::add(double time_s, Action action,
                       const device::DeviceDemand& demand) {
  assert(events_.empty() || time_s >= events_.back().time_s);
  events_.push_back({time_s, action, demand});
}

Trace TraceBuilder::build(double horizon_s) && {
  return Trace{std::move(name_), std::move(events_), horizon_s};
}

TraceCursor::TraceCursor(const Trace& trace) : trace_(&trace) {
  assert(!trace.empty());
}

std::size_t TraceCursor::index_for(double t) const {
  const auto& events = trace_->events();
  const double local = std::fmod(t, trace_->horizon_s());
  // Last event with time <= local; events start at/near 0.
  auto it = std::upper_bound(
      events.begin(), events.end(), local,
      [](double value, const TraceEvent& e) { return value < e.time_s; });
  if (it == events.begin()) return events.size() - 1;  // wrap: tail demand
  return static_cast<std::size_t>(std::distance(events.begin(), it)) - 1;
}

const device::DeviceDemand& TraceCursor::demand_at(double t) const {
  return trace_->events()[index_for(t)].demand;
}

const Action& TraceCursor::action_at(double t) const {
  return trace_->events()[index_for(t)].action;
}

double TraceCursor::next_event_time(double t) const {
  const auto& events = trace_->events();
  const double horizon = trace_->horizon_s();
  const double local = std::fmod(t, horizon);
  auto it = std::upper_bound(
      events.begin(), events.end(), local,
      [](double value, const TraceEvent& e) { return value < e.time_s; });
  if (it == events.end()) {
    // Wrap to the first event of the next loop.
    return t + (horizon - local) + events.front().time_s;
  }
  return t + (it->time_s - local);
}

bool TraceCursor::advance(double t) {
  const std::size_t idx = index_for(t);
  const auto loop =
      static_cast<std::size_t>(std::floor(t / trace_->horizon_s()));
  const bool fired = idx != last_index_ || loop != last_loop_;
  last_index_ = idx;
  last_loop_ = loop;
  return fired;
}

}  // namespace capman::workload
