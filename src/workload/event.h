// Actions: the system calls / binder messages / user activities that
// trigger device state transitions (paper Section III-B: actions are "the
// system call vector [32]"). Twenty syscall kinds x ten parameter buckets
// gives the ~200 recorded actions the paper mentions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace capman::workload {

enum class Syscall : std::uint8_t {
  kScreenWake = 0,
  kScreenSleep,
  kAppLaunch,
  kAppExit,
  kCpuBurst,
  kCpuIdle,
  kFreqScale,
  kNetRecvStart,
  kNetRecvStop,
  kNetSendStart,
  kNetSendStop,
  kVideoFrame,
  kSyncDaemon,
  kUserTouch,
  kBinderCall,
  kGpsPoll,
  kAudioStart,
  kAudioStop,
  kVibrate,
  kTimerTick,
};

inline constexpr std::size_t kSyscallCount = 20;
inline constexpr std::size_t kParamBuckets = 10;

/// A system-call action with its parameter bucketed into one of
/// kParamBuckets intensity classes (e.g. packet size, burst length).
struct Action {
  Syscall kind = Syscall::kTimerTick;
  std::uint8_t param_bucket = 0;  // [0, kParamBuckets)

  friend bool operator==(const Action&, const Action&) = default;

  [[nodiscard]] std::size_t index() const {
    return static_cast<std::size_t>(kind) * kParamBuckets + param_bucket;
  }
  static Action from_index(std::size_t index) {
    return {static_cast<Syscall>(index / kParamBuckets),
            static_cast<std::uint8_t>(index % kParamBuckets)};
  }
};

inline constexpr std::size_t action_space_size() {
  return kSyscallCount * kParamBuckets;
}

const char* to_string(Syscall s);
std::string to_string(const Action& a);

/// Bucket a continuous parameter in [0, max] into kParamBuckets classes.
std::uint8_t bucket_param(double value, double max);

}  // namespace capman::workload
