// Lumped-parameter (RC) thermal network.
//
// Nodes carry a heat capacity and temperature; edges carry a thermal
// conductance. Heat injected per step (CPU power, battery losses, TEC hot
// side) diffuses through the network toward fixed-temperature nodes
// (ambient). Integration is explicit Euler with automatic sub-stepping to
// stay well inside the stability bound dt < min_i C_i / G_i.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace capman::thermal {

using NodeId = std::size_t;

class ThermalNetwork {
 public:
  /// Adds a node with heat capacity [J/K] and an initial temperature.
  NodeId add_node(std::string name, double heat_capacity_j_per_k,
                  util::Celsius initial);

  /// Adds an isothermal boundary node (e.g. ambient air).
  NodeId add_fixed_node(std::string name, util::Celsius temperature);

  /// Connects two nodes with a thermal conductance [W/K].
  void add_edge(NodeId a, NodeId b, double conductance_w_per_k);

  /// Queues heat power into a node for the next `step` call. Positive =
  /// heating; negative = cooling (TEC cold side). Accumulates.
  void inject(NodeId node, util::Watts power);

  /// Integrates the network over dt, consuming queued injections.
  void step(util::Seconds dt);

  [[nodiscard]] util::Celsius temperature(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::string_view node_name(NodeId node) const;

  /// Reset all non-fixed nodes to the given temperature.
  void reset(util::Celsius temperature);

 private:
  struct Node {
    std::string name;
    double capacity_j_per_k;  // <= 0 marks a fixed node
    double temperature_c;
    double injected_w = 0.0;
    bool fixed = false;
  };
  struct Edge {
    NodeId a;
    NodeId b;
    double conductance_w_per_k;
  };

  [[nodiscard]] double max_stable_dt() const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace capman::thermal
