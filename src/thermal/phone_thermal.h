// The standard smartphone thermal stack used across all experiments
// (paper Fig. 6 top: CPU is the hot spot; TEC sits on the CPU and rejects
// into the board; the surface is what the 45 C skin-temperature limit
// guards).
#pragma once

#include <string>
#include <vector>

#include "thermal/network.h"
#include "thermal/tec.h"
#include "util/units.h"

namespace capman::thermal {

struct PhoneThermalConfig {
  util::Celsius ambient{26.0};
  // Heat capacities [J/K]
  double cpu_capacity = 4.0;
  double board_capacity = 20.0;
  double battery_capacity = 40.0;
  double surface_capacity = 15.0;
  // Conductances [W/K]. The CPU is deliberately a high-resistance hot spot
  // (die-to-sink ~11 K/W) while the surface sheds to ambient easily; spot
  // cooling with a COP~0.5 TEC only pays off in exactly this regime, which
  // is the situation paper Fig. 6 (top) depicts.
  double cpu_board = 0.07;
  double cpu_surface = 0.02;
  double board_surface = 0.35;
  double battery_board = 0.20;
  double battery_surface = 0.15;
  double surface_ambient = 0.30;

  /// Human-readable configuration errors; empty means valid. Aggregated by
  /// sim::SimConfig::validate() under "thermal_config.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The phone's thermal network plus the TEC mounted across CPU (cold side)
/// and board (hot side).
class PhoneThermal {
 public:
  explicit PhoneThermal(const PhoneThermalConfig& config = {},
                        const TecParams& tec_params = {});

  /// One simulation step: inject CPU power and battery losses, run the TEC
  /// at its operating current, integrate. Returns the TEC electric power
  /// drawn this step (a load the battery must additionally supply).
  util::Watts step(util::Watts cpu_power, util::Watts battery_heat,
                   util::Watts other_power, util::Seconds dt);

  [[nodiscard]] util::Celsius cpu_temperature() const;
  [[nodiscard]] util::Celsius surface_temperature() const;
  [[nodiscard]] util::Celsius battery_temperature() const;

  [[nodiscard]] Tec& tec() { return tec_; }
  [[nodiscard]] const Tec& tec() const { return tec_; }

  void reset(util::Celsius temperature);

 private:
  ThermalNetwork network_;
  Tec tec_;
  NodeId cpu_;
  NodeId board_;
  NodeId battery_;
  NodeId surface_;
  NodeId ambient_;
};

}  // namespace capman::thermal
