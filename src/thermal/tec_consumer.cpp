#include "thermal/tec_consumer.h"

namespace capman::thermal {

TecPowerConsumer::TecPowerConsumer(const Tec& tec) : tec_(&tec) {
  apply_cap(capability().max_draw_mw);  // start uncapped
}

util::Milliwatts TecPowerConsumer::reference_draw_mw() const {
  const TecParams& p = tec_->params();
  const double current = p.rated_current.value();
  // P = S_T * I * dT + I^2 * R at the worst-case temperature difference.
  const double watts = p.seebeck_v_per_k * current * kReferenceDeltaK +
                       current * current * p.resistance.value();
  return util::as_milliwatts(util::Watts{watts});
}

device::ConsumerCapability TecPowerConsumer::capability() const {
  device::ConsumerCapability cap;
  cap.min_draw_mw = util::Milliwatts{};  // off is always allowed
  cap.max_draw_mw = reference_draw_mw();
  cap.quantum_mw = util::Milliwatts{50.0};
  cap.shed_priority = 2;  // before the CPU on CPU-priority rows
  return cap;
}

util::Milliwatts TecPowerConsumer::apply_cap(util::Milliwatts budget_mw) {
  granted_mw_ = device::quantize_cap(budget_mw, capability());
  return granted_mw_;
}

bool TecPowerConsumer::allows_on() const {
  // The quantizer floors, so compare against the floored reference.
  const device::ConsumerCapability cap = capability();
  return granted_mw_ >=
         device::quantize_cap(cap.max_draw_mw, cap) - util::Milliwatts{1e-9};
}

}  // namespace capman::thermal
