// Thermoelectric cooler (Peltier) model — paper Eq. (1) and Table II row 4.
//
//   Q_c = S_T * T_c * I - 1/2 * I^2 * R - K * (T_h - T_c)     (heat pumped)
//   P   = S_T * I * (T_h - T_c) + I^2 * R                      (electric power)
//
// The heat-pumping rate is non-monotone in current: it peaks at the rated
// operating current I* = S_T * T_c / R (paper Fig. 6 shows the resulting
// unimodal dT-vs-I curve with the maximum near 1.0 A), so CAPMAN always
// drives the TEC at its rated current — an on/off actuator.
#pragma once

#include "util/units.h"

namespace capman::thermal {

struct TecParams {
  double seebeck_v_per_k = 0.005;     // S_T
  util::Ohms resistance{1.5};         // R
  double conductance_w_per_k = 0.012;  // K (parasitic hot->cold conduction)
  util::Amperes rated_current{1.0};    // I* for the default parameters
};

class Tec {
 public:
  explicit Tec(const TecParams& params = {});

  /// Heat pumped from the cold side at current I (can be negative when
  /// conduction and Joule heating overwhelm the Peltier effect).
  [[nodiscard]] util::Watts heat_pumped(util::Celsius cold,
                                        util::Celsius hot,
                                        util::Amperes current) const;

  /// Electric power drawn at current I with the given side temperatures.
  [[nodiscard]] util::Watts electric_power(util::Celsius cold,
                                           util::Celsius hot,
                                           util::Amperes current) const;

  /// Heat rejected on the hot side = pumped heat + electric power.
  [[nodiscard]] util::Watts heat_rejected(util::Celsius cold,
                                          util::Celsius hot,
                                          util::Amperes current) const;

  /// Steady-state temperature difference the TEC can hold at current I with
  /// zero heat load (Q_c = 0): dT = (S_T*T_c*I - I^2 R / 2) / K. This is the
  /// curve of paper Fig. 6 (unimodal, maximal at the rated current).
  [[nodiscard]] util::KelvinDiff max_delta_t(util::Celsius cold,
                                             util::Amperes current) const;

  /// The analytically optimal operating current S_T * T_c / R.
  [[nodiscard]] util::Amperes optimal_current(util::Celsius cold) const;

  [[nodiscard]] const TecParams& params() const { return params_; }

  // --- On/off actuation (CAPMAN drives the TEC at rated current) ---
  void turn_on() { on_ = true; }
  void turn_off() { on_ = false; }
  [[nodiscard]] bool is_on() const { return on_; }
  /// Operating current right now (rated when on, zero when off).
  [[nodiscard]] util::Amperes operating_current() const;

 private:
  TecParams params_;
  bool on_ = false;
};

}  // namespace capman::thermal
