// The TEC driver as a device::PowerConsumer.
//
// The TEC is an on/off actuator at its rated current (thermal/tec.h), so
// capping it is a gate, not a dial: the grant either covers the worst-case
// electric draw of a rated-current run or the engine must veto turning the
// element on. The reference draw uses a conservative hot/cold temperature
// difference so a grant that "allows on" stays sufficient while the
// element pulls the die down.
#pragma once

#include "device/power_consumer.h"
#include "thermal/tec.h"

namespace capman::thermal {

class TecPowerConsumer final : public device::PowerConsumer {
 public:
  explicit TecPowerConsumer(const Tec& tec);

  /// Worst-case side temperature difference assumed for the reference
  /// electric draw (the TEC's own dT ceiling is close to this).
  static constexpr double kReferenceDeltaK = 30.0;

  [[nodiscard]] device::ConsumerKind kind() const override {
    return device::ConsumerKind::kTec;
  }
  [[nodiscard]] const char* name() const override { return "tec"; }
  [[nodiscard]] device::ConsumerCapability capability() const override;
  util::Milliwatts apply_cap(util::Milliwatts budget_mw) override;
  [[nodiscard]] util::Milliwatts granted_mw() const override {
    return granted_mw_;
  }
  // shape(): inherited no-op — the TEC is gated by the engine via
  // allows_on(), it does not act through DeviceDemand.

  /// Worst-case electric power of a rated-current run.
  [[nodiscard]] util::Milliwatts reference_draw_mw() const;

  /// Whether the current grant covers running the TEC at rated current.
  [[nodiscard]] bool allows_on() const;

 private:
  const Tec* tec_;
  util::Milliwatts granted_mw_;
};

}  // namespace capman::thermal
