#include "thermal/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace capman::thermal {

NodeId ThermalNetwork::add_node(std::string name, double heat_capacity_j_per_k,
                                util::Celsius initial) {
  assert(heat_capacity_j_per_k > 0.0);
  nodes_.push_back(
      {std::move(name), heat_capacity_j_per_k, initial.value(), 0.0, false});
  return nodes_.size() - 1;
}

NodeId ThermalNetwork::add_fixed_node(std::string name,
                                      util::Celsius temperature) {
  nodes_.push_back({std::move(name), 0.0, temperature.value(), 0.0, true});
  return nodes_.size() - 1;
}

void ThermalNetwork::add_edge(NodeId a, NodeId b, double conductance_w_per_k) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  assert(conductance_w_per_k > 0.0);
  edges_.push_back({a, b, conductance_w_per_k});
}

void ThermalNetwork::inject(NodeId node, util::Watts power) {
  assert(node < nodes_.size());
  nodes_[node].injected_w += power.value();
}

double ThermalNetwork::max_stable_dt() const {
  // Explicit Euler stability: dt < C_i / sum of conductances at node i.
  std::vector<double> g_sum(nodes_.size(), 0.0);
  for (const Edge& e : edges_) {
    g_sum[e.a] += e.conductance_w_per_k;
    g_sum[e.b] += e.conductance_w_per_k;
  }
  double bound = 1e9;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].fixed && g_sum[i] > 0.0) {
      bound = std::min(bound, nodes_[i].capacity_j_per_k / g_sum[i]);
    }
  }
  // 0.05x the stability bound: explicit Euler needs small steps for
  // accuracy, not just stability (2% error per time constant at this h).
  return 0.05 * bound;
}

void ThermalNetwork::step(util::Seconds dt) {
  const double total = dt.value();
  assert(total > 0.0);
  const double max_dt = max_stable_dt();
  const int substeps = std::max(1, static_cast<int>(std::ceil(total / max_dt)));
  const double h = total / substeps;

  std::vector<double> flux(nodes_.size());
  for (int s = 0; s < substeps; ++s) {
    std::fill(flux.begin(), flux.end(), 0.0);
    for (const Edge& e : edges_) {
      const double q = e.conductance_w_per_k *
                       (nodes_[e.a].temperature_c - nodes_[e.b].temperature_c);
      flux[e.a] -= q;
      flux[e.b] += q;
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& n = nodes_[i];
      if (n.fixed) continue;
      n.temperature_c += h * (flux[i] + n.injected_w) / n.capacity_j_per_k;
    }
  }
  for (Node& n : nodes_) n.injected_w = 0.0;
}

util::Celsius ThermalNetwork::temperature(NodeId node) const {
  assert(node < nodes_.size());
  return util::Celsius{nodes_[node].temperature_c};
}

std::string_view ThermalNetwork::node_name(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].name;
}

void ThermalNetwork::reset(util::Celsius temperature) {
  for (Node& n : nodes_) {
    if (!n.fixed) n.temperature_c = temperature.value();
    n.injected_w = 0.0;
  }
}

}  // namespace capman::thermal
