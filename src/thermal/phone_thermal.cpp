#include "thermal/phone_thermal.h"

namespace capman::thermal {

std::vector<std::string> PhoneThermalConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(ambient.value() > -273.15, "ambient must be above absolute zero");
  require(cpu_capacity > 0.0, "cpu_capacity must be > 0");
  require(board_capacity > 0.0, "board_capacity must be > 0");
  require(battery_capacity > 0.0, "battery_capacity must be > 0");
  require(surface_capacity > 0.0, "surface_capacity must be > 0");
  require(cpu_board >= 0.0, "cpu_board must be >= 0");
  require(cpu_surface >= 0.0, "cpu_surface must be >= 0");
  require(board_surface >= 0.0, "board_surface must be >= 0");
  require(battery_board >= 0.0, "battery_board must be >= 0");
  require(battery_surface >= 0.0, "battery_surface must be >= 0");
  require(surface_ambient >= 0.0, "surface_ambient must be >= 0");
  return errors;
}

PhoneThermal::PhoneThermal(const PhoneThermalConfig& config,
                           const TecParams& tec_params)
    : tec_(tec_params) {
  cpu_ = network_.add_node("cpu", config.cpu_capacity, config.ambient);
  board_ = network_.add_node("board", config.board_capacity, config.ambient);
  battery_ =
      network_.add_node("battery", config.battery_capacity, config.ambient);
  surface_ =
      network_.add_node("surface", config.surface_capacity, config.ambient);
  ambient_ = network_.add_fixed_node("ambient", config.ambient);

  network_.add_edge(cpu_, board_, config.cpu_board);
  network_.add_edge(cpu_, surface_, config.cpu_surface);
  network_.add_edge(board_, surface_, config.board_surface);
  network_.add_edge(battery_, board_, config.battery_board);
  network_.add_edge(battery_, surface_, config.battery_surface);
  network_.add_edge(surface_, ambient_, config.surface_ambient);
}

util::Watts PhoneThermal::step(util::Watts cpu_power,
                               util::Watts battery_heat,
                               util::Watts other_power, util::Seconds dt) {
  network_.inject(cpu_, cpu_power);
  network_.inject(battery_, battery_heat);
  // Screen/WiFi power dissipates into the board/surface region.
  network_.inject(board_, other_power);

  util::Watts tec_power{0.0};
  const util::Amperes i = tec_.operating_current();
  if (i.value() > 0.0) {
    // Cold side on the CPU die, hot side against the back-cover spreader
    // (the surface node), which has the strongest path to ambient.
    const util::Celsius cold = network_.temperature(cpu_);
    const util::Celsius hot = network_.temperature(surface_);
    const util::Watts pumped = tec_.heat_pumped(cold, hot, i);
    tec_power = tec_.electric_power(cold, hot, i);
    network_.inject(cpu_, -pumped);
    network_.inject(surface_, pumped + tec_power);
  }
  network_.step(dt);
  return tec_power;
}

util::Celsius PhoneThermal::cpu_temperature() const {
  return network_.temperature(cpu_);
}
util::Celsius PhoneThermal::surface_temperature() const {
  return network_.temperature(surface_);
}
util::Celsius PhoneThermal::battery_temperature() const {
  return network_.temperature(battery_);
}

void PhoneThermal::reset(util::Celsius temperature) {
  network_.reset(temperature);
  tec_.turn_off();
}

}  // namespace capman::thermal
