#include "thermal/tec.h"

namespace capman::thermal {

Tec::Tec(const TecParams& params) : params_(params) {}

util::Watts Tec::heat_pumped(util::Celsius cold, util::Celsius hot,
                             util::Amperes current) const {
  const double i = current.value();
  const double tc = util::kelvin(cold);
  const double dt = hot.value() - cold.value();
  const double qc = params_.seebeck_v_per_k * tc * i -
                    0.5 * i * i * params_.resistance.value() -
                    params_.conductance_w_per_k * dt;
  return util::Watts{qc};
}

util::Watts Tec::electric_power(util::Celsius cold, util::Celsius hot,
                                util::Amperes current) const {
  const double i = current.value();
  const double dt = hot.value() - cold.value();
  return util::Watts{params_.seebeck_v_per_k * i * dt +
                     i * i * params_.resistance.value()};
}

util::Watts Tec::heat_rejected(util::Celsius cold, util::Celsius hot,
                               util::Amperes current) const {
  return heat_pumped(cold, hot, current) +
         electric_power(cold, hot, current);
}

util::KelvinDiff Tec::max_delta_t(util::Celsius cold,
                                  util::Amperes current) const {
  const double i = current.value();
  const double tc = util::kelvin(cold);
  const double numerator = params_.seebeck_v_per_k * tc * i -
                           0.5 * i * i * params_.resistance.value();
  return util::KelvinDiff{numerator / params_.conductance_w_per_k};
}

util::Amperes Tec::optimal_current(util::Celsius cold) const {
  return util::Amperes{params_.seebeck_v_per_k * util::kelvin(cold) /
                       params_.resistance.value()};
}

util::Amperes Tec::operating_current() const {
  return on_ ? params_.rated_current : util::Amperes{0.0};
}

}  // namespace capman::thermal
