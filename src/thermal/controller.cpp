#include "thermal/controller.h"

#include <stdexcept>

namespace capman::thermal {

std::vector<std::string> CoolingControllerConfig::validate() const {
  std::vector<std::string> errors;
  if (!(threshold.value() > -273.15)) {
    errors.push_back("threshold must be above absolute zero");
  }
  if (!(hysteresis.value() >= 0.0)) {
    errors.push_back("hysteresis must be >= 0");
  }
  return errors;
}

CoolingController::CoolingController(const CoolingControllerConfig& config)
    : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid CoolingControllerConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

bool CoolingController::update(PhoneThermal& thermal) {
  const util::Celsius hot_spot = thermal.cpu_temperature();
  Tec& tec = thermal.tec();
  if (!tec.is_on() && hot_spot > config_.threshold) {
    tec.turn_on();
    ++activations_;
  } else if (tec.is_on() &&
             hot_spot < config_.threshold - config_.hysteresis) {
    tec.turn_off();
  }
  return tec.is_on();
}

}  // namespace capman::thermal
