#include "thermal/controller.h"

namespace capman::thermal {

CoolingController::CoolingController(const CoolingControllerConfig& config)
    : config_(config) {}

bool CoolingController::update(PhoneThermal& thermal) {
  const util::Celsius hot_spot = thermal.cpu_temperature();
  Tec& tec = thermal.tec();
  if (!tec.is_on() && hot_spot > config_.threshold) {
    tec.turn_on();
    ++activations_;
  } else if (tec.is_on() &&
             hot_spot < config_.threshold - config_.hysteresis) {
    tec.turn_off();
  }
  return tec.is_on();
}

}  // namespace capman::thermal
