// Threshold cooling controller: "TEC is powered on directly from the switch
// facility when the temperature is higher than the 45 C threshold" (paper
// Section IV). A hysteresis band prevents relay chatter.
#pragma once

#include <string>
#include <vector>

#include "thermal/phone_thermal.h"
#include "util/units.h"

namespace capman::thermal {

struct CoolingControllerConfig {
  util::Celsius threshold{45.0};
  util::KelvinDiff hysteresis{2.0};  // turn off below threshold - hysteresis

  /// Human-readable configuration errors; empty means valid. Checked by
  /// the CoolingController constructor and aggregated by
  /// sim::SimConfig::validate() under "cooling_config.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

class CoolingController {
 public:
  explicit CoolingController(const CoolingControllerConfig& config = {});

  /// Update the TEC on/off state from the current hot-spot temperature.
  /// Returns true when the TEC is (now) on.
  bool update(PhoneThermal& thermal);

  [[nodiscard]] const CoolingControllerConfig& config() const {
    return config_;
  }
  /// Total number of on-transitions so far.
  [[nodiscard]] std::size_t activation_count() const { return activations_; }

 private:
  CoolingControllerConfig config_;
  std::size_t activations_ = 0;
};

}  // namespace capman::thermal
