#include "math/hausdorff.h"

#include <algorithm>

namespace capman::math {

double directed_hausdorff(std::size_t size_a, std::size_t size_b,
                          const SetGroundDistance& d) {
  if (size_a == 0) return 0.0;
  if (size_b == 0) return 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < size_a; ++i) {
    double best = d(i, 0);
    for (std::size_t j = 1; j < size_b; ++j) {
      best = std::min(best, d(i, j));
      // Early exit on an exact zero distance (the floor of the min scan);
      // a tolerance would change results.  capman-lint: allow(float-compare)
      if (best == 0.0) break;
    }
    worst = std::max(worst, best);
  }
  return worst;
}

double hausdorff(std::size_t size_a, std::size_t size_b,
                 const SetGroundDistance& d) {
  const double forward = directed_hausdorff(size_a, size_b, d);
  const double backward = directed_hausdorff(
      size_b, size_a, [&d](std::size_t j, std::size_t i) { return d(i, j); });
  return std::max(forward, backward);
}

}  // namespace capman::math
