// Dense row-major matrix of doubles, sized for the similarity matrices of
// Algorithm 1 (|S| ~ 50 states, |A| ~ 200 actions -> at most ~40k doubles).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace capman::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix (used to seed S^(0), A^(0) in Algorithm 1).
  static Matrix identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Largest absolute element-wise difference; convergence criterion of the
  /// similarity recursion.
  [[nodiscard]] double linf_distance(const Matrix& other) const;

  /// True when every element lies in [lo, hi] (boundedness invariant of
  /// Algorithm 1: S, A in [0,1]).
  [[nodiscard]] bool all_in(double lo, double hi) const;

  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace capman::math
