#include "math/dijkstra.h"

#include <cassert>

#include "math/indexed_heap.h"

namespace capman::math {

void Digraph::add_edge(std::size_t from, std::size_t to, double weight) {
  assert(from < adj_.size() && to < adj_.size());
  assert(weight >= 0.0);
  adj_[from].push_back({to, weight});
}

ShortestPaths dijkstra(const Digraph& graph, std::size_t source) {
  const std::size_t n = graph.node_count();
  ShortestPaths result;
  result.distance.assign(n, std::numeric_limits<double>::infinity());
  result.parent.assign(n, ShortestPaths::npos);

  IndexedMinHeap heap(n);
  result.distance[source] = 0.0;
  heap.push_or_decrease(source, 0.0);
  while (!heap.empty()) {
    const auto [u, du] = heap.pop_min();
    if (du > result.distance[u]) continue;  // stale entry
    for (const WeightedEdge& e : graph.out_edges(u)) {
      const double cand = du + e.weight;
      if (cand < result.distance[e.to]) {
        result.distance[e.to] = cand;
        result.parent[e.to] = u;
        heap.push_or_decrease(e.to, cand);
      }
    }
  }
  return result;
}

}  // namespace capman::math
