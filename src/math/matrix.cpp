#include "math/matrix.h"

#include <algorithm>
#include <cmath>

namespace capman::math {

double Matrix::linf_distance(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::all_in(double lo, double hi) const {
  return std::all_of(data_.begin(), data_.end(),
                     [&](double v) { return v >= lo && v <= hi; });
}

}  // namespace capman::math
