// Indexed binary min-heap with decrease-key, the priority queue behind
// Dijkstra in the successive-shortest-path solver. The paper uses a
// Fibonacci heap; for the graph sizes here (K_max <= |V| ~ 50) a 4-ary
// indexed heap has strictly better constants while keeping the same
// decrease-key interface.
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>
#include <vector>

namespace capman::math {

class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(std::size_t capacity)
      : pos_(capacity, kAbsent) {}

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool contains(std::size_t key) const {
    return key < pos_.size() && pos_[key] != kAbsent;
  }

  /// Insert key with priority, or lower its priority if already present
  /// (no-op when the new priority is not lower).
  void push_or_decrease(std::size_t key, double priority);

  /// Pop the (key, priority) pair with the smallest priority.
  std::pair<std::size_t, double> pop_min();

  void clear();

 private:
  static constexpr std::size_t kAbsent = std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void swap_nodes(std::size_t a, std::size_t b);

  struct Node {
    std::size_t key;
    double priority;
  };
  std::vector<Node> heap_;
  std::vector<std::size_t> pos_;  // key -> heap index, or kAbsent
};

}  // namespace capman::math
