#include "math/indexed_heap.h"

#include <utility>

namespace capman::math {

void IndexedMinHeap::push_or_decrease(std::size_t key, double priority) {
  assert(key < pos_.size());
  if (pos_[key] == kAbsent) {
    heap_.push_back({key, priority});
    pos_[key] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
    return;
  }
  const std::size_t i = pos_[key];
  if (priority < heap_[i].priority) {
    heap_[i].priority = priority;
    sift_up(i);
  }
}

std::pair<std::size_t, double> IndexedMinHeap::pop_min() {
  assert(!heap_.empty());
  const Node top = heap_.front();
  swap_nodes(0, heap_.size() - 1);
  pos_[top.key] = kAbsent;
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return {top.key, top.priority};
}

void IndexedMinHeap::clear() {
  for (const Node& n : heap_) pos_[n.key] = kAbsent;
  heap_.clear();
}

void IndexedMinHeap::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (heap_[parent].priority <= heap_[i].priority) break;
    swap_nodes(i, parent);
    i = parent;
  }
}

void IndexedMinHeap::sift_down(std::size_t i) {
  for (;;) {
    std::size_t best = i;
    const std::size_t first_child = kArity * i + 1;
    for (std::size_t c = first_child;
         c < heap_.size() && c < first_child + kArity; ++c) {
      if (heap_[c].priority < heap_[best].priority) best = c;
    }
    if (best == i) break;
    swap_nodes(i, best);
    i = best;
  }
}

void IndexedMinHeap::swap_nodes(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  pos_[heap_[a].key] = a;
  pos_[heap_[b].key] = b;
}

}  // namespace capman::math
