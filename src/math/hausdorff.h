// Hausdorff distance between two finite point sets under a caller-supplied
// ground metric. Algorithm 1 uses it to compare the action-neighbourhoods
// of two state nodes:  sigma_S(u,v) = C_S * (1 - Hausdorff(N_u, N_v; d_A)).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace capman::math {

/// Distance between element i of the first set and element j of the second.
using SetGroundDistance = std::function<double(std::size_t, std::size_t)>;

/// Directed Hausdorff: max over a in A of min over b in B of d(a, b).
/// Empty A yields 0; empty B with non-empty A yields +infinity-like 1.0
/// (distances in CAPMAN live in [0,1], so 1 is the diameter).
double directed_hausdorff(std::size_t size_a, std::size_t size_b,
                          const SetGroundDistance& d);

/// Symmetric Hausdorff: max of the two directed distances.
double hausdorff(std::size_t size_a, std::size_t size_b,
                 const SetGroundDistance& d);

}  // namespace capman::math
