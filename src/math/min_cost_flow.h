// Successive-shortest-path (SSP) min-cost flow with Johnson potentials.
//
// This is the solver the paper cites ([40], Jewell's "optimal flow through
// networks") for computing the Earth Mover's Distance inside Algorithm 1.
// Capacities and costs are doubles because EMD moves probability mass;
// epsilon guards keep the residual network consistent.
#pragma once

#include <cstddef>
#include <vector>

namespace capman::math {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t node_count);

  /// Adds a directed edge with capacity >= 0 and cost >= 0.
  /// Returns the edge id (usable with `flow_on`).
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity,
                       double cost);

  struct Result {
    double flow = 0.0;   // total flow pushed
    double cost = 0.0;   // total cost of that flow
    bool saturated = false;  // true iff requested amount was fully routed
  };

  /// Pushes up to `amount` flow from source to sink along successively
  /// cheapest augmenting paths (Dijkstra on reduced costs).
  Result solve(std::size_t source, std::size_t sink, double amount);

  /// Flow currently routed on edge `edge_id` (after solve).
  [[nodiscard]] double flow_on(std::size_t edge_id) const;

  [[nodiscard]] std::size_t node_count() const { return head_.size(); }

 private:
  struct Arc {
    std::size_t to;
    double capacity;  // residual capacity
    double cost;
  };
  // Forward arc 2k and backward arc 2k+1 are twins.
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> head_;  // node -> arc ids
  std::vector<double> potential_;

  static constexpr double kEps = 1e-12;
};

}  // namespace capman::math
