// Earth Mover's Distance between two finite discrete distributions under an
// arbitrary ground-distance matrix, solved as a transportation problem via
// successive shortest paths (paper Algorithm 1, line 4:
// d <- EMD(p_a, p_b; G_M, 1 - S)).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace capman::math {

/// A discrete distribution: `mass[i]` on abstract point `i` (the point
/// identity is external; only the ground distance matters here). Masses are
/// normalized internally, so unnormalized histograms are accepted.
struct Distribution {
  std::vector<double> mass;
};

/// Ground distance between support point i of `p` and support point j of
/// `q`. Must be >= 0; EMD is a metric iff the ground distance is one and the
/// supports coincide.
using GroundDistance = std::function<double(std::size_t, std::size_t)>;

/// EMD(p, q; d): minimum total cost of transporting the mass of p onto q.
/// Both distributions must have positive total mass.
double earth_movers_distance(const Distribution& p, const Distribution& q,
                             const GroundDistance& d);

/// Closed-form EMD for distributions on the 1-D line with |x - y| ground
/// distance (equals the L1 distance between CDFs). Used to cross-check the
/// flow solver in tests.
double emd_1d(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace capman::math
