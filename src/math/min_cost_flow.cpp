#include "math/min_cost_flow.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "math/indexed_heap.h"

namespace capman::math {

MinCostFlow::MinCostFlow(std::size_t node_count) : head_(node_count) {}

std::size_t MinCostFlow::add_edge(std::size_t from, std::size_t to,
                                  double capacity, double cost) {
  assert(from < head_.size() && to < head_.size());
  assert(capacity >= 0.0 && cost >= 0.0);
  const std::size_t id = arcs_.size();
  arcs_.push_back({to, capacity, cost});
  arcs_.push_back({from, 0.0, -cost});
  head_[from].push_back(id);
  head_[to].push_back(id + 1);
  return id;
}

MinCostFlow::Result MinCostFlow::solve(std::size_t source, std::size_t sink,
                                       double amount) {
  const std::size_t n = head_.size();
  potential_.assign(n, 0.0);  // all costs >= 0, so zero potentials are valid
  Result result;

  std::vector<double> dist(n);
  std::vector<std::size_t> parent_arc(n);
  IndexedMinHeap heap(n);

  while (result.flow + kEps < amount) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), std::numeric_limits<double>::infinity());
    std::fill(parent_arc.begin(), parent_arc.end(),
              std::numeric_limits<std::size_t>::max());
    heap.clear();
    dist[source] = 0.0;
    heap.push_or_decrease(source, 0.0);
    while (!heap.empty()) {
      const auto [u, du] = heap.pop_min();
      if (du > dist[u]) continue;
      for (std::size_t arc_id : head_[u]) {
        const Arc& arc = arcs_[arc_id];
        if (arc.capacity <= kEps) continue;
        const double reduced = arc.cost + potential_[u] - potential_[arc.to];
        // Reduced costs are >= -eps by induction; clamp tiny negatives that
        // arise from floating point.
        const double cand = du + std::max(reduced, 0.0);
        if (cand < dist[arc.to] - kEps) {
          dist[arc.to] = cand;
          parent_arc[arc.to] = arc_id;
          heap.push_or_decrease(arc.to, cand);
        }
      }
    }
    if (dist[sink] == std::numeric_limits<double>::infinity()) break;

    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < std::numeric_limits<double>::infinity()) {
        potential_[v] += dist[v];
      }
    }

    // Bottleneck along the augmenting path.
    double push = amount - result.flow;
    for (std::size_t v = sink; v != source;) {
      const Arc& arc = arcs_[parent_arc[v]];
      push = std::min(push, arc.capacity);
      v = arcs_[parent_arc[v] ^ 1].to;
    }
    if (push <= kEps) break;

    for (std::size_t v = sink; v != source;) {
      const std::size_t arc_id = parent_arc[v];
      arcs_[arc_id].capacity -= push;
      arcs_[arc_id ^ 1].capacity += push;
      result.cost += push * arcs_[arc_id].cost;
      v = arcs_[arc_id ^ 1].to;
    }
    result.flow += push;
  }
  result.saturated = result.flow + kEps >= amount;
  return result;
}

double MinCostFlow::flow_on(std::size_t edge_id) const {
  // Flow on a forward arc equals the residual capacity of its twin.
  return arcs_[2 * (edge_id / 2) + 1].capacity;
}

}  // namespace capman::math
