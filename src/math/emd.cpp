#include "math/emd.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "math/min_cost_flow.h"

namespace capman::math {

double earth_movers_distance(const Distribution& p, const Distribution& q,
                             const GroundDistance& d) {
  const std::size_t np = p.mass.size();
  const std::size_t nq = q.mass.size();
  const double total_p = std::accumulate(p.mass.begin(), p.mass.end(), 0.0);
  const double total_q = std::accumulate(q.mass.begin(), q.mass.end(), 0.0);
  if (total_p <= 0.0 || total_q <= 0.0) {
    throw std::invalid_argument("earth_movers_distance: empty distribution");
  }

  // Nodes: 0 = source, 1..np = p supports, np+1..np+nq = q supports,
  // np+nq+1 = sink.
  const std::size_t source = 0;
  const std::size_t sink = np + nq + 1;
  MinCostFlow flow(np + nq + 2);
  for (std::size_t i = 0; i < np; ++i) {
    const double m = p.mass[i] / total_p;
    if (m > 0.0) flow.add_edge(source, 1 + i, m, 0.0);
  }
  for (std::size_t j = 0; j < nq; ++j) {
    const double m = q.mass[j] / total_q;
    if (m > 0.0) flow.add_edge(1 + np + j, sink, m, 0.0);
  }
  for (std::size_t i = 0; i < np; ++i) {
    if (p.mass[i] <= 0.0) continue;
    for (std::size_t j = 0; j < nq; ++j) {
      if (q.mass[j] <= 0.0) continue;
      const double cost = d(i, j);
      assert(cost >= 0.0);
      flow.add_edge(1 + i, 1 + np + j, 2.0, cost);  // capacity > any mass
    }
  }
  const auto result = flow.solve(source, sink, 1.0);
  return result.cost;
}

double emd_1d(const std::vector<double>& p, const std::vector<double>& q) {
  assert(p.size() == q.size());
  const double tp = std::accumulate(p.begin(), p.end(), 0.0);
  const double tq = std::accumulate(q.begin(), q.end(), 0.0);
  assert(tp > 0.0 && tq > 0.0);
  double carried = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    carried += p[i] / tp - q[i] / tq;
    total += std::abs(carried);
  }
  return total;
}

}  // namespace capman::math
