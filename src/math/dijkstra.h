// Single-source shortest paths on a non-negatively weighted digraph.
// Used directly by tests and as the inner loop of the successive-shortest-
// path (SSP) min-cost-flow solver the paper's Algorithm 1 relies on for EMD.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace capman::math {

struct WeightedEdge {
  std::size_t to;
  double weight;  // must be >= 0
};

/// Adjacency-list digraph for shortest-path queries.
class Digraph {
 public:
  explicit Digraph(std::size_t node_count) : adj_(node_count) {}

  void add_edge(std::size_t from, std::size_t to, double weight);

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] const std::vector<WeightedEdge>& out_edges(std::size_t v) const {
    return adj_[v];
  }

 private:
  std::vector<std::vector<WeightedEdge>> adj_;
};

struct ShortestPaths {
  std::vector<double> distance;       // +inf if unreachable
  std::vector<std::size_t> parent;    // npos for source/unreachable
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
};

/// Dijkstra with an indexed 4-ary heap.
ShortestPaths dijkstra(const Digraph& graph, std::size_t source);

}  // namespace capman::math
