#include "policy/baselines.h"

#include <cmath>

namespace capman::policy {

battery::BatterySelection HeuristicPolicy::on_event(
    const PolicyContext& context, const workload::Action& /*event*/) {
  // EWMA prediction of demand from the Table II models' current output.
  // The heuristic reacts to what the phone draws *now*, so it lags pattern
  // changes — which is exactly where CAPMAN's learned model wins.
  if (!primed_) {
    predicted_w_ = context.demand_w;
    primed_ = true;
  } else {
    const double dt = std::max(context.now_s - last_event_s_, 1e-3);
    const double alpha = 1.0 - std::exp(-dt / ewma_tau_s_);
    predicted_w_ += alpha * (context.demand_w - predicted_w_);
  }
  last_event_s_ = context.now_s;

  if (context.little_soc <= 0.08) return battery::BatterySelection::kBig;
  // Predict the coming interval as the max of the instantaneous reading and
  // the trend: catches surges, but still lags when a pattern shifts.
  const double predicted = std::max(context.demand_w, predicted_w_);
  return predicted > threshold_w_ ? battery::BatterySelection::kLittle
                                  : battery::BatterySelection::kBig;
}

}  // namespace capman::policy
