#include "policy/capman_policy.h"

namespace capman::policy {

CapmanPolicy::CapmanPolicy(const core::CapmanConfig& config,
                           std::uint64_t seed)
    : controller_(config, seed) {}

battery::BatterySelection CapmanPolicy::on_event(
    const PolicyContext& context, const workload::Action& event) {
  auto choice = controller_.on_event(event, context.device, context.active,
                                     util::Seconds{context.now_s},
                                     context.emergency);
  // Management-facility reserve guard (the learned policy has no
  // state-of-charge in its state space; protection is the actuator's job).
  if (choice == battery::BatterySelection::kLittle &&
      context.little_soc < kReserveSoc && context.big_soc > kReserveSoc) {
    choice = battery::BatterySelection::kBig;
  } else if (choice == battery::BatterySelection::kBig &&
             context.big_soc < kReserveSoc &&
             context.little_soc > kReserveSoc) {
    choice = battery::BatterySelection::kLittle;
  }
  return choice;
}

void CapmanPolicy::record_step(util::Joules delivered, util::Joules losses,
                               bool demand_met) {
  controller_.record_step(delivered, losses, demand_met);
}

util::Watts CapmanPolicy::maintenance(util::Seconds now) {
  return controller_.maintenance(now);
}

}  // namespace capman::policy
