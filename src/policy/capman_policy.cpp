#include "policy/capman_policy.h"

namespace capman::policy {

CapmanPolicy::CapmanPolicy(const core::CapmanConfig& config,
                           std::uint64_t seed,
                           const core::DegradationConfig& resilience)
    : controller_(config, seed), guard_(resilience) {}

battery::BatterySelection CapmanPolicy::on_event(
    const PolicyContext& context, const workload::Action& event) {
  auto choice = controller_.on_event(event, context.device, context.active,
                                     util::Seconds{context.now_s},
                                     context.emergency, context.budget_level);
  consulted_ = true;
  // Management-facility reserve guard (the learned policy has no
  // state-of-charge in its state space; protection is the actuator's job).
  if (choice == battery::BatterySelection::kLittle &&
      context.little_soc < kReserveSoc && context.big_soc > kReserveSoc) {
    choice = battery::BatterySelection::kBig;
  } else if (choice == battery::BatterySelection::kBig &&
             context.big_soc < kReserveSoc &&
             context.little_soc > kReserveSoc) {
    choice = battery::BatterySelection::kLittle;
  }
  // Actuator watchdog: detect switches the facility never latched, fall
  // back to the observed cell's safe policy, retry with backoff. A switch
  // the management facility would refuse anyway (target cell cannot carry
  // the present demand) is reported as infeasible so the guard never
  // mistakes a protection refusal for a broken board. No-op when the
  // guard is disabled (the fault-free default).
  bool feasible = true;
  if (choice != context.active && context.pack != nullptr) {
    feasible = context.pack->would_accept(choice);
  }
  return guard_.filter(util::Seconds{context.now_s}, context.active, choice,
                       context.emergency, feasible);
}

void CapmanPolicy::record_step(util::Joules delivered, util::Joules losses,
                               bool demand_met) {
  controller_.record_step(delivered, losses, demand_met);
}

util::Watts CapmanPolicy::maintenance(util::Seconds now) {
  return controller_.maintenance(now);
}

void CapmanPolicy::bind_metrics(obs::MetricsRegistry* registry,
                                bool publish_timings) {
  Instrumented::bind_metrics(registry, publish_timings);
  controller_.scheduler().bind_metrics(registry, publish_timings);
}

void CapmanPolicy::publish_metrics(obs::MetricsRegistry& registry) const {
  controller_.scheduler().decision_stats().publish(registry);
  guard_.stats().publish(registry);
  registry.gauge("scheduler/exploration_rate")
      .set(controller_.scheduler().exploration_rate());
  if (publish_timings()) {
    registry.gauge("scheduler/solve_wall_s")
        .set(controller_.solve_wall_seconds());
  }
}

std::optional<obs::DecisionDetail> CapmanPolicy::last_decision_detail() const {
  if (!consulted_) return std::nullopt;
  return controller_.scheduler().last_decision_detail();
}

}  // namespace capman::policy
