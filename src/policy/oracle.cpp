#include "policy/oracle.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace capman::policy {

std::vector<std::string> OracleConfig::validate() const {
  std::vector<std::string> errors;
  if (!(little_reserve_soc >= 0.0 && little_reserve_soc < 1.0)) {
    errors.push_back("little_reserve_soc must be in [0, 1)");
  }
  if (!(scarcity_weight >= 0.0)) {
    errors.push_back("scarcity_weight must be >= 0");
  }
  if (!(lookahead_cap_s > 0.0)) {
    errors.push_back("lookahead_cap_s must be > 0");
  }
  return errors;
}

OraclePolicy::OraclePolicy(const OracleConfig& config) : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid OracleConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

double OraclePolicy::interval_cost(battery::Cell cell, double avg_w,
                                   double peak_w, double duration_s) const {
  const double charge_before =
      cell.available_charge().value() + cell.bound_charge().value();
  if (charge_before <= 0.0) return 1e18;
  const double horizon = std::min(duration_s, config_.lookahead_cap_s);
  // Approximate the interval as a peak spike (the event surge) followed by
  // the average draw; 100 ms steps keep the surge transient visible.
  const util::Seconds dt{0.1};
  double t = 0.0;
  bool browned_out = false;
  while (t < horizon) {
    const double w = t < 0.5 ? peak_w : avg_w;
    const auto r = cell.draw(util::Watts{w}, dt);
    if (r.brownout) browned_out = true;
    t += dt.value();
  }
  if (browned_out) return 1e18;  // never pick a cell that cannot serve
  // Marginal cost = chemical charge spent, priced at the nominal voltage
  // (isolates resistive/coulombic overheads from open-circuit bookkeeping).
  const double charge_after =
      cell.available_charge().value() + cell.bound_charge().value();
  const double consumed =
      (charge_before - charge_after) * cell.profile().nominal_voltage_v;
  // Scarcity weighting: spending from a nearly-empty cell costs more.
  const double scarcity =
      1.0 + config_.scarcity_weight * (1.0 - std::clamp(cell.soc(), 0.0, 1.0));
  return consumed * scarcity;
}

battery::BatterySelection OraclePolicy::on_event(
    const PolicyContext& context, const workload::Action& /*event*/) {
  if (context.pack == nullptr) return battery::BatterySelection::kBig;
  const auto& pack = *context.pack;

  if (pack.little_cell().exhausted()) return battery::BatterySelection::kBig;
  if (pack.big_cell().exhausted()) return battery::BatterySelection::kLittle;

  const double avg = context.interval_avg_w;
  const double peak = std::max(context.interval_peak_w, avg);
  const double dur = std::max(context.interval_duration_s, 0.2);

  double cost_big =
      interval_cost(pack.big_cell(), avg, peak, dur);
  double cost_little =
      interval_cost(pack.little_cell(), avg, peak, dur);

  // Reserve LITTLE headroom for future surges unless big cannot serve.
  if (pack.little_cell().soc() < config_.little_reserve_soc &&
      cost_big < 1e17) {
    return battery::BatterySelection::kBig;
  }
  return cost_big <= cost_little ? battery::BatterySelection::kBig
                                 : battery::BatterySelection::kLittle;
}

}  // namespace capman::policy
