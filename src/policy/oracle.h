// Oracle baseline (paper Section V: "a baseline based on offline analysis,
// serving ground truth").
//
// Clairvoyant greedy with one-interval lookahead: the Oracle knows the
// trace, so at each event it clones both cells, simulates the coming
// interval's demand on each, and picks the battery whose *marginal*
// consumption (energy drawn from the wells, weighted by how scarce that
// cell's remaining energy is) is lower. A reserve floor keeps a sliver of
// LITTLE capacity for late surges. This is not provably optimal, but with
// perfect knowledge and true cell physics it dominates every online policy
// in practice, which is the role the paper's Oracle plays.
#pragma once

#include <string>
#include <vector>

#include "policy/policy.h"

namespace capman::policy {

struct OracleConfig {
  double little_reserve_soc = 0.06;  // keep LITTLE above this for surges
  double scarcity_weight = 1.0;      // how strongly scarcity is penalized
  double lookahead_cap_s = 10.0;     // cap on simulated lookahead horizon

  /// Human-readable configuration errors; empty means valid. Checked by
  /// the OraclePolicy constructor (throws std::invalid_argument).
  [[nodiscard]] std::vector<std::string> validate() const;
};

class OraclePolicy final : public BatteryPolicy {
 public:
  explicit OraclePolicy(const OracleConfig& config = {});

  [[nodiscard]] std::string name() const override { return "Oracle"; }
  battery::BatterySelection on_event(const PolicyContext& context,
                                     const workload::Action& event) override;

 private:
  /// Marginal cost of serving the interval from `cell` (a copy, mutated).
  [[nodiscard]] double interval_cost(battery::Cell cell, double avg_w,
                                     double peak_w, double duration_s) const;

  OracleConfig config_;
};

}  // namespace capman::policy
