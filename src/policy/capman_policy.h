// CAPMAN exposed as a BatteryPolicy: thin adapter around the core
// controller so the simulation engine can compare it against the baselines
// through one interface.
#pragma once

#include "core/controller.h"
#include "core/degradation.h"
#include "policy/policy.h"

namespace capman::policy {

class CapmanPolicy final : public BatteryPolicy {
 public:
  /// `resilience` arms the actuator DegradationGuard; the default keeps it
  /// off, which is bit-identical to the guard-less controller.
  explicit CapmanPolicy(const core::CapmanConfig& config = {},
                        std::uint64_t seed = 42,
                        const core::DegradationConfig& resilience = {});

  /// Reserve guard of the battery management facility: the scheduler's
  /// choice is overridden when it would drain a cell past serviceability
  /// while the sibling still has charge.
  static constexpr double kReserveSoc = 0.06;

  [[nodiscard]] std::string name() const override { return "CAPMAN"; }

  battery::BatterySelection on_event(const PolicyContext& context,
                                     const workload::Action& event) override;

  void record_step(util::Joules delivered, util::Joules losses,
                   bool demand_met) override;

  util::Watts maintenance(util::Seconds now) override;

  [[nodiscard]] core::DegradationStats degradation() const override {
    return guard_.stats();
  }

  /// The budget level the scheduler's winning action carried at the last
  /// consultation (kFull unless CapmanConfig::learn_budget is set).
  [[nodiscard]] core::BudgetLevel preferred_budget_level() const override {
    return controller_.last_budget_level();
  }

  /// Threads the registry down to the scheduler (Algorithm 1 pair
  /// counters, value-iteration sweeps per recalibration).
  void bind_metrics(obs::MetricsRegistry* registry,
                    bool publish_timings) override;

  /// Publishes the cumulative decision-ladder counters, the guard
  /// counters, and (when timings were enabled) the total solve wall time.
  void publish_metrics(obs::MetricsRegistry& registry) const override;

  /// The scheduler's provenance for the decision the engine just applied.
  /// Note the *guard or reserve override* may have changed the final cell;
  /// the detail describes what the learned policy wanted and why.
  [[nodiscard]] std::optional<obs::DecisionDetail> last_decision_detail()
      const override;

  [[nodiscard]] const core::CapmanController& controller() const {
    return controller_;
  }

 private:
  core::CapmanController controller_;
  // Actuator watchdog (graceful degradation). Sits at the policy boundary
  // because feasibility gating needs the pack observability (SoCs, demand)
  // that PolicyContext carries and the core controller never sees.
  core::DegradationGuard guard_;
  bool consulted_ = false;  // last_decision_detail is valid
};

}  // namespace capman::policy
