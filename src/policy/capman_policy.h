// CAPMAN exposed as a BatteryPolicy: thin adapter around the core
// controller so the simulation engine can compare it against the baselines
// through one interface.
#pragma once

#include "core/controller.h"
#include "core/degradation.h"
#include "policy/policy.h"

namespace capman::policy {

class CapmanPolicy final : public BatteryPolicy {
 public:
  /// `resilience` arms the actuator DegradationGuard; the default keeps it
  /// off, which is bit-identical to the guard-less controller.
  explicit CapmanPolicy(const core::CapmanConfig& config = {},
                        std::uint64_t seed = 42,
                        const core::DegradationConfig& resilience = {});

  /// Reserve guard of the battery management facility: the scheduler's
  /// choice is overridden when it would drain a cell past serviceability
  /// while the sibling still has charge.
  static constexpr double kReserveSoc = 0.06;

  [[nodiscard]] std::string name() const override { return "CAPMAN"; }

  battery::BatterySelection on_event(const PolicyContext& context,
                                     const workload::Action& event) override;

  void record_step(util::Joules delivered, util::Joules losses,
                   bool demand_met) override;

  util::Watts maintenance(util::Seconds now) override;

  [[nodiscard]] core::DegradationStats degradation() const override {
    return guard_.stats();
  }

  [[nodiscard]] const core::CapmanController& controller() const {
    return controller_;
  }

 private:
  core::CapmanController controller_;
  // Actuator watchdog (graceful degradation). Sits at the policy boundary
  // because feasibility gating needs the pack observability (SoCs, demand)
  // that PolicyContext carries and the core controller never sees.
  core::DegradationGuard guard_;
};

}  // namespace capman::policy
