// Battery scheduling policy interface shared by CAPMAN and all baselines
// (paper Section V): Oracle, Practice, Dual, Heuristic, CAPMAN.
#pragma once

#include <memory>
#include <string>

#include "battery/pack.h"
#include "device/power_state.h"
#include "util/units.h"
#include "workload/event.h"

namespace capman::policy {

struct PolicyContext {
  double now_s = 0.0;
  device::DeviceStateVector device;
  double demand_w = 0.0;  // instantaneous component power demand
  battery::BatterySelection active = battery::BatterySelection::kBig;
  double big_soc = 1.0;
  double little_soc = 1.0;
  double hotspot_c = 25.0;
  // True when this consultation was triggered by the rail monitor (the
  // previous step's demand went unmet), not by a trace event.
  bool emergency = false;

  // Clairvoyant fields, filled by the engine from the (known) trace. Only
  // the offline Oracle may read them; online policies must ignore them.
  double interval_avg_w = 0.0;
  double interval_peak_w = 0.0;
  double interval_duration_s = 0.0;
  const battery::DualBatteryPack* pack = nullptr;  // null on single packs
};

class BatteryPolicy {
 public:
  virtual ~BatteryPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Battery decision when trace event `event` fires.
  virtual battery::BatterySelection on_event(
      const PolicyContext& context, const workload::Action& event) = 0;

  /// Per-step energy accounting feedback (used by learning policies).
  virtual void record_step(util::Joules /*delivered*/, util::Joules /*losses*/,
                           bool /*demand_met*/) {}

  /// Per-step upkeep; returns extra CPU power the policy itself costs.
  virtual util::Watts maintenance(util::Seconds /*now*/) {
    return util::Watts{0.0};
  }

  /// True when the policy runs on the original single-battery phone
  /// (the paper's Practice baseline).
  [[nodiscard]] virtual bool wants_single_pack() const { return false; }
};

}  // namespace capman::policy
