// Battery scheduling policy interface shared by CAPMAN and all baselines
// (paper Section V): Oracle, Practice, Dual, Heuristic, CAPMAN.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "battery/pack.h"
#include "core/budget_level.h"
#include "core/degradation.h"
#include "device/power_state.h"
#include "obs/decision_trace.h"
#include "obs/instrumented.h"
#include "obs/metrics.h"
#include "util/units.h"
#include "workload/event.h"

namespace capman::policy {

/// Everything a policy may observe when consulted. The engine fills it
/// per event; policies must treat it as read-only and keep any learned
/// state internal.
struct PolicyContext {
  double now_s = 0.0;  // simulation time of the consultation
  device::DeviceStateVector device;  // CPU/screen/WiFi power states (Fig. 7)
  double demand_w = 0.0;  // instantaneous component power demand
  battery::BatterySelection active = battery::BatterySelection::kBig;
  double big_soc = 1.0;     // state of charge in [0, 1]; online policies
  double little_soc = 1.0;  // may read these (a fuel gauge exists in
                            // practice), the MDP state deliberately omits
                            // them (see EXPERIMENTS.md D1)
  double hotspot_c = 25.0;  // CPU hot-spot temperature, deg C
  // True when this consultation was triggered by the rail monitor (the
  // previous step's demand went unmet), not by a trace event.
  bool emergency = false;
  // Power-budget arbiter observables (zero / kFull when no arbiter runs):
  // the total mW the arbiter granted at its last rebudget and the budget
  // level currently in force.
  double granted_budget_mw = 0.0;
  core::BudgetLevel budget_level = core::BudgetLevel::kFull;

  // Clairvoyant fields, filled by the engine from the (known) trace. Only
  // the offline Oracle may read them; online policies must ignore them.
  double interval_avg_w = 0.0;
  double interval_peak_w = 0.0;
  double interval_duration_s = 0.0;
  const battery::DualBatteryPack* pack = nullptr;  // null on single packs
};

/// A battery-selection policy racing in the Fig. 12 comparison. One
/// instance lives for exactly one discharge cycle; the engine consults it
/// on every trace event and on every rail emergency, applies the returned
/// selection to the switch facility, and feeds accounting back through
/// record_step/maintenance.
/// Policies inherit obs::Instrumented: bind_metrics attaches a registry
/// for internal machinery (solver counters etc.) and publish_metrics is
/// the one-shot end-of-run publication the engine triggers after the last
/// step. Policies must never *read* the registry: decisions are
/// bit-identical with or without one.
class BatteryPolicy : public obs::Instrumented {
 public:
  /// Display name used in tables and series files ("CAPMAN", "Dual", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Battery decision when trace event `event` fires. Called again with
  /// `context.emergency` set when the previous selection failed to serve
  /// the demand; the answer is applied before the next engine step.
  virtual battery::BatterySelection on_event(
      const PolicyContext& context, const workload::Action& event) = 0;

  /// Per-step energy accounting feedback (used by learning policies).
  virtual void record_step(util::Joules /*delivered*/, util::Joules /*losses*/,
                           bool /*demand_met*/) {}

  /// Per-step upkeep; returns extra CPU power the policy itself costs.
  virtual util::Watts maintenance(util::Seconds /*now*/) {
    return util::Watts{0.0};
  }

  /// True when the policy runs on the original single-battery phone
  /// (the paper's Practice baseline).
  [[nodiscard]] virtual bool wants_single_pack() const { return false; }

  /// Actuator-degradation telemetry (detected switch failures, fallback
  /// episodes, retries). All zeros for policies without a guard; the
  /// engine threads it into sim::FaultStats.
  [[nodiscard]] virtual core::DegradationStats degradation() const {
    return {};
  }

  /// Budget level the policy would like the arbiter to enforce next
  /// (consulted after every on_event). Non-learning policies accept
  /// whatever the arbiter derives (kFull = no voluntary derate).
  [[nodiscard]] virtual core::BudgetLevel preferred_budget_level() const {
    return core::BudgetLevel::kFull;
  }

  /// Provenance of the most recent on_event() answer for the decision
  /// trace, or nullopt for policies without decision machinery (or before
  /// the first consultation reaches it).
  [[nodiscard]] virtual std::optional<obs::DecisionDetail>
  last_decision_detail() const {
    return std::nullopt;
  }
};

}  // namespace capman::policy
