// The paper's state-of-the-practice baselines (Section V):
//  * Practice  — the original phone: a single battery of the same total
//                capacity; nothing to schedule.
//  * Dual      — big.LITTLE pack but "always uses LITTLE battery first".
//  * Heuristic — big.LITTLE pack with a utilization-based prediction model
//                built on the Table II power models (EWMA-predicted demand
//                above a threshold -> LITTLE, else big).
#pragma once

#include "policy/policy.h"

namespace capman::policy {

class PracticePolicy final : public BatteryPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Practice"; }
  battery::BatterySelection on_event(const PolicyContext&,
                                     const workload::Action&) override {
    return battery::BatterySelection::kBig;
  }
  [[nodiscard]] bool wants_single_pack() const override { return true; }
};

class DualPolicy final : public BatteryPolicy {
 public:
  /// LITTLE is used until it drops to `little_floor` state of charge
  /// (below ~8% the LITTLE cell's available well can no longer hold the
  /// rail, so the driver flips to big).
  explicit DualPolicy(double little_floor = 0.08)
      : little_floor_(little_floor) {}

  [[nodiscard]] std::string name() const override { return "Dual"; }
  battery::BatterySelection on_event(const PolicyContext& context,
                                     const workload::Action&) override {
    return context.little_soc > little_floor_
               ? battery::BatterySelection::kLittle
               : battery::BatterySelection::kBig;
  }

 private:
  double little_floor_;
};

class HeuristicPolicy final : public BatteryPolicy {
 public:
  /// `threshold_w`: predicted demand above this routes to LITTLE.
  /// `ewma_tau_s`: smoothing horizon of the utilization predictor.
  explicit HeuristicPolicy(double threshold_w = 2.0, double ewma_tau_s = 8.0)
      : threshold_w_(threshold_w), ewma_tau_s_(ewma_tau_s) {}

  [[nodiscard]] std::string name() const override { return "Heuristic"; }
  battery::BatterySelection on_event(const PolicyContext& context,
                                     const workload::Action& event) override;

 private:
  double threshold_w_;
  double ewma_tau_s_;
  double predicted_w_ = 0.0;
  double last_event_s_ = 0.0;
  bool primed_ = false;
};

}  // namespace capman::policy
