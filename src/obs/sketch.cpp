#include "obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace capman::obs {

namespace {
// Observations below this floor count as exact zeros: log-buckets cannot
// represent 0, and fleet metrics this small (sub-nanosecond lifetimes,
// sub-nano-degree temperatures) are indistinguishable from it.
constexpr double kZeroFloor = 1e-9;
}  // namespace

QuantileSketch::QuantileSketch(double relative_error)
    : alpha_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  if (!(relative_error > 0.0) || !(relative_error < 1.0)) {
    throw std::invalid_argument(
        "QuantileSketch relative_error must be in (0, 1)");
  }
}

std::int32_t QuantileSketch::bucket_index(double v) const {
  // Bucket i holds (gamma^(i-1), gamma^i]; ceil keeps the bound one-sided
  // so bucket_value() (the geometric midpoint) is within alpha of v.
  return static_cast<std::int32_t>(std::ceil(std::log(v) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Midpoint of (gamma^(i-1), gamma^i] in the relative-error metric.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::observe(double v) {
  if (v < 0.0 || std::isnan(v)) {
    throw std::invalid_argument(
        "QuantileSketch::observe requires a non-negative value");
  }
  if (!has_extremes_) {
    min_ = max_ = v;
    has_extremes_ = true;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  if (v < kZeroFloor) {
    ++zero_count_;
    return;
  }
  ++buckets_[bucket_index(v)];
  ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.alpha_ < alpha_ || other.alpha_ > alpha_) {
    throw std::invalid_argument(
        "QuantileSketch::merge requires identical relative_error");
  }
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  if (other.has_extremes_) {
    if (!has_extremes_) {
      min_ = other.min_;
      max_ = other.max_;
      has_extremes_ = true;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
}

double QuantileSketch::quantile(double q) const {
  if (empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Rank of the q-quantile in the observation multiset (nearest-rank).
  const auto total = count();
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  if (rank < zero_count_) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (const auto& [index, n] : buckets_) {
    cumulative += n;
    if (rank < cumulative) {
      // Clamp to the exact extremes so estimates never leave the observed
      // range (the top bucket's midpoint can overshoot max).
      return std::clamp(bucket_value(index), min_, max_);
    }
  }
  return max();
}

QuantileSketchState QuantileSketch::state() const {
  QuantileSketchState s;
  s.relative_error = alpha_;
  s.zero_count = zero_count_;
  s.count = count_;
  s.min = min_;
  s.max = max_;
  s.has_extremes = has_extremes_;
  s.buckets.reserve(buckets_.size());
  for (const auto& [index, n] : buckets_) s.buckets.emplace_back(index, n);
  return s;
}

QuantileSketch QuantileSketch::from_state(const QuantileSketchState& state) {
  QuantileSketch sketch(state.relative_error);
  sketch.zero_count_ = state.zero_count;
  sketch.count_ = state.count;
  sketch.min_ = state.min;
  sketch.max_ = state.max;
  sketch.has_extremes_ = state.has_extremes;
  for (const auto& [index, n] : state.buckets) sketch.buckets_[index] += n;
  return sketch;
}

double QuantileSketch::min() const { return has_extremes_ ? min_ : 0.0; }

double QuantileSketch::max() const { return has_extremes_ ? max_ : 0.0; }

}  // namespace capman::obs
