// Per-run telemetry bundle: one MetricsRegistry + one decision sink + an
// optional span profiler, built by the simulation engine from the
// TelemetryConfig on sim::SimConfig and torn down (files written) at the
// end of the run.
//
// Determinism contract: with every sink disabled (the default config) the
// bundle is a registry plus null objects — no file I/O, no profiler
// installed, no RNG, no floating-point work on the simulation path — so a
// run with default telemetry is bit-identical to a pre-telemetry build.
// The registry itself is always live: subsystems publish their counters
// into it and the engine surfaces the final snapshot in
// sim::SimResult::metrics, which is how the per-subsystem stats structs
// became views instead of parallel bookkeeping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/decision_trace.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/timeseries.h"

namespace capman::obs {

struct TelemetryConfig {
  /// End-of-run MetricsSnapshot as JSON ("" = don't write; the snapshot is
  /// still surfaced in SimResult::metrics either way).
  std::string metrics_json_path;
  /// Decision-trace JSONL, one record per scheduler consultation.
  std::string decision_trace_path;
  /// Chrome trace-event JSON (chrome://tracing / Perfetto).
  std::string spans_path;
  /// Per-EMD-solve spans in addition to the coarse sweep/chunk spans.
  bool verbose_spans = false;
  /// Publish wall-clock timing instruments (histograms/gauges) into the
  /// registry. Off by default so two identical runs produce identical
  /// snapshots (timings are the one nondeterministic measurement).
  bool timing_metrics = false;
  /// End-of-run OpenMetrics text exposition of the snapshot ("" = don't
  /// write). Complements metrics_json_path with the Prometheus wire format.
  std::string openmetrics_path;
  /// Sim-clock periodic sampling into downsampling ring buffers.
  SamplerConfig sampler;
  /// Black-box event ring, dumped as JSONL on trigger.
  FlightRecorderConfig recorder;
  /// Declarative health watchdogs over trailing windows.
  HealthConfig health;

  [[nodiscard]] bool decisions_enabled() const {
    return !decision_trace_path.empty();
  }
  [[nodiscard]] bool spans_enabled() const { return !spans_path.empty(); }
  [[nodiscard]] bool any_sink() const {
    return !metrics_json_path.empty() || decisions_enabled() ||
           spans_enabled() || !openmetrics_path.empty() || sampler.enabled ||
           recorder.enabled || health.enabled;
  }

  /// Human-readable configuration errors; empty means valid. Aggregated by
  /// sim::SimConfig::validate() under "telemetry.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryConfig& config);

  [[nodiscard]] const TelemetryConfig& config() const { return config_; }
  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] DecisionSink& decisions() { return *decisions_; }
  /// Null when spans are disabled. The caller (engine) installs it as the
  /// ambient SpanProfiler for the duration of the run.
  [[nodiscard]] SpanProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] bool timing_metrics() const { return config_.timing_metrics; }
  /// Null unless the corresponding config is enabled — the determinism
  /// contract's "disabled components are never constructed" pattern.
  [[nodiscard]] MetricsSampler* sampler() { return sampler_.get(); }
  [[nodiscard]] FlightRecorder* recorder() { return recorder_.get(); }
  [[nodiscard]] HealthMonitor* health() { return health_.get(); }

  /// Monotonic decision sequence number within this run.
  std::uint64_t next_seq() { return seq_++; }

  /// Snapshot the registry and write every configured output file. Call
  /// once, after instrumented threads quiesced and the ambient profiler
  /// scope was exited.
  MetricsSnapshot finish();

 private:
  TelemetryConfig config_;
  MetricsRegistry registry_;
  std::unique_ptr<DecisionSink> decisions_;
  std::unique_ptr<SpanProfiler> profiler_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<HealthMonitor> health_;
  std::uint64_t seq_ = 0;
};

}  // namespace capman::obs
