// Scoped-span profiler emitting Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Two timelines, rendered as two "processes":
//  * pid 1 "compute (wall-clock)" — RAII spans around the hot paths (EMD
//    solves, similarity sweeps, value iteration, engine consultations,
//    scheduler recalibrations), one track per OS thread. ThreadPool
//    workers feed their own tracks, so a sharded Algorithm 1 sweep shows
//    up as per-worker chunk spans.
//  * pid 2 "simulation time" — events whose timestamps are *simulated*
//    seconds (switch transients, fault episodes, decision instants, SoC /
//    power counter tracks). Wall and sim time never share a track, so the
//    two clock domains cannot be misread against each other.
//
// Installation is ambient: SpanProfiler::Scope installs the profiler as
// the process-wide current() for its lifetime, and ScopedSpan is a no-op
// (one relaxed atomic load) when no profiler is installed — instrumented
// hot paths cost nothing in un-profiled runs and stay bit-identical.
//
// Thread safety: every thread appends to its own buffer (registered under
// a mutex on first use, with a generation tag so pooled threads re-home
// after the profiler is swapped); write_chrome_trace() must only run after
// the instrumented threads quiesced (end of run), which the engine's
// ownership already guarantees.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace capman::obs {

/// Label attached to the calling thread's track in any profiler it
/// registers with from now on ("sim-main", "pool-worker-3", ...).
void set_current_thread_label(std::string label);

class SpanProfiler {
 public:
  struct Options {
    /// Emit per-EMD-solve spans (microsecond scale, high volume); coarse
    /// chunk/sweep spans are always emitted.
    bool verbose = false;
  };

  SpanProfiler();  // default options (gcc disallows `Options options = {}`
                   // as an in-class default argument for a nested NSDMI type)
  explicit SpanProfiler(Options options);
  ~SpanProfiler();
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// The ambient profiler, or nullptr when none is installed.
  static SpanProfiler* current();

  /// RAII install/uninstall of the ambient profiler (stacked: restores the
  /// previously installed one on destruction).
  class Scope {
   public:
    explicit Scope(SpanProfiler& profiler);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SpanProfiler* previous_;
  };

  [[nodiscard]] bool verbose() const { return options_.verbose; }

  /// Microseconds since this profiler was constructed (wall clock).
  [[nodiscard]] double now_us() const;

  // Event names/categories are stored as raw pointers, not copied: pass
  // string literals (or other static-storage strings) only. This keeps
  // recording allocation-free — the profiler sits on hot paths where two
  // heap allocations per event would dominate the measured work.

  // --- wall-clock timeline (pid 1), one track per calling thread --------
  void complete(const char* name, const char* category, double start_us,
                double duration_us);
  void instant(const char* name, const char* category, double ts_us);

  // --- simulation timeline (pid 2), explicit tracks ---------------------
  /// Well-known sim-time tracks (tid on pid 2).
  enum SimTrack : std::uint32_t {
    kDecisionTrack = 0,
    kActuatorTrack = 1,
    kFaultTrack = 2,
  };
  void sim_complete(const char* name, const char* category,
                    std::uint32_t track, double start_s, double duration_s);
  void sim_instant(const char* name, const char* category, std::uint32_t track,
                   double t_s);
  /// Counter track (Perfetto renders a value-over-time lane per name).
  void sim_counter(const char* name, double t_s, double value);

  /// Total events recorded so far (all threads).
  [[nodiscard]] std::size_t event_count() const;

  /// Serialise as {"traceEvents":[...]} with thread/process metadata.
  /// Call only after instrumented threads have quiesced.
  void write_chrome_trace(std::ostream& out) const;

  /// One recorded trace event (exposed for the serialiser; treat as
  /// internal).
  struct Event {
    const char* name;      // static storage (see recording contract above)
    const char* category;
    char phase;         // 'X' complete, 'i' instant, 'C' counter
    std::uint32_t pid;  // 1 wall, 2 sim
    std::uint32_t tid;
    double ts_us;
    double dur_us;   // 'X' only
    double value;    // 'C' only
  };

 private:
  struct ThreadBuffer {
    std::string label;
    std::uint32_t tid;
    std::vector<Event> events;
  };

  ThreadBuffer& local_buffer();
  void append_sim(Event event);

  Options options_;
  std::uint64_t generation_;
  std::chrono::steady_clock::time_point epoch_;

  mutable util::Mutex mutex_;  // guards buffers_ registration & sim_events_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      CAPMAN_GUARDED_BY(mutex_);
  std::vector<Event> sim_events_ CAPMAN_GUARDED_BY(mutex_);
};

/// RAII wall-clock span. Resolves the ambient profiler once at
/// construction; a null profiler makes both constructor and destructor
/// trivial.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category)
      : name_(name), category_(category), profiler_(SpanProfiler::current()) {
    if (profiler_ != nullptr) start_us_ = profiler_->now_us();
  }
  ~ScopedSpan() {
    if (profiler_ != nullptr) {
      profiler_->complete(name_, category_, start_us_,
                          profiler_->now_us() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  SpanProfiler* profiler_;
  double start_us_ = 0.0;
};

}  // namespace capman::obs
