// obs::Instrumented: the shared attach/publish telemetry contract.
//
// Several components grew the same pair of hooks independently (the
// scheduler, the battery policies, now the power-budget arbiter): attach a
// MetricsRegistry for incremental counters, publish cumulative totals once
// at the end of a run. This mixin is that contract in one place.
//
// The determinism rule rides along: a bound registry is write-only.
// Components must never *read* it back — behaviour is bit-identical with
// or without a registry attached (capman-lint L1 guards the substrate).
#pragma once

#include "obs/metrics.h"

namespace capman::obs {

/// Mixin for components with attachable telemetry. The default
/// bind_metrics stores the registry for subclasses to reach through the
/// protected accessors; the default publish_metrics publishes nothing.
class Instrumented {
 public:
  virtual ~Instrumented() = default;

  /// Attach `registry` for the component's internal machinery; nullptr
  /// detaches. `publish_timings` additionally allows wall-clock
  /// measurements, which are nondeterministic and therefore opt-in.
  virtual void bind_metrics(MetricsRegistry* registry,
                            bool publish_timings = false) {
    metrics_ = registry;
    publish_timings_ = publish_timings;
  }

  /// One-shot end-of-run publication of the component's cumulative
  /// counters into `registry` (called by the engine after the last step).
  virtual void publish_metrics(MetricsRegistry& /*registry*/) const {}

 protected:
  /// The bound registry (nullptr when detached). Write-only by contract.
  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] bool publish_timings() const { return publish_timings_; }

 private:
  MetricsRegistry* metrics_ = nullptr;
  bool publish_timings_ = false;
};

}  // namespace capman::obs
