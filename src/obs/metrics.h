// Thread-safe metrics registry: the measurement substrate of the stack
// (paper Fig. 5 "profile/monitor" box, generalised).
//
// Three instrument kinds, all lock-free on the write path:
//  * Counter   — monotonically increasing uint64 (events, pairs, steps).
//  * Gauge     — last-written double (ratios, accumulated seconds/joules).
//  * Histogram — fixed, caller-supplied bucket upper bounds (an implicit
//                +inf bucket is appended), atomic per-bucket counts plus
//                running count/sum. Bounds are fixed at registration so
//                snapshots from different runs line up column-for-column.
//
// Registration (name -> instrument) takes a mutex; the returned references
// are stable for the registry's lifetime, so hot paths resolve a handle
// once and then touch only atomics. snapshot() is deterministic: names are
// held in a sorted map, so two registries fed the same values in any
// interleaving serialise identically — the property the decision-trace
// bit-identity tests and the CSV/JSON exporters rely on.
//
// The existing per-subsystem stats structs (core::DecisionStats,
// core::SimilarityStats, core::DegradationStats, sim::FaultStats) publish
// into a registry and can be reconstructed from a MetricsSnapshot — they
// are views over this substrate, not parallel bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace capman::obs {

/// Monotonic event counter. add() is wait-free; relaxed ordering is enough
/// because readers only consume totals after the writers quiesced (end of
/// run / end of solve).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double with an accumulate helper (CAS loop: GCC's
/// std::atomic<double>::fetch_add is C++20-library-dependent).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bound histogram: bucket i counts observations <= bounds[i]; the
/// final bucket (index bounds.size()) counts everything beyond the last
/// bound. Bounds must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time, deterministically ordered copy of a registry. Plain data:
/// safe to store in results (sim::SimResult::metrics), compare, serialise.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value by exact name, `fallback` when absent.
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  /// Gauge value by exact name, `fallback` when absent.
  [[nodiscard]] double gauge_or(std::string_view name,
                                double fallback = 0.0) const;
  /// Histogram by exact name, nullptr when absent.
  [[nodiscard]] const HistogramValue* find_histogram(
      std::string_view name) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Key order is the (sorted) snapshot order, so output is reproducible.
  void write_json(std::ostream& out) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Non-copyable AND non-movable: instrument handles (Counter&/Gauge&/
  // Histogram&) returned below alias registry-owned storage, and
  // subsystems hold them across the registry's lifetime — a move would
  // silently dangle every bound instrument. Locked in by
  // tests/util/type_traits_test.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = delete;
  MetricsRegistry& operator=(MetricsRegistry&&) = delete;

  /// Instrument by name, created on first use; the reference stays valid
  /// for the registry's lifetime. Re-registering a histogram name with
  /// different bounds keeps the original bounds (first writer wins).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Deterministic copy: instruments appear sorted by name regardless of
  /// registration or update order.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable util::Mutex mutex_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CAPMAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CAPMAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CAPMAN_GUARDED_BY(mutex_);
};

}  // namespace capman::obs
