// Prometheus/OpenMetrics text exposition of a MetricsSnapshot — the
// export format a scrape endpoint (the future capman_serve) would serve,
// produced here from the end-of-run snapshot so dashboards and the CLI
// share one wire format.
//
// Mapping (names are sanitised: '/' and any non-[a-zA-Z0-9_:] byte become
// '_', and everything is prefixed "capman_"):
//  * Counter   -> `# TYPE <name> counter` + `<name>_total <v>`
//  * Gauge     -> `# TYPE <name> gauge` + `<name> <v>`
//  * Histogram -> classic Prometheus histogram: cumulative `_bucket`
//                 samples with `le` labels (plus `le="+Inf"`), `_sum`,
//                 `_count`
// The exposition ends with `# EOF` (OpenMetrics terminator). Output order
// is the snapshot's sorted order, so two identical runs serialise
// identically (the same discipline as MetricsSnapshot::write_json).
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace capman::obs {

/// "fleet/CAPMAN/lifetime_s/p50" -> "capman_fleet_CAPMAN_lifetime_s_p50".
[[nodiscard]] std::string openmetrics_name(std::string_view raw);

/// Write the full exposition (see the file comment).
void write_openmetrics(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace capman::obs
