// Declarative health watchdogs over the sampled time dimension.
//
// CAPMAN's failure modes are *trajectories*, not snapshots: a skin
// temperature ramping at degrees-per-minute, a budget grant collapsing
// under demand for minutes, a comparator thrashing the pack, a pack whose
// time-to-empty first passes a low watermark. The HealthMonitor evaluates
// a fixed rule set over trailing windows of engine-fed inputs at a
// sim-clock cadence and emits structured alert records:
//
//  * kThermalRunaway   — max(skin, cell) temperature slope over
//                        thermal_window_s exceeds thermal_slope_c_per_min
//                        while above thermal_floor_c (runaway, not warmup).
//  * kBudgetStarvation — the arbiter grant covers less than
//                        starvation_ratio of demand for
//                        starvation_windows consecutive evaluations
//                        (FastCap-style fairness floor).
//  * kSwitchThrash     — switch rate over thrash_window_s exceeds
//                        thrash_rate_per_min (a thrashing comparator eats
//                        its own switching energy).
//  * kGuardEngaged     — the DegradationGuard entered fallback (the
//                        actuator is suspect).
//  * kTimeToEmpty      — the first-passage-style time-to-empty estimate
//                        (SoC over its trailing discharge slope) first
//                        drops below tte_watermark_s.
//
// Rules are edge-triggered: one alert per episode, re-armed when the
// condition clears. Alerts land in three places: the in-memory alert log
// (surfaced on SimResult), the health/* registry counters, and — when a
// FlightRecorder is attached — a black-box dump trigger.
//
// Determinism contract: evaluation is a pure function of the (sim-time,
// inputs) sequence — no wall clock, no RNG, no allocation surprises — and
// the monitor never feeds anything back into the simulation, so runs with
// the monitor on are bit-identical to runs with it off, and fleet alert
// counts merge deterministically across shard/thread layouts
// (tests/sim/fleet_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace capman::obs {

enum class HealthRule : std::uint8_t {
  kThermalRunaway = 0,
  kBudgetStarvation,
  kSwitchThrash,
  kGuardEngaged,
  kTimeToEmpty,
};

inline constexpr std::size_t kHealthRuleCount = 5;

/// Stable rule slug ("thermal_runaway", ...): alert JSONL field, metric
/// name suffix and fleet aggregate key. Pinned by tests and
/// scripts/check_trace_schema.py.
const char* to_string(HealthRule rule);

/// Nested in obs::TelemetryConfig (and on sim::FleetConfig for per-device
/// fleet monitoring). Disabled by default: no monitor is constructed and
/// runs are bit-identical to a monitor-free build.
struct HealthConfig {
  bool enabled = false;
  /// Evaluation cadence on the simulation clock, seconds.
  double period_s = 2.0;

  // kThermalRunaway
  double thermal_slope_c_per_min = 3.0;
  double thermal_window_s = 30.0;
  /// Slopes only count once the hotter of skin/cell passes this floor —
  /// every device ramps while warming up from ambient.
  double thermal_floor_c = 40.0;

  // kBudgetStarvation (evaluated only while an arbiter grant is in force)
  double starvation_ratio = 0.5;
  std::uint32_t starvation_windows = 3;

  // kSwitchThrash
  double thrash_rate_per_min = 12.0;
  double thrash_window_s = 60.0;

  // kGuardEngaged
  bool alert_on_guard = true;

  // kTimeToEmpty
  double tte_watermark_s = 120.0;
  double tte_window_s = 60.0;

  /// Alert JSONL ("" = keep alerts in memory/metrics only).
  std::string alerts_path;

  /// Human-readable configuration errors; empty means valid. Aggregated
  /// by TelemetryConfig::validate() under "health.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One fired alert. Schema of the JSONL form (write_json_line;
/// scripts/check_trace_schema.py is the source of truth): seq, t_s, rule,
/// value, threshold, detail.
struct HealthAlert {
  std::uint64_t seq = 0;
  double t_s = 0.0;
  HealthRule rule = HealthRule::kThermalRunaway;
  double value = 0.0;      // the measurement that crossed
  double threshold = 0.0;  // the configured limit it crossed
  std::string detail;
};

/// Per-rule alert counters — plain data, exact to merge (fleet shards sum
/// these in shard order, the alert-count bit-identity substrate).
struct HealthStats {
  std::uint64_t evaluations = 0;
  std::array<std::uint64_t, kHealthRuleCount> alerts{};

  [[nodiscard]] std::uint64_t total_alerts() const;
  void merge(const HealthStats& other);

  /// Publish under health/* (health/evaluations, health/alerts_total,
  /// health/alerts/<rule>). Cumulative over a run; publish once at end.
  void publish(MetricsRegistry& registry) const;
  /// View over a registry snapshot (inverse of publish).
  static HealthStats from_snapshot(const MetricsSnapshot& snap);
};

class HealthMonitor {
 public:
  /// Everything one evaluation reads, assembled by the engine from ground
  /// truth (the monitor models the management facility's own sensors).
  struct Inputs {
    double skin_c = 0.0;
    double cell_c = 0.0;
    double soc = 0.0;          // combined pack state of charge [0, 1]
    double demand_mw = 0.0;    // shaped demand served this step
    double granted_mw = 0.0;   // arbiter grant in force (0 = no arbiter)
    bool budget_active = false;
    std::uint64_t switch_count = 0;  // cumulative pack switches
    bool guard_engaged = false;      // DegradationGuard in fallback
  };

  /// Validates `config` (throws std::invalid_argument).
  explicit HealthMonitor(const HealthConfig& config);

  [[nodiscard]] const HealthConfig& config() const { return config_; }

  /// True when simulation time `t` has reached the next evaluation tick.
  [[nodiscard]] bool due(double t) const { return t >= next_eval_s_; }

  /// Evaluate every rule at time `t`; returns the alerts fired by THIS
  /// evaluation (empty on quiet ticks). Call in sim-time order.
  const std::vector<HealthAlert>& evaluate(double t, const Inputs& inputs);

  [[nodiscard]] const std::vector<HealthAlert>& alerts() const {
    return alerts_;
  }
  [[nodiscard]] const HealthStats& stats() const { return stats_; }

  /// Latest first-passage time-to-empty estimate in seconds (infinity
  /// until a discharge slope is observable).
  [[nodiscard]] double time_to_empty_s() const { return tte_s_; }

  /// Write every alert fired so far as JSONL.
  void write_alerts(std::ostream& out) const;

  /// The serialisation itself, exposed for schema round-trip tests.
  static void write_json_line(std::ostream& out, const HealthAlert& alert);

 private:
  /// Trailing (t, v) window: push keeps samples within `window_s` of the
  /// newest. Bounded by window_s / period_s samples.
  struct Window {
    std::vector<double> t;
    std::vector<double> v;
    void push(double now, double value, double window_s);
    [[nodiscard]] double span() const;
    [[nodiscard]] double slope_per_s() const;  // endpoint slope; 0 if <2
  };

  void fire(double t, HealthRule rule, double value, double threshold,
            std::string detail);

  HealthConfig config_;
  double next_eval_s_ = 0.0;
  std::vector<HealthAlert> alerts_;
  std::vector<HealthAlert> fired_;  // alerts of the current evaluation
  HealthStats stats_;

  Window thermal_window_;
  Window soc_window_;
  Window switch_window_;
  std::uint32_t starved_windows_ = 0;
  double tte_s_ = 0.0;
  bool tte_valid_ = false;
  std::array<bool, kHealthRuleCount> active_{};  // edge-trigger latches
};

}  // namespace capman::obs
