#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace capman::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const util::MutexLock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.bounds = h->bounds();
    hv.buckets.resize(hv.bounds.size() + 1);
    for (std::size_t i = 0; i < hv.buckets.size(); ++i) {
      hv.buckets[i] = h->bucket_count(i);
    }
    hv.count = h->count();
    hv.sum = h->sum();
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

namespace {

template <typename Vec>
auto find_by_name(const Vec& vec, std::string_view name) {
  const auto it = std::lower_bound(
      vec.begin(), vec.end(), name,
      [](const auto& entry, std::string_view key) { return entry.name < key; });
  return it != vec.end() && it->name == name ? &*it : nullptr;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const auto* entry = find_by_name(counters, name);
  return entry != nullptr ? entry->value : fallback;
}

double MetricsSnapshot::gauge_or(std::string_view name, double fallback) const {
  const auto* entry = find_by_name(gauges, name);
  return entry != nullptr ? entry->value : fallback;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  const auto key = [&out](const std::string& name) -> std::ostream& {
    out << '"';
    for (const char c : name) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\":";
    return out;
  };
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out << ',';
    key(counters[i].name) << counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) out << ',';
    key(gauges[i].name) << gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i != 0) out << ',';
    key(h.name) << "{\"bounds\":[";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j != 0) out << ',';
      out << h.bounds[j];
    }
    out << "],\"buckets\":[";
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      if (j != 0) out << ',';
      out << h.buckets[j];
    }
    out << "],\"count\":" << h.count << ",\"sum\":" << h.sum << '}';
  }
  out << "}}";
}

}  // namespace capman::obs
