#include "obs/timeseries.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json_append.h"

namespace capman::obs {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 2) {
    throw std::invalid_argument("TimeSeries capacity must be >= 2");
  }
  t_.reserve(capacity_);
  v_.reserve(capacity_);
}

void TimeSeries::add(util::Seconds t, double v) {
  const std::uint64_t index = offered_++;
  if (index % stride_ != 0) return;
  if (t_.size() == capacity_) {
    // Halve resolution: keep every other retained sample. Retained offer
    // indices become multiples of the doubled stride, so the acceptance
    // test below stays consistent with what survived the compaction.
    std::size_t w = 0;
    for (std::size_t r = 0; r < t_.size(); r += 2, ++w) {
      t_[w] = t_[r];
      v_[w] = v_[r];
    }
    t_.resize(w);
    v_.resize(w);
    stride_ *= 2;
    if (index % stride_ != 0) return;
  }
  t_.push_back(t.value());
  v_.push_back(v);
}

double TimeSeries::last_time() const { return t_.empty() ? 0.0 : t_.back(); }

double TimeSeries::last_value() const { return v_.empty() ? 0.0 : v_.back(); }

double TimeSeries::min_value() const {
  return v_.empty() ? 0.0 : *std::min_element(v_.begin(), v_.end());
}

double TimeSeries::max_value() const {
  return v_.empty() ? 0.0 : *std::max_element(v_.begin(), v_.end());
}

std::vector<std::string> SamplerConfig::validate() const {
  std::vector<std::string> errors;
  if (!(period_s > 0.0)) {
    errors.emplace_back("period_s must be > 0");
  }
  if (capacity < 2) {
    errors.emplace_back("capacity must be >= 2");
  }
  if (!enabled && !csv_path.empty()) {
    errors.emplace_back("csv_path requires enabled to be true");
  }
  return errors;
}

MetricsSampler::MetricsSampler(const SamplerConfig& config) : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid SamplerConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

std::size_t MetricsSampler::add_channel(std::string name) {
  for (const auto& existing : channels_) {
    if (existing.name == name) {
      throw std::invalid_argument("MetricsSampler: duplicate channel '" +
                                  name + "'");
    }
  }
  Channel ch{std::move(name), TimeSeries{config_.capacity}, 0.0, nullptr,
             nullptr};
  channels_.push_back(std::move(ch));
  return channels_.size() - 1;
}

std::size_t MetricsSampler::channel(std::string name) {
  return add_channel(std::move(name));
}

std::size_t MetricsSampler::bind_counter(std::string name,
                                         const Counter& counter) {
  const std::size_t id = add_channel(std::move(name));
  channels_[id].counter = &counter;
  return id;
}

std::size_t MetricsSampler::bind_gauge(std::string name, const Gauge& gauge) {
  const std::size_t id = add_channel(std::move(name));
  channels_[id].gauge = &gauge;
  return id;
}

void MetricsSampler::sample(util::Seconds t) {
  for (auto& ch : channels_) {
    if (ch.counter != nullptr) {
      ch.last = static_cast<double>(ch.counter->value());
    } else if (ch.gauge != nullptr) {
      ch.last = ch.gauge->value();
    }
    ch.series.add(t, ch.last);
  }
  ++samples_;
  next_sample_s_ = t.value() + config_.period_s;
}

const TimeSeries* MetricsSampler::find(std::string_view name) const {
  for (const auto& ch : channels_) {
    if (ch.name == name) return &ch.series;
  }
  return nullptr;
}

void MetricsSampler::write_csv(std::ostream& out) const {
  // Hand-rolled (util::CsvWriter lives above obs in the link order):
  // locale-free to_chars cells, one buffered write.
  std::string buf;
  buf.reserve(4096);
  buf += "t_s";
  for (const auto& ch : channels_) {
    buf += ',';
    buf += ch.name;
  }
  buf += '\n';
  const std::size_t rows =
      channels_.empty() ? 0 : channels_.front().series.size();
  for (std::size_t i = 0; i < rows; ++i) {
    detail::append_fixed(buf, channels_.front().series.time_at(i), 3);
    for (const auto& ch : channels_) {
      buf += ',';
      detail::append_double(buf, ch.series.value_at(i));
    }
    buf += '\n';
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace capman::obs
