#include "obs/telemetry.h"

#include <cstddef>
#include <fstream>
#include <stdexcept>

namespace capman::obs {

std::vector<std::string> TelemetryConfig::validate() const {
  std::vector<std::string> errors;
  if (verbose_spans && !spans_enabled()) {
    errors.push_back("verbose_spans requires spans_path to be set");
  }
  // Each enabled sink writes (and truncates) its own file; two sinks
  // sharing a path would silently clobber each other.
  const struct {
    const char* name;
    const std::string& path;
  } sinks[] = {{"metrics_json_path", metrics_json_path},
               {"decision_trace_path", decision_trace_path},
               {"spans_path", spans_path}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      if (!sinks[i].path.empty() && sinks[i].path == sinks[j].path) {
        errors.push_back(std::string(sinks[i].name) + " and " +
                         sinks[j].name + " must not share a file (" +
                         sinks[i].path + ")");
      }
    }
  }
  return errors;
}

Telemetry::Telemetry(const TelemetryConfig& config) : config_(config) {
  if (config_.decisions_enabled()) {
    decisions_ =
        std::make_unique<JsonlDecisionSink>(config_.decision_trace_path);
  } else {
    decisions_ = std::make_unique<DecisionSink>();  // null object
  }
  if (config_.spans_enabled()) {
    profiler_ = std::make_unique<SpanProfiler>(
        SpanProfiler::Options{config_.verbose_spans});
  }
}

MetricsSnapshot Telemetry::finish() {
  MetricsSnapshot snap = registry_.snapshot();
  if (!config_.metrics_json_path.empty()) {
    std::ofstream out{config_.metrics_json_path, std::ios::trunc};
    if (!out) {
      throw std::runtime_error("Telemetry: cannot open " +
                               config_.metrics_json_path);
    }
    snap.write_json(out);
    out << '\n';
  }
  if (profiler_ != nullptr && !config_.spans_path.empty()) {
    std::ofstream out{config_.spans_path, std::ios::trunc};
    if (!out) {
      throw std::runtime_error("Telemetry: cannot open " + config_.spans_path);
    }
    profiler_->write_chrome_trace(out);
    out << '\n';
  }
  decisions_->flush();
  return snap;
}

}  // namespace capman::obs
