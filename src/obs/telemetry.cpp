#include "obs/telemetry.h"

#include <fstream>
#include <stdexcept>

namespace capman::obs {

Telemetry::Telemetry(const TelemetryConfig& config) : config_(config) {
  if (config_.decisions_enabled()) {
    decisions_ =
        std::make_unique<JsonlDecisionSink>(config_.decision_trace_path);
  } else {
    decisions_ = std::make_unique<DecisionSink>();  // null object
  }
  if (config_.spans_enabled()) {
    profiler_ = std::make_unique<SpanProfiler>(
        SpanProfiler::Options{config_.verbose_spans});
  }
}

MetricsSnapshot Telemetry::finish() {
  MetricsSnapshot snap = registry_.snapshot();
  if (!config_.metrics_json_path.empty()) {
    std::ofstream out{config_.metrics_json_path, std::ios::trunc};
    if (!out) {
      throw std::runtime_error("Telemetry: cannot open " +
                               config_.metrics_json_path);
    }
    snap.write_json(out);
    out << '\n';
  }
  if (profiler_ != nullptr && !config_.spans_path.empty()) {
    std::ofstream out{config_.spans_path, std::ios::trunc};
    if (!out) {
      throw std::runtime_error("Telemetry: cannot open " + config_.spans_path);
    }
    profiler_->write_chrome_trace(out);
    out << '\n';
  }
  decisions_->flush();
  return snap;
}

}  // namespace capman::obs
