#include "obs/telemetry.h"

#include <cstddef>
#include <fstream>
#include <stdexcept>

#include "obs/openmetrics.h"

namespace capman::obs {

std::vector<std::string> TelemetryConfig::validate() const {
  std::vector<std::string> errors;
  if (verbose_spans && !spans_enabled()) {
    errors.push_back("verbose_spans requires spans_path to be set");
  }
  for (const auto& error : sampler.validate()) {
    errors.push_back("sampler." + error);
  }
  for (const auto& error : recorder.validate()) {
    errors.push_back("recorder." + error);
  }
  for (const auto& error : health.validate()) {
    errors.push_back("health." + error);
  }
  // Each enabled sink writes (and truncates) its own file; two sinks
  // sharing a path would silently clobber each other.
  const struct {
    const char* name;
    const std::string& path;
  } sinks[] = {{"metrics_json_path", metrics_json_path},
               {"decision_trace_path", decision_trace_path},
               {"spans_path", spans_path},
               {"openmetrics_path", openmetrics_path},
               {"sampler.csv_path", sampler.csv_path},
               {"recorder.dump_path", recorder.dump_path},
               {"health.alerts_path", health.alerts_path}};
  constexpr std::size_t kSinkCount = sizeof sinks / sizeof sinks[0];
  for (std::size_t i = 0; i < kSinkCount; ++i) {
    for (std::size_t j = i + 1; j < kSinkCount; ++j) {
      if (!sinks[i].path.empty() && sinks[i].path == sinks[j].path) {
        errors.push_back(std::string(sinks[i].name) + " and " +
                         sinks[j].name + " must not share a file (" +
                         sinks[i].path + ")");
      }
    }
  }
  return errors;
}

Telemetry::Telemetry(const TelemetryConfig& config) : config_(config) {
  if (config_.decisions_enabled()) {
    decisions_ =
        std::make_unique<JsonlDecisionSink>(config_.decision_trace_path);
  } else {
    decisions_ = std::make_unique<DecisionSink>();  // null object
  }
  if (config_.spans_enabled()) {
    profiler_ = std::make_unique<SpanProfiler>(
        SpanProfiler::Options{config_.verbose_spans});
  }
  // Disabled components are never constructed (determinism contract): the
  // engine's null-pointer guards then compile to the pre-telemetry path.
  if (config_.sampler.enabled) {
    sampler_ = std::make_unique<MetricsSampler>(config_.sampler);
  }
  if (config_.recorder.enabled) {
    recorder_ = std::make_unique<FlightRecorder>(config_.recorder);
  }
  if (config_.health.enabled) {
    health_ = std::make_unique<HealthMonitor>(config_.health);
  }
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) {
    throw std::runtime_error("Telemetry: cannot open " + path);
  }
  return out;
}

}  // namespace

MetricsSnapshot Telemetry::finish() {
  if (health_ != nullptr) {
    health_->stats().publish(registry_);
  }
  MetricsSnapshot snap = registry_.snapshot();
  if (!config_.metrics_json_path.empty()) {
    auto out = open_or_throw(config_.metrics_json_path);
    snap.write_json(out);
    out << '\n';
  }
  if (!config_.openmetrics_path.empty()) {
    auto out = open_or_throw(config_.openmetrics_path);
    write_openmetrics(out, snap);
  }
  if (profiler_ != nullptr && !config_.spans_path.empty()) {
    auto out = open_or_throw(config_.spans_path);
    profiler_->write_chrome_trace(out);
    out << '\n';
  }
  if (sampler_ != nullptr && !config_.sampler.csv_path.empty()) {
    auto out = open_or_throw(config_.sampler.csv_path);
    sampler_->write_csv(out);
  }
  if (health_ != nullptr && !config_.health.alerts_path.empty()) {
    auto out = open_or_throw(config_.health.alerts_path);
    health_->write_alerts(out);
  }
  if (recorder_ != nullptr) {
    recorder_->flush();
  }
  decisions_->flush();
  return snap;
}

}  // namespace capman::obs
