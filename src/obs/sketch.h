// Mergeable fixed-accuracy quantile sketch for fleet-scale aggregation.
//
// A DDSketch-style log-bucketed sketch: every observation lands in the
// bucket whose geometric bounds contain it, so any quantile estimate
// carries a guaranteed *relative* error bound (quantile() returns a value
// within `relative_error` of a true sample value at that rank). Memory is
// O(log(max/min) / relative_error) buckets regardless of how many values
// stream through — the property that keeps a million-device fleet run
// flat per device where exact percentiles would not be.
//
// Determinism contract (what sim::FleetRunner leans on):
//  * bucket indices are a pure function of the value, so the bucket
//    multiset after observing a set of values is independent of
//    observation order;
//  * merge() adds integer bucket counts and takes exact min/max — merging
//    per-shard sketches in any grouping yields bit-identical state to one
//    sketch observing every value;
//  * there is deliberately NO floating-point running sum inside (sums are
//    order-sensitive; keep them in the caller, quantized, if needed).
//
// Values <= 0 (a device with zero switches, say) are counted exactly in a
// dedicated bucket; negative values are not supported (std::invalid_
// argument) — every fleet metric sketched so far is non-negative.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace capman::obs {

/// Complete serializable state of a QuantileSketch — the exact private
/// fields, exported for the checkpoint layer (sim::CheckpointWriter) and
/// restored bit-for-bit by QuantileSketch::from_state(). Buckets are
/// sorted by index (state() emits map order) so serialized bytes are
/// deterministic.
struct QuantileSketchState {
  double relative_error = 0.01;
  std::uint64_t zero_count = 0;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  bool has_extremes = false;
  std::vector<std::pair<std::int32_t, std::uint64_t>> buckets;
};

class QuantileSketch {
 public:
  /// `relative_error` in (0, 1): the guaranteed bound on
  /// |estimate - true| / true for any quantile of the positive values.
  /// Throws std::invalid_argument outside that range.
  explicit QuantileSketch(double relative_error = 0.01);

  /// Record one value. Requires v >= 0 (throws std::invalid_argument);
  /// values below the resolution floor (1e-9) count as exact zeros.
  void observe(double v);

  /// Fold `other` into this sketch. Requires identical relative_error
  /// (throws std::invalid_argument): sketches merge bucket-for-bucket.
  void merge(const QuantileSketch& other);

  /// Estimate the q-quantile (q in [0, 1], clamped) of everything
  /// observed; 0.0 when empty. q = 0 / q = 1 return the exact min / max.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return zero_count_ + count_; }
  /// Exact smallest / largest observation (0.0 when empty).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double relative_error() const { return alpha_; }
  [[nodiscard]] bool empty() const { return count() == 0; }
  /// Number of live buckets (the memory footprint, for budget tests).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  /// Snapshot of the full internal state, buckets in ascending index
  /// order. from_state(state()) reconstructs a bit-identical sketch —
  /// merge() after a round-trip behaves exactly as on the original.
  [[nodiscard]] QuantileSketchState state() const;
  /// Rebuild a sketch from a state() snapshot. Throws std::invalid_
  /// argument when relative_error is outside (0, 1) (e.g. a corrupt or
  /// adversarial checkpoint payload).
  [[nodiscard]] static QuantileSketch from_state(
      const QuantileSketchState& state);

 private:
  [[nodiscard]] std::int32_t bucket_index(double v) const;
  [[nodiscard]] double bucket_value(std::int32_t index) const;

  double alpha_;          // guaranteed relative error
  double gamma_;          // bucket growth factor (1 + a) / (1 - a)
  double inv_log_gamma_;  // 1 / ln(gamma), cached for bucket_index
  // Sorted map so iteration (quantile walks) is deterministic and ordered
  // by value. uint64 counts: merges are exact integer additions.
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;  // observations below the resolution floor
  std::uint64_t count_ = 0;       // positive observations
  double min_ = 0.0;              // exact extremes (order-independent)
  double max_ = 0.0;
  bool has_extremes_ = false;
};

}  // namespace capman::obs
