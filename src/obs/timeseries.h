// The time dimension of obs/: bounded-memory metric history.
//
// obs::TimeSeries is a fixed-capacity sample ring with *stride
// downsampling*: when the buffer fills, every other retained sample is
// dropped and the acceptance stride doubles, so a series that outlives its
// capacity degrades resolution instead of memory. The retained set is a
// pure function of the add() sequence — never of wall clock or allocation
// pressure — which is what lets two identical runs carry bit-identical
// history (tests/obs/timeseries_test.cpp pins wrap and downsample).
//
// obs::MetricsSampler bundles one TimeSeries per named channel behind a
// single sim-clock cadence: the engine feeds the latest value of each
// channel (or binds a live registry Counter/Gauge) and calls sample(t) on
// the shared tick, so every channel sees the same add() sequence, stays on
// the same stride, and the exported CSV rows align column-for-column.
// Sampling is driven by *simulation* time only — the sampler never reads a
// clock — so enabling it cannot perturb determinism.
//
// Determinism contract (matches obs/telemetry.h): a disabled sampler is
// never constructed, and a constructed sampler only observes — it writes
// no simulation state, so runs with and without sampling are bit-identical
// (tests/sim/telemetry_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/units.h"

namespace capman::obs {

/// Fixed-capacity (time, value) ring with stride downsampling (see the
/// file comment). Capacity must be >= 2 (throws std::invalid_argument).
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 512);

  /// Offer one sample at simulation time `t`. Samples are accepted when
  /// their offer index is a multiple of the current stride; a full buffer
  /// compacts (drops every other retained sample) and doubles the stride
  /// first. Takes strong-typed seconds: the series is simulation-clock
  /// history by contract, and the type seals the µs/ms/s confusion off.
  void add(util::Seconds t, double v);

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Current acceptance stride (1 until the first overflow, then 2, 4...).
  [[nodiscard]] std::uint64_t stride() const { return stride_; }
  /// Total samples ever offered via add(), retained or not.
  [[nodiscard]] std::uint64_t total_offered() const { return offered_; }

  [[nodiscard]] double time_at(std::size_t i) const { return t_[i]; }
  [[nodiscard]] double value_at(std::size_t i) const { return v_[i]; }
  [[nodiscard]] const std::vector<double>& times() const { return t_; }
  [[nodiscard]] const std::vector<double>& values() const { return v_; }

  [[nodiscard]] double last_time() const;
  [[nodiscard]] double last_value() const;
  [[nodiscard]] double min_value() const;  // over retained samples
  [[nodiscard]] double max_value() const;

 private:
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t offered_ = 0;
  std::vector<double> t_;
  std::vector<double> v_;
};

/// Configuration of the periodic sampler (nested in obs::TelemetryConfig).
/// Disabled by default: the engine then never constructs a sampler and the
/// run is bit-identical to a sampler-free build.
struct SamplerConfig {
  bool enabled = false;
  /// Sampling period on the simulation clock, seconds.
  double period_s = 2.0;
  /// Ring capacity per channel (stride doubles on overflow).
  std::size_t capacity = 512;
  /// Wide CSV of the sampled history ("" = don't write): one t_s column
  /// plus one column per channel, rows aligned on the shared cadence.
  std::string csv_path;

  /// Human-readable configuration errors; empty means valid. Aggregated
  /// by TelemetryConfig::validate() under "sampler.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Named-channel periodic sampler (see the file comment). Channels are
/// registered up front (engine setup), fed via set()/bind_*, and recorded
/// together by sample(t) whenever the caller's clock passes due().
class MetricsSampler {
 public:
  explicit MetricsSampler(const SamplerConfig& config);

  /// Register a value channel; returns its id. Registration order is the
  /// CSV column order. Duplicate names throw std::invalid_argument.
  std::size_t channel(std::string name);
  /// Register a channel mirroring a live registry instrument, read at
  /// each tick. The instrument must outlive the sampler.
  std::size_t bind_counter(std::string name, const Counter& counter);
  std::size_t bind_gauge(std::string name, const Gauge& gauge);

  /// Update the latest value of a set-channel (cheap; no recording).
  void set(std::size_t id, double v) { channels_[id].last = v; }

  /// True when simulation time `t` has reached the next sampling tick.
  [[nodiscard]] bool due(util::Seconds t) const {
    return t.value() >= next_sample_s_;
  }
  /// Record every channel at time `t` and advance the cadence.
  void sample(util::Seconds t);

  [[nodiscard]] const SamplerConfig& config() const { return config_; }
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] const TimeSeries& series(std::size_t id) const {
    return channels_[id].series;
  }
  [[nodiscard]] const std::string& name(std::size_t id) const {
    return channels_[id].name;
  }
  /// Series by channel name; nullptr when absent.
  [[nodiscard]] const TimeSeries* find(std::string_view name) const;

  /// Wide CSV: header "t_s,<ch0>,<ch1>,...", one row per retained tick.
  /// Every channel shares the cadence, so rows align by construction.
  void write_csv(std::ostream& out) const;

 private:
  struct Channel {
    std::string name;
    TimeSeries series;
    double last = 0.0;
    const Counter* counter = nullptr;  // at most one bound instrument
    const Gauge* gauge = nullptr;
  };

  std::size_t add_channel(std::string name);

  SamplerConfig config_;
  std::vector<Channel> channels_;
  double next_sample_s_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace capman::obs
