#include "obs/health.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/json_append.h"

namespace capman::obs {

namespace {

/// Fixed-point double as a string, for alert detail fields.
std::string format_fixed(double v, int decimals) {
  std::string out;
  detail::append_fixed(out, v, decimals);
  return out;
}

}  // namespace

const char* to_string(HealthRule rule) {
  switch (rule) {
    case HealthRule::kThermalRunaway: return "thermal_runaway";
    case HealthRule::kBudgetStarvation: return "budget_starvation";
    case HealthRule::kSwitchThrash: return "switch_thrash";
    case HealthRule::kGuardEngaged: return "guard_engaged";
    case HealthRule::kTimeToEmpty: return "time_to_empty";
  }
  return "?";
}

std::vector<std::string> HealthConfig::validate() const {
  std::vector<std::string> errors;
  if (period_s <= 0.0) {
    errors.emplace_back("period_s must be > 0");
  }
  if (thermal_slope_c_per_min <= 0.0) {
    errors.emplace_back("thermal_slope_c_per_min must be > 0");
  }
  if (thermal_window_s <= 0.0) {
    errors.emplace_back("thermal_window_s must be > 0");
  }
  if (starvation_ratio <= 0.0 || starvation_ratio >= 1.0) {
    errors.emplace_back("starvation_ratio must be in (0, 1)");
  }
  if (starvation_windows == 0) {
    errors.emplace_back("starvation_windows must be >= 1");
  }
  if (thrash_rate_per_min <= 0.0) {
    errors.emplace_back("thrash_rate_per_min must be > 0");
  }
  if (thrash_window_s <= 0.0) {
    errors.emplace_back("thrash_window_s must be > 0");
  }
  if (tte_watermark_s <= 0.0) {
    errors.emplace_back("tte_watermark_s must be > 0");
  }
  if (tte_window_s <= 0.0) {
    errors.emplace_back("tte_window_s must be > 0");
  }
  if (!enabled && !alerts_path.empty()) {
    errors.emplace_back("alerts_path requires enabled to be true");
  }
  return errors;
}

std::uint64_t HealthStats::total_alerts() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : alerts) total += n;
  return total;
}

void HealthStats::merge(const HealthStats& other) {
  evaluations += other.evaluations;
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    alerts[i] += other.alerts[i];
  }
}

void HealthStats::publish(MetricsRegistry& registry) const {
  registry.counter("health/evaluations").add(evaluations);
  registry.counter("health/alerts_total").add(total_alerts());
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const auto rule = static_cast<HealthRule>(i);
    registry.counter(std::string("health/alerts/") + to_string(rule))
        .add(alerts[i]);
  }
}

HealthStats HealthStats::from_snapshot(const MetricsSnapshot& snap) {
  HealthStats stats;
  stats.evaluations = snap.counter_or("health/evaluations");
  for (std::size_t i = 0; i < stats.alerts.size(); ++i) {
    const auto rule = static_cast<HealthRule>(i);
    stats.alerts[i] =
        snap.counter_or(std::string("health/alerts/") + to_string(rule));
  }
  return stats;
}

void HealthMonitor::Window::push(double now, double value, double window_s) {
  t.push_back(now);
  v.push_back(value);
  std::size_t first = 0;
  while (first < t.size() && t[first] < now - window_s) ++first;
  if (first > 0) {
    t.erase(t.begin(),
            t.begin() + static_cast<std::vector<double>::difference_type>(first));
    v.erase(v.begin(),
            v.begin() + static_cast<std::vector<double>::difference_type>(first));
  }
}

double HealthMonitor::Window::span() const {
  return t.size() < 2 ? 0.0 : t.back() - t.front();
}

double HealthMonitor::Window::slope_per_s() const {
  if (t.size() < 2) return 0.0;
  const double dt = t.back() - t.front();
  if (dt <= 0.0) return 0.0;
  return (v.back() - v.front()) / dt;
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid HealthConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
  tte_s_ = std::numeric_limits<double>::infinity();
}

void HealthMonitor::fire(double t, HealthRule rule, double value,
                         double threshold, std::string detail) {
  HealthAlert alert;
  alert.seq = static_cast<std::uint64_t>(alerts_.size());
  alert.t_s = t;
  alert.rule = rule;
  alert.value = value;
  alert.threshold = threshold;
  alert.detail = std::move(detail);
  stats_.alerts[static_cast<std::size_t>(rule)] += 1;
  fired_.push_back(alert);
  alerts_.push_back(std::move(alert));
}

const std::vector<HealthAlert>& HealthMonitor::evaluate(double t,
                                                        const Inputs& inputs) {
  fired_.clear();
  next_eval_s_ = t + config_.period_s;
  stats_.evaluations += 1;

  // --- kThermalRunaway: endpoint slope of the hotter surface/cell trace.
  const double hot_c = std::max(inputs.skin_c, inputs.cell_c);
  thermal_window_.push(t, hot_c, config_.thermal_window_s);
  {
    const auto index = static_cast<std::size_t>(HealthRule::kThermalRunaway);
    const double slope_c_per_min = thermal_window_.slope_per_s() * 60.0;
    const bool hot_enough = hot_c >= config_.thermal_floor_c;
    const bool window_full =
        thermal_window_.span() >= 0.5 * config_.thermal_window_s;
    const bool runaway = hot_enough && window_full &&
                         slope_c_per_min > config_.thermal_slope_c_per_min;
    if (runaway && !active_[index]) {
      fire(t, HealthRule::kThermalRunaway, slope_c_per_min,
           config_.thermal_slope_c_per_min, "hot_c=" + format_fixed(hot_c, 2));
    }
    active_[index] = runaway;
  }

  // --- kBudgetStarvation: grant covers < ratio of demand for K windows.
  {
    const auto index = static_cast<std::size_t>(HealthRule::kBudgetStarvation);
    const double demand = inputs.demand_mw;
    const bool starved =
        inputs.budget_active && demand > 0.0 &&
        inputs.granted_mw < config_.starvation_ratio * demand;
    starved_windows_ = starved ? starved_windows_ + 1 : 0;
    const bool sustained = starved_windows_ >= config_.starvation_windows;
    if (sustained && !active_[index]) {
      fire(t, HealthRule::kBudgetStarvation,
           demand > 0.0 ? inputs.granted_mw / demand : 0.0,
           config_.starvation_ratio,
           "granted_mw=" + format_fixed(inputs.granted_mw, 1) +
               " demand_mw=" + format_fixed(demand, 1));
    }
    active_[index] = sustained;
  }

  // --- kSwitchThrash: cumulative switch count differenced over the window.
  switch_window_.push(t, static_cast<double>(inputs.switch_count),
                      config_.thrash_window_s);
  {
    const auto index = static_cast<std::size_t>(HealthRule::kSwitchThrash);
    const double span = switch_window_.span();
    double rate_per_min = 0.0;
    if (span > 0.0) {
      const double switches =
          switch_window_.v.back() - switch_window_.v.front();
      rate_per_min = switches / span * 60.0;
    }
    const bool window_full = span >= 0.5 * config_.thrash_window_s;
    const bool thrashing =
        window_full && rate_per_min > config_.thrash_rate_per_min;
    if (thrashing && !active_[index]) {
      fire(t, HealthRule::kSwitchThrash, rate_per_min,
           config_.thrash_rate_per_min,
           "switches=" + format_fixed(switch_window_.v.back() -
                                          switch_window_.v.front(), 1));
    }
    active_[index] = thrashing;
  }

  // --- kGuardEngaged: level-triggered input, edge-triggered alert.
  {
    const auto index = static_cast<std::size_t>(HealthRule::kGuardEngaged);
    const bool engaged = config_.alert_on_guard && inputs.guard_engaged;
    if (engaged && !active_[index]) {
      fire(t, HealthRule::kGuardEngaged, 1.0, 0.0, "fallback engaged");
    }
    active_[index] = engaged;
  }

  // --- kTimeToEmpty: SoC over its trailing discharge slope.
  soc_window_.push(t, inputs.soc, config_.tte_window_s);
  {
    const auto index = static_cast<std::size_t>(HealthRule::kTimeToEmpty);
    const double slope = soc_window_.slope_per_s();  // soc per second
    const bool window_full = soc_window_.span() >= 0.5 * config_.tte_window_s;
    if (window_full && slope < 0.0) {
      tte_s_ = inputs.soc / -slope;
      tte_valid_ = true;
    } else if (!tte_valid_) {
      tte_s_ = std::numeric_limits<double>::infinity();
    }
    const bool low = tte_valid_ && tte_s_ < config_.tte_watermark_s;
    if (low && !active_[index]) {
      fire(t, HealthRule::kTimeToEmpty, tte_s_, config_.tte_watermark_s,
           "soc=" + format_fixed(inputs.soc, 4));
    }
    active_[index] = low;
  }

  return fired_;
}

void HealthMonitor::write_alerts(std::ostream& out) const {
  for (const auto& alert : alerts_) {
    write_json_line(out, alert);
  }
}

void HealthMonitor::write_json_line(std::ostream& out,
                                    const HealthAlert& alert) {
  std::string buf;
  buf.reserve(160);
  buf += "{\"seq\":";
  detail::append_u64(buf, alert.seq);
  buf += ",\"t_s\":";
  detail::append_fixed(buf, alert.t_s, 3);
  buf += ",\"rule\":";
  detail::append_string(buf, to_string(alert.rule));
  buf += ",\"value\":";
  detail::append_double(buf, alert.value);
  buf += ",\"threshold\":";
  detail::append_double(buf, alert.threshold);
  buf += ",\"detail\":";
  detail::append_string(buf, alert.detail);
  buf += "}\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace capman::obs
