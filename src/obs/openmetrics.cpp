#include "obs/openmetrics.h"

#include <cstdint>

#include "obs/json_append.h"

namespace capman::obs {

namespace {

bool legal_metric_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_value(std::string& out, double v) {
  detail::append_double(out, v);  // non-finite becomes "null"; snapshots
                                  // only carry finite values by contract
}

}  // namespace

std::string openmetrics_name(std::string_view raw) {
  std::string name = "capman_";
  name.reserve(raw.size() + name.size());
  for (const char c : raw) {
    name += legal_metric_char(c) ? c : '_';
  }
  return name;
}

void write_openmetrics(std::ostream& out, const MetricsSnapshot& snapshot) {
  std::string buf;
  buf.reserve(4096);
  for (const auto& counter : snapshot.counters) {
    const std::string name = openmetrics_name(counter.name);
    buf += "# TYPE " + name + " counter\n";
    buf += name + "_total ";
    detail::append_u64(buf, counter.value);
    buf += '\n';
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string name = openmetrics_name(gauge.name);
    buf += "# TYPE " + name + " gauge\n";
    buf += name + ' ';
    append_value(buf, gauge.value);
    buf += '\n';
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string name = openmetrics_name(histogram.name);
    buf += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      buf += name + "_bucket{le=\"";
      if (i < histogram.bounds.size()) {
        append_value(buf, histogram.bounds[i]);
      } else {
        buf += "+Inf";
      }
      buf += "\"} ";
      detail::append_u64(buf, cumulative);
      buf += '\n';
    }
    buf += name + "_sum ";
    append_value(buf, histogram.sum);
    buf += '\n';
    buf += name + "_count ";
    detail::append_u64(buf, histogram.count);
    buf += '\n';
  }
  buf += "# EOF\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace capman::obs
