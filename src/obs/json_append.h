// Allocation-light JSON building blocks shared by the telemetry writers
// (Chrome trace, decision JSONL, metrics snapshot).
//
// The writers append into one std::string and hand the finished buffer to
// the stream in a single write. Going through `operator<<` per field costs
// a sentry + locale round-trip per call — tens of per-field calls across
// tens of thousands of events made serialisation the dominant telemetry
// cost — while std::to_chars into a stack buffer is locale-free and emits
// the shortest round-trip representation.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

namespace capman::obs::detail {

inline void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

inline void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

/// Shortest round-trip decimal; non-finite values become JSON null.
inline void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

inline void append_bool(std::string& out, bool v) {
  out += v ? "true" : "false";
}

/// Fixed-point decimal with `decimals` fractional digits (1..9), via
/// integer to_chars — roughly 3x faster than shortest-round-trip double
/// formatting, and it drops the float-noise tail digits that bloat the
/// output ("9061.45000001" -> "9061.450"). Values too large for the
/// scaled integer (or non-finite) fall back to append_double.
inline void append_fixed(std::string& out, double v, int decimals) {
  std::int64_t scale = 1;
  for (int i = 0; i < decimals; ++i) scale *= 10;
  if (!std::isfinite(v) ||
      std::abs(v) >= 9.0e18 / static_cast<double>(scale)) {
    append_double(out, v);
    return;
  }
  std::int64_t y = std::llround(v * static_cast<double>(scale));
  if (y < 0) {
    out += '-';
    y = -y;
  }
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof buf, y / scale);
  out.append(buf, r.ptr);
  out += '.';
  const std::int64_t frac = y % scale;
  r = std::to_chars(buf, buf + sizeof buf, frac + scale);  // zero-padded
  out.append(buf + 1, r.ptr);                              // drop leading 1
}

/// Quoted and escaped JSON string.
inline void append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace capman::obs::detail
