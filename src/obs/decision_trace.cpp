#include "obs/decision_trace.h"

#include <stdexcept>

#include "obs/json_append.h"

namespace capman::obs {

const char* to_string(DecisionDetail::Source source) {
  switch (source) {
    case DecisionDetail::Source::kExact: return "exact";
    case DecisionDetail::Source::kTransferred: return "transferred";
    case DecisionDetail::Source::kFallback: return "fallback";
    case DecisionDetail::Source::kExplored: return "explored";
  }
  return "?";
}

namespace {

// Drain the buffer to the stream once it holds this much; record() stays
// on the memcpy/to_chars fast path and the stream sees few large writes.
constexpr std::size_t kDrainThreshold = 1 << 18;

void append_json_line(std::string& out, const DecisionRecord& rec) {
  using detail::append_bool;
  using detail::append_double;
  using detail::append_fixed;
  using detail::append_i64;
  using detail::append_string;
  using detail::append_u64;

  out += "{\"seq\":";
  append_u64(out, rec.seq);
  out += ",\"t_s\":";
  append_fixed(out, rec.t_s, 3);
  out += ",\"policy\":";
  append_string(out, rec.policy);
  out += ",\"event\":";
  append_string(out, rec.event);
  out += ",\"param\":";
  append_i64(out, rec.param);
  out += ",\"emergency\":";
  append_bool(out, rec.emergency);
  out += ",\"cpu\":";
  append_string(out, rec.cpu);
  out += ",\"screen\":";
  append_string(out, rec.screen);
  out += ",\"wifi\":";
  append_string(out, rec.wifi);
  out += ",\"active\":";
  append_string(out, rec.active);
  out += ",\"chosen\":";
  append_string(out, rec.chosen);
  if (rec.detail.has_value()) {
    out += ",\"source\":\"";
    out += to_string(rec.detail->source);
    out += "\",\"matched_state\":";
    if (rec.detail->matched_state >= 0) {
      append_i64(out, rec.detail->matched_state);
    } else {
      out += "null";
    }
    out += ",\"q_big\":";
    append_fixed(out, rec.detail->q_big, 4);  // NaN -> null
    out += ",\"q_little\":";
    append_fixed(out, rec.detail->q_little, 4);
  } else {
    out +=
        ",\"source\":null,\"matched_state\":null,\"q_big\":null,"
        "\"q_little\":null";
  }
  out += ",\"switch_requested\":";
  append_bool(out, rec.switch_requested);
  out += ",\"switch_accepted\":";
  append_bool(out, rec.switch_accepted);
  out += ",\"switch_pending\":";
  append_bool(out, rec.switch_pending);
  out += ",\"guard_fallback\":";
  append_bool(out, rec.guard_fallback);
  out += ",\"fault_stuck\":";
  append_bool(out, rec.fault_stuck);
  out += ",\"big_soc\":";
  append_fixed(out, rec.big_soc, 6);
  out += ",\"little_soc\":";
  append_fixed(out, rec.little_soc, 6);
  out += ",\"hotspot_c\":";
  append_fixed(out, rec.hotspot_c, 3);
  out += ",\"demand_w\":";
  append_fixed(out, rec.demand_w, 4);
  out += ",\"budget_level\":";
  append_i64(out, rec.budget_level);
  out += ",\"granted_mw\":";
  append_fixed(out, rec.granted_mw, 1);
  out += "}\n";
}

}  // namespace

JsonlDecisionSink::JsonlDecisionSink(const std::string& path)
    : file_(path, std::ios::trunc), out_(&file_) {
  if (!file_) {
    throw std::runtime_error("JsonlDecisionSink: cannot open " + path);
  }
  buffer_.reserve(kDrainThreshold + 1024);
}

JsonlDecisionSink::JsonlDecisionSink(std::ostream& out) : out_(&out) {}

JsonlDecisionSink::~JsonlDecisionSink() { flush(); }

void JsonlDecisionSink::record(const DecisionRecord& rec) {
  append_json_line(buffer_, rec);
  ++records_;
  if (buffer_.size() >= kDrainThreshold) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void JsonlDecisionSink::flush() {
  if (!buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_->flush();
}

void JsonlDecisionSink::write_json_line(std::ostream& out,
                                        const DecisionRecord& rec) {
  std::string line;
  line.reserve(512);
  append_json_line(line, rec);
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
}

}  // namespace capman::obs
