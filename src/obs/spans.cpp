#include "obs/spans.h"

#include <algorithm>

#include "obs/json_append.h"

namespace capman::obs {

namespace {

// Ambient profiler + a process-wide generation so thread-local buffer
// caches can detect that "their" profiler was torn down and a new one now
// occupies the same address (pooled threads outlive profilers).
std::atomic<SpanProfiler*> g_current{nullptr};
std::atomic<std::uint64_t> g_generation{0};

struct ThreadSlot {
  std::uint64_t generation = 0;
  void* buffer = nullptr;  // SpanProfiler::ThreadBuffer*
};
thread_local ThreadSlot t_slot;
thread_local std::string t_label;

}  // namespace

void set_current_thread_label(std::string label) {
  t_label = std::move(label);
  // Force re-registration so the new label lands in the active profiler.
  t_slot = {};
}

SpanProfiler::SpanProfiler() : SpanProfiler(Options{}) {}

SpanProfiler::SpanProfiler(Options options)
    : options_(options),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1),
      epoch_(std::chrono::steady_clock::now()) {}

SpanProfiler::~SpanProfiler() = default;

SpanProfiler* SpanProfiler::current() {
  return g_current.load(std::memory_order_acquire);
}

SpanProfiler::Scope::Scope(SpanProfiler& profiler)
    : previous_(g_current.exchange(&profiler, std::memory_order_acq_rel)) {}

SpanProfiler::Scope::~Scope() {
  g_current.store(previous_, std::memory_order_release);
}

double SpanProfiler::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanProfiler::ThreadBuffer& SpanProfiler::local_buffer() {
  if (t_slot.generation != generation_ || t_slot.buffer == nullptr) {
    const util::MutexLock lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffer->label = t_label.empty()
                        ? (buffer->tid == 0 ? std::string{"main"}
                                            : "thread-" +
                                                  std::to_string(buffer->tid))
                        : t_label;
    buffers_.push_back(std::move(buffer));
    t_slot = {generation_, buffers_.back().get()};
  }
  return *static_cast<ThreadBuffer*>(t_slot.buffer);
}

void SpanProfiler::complete(const char* name, const char* category,
                            double start_us, double duration_us) {
  ThreadBuffer& buf = local_buffer();
  buf.events.push_back(
      {name, category, 'X', 1, buf.tid, start_us, duration_us, 0.0});
}

void SpanProfiler::instant(const char* name, const char* category,
                           double ts_us) {
  ThreadBuffer& buf = local_buffer();
  buf.events.push_back({name, category, 'i', 1, buf.tid, ts_us, 0.0, 0.0});
}

void SpanProfiler::append_sim(Event event) {
  const util::MutexLock lock(mutex_);
  sim_events_.push_back(event);
}

void SpanProfiler::sim_complete(const char* name, const char* category,
                                std::uint32_t track, double start_s,
                                double duration_s) {
  append_sim(
      {name, category, 'X', 2, track, start_s * 1e6, duration_s * 1e6, 0.0});
}

void SpanProfiler::sim_instant(const char* name, const char* category,
                               std::uint32_t track, double t_s) {
  append_sim({name, category, 'i', 2, track, t_s * 1e6, 0.0, 0.0});
}

void SpanProfiler::sim_counter(const char* name, double t_s, double value) {
  // Counter tracks live on their own tids above the named sim tracks so
  // Perfetto renders one lane per counter name.
  append_sim(
      {name, "counter", 'C', 2, kFaultTrack + 1, t_s * 1e6, 0.0, value});
}

std::size_t SpanProfiler::event_count() const {
  const util::MutexLock lock(mutex_);
  std::size_t n = sim_events_.size();
  for (const auto& buf : buffers_) n += buf->events.size();
  return n;
}

namespace {

using detail::append_fixed;
using detail::append_string;
using detail::append_u64;

void append_event(std::string& out, const SpanProfiler::Event& e) {
  out += "{\"name\":";
  append_string(out, e.name);
  out += ",\"cat\":";
  append_string(out, e.category);
  out += ",\"ph\":\"";
  out += e.phase;
  out += "\",\"pid\":";
  append_u64(out, e.pid);
  out += ",\"tid\":";
  append_u64(out, e.tid);
  out += ",\"ts\":";
  append_fixed(out, e.ts_us, 3);  // µs with ns resolution
  if (e.phase == 'X') {
    out += ",\"dur\":";
    append_fixed(out, e.dur_us, 3);
  }
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  if (e.phase == 'C') {
    out += ",\"args\":{\"value\":";
    append_fixed(out, e.value, 6);
    out += '}';
  }
  out += '}';
}

void append_metadata(std::string& out, const char* what, std::uint32_t pid,
                     std::uint32_t tid, std::string_view name, bool with_tid) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  if (with_tid) {
    out += ",\"tid\":";
    append_u64(out, tid);
  }
  out += ",\"args\":{\"name\":";
  append_string(out, name);
  out += "}}";
}

}  // namespace

void SpanProfiler::write_chrome_trace(std::ostream& out) const {
  const util::MutexLock lock(mutex_);
  std::size_t events = sim_events_.size();
  for (const auto& buf : buffers_) events += buf->events.size();

  std::string json;
  json.reserve(128 * (events + buffers_.size() + 8));
  json += "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) json += ',';
    first = false;
  };

  sep();
  append_metadata(json, "process_name", 1, 0, "compute (wall-clock)", false);
  sep();
  append_metadata(json, "process_name", 2, 0, "simulation time", false);
  for (const auto& buf : buffers_) {
    sep();
    append_metadata(json, "thread_name", 1, buf->tid, buf->label, true);
  }
  sep();
  append_metadata(json, "thread_name", 2, kDecisionTrack, "decisions", true);
  sep();
  append_metadata(json, "thread_name", 2, kActuatorTrack, "switch transients",
                  true);
  sep();
  append_metadata(json, "thread_name", 2, kFaultTrack, "fault episodes", true);
  sep();
  append_metadata(json, "thread_name", 2, kFaultTrack + 1, "sim counters",
                  true);

  for (const auto& buf : buffers_) {
    for (const Event& e : buf->events) {
      sep();
      append_event(json, e);
    }
  }
  for (const Event& e : sim_events_) {
    sep();
    append_event(json, e);
  }
  json += "]}";
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
}

}  // namespace capman::obs
