// Decision-trace recorder: one structured JSONL record per scheduler
// consultation, so a run can be replayed decision-by-decision (what the
// policy saw, what it chose, why, and what the actuator did with it).
//
// The recorder is a null object by default: the engine always calls
// `sink.record(...)` behind a cheap `enabled()` check, and a disabled
// recorder performs no work at all — runs with the recorder off are
// bit-identical to recorder-free builds (asserted in
// tests/sim/telemetry_test.cpp).
//
// Schema (one JSON object per line; scripts/check_trace_schema.py is the
// source of truth for required keys):
//   t_s, seq, policy, event, param, emergency          — the consultation
//   cpu, screen, wifi, active                          — observed state
//   chosen                                             — policy answer
//   source, matched_state, q_big, q_little             — CAPMAN decision
//       provenance (null for policies without a scheduler): source is
//       exact | transferred | fallback | explored, matched_state is the
//       CapmanState::index() whose experience was reused via similarity
//   switch_requested, switch_accepted, switch_pending  — actuator outcome
//   guard_fallback, fault_stuck                        — degradation state
//   big_soc, little_soc, hotspot_c, demand_w           — sensor readings
//       as the policy observed them (post fault-injection)
//   budget_level, granted_mw                           — power-budget
//       arbiter state in force at the consultation (0 / kFull and 0.0
//       when no arbiter runs)
#pragma once

#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <ostream>
#include <string>

namespace capman::obs {

/// Why a CAPMAN decision came out the way it did (scheduler-internal
/// provenance surfaced through policy::BatteryPolicy::last_decision_detail).
struct DecisionDetail {
  enum class Source { kExact, kTransferred, kFallback, kExplored };
  Source source = Source::kFallback;
  /// CapmanState::index() of the state whose experience was reused via
  /// structural similarity; -1 when the decision did not transfer.
  std::int64_t matched_state = -1;
  double q_big = std::numeric_limits<double>::quiet_NaN();
  double q_little = std::numeric_limits<double>::quiet_NaN();
};

const char* to_string(DecisionDetail::Source source);

/// One scheduler consultation, fully assembled by the simulation engine.
struct DecisionRecord {
  std::uint64_t seq = 0;  // consultation index within the run
  double t_s = 0.0;       // simulation time
  std::string policy;

  std::string event;  // syscall name; "rail-monitor" for pure emergencies
  int param = 0;
  bool emergency = false;

  std::string cpu;     // device power states as consulted
  std::string screen;
  std::string wifi;
  std::string active;  // cell carrying the load when consulted
  std::string chosen;  // cell the policy asked for

  std::optional<DecisionDetail> detail;  // CAPMAN provenance, else nullopt

  bool switch_requested = false;  // chosen != active
  bool switch_accepted = false;   // the pack would take the switch
  bool switch_pending = false;    // a transient is in flight afterwards

  bool guard_fallback = false;  // DegradationGuard riding the safe policy
  bool fault_stuck = false;     // comparator inside a stuck episode

  double big_soc = 0.0;  // observed (possibly fault-corrupted) readings
  double little_soc = 0.0;
  double hotspot_c = 0.0;
  double demand_w = 0.0;

  int budget_level = 0;     // core::BudgetLevel in force (0 = full)
  double granted_mw = 0.0;  // arbiter's total grant; 0 without an arbiter
};

/// Record sink interface. The null object (base class) drops everything;
/// enabled() lets callers skip record assembly entirely when disabled.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  [[nodiscard]] virtual bool enabled() const { return false; }
  virtual void record(const DecisionRecord& /*rec*/) {}
  virtual void flush() {}
  [[nodiscard]] virtual std::uint64_t records_written() const { return 0; }
};

/// JSONL sink: one compact JSON object per record, append-only. Records
/// are serialised into an internal buffer (std::to_chars, no locale) and
/// handed to the stream in large writes; call flush() (the engine's
/// teardown does) or destroy the sink to drain the tail.
class JsonlDecisionSink final : public DecisionSink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonlDecisionSink(const std::string& path);
  /// Writes to a caller-owned stream (tests).
  explicit JsonlDecisionSink(std::ostream& out);
  ~JsonlDecisionSink() override;

  [[nodiscard]] bool enabled() const override { return true; }
  void record(const DecisionRecord& rec) override;
  void flush() override;
  [[nodiscard]] std::uint64_t records_written() const override {
    return records_;
  }

  /// The serialisation itself, exposed for schema round-trip tests.
  static void write_json_line(std::ostream& out, const DecisionRecord& rec);

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::string buffer_;
  std::uint64_t records_ = 0;
};

}  // namespace capman::obs
