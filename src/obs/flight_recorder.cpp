#include "obs/flight_recorder.h"

#include <stdexcept>
#include <utility>

#include "obs/json_append.h"

namespace capman::obs {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kTrigger: return "trigger";
    case FlightEventKind::kDecision: return "decision";
    case FlightEventKind::kSwitch: return "switch";
    case FlightEventKind::kBudget: return "budget";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kGuard: return "guard";
    case FlightEventKind::kAlert: return "alert";
    case FlightEventKind::kEngine: return "engine";
    case FlightEventKind::kCheckpoint: return "checkpoint";
  }
  return "?";
}

std::vector<std::string> FlightRecorderConfig::validate() const {
  std::vector<std::string> errors;
  if (capacity < 2) {
    errors.emplace_back("capacity must be >= 2");
  }
  if (enabled && dump_path.empty()) {
    errors.emplace_back("dump_path is required when enabled");
  }
  if (!enabled && (!dump_path.empty() || dump_at_end)) {
    errors.emplace_back("dump_path/dump_at_end require enabled to be true");
  }
  return errors;
}

namespace {

void check(const FlightRecorderConfig& config) {
  const auto errors = config.validate();
  if (!errors.empty()) {
    std::string message = "invalid FlightRecorderConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderConfig& config)
    : config_(config) {
  check(config_);
  ring_.reserve(config_.capacity);
}

FlightRecorder::FlightRecorder(const FlightRecorderConfig& config,
                               std::ostream& out)
    : config_(config), out_(&out) {
  // Stream-backed recorders are a test vehicle; tolerate an empty
  // dump_path by validating a patched copy.
  FlightRecorderConfig patched = config_;
  if (patched.enabled && patched.dump_path.empty()) {
    patched.dump_path = "<stream>";
  }
  check(patched);
  ring_.reserve(config_.capacity);
}

void FlightRecorder::record(double t_s, FlightEventKind kind, std::string what,
                            std::string detail, double value) {
  FlightEvent event;
  event.seq = seq_++;
  event.t_s = t_s;
  event.kind = kind;
  event.what = std::move(what);
  event.detail = std::move(detail);
  event.value = value;
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % config_.capacity;
  }
}

void FlightRecorder::open_sink() {
  if (out_ != nullptr) return;
  file_.open(config_.dump_path, std::ios::trunc);
  if (!file_) {
    throw std::runtime_error("FlightRecorder: cannot open " +
                             config_.dump_path);
  }
  out_ = &file_;
}

std::size_t FlightRecorder::trigger(double t_s, const std::string& reason) {
  if (ring_.empty()) return 0;
  open_sink();
  const std::uint64_t dump = dumps_++;
  FlightEvent header;
  header.seq = seq_++;
  header.t_s = t_s;
  header.kind = FlightEventKind::kTrigger;
  header.what = reason;
  header.value = static_cast<double>(ring_.size());
  write_json_line(*out_, header, dump);
  // Oldest-to-newest: the ring is [next_, end) then [0, next_) once the
  // write cursor wrapped.
  std::size_t written = 1;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::size_t index =
        ring_.size() == config_.capacity ? (next_ + i) % ring_.size() : i;
    write_json_line(*out_, ring_[index], dump);
    ++written;
  }
  ring_.clear();
  next_ = 0;
  records_ += written;
  out_->flush();
  return written;
}

void FlightRecorder::flush() {
  if (out_ != nullptr) out_->flush();
}

void FlightRecorder::write_json_line(std::ostream& out,
                                     const FlightEvent& event,
                                     std::uint64_t dump) {
  std::string buf;
  buf.reserve(160);
  buf += "{\"dump\":";
  detail::append_u64(buf, dump);
  buf += ",\"seq\":";
  detail::append_u64(buf, event.seq);
  buf += ",\"t_s\":";
  detail::append_fixed(buf, event.t_s, 3);
  buf += ",\"kind\":";
  detail::append_string(buf, to_string(event.kind));
  buf += ",\"what\":";
  detail::append_string(buf, event.what);
  buf += ",\"detail\":";
  detail::append_string(buf, event.detail);
  buf += ",\"value\":";
  detail::append_double(buf, event.value);
  buf += "}\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace capman::obs
