// Black-box flight recorder: a bounded ring of structured events that
// stays silent until something goes wrong.
//
// Long-running systems cannot afford a full trace, but when a thermal
// runaway or a budget-starvation episode hits, the question is always
// "what happened in the last N seconds" — the role the in-flight data
// recorder (and RROS's observable ring) plays. The recorder keeps the
// most recent `capacity` events (decisions, budget grants/trims, switch
// latches, fault-episode transitions, DegradationGuard transitions,
// health alerts) in memory and dumps them as JSONL only on a trigger:
//  * a HealthMonitor alert fired (dump_on_alert),
//  * the engine caught an exception mid-run (always),
//  * the run ended with dump_at_end set (explicit flag).
// Each dump appends the ring oldest-to-newest behind a kTrigger record
// carrying the reason, then clears the ring so back-to-back triggers never
// replay the same history.
//
// Schema (one JSON object per line; scripts/check_trace_schema.py is the
// source of truth):
//   dump   — dump index within the run (all records of one trigger share it)
//   seq    — monotonically increasing event index within the run
//   t_s    — simulation time of the event (trigger records: trigger time)
//   kind   — trigger | decision | switch | budget | fault | guard | alert
//            | engine | checkpoint
//   what   — short label ("consult", "stuck-enter", "rebudget", ...);
//            for kTrigger records, the trigger reason
//   detail — free-form context ("policy=CAPMAN chosen=big", may be empty)
//   value  — one numeric payload (demand W, granted mW, ... kind-specific)
//
// Determinism contract: a disabled recorder is never constructed; a
// constructed recorder only observes simulation state and never feeds
// anything back, so runs with recording on are bit-identical to runs with
// it off (tests/sim/telemetry_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace capman::obs {

enum class FlightEventKind : std::uint8_t {
  kTrigger = 0,  // synthetic first record of every dump
  kDecision,
  kSwitch,
  kBudget,
  kFault,
  kGuard,
  kAlert,
  kEngine,
  kCheckpoint,  // fleet durability: checkpoint write / load / final
};

const char* to_string(FlightEventKind kind);

struct FlightEvent {
  std::uint64_t seq = 0;
  double t_s = 0.0;
  FlightEventKind kind = FlightEventKind::kEngine;
  std::string what;
  std::string detail;
  double value = 0.0;
};

/// Nested in obs::TelemetryConfig. Disabled by default; when enabled the
/// dump path is mandatory (a black box that cannot land is pointless).
struct FlightRecorderConfig {
  bool enabled = false;
  /// Ring capacity: how much history each dump can explain.
  std::size_t capacity = 256;
  /// JSONL dump target; dumps append, so one file collects every trigger.
  std::string dump_path;
  /// HealthMonitor alerts trigger a dump (the black-box default).
  bool dump_on_alert = true;
  /// Unconditionally dump whatever the ring holds at end of run.
  bool dump_at_end = false;

  /// Human-readable configuration errors; empty means valid. Aggregated
  /// by TelemetryConfig::validate() under "recorder.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

class FlightRecorder {
 public:
  /// Validates `config` (throws std::invalid_argument). Opens nothing:
  /// the dump file is created lazily on the first trigger.
  explicit FlightRecorder(const FlightRecorderConfig& config);

  /// Writes to a caller-owned stream instead of the configured path
  /// (tests); the config's dump_path is ignored.
  FlightRecorder(const FlightRecorderConfig& config, std::ostream& out);

  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }

  /// Append one event to the ring (overwriting the oldest when full).
  void record(double t_s, FlightEventKind kind, std::string what,
              std::string detail = {}, double value = 0.0);

  /// Dump the ring as JSONL behind a kTrigger record carrying `reason`,
  /// then clear it. Returns the number of records written (0 when the
  /// ring was empty — an empty black box writes nothing, not a header).
  std::size_t trigger(double t_s, const std::string& reason);

  [[nodiscard]] std::uint64_t events_recorded() const { return seq_; }
  [[nodiscard]] std::uint64_t dumps_written() const { return dumps_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  /// Events currently buffered (cleared by trigger()).
  [[nodiscard]] std::size_t buffered() const { return ring_.size(); }

  void flush();

  /// The serialisation itself, exposed for schema round-trip tests.
  static void write_json_line(std::ostream& out, const FlightEvent& event,
                              std::uint64_t dump);

 private:
  void open_sink();

  FlightRecorderConfig config_;
  std::vector<FlightEvent> ring_;  // circular via next_
  std::size_t next_ = 0;           // ring write cursor once full
  std::uint64_t seq_ = 0;
  std::uint64_t dumps_ = 0;
  std::uint64_t records_ = 0;
  std::ofstream file_;
  std::ostream* out_ = nullptr;  // nullptr until the first trigger
};

}  // namespace capman::obs
