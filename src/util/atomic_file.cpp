#include "util/atomic_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace capman::util {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("AtomicFile: " + what + " failed for '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    fail("open", tmp_path_);
  }
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    discard();
  }
}

void AtomicFile::discard() noexcept {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_path_.c_str());
}

void AtomicFile::append(std::string_view bytes) {
  if (file_ == nullptr) {
    throw std::runtime_error("AtomicFile: append after commit on '" + path_ +
                             "'");
  }
  if (bytes.empty()) {
    return;
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    const int saved = errno;
    discard();
    errno = saved;
    fail("write", tmp_path_);
  }
}

void AtomicFile::commit() {
  if (file_ == nullptr) {
    throw std::runtime_error("AtomicFile: double commit on '" + path_ + "'");
  }
  if (std::fflush(file_) != 0) {
    const int saved = errno;
    discard();
    errno = saved;
    fail("flush", tmp_path_);
  }
  // fsync before rename: the rename must not become durable before the
  // data it points at, or a crash window could expose a truncated file.
  if (fsync(fileno(file_)) != 0) {
    const int saved = errno;
    discard();
    errno = saved;
    fail("fsync", tmp_path_);
  }
  if (std::fclose(file_) != 0) {
    const int saved = errno;
    file_ = nullptr;
    discard();
    errno = saved;
    fail("close", tmp_path_);
  }
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const int saved = errno;
    discard();
    errno = saved;
    fail("rename", tmp_path_);
  }
  committed_ = true;
}

}  // namespace capman::util
