// Minimal CSV writer used by the benchmark harness to dump the series each
// paper figure plots, so results can be re-plotted offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace capman::util {

class CsvWriter {
 public:
  /// Write to an already-open stream (not owned).
  explicit CsvWriter(std::ostream& out);

  /// Open `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void header(std::initializer_list<std::string_view> columns);
  void header(const std::vector<std::string>& columns);

  /// Begin a row; then call `cell` repeatedly and `end_row`.
  CsvWriter& cell(std::string_view v);
  CsvWriter& cell(double v);
  CsvWriter& cell(long long v);
  CsvWriter& cell(std::size_t v);
  void end_row();

  /// One-shot numeric row.
  void row(std::initializer_list<double> values);

 private:
  void separator();
  std::ofstream file_;
  std::ostream* out_;
  bool row_started_ = false;
};

/// Escape a CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(std::string_view v);

}  // namespace capman::util
