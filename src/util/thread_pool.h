// Reusable fixed-size worker pool for data-parallel loops.
//
// Built for the per-iteration fan-out of Algorithm 1 (core/similarity.cpp):
// each sweep shards thousands of independent pair updates across cores,
// then joins at a barrier before the reduction. Workers are std::jthread
// and live for the lifetime of the pool, so per-sweep dispatch costs one
// mutex round-trip instead of thread creation.
//
// Determinism contract: parallel_for partitions [0, total) into exactly
// `worker_count()` contiguous chunks by a fixed formula that does not
// depend on scheduling, and every index is visited exactly once. A body
// that writes only to locations owned by its indices therefore produces
// bit-identical memory contents for every worker count (including the
// inline single-threaded path).
//
// Observability: workers label their tracks in the ambient
// obs::SpanProfiler ("pool-worker-N") and every executed chunk emits a
// `pool.chunk` span, so a profiled Algorithm 1 sweep renders one lane per
// worker in Perfetto. bind_metrics() attaches registry counters
// (threadpool/parallel_for, threadpool/chunks) that count dispatches; both
// hooks are no-ops when no profiler/registry is installed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace capman::obs {
class Counter;
class MetricsRegistry;
}  // namespace capman::obs

namespace capman::util {

/// Worker count for `requested` threads: 0 means "auto" (the hardware
/// concurrency, at least 1); any other value is used as given.
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// A pool of `resolve_thread_count(threads)` workers. A pool of one
  /// worker never spawns a thread: tasks run inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  // Non-copyable AND non-movable: workers capture `this` (queue mutex,
  // condition variables), so a moved-from pool would leave threads
  // spinning on a dead object. Locked in by tests/util/type_traits_test.
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_; }

  /// Publish dispatch counters into `registry` from now on (nullptr
  /// detaches). The handles are resolved once; per-call cost is two
  /// relaxed atomic increments.
  void bind_metrics(obs::MetricsRegistry* registry);

  /// Runs `body(begin, end, worker)` for `worker_count()` contiguous
  /// chunks covering [0, total) and blocks until all chunks finished.
  /// Chunk boundaries depend only on `total` and `worker_count()`; chunk
  /// `worker` always runs the same index range regardless of timing.
  /// Empty chunks (total < worker_count()) are still dispatched so the
  /// body may rely on being called once per worker slot.
  void parallel_for(
      std::size_t total,
      const std::function<void(std::size_t begin, std::size_t end,
                               std::size_t worker)>& body);

 private:
  void worker_loop(std::size_t worker);

  std::size_t workers_ = 1;
  std::vector<std::jthread> threads_;

  // One-shot task state, guarded by mutex_: generation_ increments per
  // parallel_for call; workers run the current task_ once per generation.
  // The condition variables are _any so they can wait on the annotated
  // util::Mutex (a BasicLockable) directly; clang -Wthread-safety then
  // checks every guarded access (the thread_safety_check gate).
  Mutex mutex_;
  std::condition_variable_any work_ready_;
  std::condition_variable_any work_done_;
  std::uint64_t generation_ CAPMAN_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ CAPMAN_GUARDED_BY(mutex_) = 0;
  bool stopping_ CAPMAN_GUARDED_BY(mutex_) = false;
  std::size_t task_total_ CAPMAN_GUARDED_BY(mutex_) = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* task_
      CAPMAN_GUARDED_BY(mutex_) = nullptr;

  // Registry handles (stable for the registry's lifetime); null when no
  // registry is bound.
  std::atomic<obs::Counter*> dispatch_counter_{nullptr};
  std::atomic<obs::Counter*> chunk_counter_{nullptr};
};

}  // namespace capman::util
