#include "util/sharding.h"

#include <algorithm>

namespace capman::util {

std::size_t resolve_shard_count(std::size_t requested, std::size_t total) {
  if (requested != 0) return std::max<std::size_t>(requested, 1);
  return std::max<std::size_t>(std::min<std::size_t>(total, 64), 1);
}

ShardPlan::ShardPlan(std::size_t total, std::size_t shard_count)
    : total_(total), shards_(std::max<std::size_t>(shard_count, 1)) {}

ShardRange ShardPlan::range(std::size_t shard) const {
  const std::size_t q = total_ / shards_;
  const std::size_t r = total_ % shards_;
  return {shard * q + std::min(shard, r),
          (shard + 1) * q + std::min(shard + 1, r)};
}

std::size_t ShardPlan::shard_of(std::size_t item) const {
  const std::size_t q = total_ / shards_;
  const std::size_t r = total_ % shards_;
  // The first r shards hold q + 1 items each and tile [0, r * (q + 1)).
  if (q == 0) return item;  // more shards than items: shard i = item i
  if (item < r * (q + 1)) return item / (q + 1);
  return r + (item - r * (q + 1)) / q;
}

}  // namespace capman::util
