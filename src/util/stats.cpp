#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace capman::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeSeries::add(double t, double v) {
  assert(t_.empty() || t >= t_.back());
  t_.push_back(t);
  v_.push_back(v);
}

void TimeSeries::reserve(std::size_t n) {
  t_.reserve(n);
  v_.reserve(n);
}

void TimeSeries::clear() {
  t_.clear();
  v_.clear();
}

double TimeSeries::integrate() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < t_.size(); ++i) {
    acc += 0.5 * (v_[i] + v_[i - 1]) * (t_[i] - t_[i - 1]);
  }
  return acc;
}

double TimeSeries::time_weighted_mean() const {
  if (t_.size() < 2) return t_.empty() ? 0.0 : v_.front();
  const double span = t_.back() - t_.front();
  return span > 0.0 ? integrate() / span : v_.front();
}

double TimeSeries::max_value() const {
  return v_.empty() ? 0.0 : *std::max_element(v_.begin(), v_.end());
}

double TimeSeries::min_value() const {
  return v_.empty() ? 0.0 : *std::min_element(v_.begin(), v_.end());
}

TimeSeries TimeSeries::decimate(std::size_t n) const {
  TimeSeries out;
  if (t_.empty() || n == 0) return out;
  if (t_.size() <= n) return *this;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = i * (t_.size() - 1) / (n - 1 > 0 ? n - 1 : 1);
    out.add(t_[idx], v_[idx]);
  }
  return out;
}

double TimeSeries::fraction_above(double threshold) const {
  if (t_.size() < 2) return 0.0;
  double above = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
    const double dt = t_[i + 1] - t_[i];
    total += dt;
    if (v_[i] > threshold) above += dt;
  }
  return total > 0.0 ? above / total : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
  std::size_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return bin_low(i);
  }
  return hi_;
}

}  // namespace capman::util
