// Strict CLI value parsing: whole-token or nothing.
//
// std::stoull/std::stod accept garbage suffixes ("12abc") and throw on
// junk — a terminate backtrace where a tool should print usage and exit
// 2. These helpers return std::nullopt unless the ENTIRE token parses,
// which is what the exit-2 usage contract (capman_sim, capman_fleet, the
// bench family via bench::seed_from_args) is built on.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace capman::util {

/// The whole of `token` as a base-10 unsigned integer, or nullopt.
inline std::optional<std::uint64_t> parse_u64(std::string_view token) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr != end || token.empty()) return std::nullopt;
  return value;
}

/// The whole of `token` as a double, or nullopt. Uses strtod (not
/// from_chars) so the header stays portable to standard libraries
/// without floating-point from_chars; the full-consumption check keeps
/// the strictness identical.
inline std::optional<double> parse_double(std::string_view token) {
  if (token.empty()) return std::nullopt;
  const std::string copy{token};  // strtod needs a terminator
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

}  // namespace capman::util
