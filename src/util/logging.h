// Leveled logging. Kept deliberately small: the simulator is the product,
// logging is plumbing. Thread-safe at the sink level (single mutexed write).
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

namespace capman::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(std::ostream* sink) { sink_ = sink; }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;  // nullptr -> std::clog
  std::mutex mutex_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  auto& logger = Logger::instance();
  if (level < logger.level()) return;
  std::ostringstream os;
  (os << ... << args);
  logger.write(level, component, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kDebug, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kInfo, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kWarn, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kError, component, std::forward<Args>(args)...);
}

}  // namespace capman::util
