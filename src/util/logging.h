// Leveled logging. Kept deliberately small: the simulator is the product,
// logging is plumbing. Thread-safe end to end: the level is an atomic (it
// is read unsynchronized from ThreadPool workers while the main thread may
// call set_level), the sink write is mutexed, and every line carries a
// wall-clock timestamp plus the writing thread's id.
//
// The initial level comes from the CAPMAN_LOG environment variable
// (debug | info | warn | error | off, case-insensitive), parsed once at
// first Logger::instance() use, so benches and CTest runs can raise
// verbosity without code changes; unset or unparseable values keep the
// kWarn default.
#pragma once

#include <atomic>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/thread_annotations.h"

namespace capman::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a CAPMAN_LOG-style level name (case-insensitive); nullopt when
/// the name is not one of debug/info/warn/error/off.
std::optional<LogLevel> parse_log_level(std::string_view name);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  void set_sink(std::ostream* sink) {
    // Locked: tests swap the sink while pooled workers may still be
    // logging; an unsynchronized pointer store here was a latent race.
    const MutexLock lock(mutex_);
    sink_ = sink;
  }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();  // applies CAPMAN_LOG
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mutex_;
  std::ostream* sink_ CAPMAN_GUARDED_BY(mutex_) = nullptr;  // nullptr -> clog
};

namespace detail {
template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  auto& logger = Logger::instance();
  if (level < logger.level()) return;
  std::ostringstream os;
  (os << ... << args);
  logger.write(level, component, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kDebug, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kInfo, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kWarn, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view component, Args&&... args) {
  detail::log(LogLevel::kError, component, std::forward<Args>(args)...);
}

}  // namespace capman::util
