#include "util/csv.h"

#include <iomanip>
#include <stdexcept>

namespace capman::util {

std::string csv_escape(std::string_view v) {
  const bool needs_quotes =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{v};
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {
// Enough significant digits that parsing the CSV back reproduces the
// original doubles to well below any tolerance the library cares about.
constexpr int kPrecision = 12;
}  // namespace

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {
  *out_ << std::setprecision(kPrecision);
}

CsvWriter::CsvWriter(const std::string& path) : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  *out_ << std::setprecision(kPrecision);
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  for (auto c : columns) cell(c);
  end_row();
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) cell(c);
  end_row();
}

void CsvWriter::separator() {
  if (row_started_) *out_ << ',';
  row_started_ = true;
}

CsvWriter& CsvWriter::cell(std::string_view v) {
  separator();
  *out_ << csv_escape(v);
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  separator();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::cell(long long v) {
  separator();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::cell(std::size_t v) {
  separator();
  *out_ << v;
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_started_ = false;
}

void CsvWriter::row(std::initializer_list<double> values) {
  for (double v : values) cell(v);
  end_row();
}

}  // namespace capman::util
