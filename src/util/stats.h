// Streaming statistics and time-series containers for simulation metrics.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace capman::util {

/// Welford online mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A (time, value) series sampled by the simulator. Supports trapezoidal
/// integration and decimation for plotting/CSV export.
class TimeSeries {
 public:
  void add(double t, double v);
  void reserve(std::size_t n);
  void clear();

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] double time_at(std::size_t i) const { return t_[i]; }
  [[nodiscard]] double value_at(std::size_t i) const { return v_[i]; }
  [[nodiscard]] const std::vector<double>& times() const { return t_; }
  [[nodiscard]] const std::vector<double>& values() const { return v_; }

  /// Trapezoidal integral over the whole series.
  [[nodiscard]] double integrate() const;

  /// Mean value weighted by time (integral / span); 0 for < 2 samples.
  [[nodiscard]] double time_weighted_mean() const;

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

  /// Uniformly subsample to at most n points (keeps first and last).
  [[nodiscard]] TimeSeries decimate(std::size_t n) const;

  /// Fraction of time the value exceeds `threshold` (piecewise-constant
  /// interpretation: each sample holds until the next).
  [[nodiscard]] double fraction_above(double threshold) const;

 private:
  std::vector<double> t_;
  std::vector<double> v_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace capman::util
