// Clang thread-safety-analysis annotations + an annotated mutex.
//
// The locking conventions in obs::MetricsRegistry, obs::SpanProfiler,
// util::ThreadPool and util::Logger used to live in comments ("guards the
// maps, not the instruments"). This header turns them into checked
// contracts: under clang the CAPMAN_* macros expand to the
// -Wthread-safety attributes, so `clang++ -Wthread-safety` (and the
// thread_safety_check CTest gate) proves every access to a
// CAPMAN_GUARDED_BY member happens with its mutex held. Under other
// compilers they expand to nothing and the code is unchanged.
//
// capman-lint L7 enforces adoption statically (no clang required): any
// class that owns a mutex must either use util::Mutex + at least one
// CAPMAN_GUARDED_BY/CAPMAN_REQUIRES annotation, or justify why not.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPMAN_CAPABILITY(x) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define CAPMAN_SCOPED_CAPABILITY \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define CAPMAN_GUARDED_BY(x) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define CAPMAN_PT_GUARDED_BY(x) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define CAPMAN_REQUIRES(...) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define CAPMAN_ACQUIRE(...) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define CAPMAN_RELEASE(...) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define CAPMAN_TRY_ACQUIRE(...) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define CAPMAN_EXCLUDES(...) \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define CAPMAN_NO_THREAD_SAFETY_ANALYSIS \
  CAPMAN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace capman::util {

/// std::mutex wrapped as a clang `capability` so CAPMAN_GUARDED_BY
/// members can name it. BasicLockable, so std::condition_variable_any
/// can wait on it directly (ThreadPool does).
class CAPMAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CAPMAN_ACQUIRE() { mu_.lock(); }
  void unlock() CAPMAN_RELEASE() { mu_.unlock(); }
  bool try_lock() CAPMAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // The one place a raw std::mutex is allowed: it *is* the capability.
  std::mutex mu_;  // capman-lint: allow(thread-safety, wrapped capability)
};

/// RAII scoped lock over util::Mutex, annotated so the analysis knows the
/// capability is held for the scope (std::scoped_lock is unannotated).
class CAPMAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CAPMAN_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() CAPMAN_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace capman::util
