#include "util/crc32.h"

#include <array>

namespace capman::util {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? kPolynomial ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace capman::util
