// Deterministic, seedable random number generation for simulations.
//
// All stochastic behaviour in CAPMAN flows through Rng so that every
// experiment is reproducible from a single 64-bit seed. The core generator
// is xoshiro256**, seeded via splitmix64 (the recommended pairing).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace capman::util {

/// xoshiro256** PRNG with distribution helpers used by the workload
/// generators (uniform, normal, exponential, Pareto, Zipf).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached spare).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Pareto (heavy-tailed) with minimum xm > 0 and shape alpha > 0.
  /// Used for skewed inter-arrival gaps (paper Section III: "arrivals of
  /// software demands are frequent with a skewed distribution").
  double pareto(double xm, double alpha);

  /// Zipf-distributed rank in [0, n) with exponent s (rank 0 most likely).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Bernoulli trial.
  bool chance(double p);

  /// Split off an independent stream (for parallel components).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
  // Zipf sampling cache: harmonic partial sums for the last (n, s) pair.
  std::uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace capman::util
