#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/spans.h"

namespace capman::util {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

ThreadPool::ThreadPool(std::size_t threads)
    : workers_(resolve_thread_count(threads)) {
  // Worker 0 is always the calling thread; only extra workers need OS
  // threads. A single-worker pool therefore costs nothing to construct.
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  // Join here rather than via ~jthread: members are destroyed in reverse
  // declaration order, so mutex_ and the condition variables would die
  // before threads_ joins — and a worker whose final work_done_ signal is
  // still in flight (the caller's wait can return as soon as pending_ hits
  // zero) would touch them after destruction.
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    dispatch_counter_.store(nullptr, std::memory_order_release);
    chunk_counter_.store(nullptr, std::memory_order_release);
    return;
  }
  dispatch_counter_.store(&registry->counter("threadpool/parallel_for"),
                          std::memory_order_release);
  chunk_counter_.store(&registry->counter("threadpool/chunks"),
                       std::memory_order_release);
}

void ThreadPool::parallel_for(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (auto* counter = dispatch_counter_.load(std::memory_order_acquire)) {
    counter->add();
  }
  if (auto* counter = chunk_counter_.load(std::memory_order_acquire)) {
    counter->add(workers_);
  }
  // Fixed partition: chunk w covers [w*q + min(w,r), ...) where
  // q = total / workers, r = total % workers — the first r chunks get one
  // extra index. Purely arithmetic, so identical across runs.
  const auto chunk_begin = [&](std::size_t w) {
    const std::size_t q = total / workers_;
    const std::size_t r = total % workers_;
    return w * q + std::min(w, r);
  };
  if (workers_ == 1) {
    const obs::ScopedSpan span{"pool.chunk", "threadpool"};
    body(0, total, 0);
    return;
  }
  {
    const MutexLock lock(mutex_);
    task_ = &body;
    task_total_ = total;
    pending_ = workers_ - 1;
    ++generation_;
  }
  work_ready_.notify_all();
  {
    const obs::ScopedSpan span{"pool.chunk", "threadpool"};
    body(chunk_begin(0), chunk_begin(1), 0);  // caller runs chunk 0 inline
  }
  {
    const MutexLock lock(mutex_);
    // condition_variable_any waits on the annotated mutex directly; the
    // manual loop keeps the guarded predicate visible to the analysis.
    while (pending_ != 0) work_done_.wait(mutex_);
    task_ = nullptr;
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  obs::set_current_thread_label("pool-worker-" + std::to_string(worker));
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* task;
    std::size_t total;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && generation_ == seen_generation) {
        work_ready_.wait(mutex_);
      }
      if (stopping_) return;
      seen_generation = generation_;
      task = task_;
      total = task_total_;
    }
    const std::size_t q = total / workers_;
    const std::size_t r = total % workers_;
    const std::size_t begin = worker * q + std::min(worker, r);
    const std::size_t end = (worker + 1) * q + std::min(worker + 1, r);
    {
      const obs::ScopedSpan span{"pool.chunk", "threadpool"};
      (*task)(begin, end, worker);
    }
    bool last = false;
    {
      const MutexLock lock(mutex_);
      last = --pending_ == 0;
    }
    if (last) work_done_.notify_one();
  }
}

}  // namespace capman::util
