#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace capman::util {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

TextTable& TextTable::add_row(std::string label, const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(std::move(label));
  for (double v : values) cells.push_back(format(v, precision));
  return add_row(std::move(cells));
}

std::string TextTable::format(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : columns_[i];
      out << std::left << std::setw(static_cast<int>(widths[i])) << c << " | ";
    }
    out << '\n';
  };
  print_row(columns_);
  out << "|";
  for (auto w : widths) out << std::string(w + 2, '-') << "-|";
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_section(std::ostream& out, std::string_view title) {
  out << '\n' << std::string(72, '=') << '\n'
      << "  " << title << '\n'
      << std::string(72, '=') << '\n';
}

}  // namespace capman::util
