#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace capman::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection-free multiply-shift; bias negligible for n << 2^64.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n > 0);
  // Cache key for the memoised CDF: rebuild on any parameter change, so an
  // exact compare is what we want.  capman-lint: allow(float-compare)
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = uniform();
  // Binary search the CDF.
  std::uint64_t lo = 0;
  std::uint64_t hi = n - 1;
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() { return Rng{next_u64() ^ 0xa5a5a5a5deadbeefULL}; }

}  // namespace capman::util
