// Crash-atomic whole-file replacement: write-temp, fsync, rename.
//
// POSIX rename(2) within one directory is atomic, so a reader (including
// a resumed campaign after SIGKILL) observes either the previous complete
// file or the new complete file — never a half-written mix. The writer:
//
//   AtomicFile out(path);        // opens path + ".tmp"
//   out.append(bytes);           // any number of times
//   out.commit();                // flush + fsync + rename over `path`
//
// Destruction without commit() removes the temp file, so an exception
// mid-serialization leaves the previous committed file untouched. One
// shot: commit() may be called once; append() after commit() throws.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace capman::util {

class AtomicFile {
 public:
  /// Opens `path + ".tmp"` for writing. Throws std::runtime_error when
  /// the temp file cannot be created (missing directory, permissions).
  explicit AtomicFile(std::string path);

  /// Removes the temp file if commit() was never reached.
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  AtomicFile(AtomicFile&&) = delete;
  AtomicFile& operator=(AtomicFile&&) = delete;

  /// Buffered write into the temp file. Throws std::runtime_error on I/O
  /// failure or when called after commit().
  void append(std::string_view bytes);

  /// Flush + fsync the temp file, then atomically rename it over the
  /// destination path. Throws std::runtime_error on any failure (the temp
  /// file is removed and the destination keeps its previous content).
  void commit();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool committed() const { return committed_; }

 private:
  void discard() noexcept;

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  bool committed_ = false;
};

}  // namespace capman::util
