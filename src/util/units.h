// Strong unit types for the physical quantities CAPMAN manipulates.
//
// Following C++ Core Guidelines I.4 ("make interfaces precisely and strongly
// typed"), every physical quantity that crosses a module boundary is wrapped
// in a tagged Quantity so that a caller cannot pass milliwatts where joules
// are expected. Arithmetic is defined within a unit, plus the handful of
// cross-unit products the physics needs (V*A = W, W*s = J, A*s = C, ...).
//
// Two families live here:
//
//  * Quantity<Tag> — the SI-base family (Watts, Joules, Seconds, ...):
//    double representation, `.value()` accessor, cross-unit physics.
//  * Strong<Tag, Rep> — the scaled-integer/milli family (Milliwatts,
//    Millijoules, MilliCelsius, MicroSeconds, Ratio): the budget arbiter,
//    the consumer capability surface and the fleet's exact integer folds
//    trade in these. The representation escape hatch is `.raw()`, and
//    capman-lint L8 audits every `.raw()` call site under src/ (it must
//    carry a `// capman-lint: allow(raw-unit, <reason>)`).
//
// Both are zero-overhead: one scalar member, all operations constexpr and
// inlined, so wrapping a double in Milliwatts compiles to the identical
// instruction stream — the bit-identity gates (fleet, bench baselines)
// pin that down.
#pragma once

#include <cmath>
#include <compare>
#include <concepts>
#include <cstdint>

namespace capman::util {

/// A double wrapped with a unit tag. Zero-overhead: one double, all
/// operations constexpr and inlined.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is a plain number.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

struct VoltsTag {};
struct AmperesTag {};
struct WattsTag {};
struct JoulesTag {};
struct CoulombsTag {};
struct SecondsTag {};
struct CelsiusTag {};   // absolute temperature, degrees Celsius
struct KelvinDiffTag {};  // temperature *difference* (same magnitude as C)
struct OhmsTag {};
struct FaradsTag {};

using Volts = Quantity<VoltsTag>;
using Amperes = Quantity<AmperesTag>;
using Watts = Quantity<WattsTag>;
using Joules = Quantity<JoulesTag>;
using Coulombs = Quantity<CoulombsTag>;
using Seconds = Quantity<SecondsTag>;
using Celsius = Quantity<CelsiusTag>;
using KelvinDiff = Quantity<KelvinDiffTag>;
using Ohms = Quantity<OhmsTag>;
using Farads = Quantity<FaradsTag>;

// ---- Cross-unit physics -----------------------------------------------

constexpr Watts operator*(Volts v, Amperes i) { return Watts{v.value() * i.value()}; }
constexpr Watts operator*(Amperes i, Volts v) { return v * i; }
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value() * t.value()}; }
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Coulombs operator*(Amperes i, Seconds t) {
  return Coulombs{i.value() * t.value()};
}
constexpr Coulombs operator*(Seconds t, Amperes i) { return i * t; }
constexpr Volts operator*(Amperes i, Ohms r) { return Volts{i.value() * r.value()}; }
constexpr Volts operator*(Ohms r, Amperes i) { return i * r; }
constexpr Amperes operator/(Volts v, Ohms r) { return Amperes{v.value() / r.value()}; }
constexpr Amperes operator/(Watts p, Volts v) { return Amperes{p.value() / v.value()}; }
constexpr Volts operator/(Watts p, Amperes i) { return Volts{p.value() / i.value()}; }
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value() / t.value()}; }
constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.value() / p.value()}; }
constexpr Joules operator*(Coulombs q, Volts v) {
  return Joules{q.value() * v.value()};
}
constexpr Joules operator*(Volts v, Coulombs q) { return q * v; }

/// Temperature +/- difference.
constexpr Celsius operator+(Celsius t, KelvinDiff d) {
  return Celsius{t.value() + d.value()};
}
constexpr Celsius operator-(Celsius t, KelvinDiff d) {
  return Celsius{t.value() - d.value()};
}
/// Temperature difference a - b (the generic same-unit operator- already
/// yields a Celsius-tagged quantity, so a named helper provides the
/// difference-typed result where it matters).
constexpr KelvinDiff temperature_difference(Celsius a, Celsius b) {
  return KelvinDiff{a.value() - b.value()};
}

/// Kelvin value of an absolute Celsius temperature (for the Peltier term
/// S_T * T_c * I, which needs absolute temperature).
constexpr double kelvin(Celsius t) { return t.value() + 273.15; }

// ---- Strong scaled scalars (Milliwatts, Millijoules, ...) --------------

/// A strongly typed scalar with representation `Rep` and no implicit
/// conversions. Same-dimension arithmetic only; scalar scaling and ratios
/// exist for floating representations (scaling an exact integer fold
/// would silently round). `.raw()` is the audited escape hatch (L8).
template <typename Tag, typename Rep>
class Strong {
 public:
  using rep = Rep;

  constexpr Strong() = default;
  constexpr explicit Strong(Rep v) : raw_(v) {}

  /// The raw representation. Call sites under src/ must justify the
  /// escape with `// capman-lint: allow(raw-unit, <reason>)`.
  [[nodiscard]] constexpr Rep raw() const { return raw_; }

  constexpr Strong& operator+=(Strong o) {
    raw_ += o.raw_;
    return *this;
  }
  constexpr Strong& operator-=(Strong o) {
    raw_ -= o.raw_;
    return *this;
  }
  constexpr Strong& operator*=(double s)
    requires std::floating_point<Rep>
  {
    raw_ *= s;
    return *this;
  }
  constexpr Strong& operator/=(double s)
    requires std::floating_point<Rep>
  {
    raw_ /= s;
    return *this;
  }

  friend constexpr Strong operator+(Strong a, Strong b) {
    return Strong{a.raw_ + b.raw_};
  }
  friend constexpr Strong operator-(Strong a, Strong b) {
    return Strong{a.raw_ - b.raw_};
  }
  friend constexpr Strong operator-(Strong a)
    requires std::floating_point<Rep> || std::signed_integral<Rep>
  {
    return Strong{-a.raw_};
  }
  friend constexpr Strong operator*(Strong a, double s)
    requires std::floating_point<Rep>
  {
    return Strong{a.raw_ * s};
  }
  friend constexpr Strong operator*(double s, Strong a)
    requires std::floating_point<Rep>
  {
    return Strong{s * a.raw_};
  }
  friend constexpr Strong operator/(Strong a, double s)
    requires std::floating_point<Rep>
  {
    return Strong{a.raw_ / s};
  }
  /// Ratio of two like quantities is a plain number.
  friend constexpr double operator/(Strong a, Strong b)
    requires std::floating_point<Rep>
  {
    return a.raw_ / b.raw_;
  }
  friend constexpr auto operator<=>(Strong a, Strong b) = default;

  /// Largest multiple of `quantum` not exceeding `v` (the consumer-cap
  /// floor quantization; device::quantize_cap builds on it).
  friend Strong floor_to_multiple(Strong v, Strong quantum)
    requires std::floating_point<Rep>
  {
    return Strong{std::floor(v.raw_ / quantum.raw_) * quantum.raw_};
  }

 private:
  Rep raw_ = Rep{};
};

struct MilliwattsTag {};
struct MillijoulesTag {};
struct MilliCelsiusTag {};
struct MicroSecondsTag {};
struct RatioTag {};

/// Milliwatt power levels (the budget/cap currency of the arbiter and the
/// PowerConsumer surface; Table II/III coefficients).
using Milliwatts = Strong<MilliwattsTag, double>;
/// Exact millijoule sums (the fleet's integer energy fold).
using Millijoules = Strong<MillijoulesTag, std::uint64_t>;
/// Exact milli-degree-Celsius sums (signed: sub-zero ambients exist).
using MilliCelsius = Strong<MilliCelsiusTag, std::int64_t>;
/// Exact microsecond sums (the fleet's integer lifetime fold).
using MicroSeconds = Strong<MicroSecondsTag, std::uint64_t>;
/// A dimensionless fraction (budget-level spend fractions, derates).
using Ratio = Strong<RatioTag, double>;

// ---- Conversions between the families ----------------------------------

// capman-lint: allow(raw-unit, family conversion mW -> W)
constexpr Watts to_watts(Milliwatts mw) { return Watts{mw.raw() / 1000.0}; }
constexpr Milliwatts as_milliwatts(Watts w) {
  return Milliwatts{w.value() * 1000.0};
}

/// Milliwatts scaled by a dimensionless fraction stay milliwatts.
constexpr Milliwatts operator*(Milliwatts mw, Ratio r) {
  // capman-lint: allow(raw-unit, defines the mW x ratio operator itself)
  return Milliwatts{mw.raw() * r.raw()};
}
constexpr Milliwatts operator*(Ratio r, Milliwatts mw) {
  // capman-lint: allow(raw-unit, defines the ratio x mW operator itself)
  return Milliwatts{r.raw() * mw.raw()};
}

// Fixed-resolution quantizers for the fleet's exact integer folds. The
// formulas are the original FleetRunner ones verbatim (llround of the
// non-negative-clamped scaled value), so migrated aggregates stay
// bit-identical to the pre-units quantization.
inline MicroSeconds quantize_microseconds(Seconds s) {
  return MicroSeconds{static_cast<std::uint64_t>(
      std::llround(std::max(s.value(), 0.0) * 1e6))};
}
inline MilliCelsius quantize_millicelsius(Celsius c) {
  return MilliCelsius{std::llround(c.value() * 1e3)};
}
inline Millijoules quantize_millijoules(Joules j) {
  return Millijoules{static_cast<std::uint64_t>(
      std::llround(std::max(j.value(), 0.0) * 1e3))};
}

namespace literals {
constexpr Milliwatts operator""_mw(long double mw) {
  return Milliwatts{static_cast<double>(mw)};
}
constexpr Milliwatts operator""_mw(unsigned long long mw) {
  return Milliwatts{static_cast<double>(mw)};
}
}  // namespace literals

// ---- Convenience constructors -----------------------------------------

constexpr Watts milliwatts(double mw) { return Watts{mw / 1000.0}; }
constexpr Seconds milliseconds(double ms) { return Seconds{ms / 1000.0}; }
constexpr Seconds minutes(double m) { return Seconds{m * 60.0}; }
constexpr Seconds hours(double h) { return Seconds{h * 3600.0}; }
constexpr Coulombs milliamp_hours(double mah) { return Coulombs{mah * 3.6}; }
constexpr double to_milliamp_hours(Coulombs c) { return c.value() / 3.6; }
constexpr double to_milliwatts(Watts w) { return w.value() * 1000.0; }
constexpr Joules watt_hours(double wh) { return Joules{wh * 3600.0}; }
constexpr double to_watt_hours(Joules j) { return j.value() / 3600.0; }

}  // namespace capman::util
