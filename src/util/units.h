// Strong unit types for the physical quantities CAPMAN manipulates.
//
// Following C++ Core Guidelines I.4 ("make interfaces precisely and strongly
// typed"), every physical quantity that crosses a module boundary is wrapped
// in a tagged Quantity so that a caller cannot pass milliwatts where joules
// are expected. Arithmetic is defined within a unit, plus the handful of
// cross-unit products the physics needs (V*A = W, W*s = J, A*s = C, ...).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace capman::util {

/// A double wrapped with a unit tag. Zero-overhead: one double, all
/// operations constexpr and inlined.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is a plain number.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

struct VoltsTag {};
struct AmperesTag {};
struct WattsTag {};
struct JoulesTag {};
struct CoulombsTag {};
struct SecondsTag {};
struct CelsiusTag {};   // absolute temperature, degrees Celsius
struct KelvinDiffTag {};  // temperature *difference* (same magnitude as C)
struct OhmsTag {};
struct FaradsTag {};

using Volts = Quantity<VoltsTag>;
using Amperes = Quantity<AmperesTag>;
using Watts = Quantity<WattsTag>;
using Joules = Quantity<JoulesTag>;
using Coulombs = Quantity<CoulombsTag>;
using Seconds = Quantity<SecondsTag>;
using Celsius = Quantity<CelsiusTag>;
using KelvinDiff = Quantity<KelvinDiffTag>;
using Ohms = Quantity<OhmsTag>;
using Farads = Quantity<FaradsTag>;

// ---- Cross-unit physics -----------------------------------------------

constexpr Watts operator*(Volts v, Amperes i) { return Watts{v.value() * i.value()}; }
constexpr Watts operator*(Amperes i, Volts v) { return v * i; }
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value() * t.value()}; }
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Coulombs operator*(Amperes i, Seconds t) {
  return Coulombs{i.value() * t.value()};
}
constexpr Coulombs operator*(Seconds t, Amperes i) { return i * t; }
constexpr Volts operator*(Amperes i, Ohms r) { return Volts{i.value() * r.value()}; }
constexpr Volts operator*(Ohms r, Amperes i) { return i * r; }
constexpr Amperes operator/(Volts v, Ohms r) { return Amperes{v.value() / r.value()}; }
constexpr Amperes operator/(Watts p, Volts v) { return Amperes{p.value() / v.value()}; }
constexpr Volts operator/(Watts p, Amperes i) { return Volts{p.value() / i.value()}; }
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value() / t.value()}; }
constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.value() / p.value()}; }

/// Temperature +/- difference.
constexpr Celsius operator+(Celsius t, KelvinDiff d) {
  return Celsius{t.value() + d.value()};
}
constexpr Celsius operator-(Celsius t, KelvinDiff d) {
  return Celsius{t.value() - d.value()};
}
/// Temperature difference a - b (the generic same-unit operator- already
/// yields a Celsius-tagged quantity, so a named helper provides the
/// difference-typed result where it matters).
constexpr KelvinDiff temperature_difference(Celsius a, Celsius b) {
  return KelvinDiff{a.value() - b.value()};
}

/// Kelvin value of an absolute Celsius temperature (for the Peltier term
/// S_T * T_c * I, which needs absolute temperature).
constexpr double kelvin(Celsius t) { return t.value() + 273.15; }

// ---- Convenience constructors -----------------------------------------

constexpr Watts milliwatts(double mw) { return Watts{mw / 1000.0}; }
constexpr Seconds milliseconds(double ms) { return Seconds{ms / 1000.0}; }
constexpr Seconds minutes(double m) { return Seconds{m * 60.0}; }
constexpr Seconds hours(double h) { return Seconds{h * 3600.0}; }
constexpr Coulombs milliamp_hours(double mah) { return Coulombs{mah * 3.6}; }
constexpr double to_milliamp_hours(Coulombs c) { return c.value() / 3.6; }
constexpr double to_milliwatts(Watts w) { return w.value() * 1000.0; }
constexpr Joules watt_hours(double wh) { return Joules{wh * 3600.0}; }
constexpr double to_watt_hours(Joules j) { return j.value() / 3600.0; }

}  // namespace capman::util
