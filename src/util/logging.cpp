#include "util/logging.h"

#include <iostream>

namespace capman::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::scoped_lock lock{mutex_};
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << '[' << kNames[static_cast<int>(level)] << "] " << component << ": "
      << msg << '\n';
}

}  // namespace capman::util
