#include "util/logging.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <iostream>
#include <thread>

namespace capman::util {

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lowered;
  lowered.reserve(name.size());
  for (const char c : name) {
    lowered.push_back(static_cast<char>(std::tolower(
        static_cast<unsigned char>(c))));
  }
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return std::nullopt;
}

Logger::Logger() {
  if (const char* env = std::getenv("CAPMAN_LOG")) {
    if (const auto level = parse_log_level(env)) {
      level_.store(*level, std::memory_order_relaxed);
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};

  // Wall-clock HH:MM:SS.mmm — enough to line log output up with a span
  // trace; the date would only be noise in bench/CTest logs.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char stamp[16];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));

  // Short stable id for the writing thread (full std::thread::id values
  // are unwieldy 15-digit handles).
  const std::size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;

  const MutexLock lock(mutex_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << '[' << stamp << "] [" << kNames[static_cast<int>(level)] << "] [tid "
      << tid << "] " << component << ": " << msg << '\n';
}

}  // namespace capman::util
