// ASCII table renderer for benchmark binaries: prints the same rows the
// paper's tables/figure captions report, aligned for terminal reading.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace capman::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  TextTable& add_row(std::vector<std::string> cells);

  /// Numeric convenience: formats each double with `precision` digits.
  TextTable& add_row(std::string label, const std::vector<double>& values,
                     int precision = 2);

  void print(std::ostream& out) const;

  static std::string format(double v, int precision = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a titled section separator for bench output.
void print_section(std::ostream& out, std::string_view title);

}  // namespace capman::util
