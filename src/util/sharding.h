// Deterministic shard scheduling for population-scale fan-out.
//
// ShardPlan fixes the device → shard assignment of a fleet run before any
// thread is spawned: shard k owns one contiguous item range computed by
// the same quotient/remainder formula ThreadPool::parallel_for uses for
// its worker chunks (q = total / shards, r = total % shards; the first r
// shards get one extra item). Because the assignment depends only on
// (total, shard_count) — never on thread count, scheduling order or
// timing — a consumer that accumulates per-shard state and merges it in
// shard-index order produces identical results for every worker count.
//
// Contiguity is the second half of the contract: shard ranges tile
// [0, total) in order, so a left-fold merge over shards 0..S-1 visits
// items in exactly the order a single loop over [0, total) would. Any
// reduction that is a left fold over items (integer sums trivially, but
// also order-sensitive floating-point folds) is therefore bit-identical
// across shard counts as well.
#pragma once

#include <cstddef>

namespace capman::util {

/// One shard's contiguous item range [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }
};

/// Shard count for `requested` shards over `total` items: 0 means "auto"
/// (min(total, 64), at least 1 — enough granularity for any realistic
/// worker count without flooding per-shard telemetry). The result never
/// exceeds max(total, 1), so no shard is ever empty.
std::size_t resolve_shard_count(std::size_t requested, std::size_t total);

/// The fixed device→shard assignment described in the header comment.
/// Plain value type: cheap to copy into worker lambdas.
class ShardPlan {
 public:
  /// Partition [0, total) into `shard_count` contiguous ranges.
  /// `shard_count` is clamped to at least 1; counts above `total` are
  /// legal (the surplus shards are empty) but resolve_shard_count never
  /// produces them.
  ShardPlan(std::size_t total, std::size_t shard_count);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_; }

  /// Item range of shard `shard` (requires shard < shard_count()).
  [[nodiscard]] ShardRange range(std::size_t shard) const;

  /// Inverse mapping: the shard owning `item` (requires item < total()).
  [[nodiscard]] std::size_t shard_of(std::size_t item) const;

 private:
  std::size_t total_ = 0;
  std::size_t shards_ = 1;
};

}  // namespace capman::util
