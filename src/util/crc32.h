// CRC-32 (ISO-HDLC / zlib polynomial) over byte strings.
//
// The checkpoint layer (src/sim/checkpoint.*) frames every record with a
// CRC so torn writes — the normal failure mode of a SIGKILLed campaign —
// are detected and rolled back instead of silently corrupting a resumed
// fleet run. The implementation is the standard reflected table-driven
// form (polynomial 0xEDB88320), byte-order independent, and supports
// incremental continuation: crc32(b, crc32(a)) == crc32(a + b).
#pragma once

#include <cstdint>
#include <string_view>

namespace capman::util {

/// CRC-32 of `bytes`, continuing from `seed` (the return value of a prior
/// call). Pass the default seed for a fresh checksum.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes,
                                  std::uint32_t seed = 0);

}  // namespace capman::util
