#include "core/mdp_graph.h"

#include <algorithm>
#include <cassert>

namespace capman::core {

double ActionVertex::expected_reward() const {
  double sum = 0.0;
  for (const TransitionEdge& e : transitions) sum += e.probability * e.reward;
  return sum;
}

MdpGraph MdpGraph::from_mdp(const Mdp& mdp, double min_observations) {
  MdpGraph graph;
  graph.state_to_vertex_.assign(state_space_size(), npos);

  // First pass: collect the states that will appear.
  const auto visited = mdp.visited_states();
  for (std::size_t state_id : visited) {
    graph.state_to_vertex_[state_id] = graph.states_.size();
    graph.states_.push_back({state_id, {}});
  }

  // Second pass: action vertices and transition edges.
  for (std::size_t vi = 0; vi < graph.states_.size(); ++vi) {
    const std::size_t state_id = graph.states_[vi].state_id;
    for (std::size_t action_id :
         mdp.observed_actions(state_id, std::max(min_observations, 0.5))) {
      ActionVertex av;
      av.source = vi;
      av.action_id = action_id;
      const auto dist = mdp.transition_distribution(state_id, action_id);
      for (std::size_t next = 0; next < dist.size(); ++next) {
        if (dist[next] <= 0.0) continue;
        const std::size_t target_vertex = graph.state_to_vertex_[next];
        assert(target_vertex != npos);  // targets were observed, so present
        av.transitions.push_back(
            {target_vertex, dist[next], mdp.mean_reward(state_id, action_id, next)});
      }
      if (av.transitions.empty()) continue;
      graph.states_[vi].actions.push_back(graph.actions_.size());
      graph.actions_.push_back(std::move(av));
    }
  }
  return graph;
}

MdpGraph MdpGraph::from_parts(std::vector<StateVertex> states,
                              std::vector<ActionVertex> actions) {
  MdpGraph graph;
  graph.states_ = std::move(states);
  graph.actions_ = std::move(actions);
  graph.state_to_vertex_.assign(state_space_size(), npos);
  for (std::size_t i = 0; i < graph.states_.size(); ++i) {
    if (graph.states_[i].state_id < graph.state_to_vertex_.size()) {
      graph.state_to_vertex_[graph.states_[i].state_id] = i;
    }
  }
  return graph;
}

std::size_t MdpGraph::vertex_of(std::size_t state_id) const {
  if (state_id >= state_to_vertex_.size()) return npos;
  return state_to_vertex_[state_id];
}

std::size_t MdpGraph::max_action_out_degree() const {
  std::size_t k = 0;
  for (const auto& a : actions_) k = std::max(k, a.transitions.size());
  return k;
}

std::size_t MdpGraph::max_state_out_degree() const {
  std::size_t l = 0;
  for (const auto& s : states_) l = std::max(l, s.actions.size());
  return l;
}

}  // namespace capman::core
