// Bellman-optimality solver on the MDP graph (paper Eq. 6-9): computes the
// optimal state values V*, action values Q* and the greedy policy. This is
// the "classic solution" whose cost motivates the similarity shortcut, the
// reference for the competitiveness bound tests, and the engine behind the
// offline Oracle baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/mdp_graph.h"

namespace capman::core {

struct ValueIterationConfig {
  double rho = 0.8;      // discount factor
  double epsilon = 1e-9;
  std::size_t max_iterations = 100000;

  /// Human-readable configuration errors; empty means valid. Reached from
  /// CapmanConfig::validate() via CapmanConfig::value_iteration_config().
  [[nodiscard]] std::vector<std::string> validate() const;
};

struct ValueIterationResult {
  std::vector<double> state_values;   // V*, indexed by state vertex
  std::vector<double> action_values;  // Q*, indexed by action vertex
  /// Greedy action vertex per state vertex (npos for absorbing states).
  std::vector<std::size_t> best_action;
  std::size_t iterations = 0;
  bool converged = false;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

ValueIterationResult solve_values(const MdpGraph& graph,
                                  const ValueIterationConfig& config);

}  // namespace capman::core
