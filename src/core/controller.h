// CapmanController: the facade tying profiler, online scheduler and
// actuator together (the shaded boxes of paper Fig. 5). The simulator (or a
// real system service) calls:
//   * on_event(...)   when a system call / trace event fires -> battery
//                     decision for the coming interval,
//   * record_step(...) every simulation step with the pack's energy
//                     accounting,
//   * maintenance(...) every step, which occasionally re-solves the MDP in
//                     the background and reports the CPU power CAPMAN's own
//                     bookkeeping costs.
#pragma once

#include "core/config.h"
#include "core/profiler.h"
#include "core/scheduler.h"

namespace capman::core {

class CapmanController {
 public:
  CapmanController(const CapmanConfig& config, std::uint64_t seed);

  /// Decide the battery for the interval opened by `event`. Emergency
  /// consultations (rail monitor) never explore and bypass dwell control;
  /// with budget learning they also force BudgetLevel::kEco — the
  /// comparator tripping *is* the signal the budget was too optimistic.
  /// `granted` is the arbiter's level currently in force (kFull when no
  /// arbiter runs).
  battery::BatterySelection on_event(const workload::Action& event,
                                     const device::DeviceStateVector& device,
                                     battery::BatterySelection current,
                                     util::Seconds now,
                                     bool emergency = false,
                                     BudgetLevel granted = BudgetLevel::kFull);

  /// Budget level the scheduler chose at the last on_event (kFull before
  /// the first consultation). The policy surfaces this as its preferred
  /// level for the arbiter's next rebudget.
  [[nodiscard]] BudgetLevel last_budget_level() const {
    return last_budget_level_;
  }

  /// Account one simulation step of the open interval.
  void record_step(util::Joules delivered, util::Joules losses,
                   bool demand_met);

  /// Background upkeep: runs a recalibration when due (with backoff) and
  /// returns the CPU power CAPMAN charges this step for maintaining the MDP
  /// representation.
  util::Watts maintenance(util::Seconds now);

  [[nodiscard]] const OnlineScheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] OnlineScheduler& scheduler() { return scheduler_; }
  /// Cumulative wall-clock seconds spent in recalibrations (Fig. 16's
  /// computation overhead, aggregated).
  [[nodiscard]] double solve_wall_seconds() const { return solve_seconds_; }

 private:
  CapmanConfig config_;
  OnlineScheduler scheduler_;
  RuntimeProfiler profiler_;
  double next_recalibration_s_;
  double recal_interval_s_;
  double last_switch_s_ = -1e9;
  double solve_seconds_ = 0.0;
  BudgetLevel last_budget_level_ = BudgetLevel::kFull;
};

}  // namespace capman::core
