// CapmanController: the facade tying profiler, online scheduler and
// actuator together (the shaded boxes of paper Fig. 5). The simulator (or a
// real system service) calls:
//   * on_event(...)   when a system call / trace event fires -> battery
//                     decision for the coming interval,
//   * record_step(...) every simulation step with the pack's energy
//                     accounting,
//   * maintenance(...) every step, which occasionally re-solves the MDP in
//                     the background and reports the CPU power CAPMAN's own
//                     bookkeeping costs.
#pragma once

#include "core/config.h"
#include "core/profiler.h"
#include "core/scheduler.h"

namespace capman::core {

class CapmanController {
 public:
  CapmanController(const CapmanConfig& config, std::uint64_t seed);

  /// Decide the battery for the interval opened by `event`. Emergency
  /// consultations (rail monitor) never explore and bypass dwell control.
  battery::BatterySelection on_event(const workload::Action& event,
                                     const device::DeviceStateVector& device,
                                     battery::BatterySelection current,
                                     util::Seconds now,
                                     bool emergency = false);

  /// Account one simulation step of the open interval.
  void record_step(util::Joules delivered, util::Joules losses,
                   bool demand_met);

  /// Background upkeep: runs a recalibration when due (with backoff) and
  /// returns the CPU power CAPMAN charges this step for maintaining the MDP
  /// representation.
  util::Watts maintenance(util::Seconds now);

  [[nodiscard]] const OnlineScheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] OnlineScheduler& scheduler() { return scheduler_; }
  /// Cumulative wall-clock seconds spent in recalibrations (Fig. 16's
  /// computation overhead, aggregated).
  [[nodiscard]] double solve_wall_seconds() const { return solve_seconds_; }

 private:
  CapmanConfig config_;
  OnlineScheduler scheduler_;
  RuntimeProfiler profiler_;
  double next_recalibration_s_;
  double recal_interval_s_;
  double last_switch_s_ = -1e9;
  double solve_seconds_ = 0.0;
};

}  // namespace capman::core
