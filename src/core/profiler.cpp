#include "core/profiler.h"

#include <algorithm>

namespace capman::core {

void RuntimeProfiler::begin_interval(const CapmanState& state,
                                     const DecisionAction& action) {
  open_ = true;
  state_ = state;
  action_ = action;
  delivered_j_ = 0.0;
  losses_j_ = 0.0;
  unmet_steps_ = 0;
  total_steps_ = 0;
}

void RuntimeProfiler::record(util::Joules delivered, util::Joules losses,
                             bool demand_met) {
  if (!open_) return;
  delivered_j_ += delivered.value();
  losses_j_ += losses.value();
  if (!demand_met) ++unmet_steps_;
  ++total_steps_;
}

double RuntimeProfiler::reward(util::Joules delivered, util::Joules losses,
                               std::size_t unmet_steps,
                               std::size_t total_steps) {
  const double total = delivered.value() + losses.value();
  double r = total > 0.0 ? delivered.value() / total : 1.0;
  if (total_steps > 0 && unmet_steps > 0) {
    // Unmet demand is the worst outcome a battery decision can produce.
    const double unmet_frac =
        static_cast<double>(unmet_steps) / static_cast<double>(total_steps);
    r *= std::max(0.0, 0.25 - 0.25 * unmet_frac) / 0.25 * 0.25;
  }
  return std::clamp(r, 0.0, 1.0);
}

std::optional<Observation> RuntimeProfiler::close_interval(
    const CapmanState& next_state) {
  if (!open_ || total_steps_ == 0) {
    open_ = false;
    return std::nullopt;
  }
  open_ = false;
  Observation obs;
  obs.state = state_.index();
  obs.action = action_;
  obs.next_state = next_state.index();
  obs.reward = reward(util::Joules{delivered_j_}, util::Joules{losses_j_},
                      unmet_steps_, total_steps_);
  return obs;
}

}  // namespace capman::core
