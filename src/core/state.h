// The combined CAPMAN MDP state: device power-state vector + battery
// selection (paper Fig. 8, e.g. {SLEEP, OFF, ..., big}).
#pragma once

#include <cstddef>
#include <string>

#include "battery/switcher.h"
#include "device/power_state.h"

namespace capman::core {

struct CapmanState {
  device::DeviceStateVector device;
  battery::BatterySelection battery = battery::BatterySelection::kBig;

  friend bool operator==(const CapmanState&, const CapmanState&) = default;

  [[nodiscard]] std::size_t index() const {
    return device.index() * 2 +
           (battery == battery::BatterySelection::kLittle ? 1 : 0);
  }

  static CapmanState from_index(std::size_t index) {
    CapmanState s;
    s.battery = (index % 2 == 1) ? battery::BatterySelection::kLittle
                                 : battery::BatterySelection::kBig;
    s.device = device::DeviceStateVector::from_index(index / 2);
    return s;
  }
};

/// 4 CPU x 2 screen x 3 WiFi x 2 battery = 48 combined states (the paper's
/// "finite MDP has 50 state nodes").
inline constexpr std::size_t state_space_size() {
  return device::device_state_count() * 2;
}

std::string to_string(const CapmanState& s);

}  // namespace capman::core
