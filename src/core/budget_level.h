// Voluntary power-budget posture: the third MDP action dimension.
//
// The PowerBudgetArbiter (core/power_budget.h) derives the physical budget
// from battery and thermal state; the *level* is the scheduler's voluntary
// stance on top of it — how much of the derived budget the device asks to
// spend. With CapmanConfig::learn_budget the level is chosen jointly with
// the battery selection, so CAPMAN learns when running leaner pays off
// (cooler skin, shallower V-edges) and when it merely costs service.
#pragma once

#include <cstddef>
#include <cstdint>

namespace capman::core {

enum class BudgetLevel : std::uint8_t {
  kFull = 0,      // spend the whole derived budget
  kBalanced = 1,  // spend a configured fraction (default 80%)
  kEco = 2,       // spend the lean fraction (default 60%)
};

inline constexpr std::size_t kBudgetLevelCount = 3;

[[nodiscard]] constexpr const char* to_string(BudgetLevel level) {
  switch (level) {
    case BudgetLevel::kFull: return "full";
    case BudgetLevel::kBalanced: return "balanced";
    case BudgetLevel::kEco: return "eco";
  }
  return "?";
}

}  // namespace capman::core
